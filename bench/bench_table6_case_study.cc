// Table VI: case study — top-5 predictions with probabilities for sample
// test queries, comparing LogCL, LogCL-w/o-eatt and LogCL-w/o-cl. The
// paper's qualitative claim: the full model ranks the true answer higher
// and with more probability mass than the ablated variants.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/logcl_model.h"
#include "eval/ranking.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

void PrintTopK(const std::string& label, LogClModel* model,
               const Quadruple& query) {
  std::printf("  %-18s", label.c_str());
  for (const auto& [entity, prob] : model->PredictTopK(query, 5)) {
    std::printf("  E%lld:%.3f", static_cast<long long>(entity), prob);
  }
  std::printf("\n");
}

void Run() {
  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  bench::PrintSectionTitle("Table VI case study on " + dataset.name());

  OfflineOptions train;
  train.epochs = bench::Epochs(6);
  train.learning_rate = bench::kLearningRate;
  TimeAwareFilter filter(dataset);

  LogClConfig full;
  full.embedding_dim = 32;
  LogClConfig no_eatt = full;
  no_eatt.use_entity_attention = false;
  LogClConfig no_cl = full;
  no_cl.use_contrast = false;

  LogClModel model_full(&dataset, full);
  LogClModel model_no_eatt(&dataset, no_eatt);
  LogClModel model_no_cl(&dataset, no_cl);
  TrainAndEvaluate(&model_full, &filter, train);
  TrainAndEvaluate(&model_no_eatt, &filter, train);
  TrainAndEvaluate(&model_no_cl, &filter, train);

  // Pick a handful of repetition-style test queries (answer seen before),
  // mirroring the paper's "Sign formal agreement" / "Engage in diplomatic
  // cooperation" examples.
  HistoryIndex history(dataset);
  int shown = 0;
  for (const Quadruple& q : dataset.test()) {
    if (shown >= 4) break;
    if (!history.SeenBefore(q.subject, q.relation, q.object, q.time)) {
      continue;  // showcase repetition queries, as the paper does
    }
    ++shown;
    std::printf("\nQuery (E%lld, R%lld, ?, t=%lld); answer E%lld\n",
                static_cast<long long>(q.subject),
                static_cast<long long>(q.relation),
                static_cast<long long>(q.time),
                static_cast<long long>(q.object));
    PrintTopK("LogCL", &model_full, q);
    PrintTopK("LogCL-w/o-eatt", &model_no_eatt, q);
    PrintTopK("LogCL-w/o-cl", &model_no_cl, q);
  }
  std::printf(
      "\nPaper Table VI: the full model ranks the answer top-1 with the\n"
      "largest probability; -w/o-eatt misses or under-weights it.\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
