// Table VII: the two-phase propagation study. LogCL-FP trains and evaluates
// only on the original (object-prediction) query set; LogCL-SP only on the
// inverse set. Expected shape (paper): FP > full > SP — the inverse-relation
// queries are intrinsically harder, and the full protocol averages both.

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

struct Variant {
  const char* label;
  QueryDirection direction;
};

constexpr Variant kVariants[] = {
    {"LogCL", QueryDirection::kBoth},
    {"LogCL-FP", QueryDirection::kForwardOnly},
    {"LogCL-SP", QueryDirection::kInverseOnly},
};

// Paper Table VII MRR (ICEWS14, ICEWS18, ICEWS05-15).
constexpr double kPaperMrr[][3] = {
    {48.87, 35.67, 57.04},
    {50.69, 37.38, 58.69},
    {47.04, 33.89, 55.38},
};

void Run() {
  std::vector<PaperDataset> datasets = bench::SweepDatasets();
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Table VII on " + dataset.name());
    bench::PrintHeader("Variant");
    for (size_t i = 0; i < std::size(kVariants); ++i) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.propagation = kVariants[i].direction;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(5);
      train.learning_rate = bench::kLearningRate;
      bench::PrintRow(kVariants[i].label,
                      TrainAndEvaluate(&model, &filter, train,
                                       kVariants[i].direction));
    }
    std::printf("\nPaper Table VII MRR for reference:\n");
    int column = preset == PaperDataset::kIcews14Like   ? 0
                 : preset == PaperDataset::kIcews18Like ? 1
                                                        : 2;
    for (size_t i = 0; i < std::size(kVariants); ++i) {
      std::printf("  %-10s %6.2f\n", kVariants[i].label, kPaperMrr[i][column]);
    }
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
