// Distributed-tier benchmark: ring AllReduceSum latency/bandwidth across
// payload sizes, 1-rank versus 2-rank data-parallel epoch throughput, and
// ServingRouter QPS over replicated and entity-sharded 2-worker fleets —
// all with in-process rank threads over real loopback sockets, so the
// numbers include the full framing/syscall path but no NIC.
//
// LOGCL_BENCH_FAST=1 shrinks iteration counts for smoke runs (CI executes
// exactly that).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/logcl_model.h"
#include "dist/dist_trainer.h"
#include "dist/process_group.h"
#include "dist/replica_worker.h"
#include "dist/serving_router.h"
#include "synth/generator.h"

namespace logcl {
namespace {

using Clock = std::chrono::steady_clock;
using dist::DistributedTrainer;
using dist::Listener;
using dist::ProcessGroup;
using dist::ProcessGroupOptions;
using dist::ReplicaWorker;
using dist::ReplicaWorkerOptions;
using dist::ServingRouter;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TkgDataset BenchData() {
  SynthConfig config;
  config.name = "dist-bench";
  config.seed = 613;
  config.num_entities = 80;
  config.num_relations = 8;
  config.num_timestamps = 24;
  config.recurring_pool = 120;
  config.recurring_prob = 0.4;
  config.alternating_pool = 40;
  config.num_cyclic = 20;
  config.chains_per_timestamp = 6.0;
  config.noise_per_timestamp = 4.0;
  return GenerateSyntheticTkg(config);
}

LogClConfig BenchConfig() {
  LogClConfig config;
  config.embedding_dim = 32;
  config.local.history_length = 3;
  config.seed = 11;
  return config;
}

/// Runs `body(group)` on every rank of an in-process world over loopback
/// TCP; returns when all rank threads join.
void RunWorld(int world,
              const std::function<void(ProcessGroup*, int)>& body) {
  Result<Listener> master = Listener::Open("127.0.0.1:0");
  if (!master.ok()) {
    std::fprintf(stderr, "master listener: %s\n",
                 std::string(master.status().message()).c_str());
    return;
  }
  // Extract the address before spawning: rank 0's rendezvous consumes the
  // pre-opened listener.
  std::string master_address = master.value().bound_address();
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = world;
      options.master = master_address;
      if (r == 0) options.master_listener = &master.value();
      Result<std::unique_ptr<ProcessGroup>> group =
          ProcessGroup::Rendezvous(options);
      if (!group.ok()) {
        std::fprintf(stderr, "[rank %d] rendezvous: %s\n", r,
                     std::string(group.status().message()).c_str());
        return;
      }
      body(group.value().get(), r);
    });
  }
  for (std::thread& t : ranks) t.join();
}

void BenchAllReduce() {
  bench::PrintSectionTitle("ring AllReduceSum, world=2, loopback TCP");
  std::printf("%-16s %10s %12s\n", "payload", "per-op", "bandwidth");
  std::printf("%s\n", std::string(42, '-').c_str());
  const int iters = bench::FastMode() ? 20 : 200;
  for (size_t elems : {size_t{1} << 10, size_t{1} << 14, size_t{1} << 18,
                       size_t{1} << 22}) {
    double seconds = 0.0;
    RunWorld(2, [&](ProcessGroup* group, int rank) {
      std::vector<float> buffer(elems, 1.0f + static_cast<float>(rank));
      // Warm-up + sync.
      group->AllReduceSum(buffer.data(), buffer.size());
      group->Barrier();
      Clock::time_point start = Clock::now();
      for (int i = 0; i < iters; ++i) {
        group->AllReduceSum(buffer.data(), buffer.size());
      }
      if (rank == 0) seconds = SecondsSince(start);
    });
    const double per_op = seconds / iters;
    // Ring moves ~2x the payload per rank (reduce pass + broadcast pass).
    const double mb = 2.0 * static_cast<double>(elems * sizeof(float)) / 1e6;
    std::printf("%13zu B %8.0f us %9.0f MB/s\n", elems * sizeof(float),
                per_op * 1e6, mb / per_op);
  }
}

void BenchEpochThroughput() {
  bench::PrintSectionTitle("data-parallel epoch throughput (facts/s)");
  const int epochs = bench::FastMode() ? 1 : 3;
  TkgDataset data = BenchData();
  int64_t train_facts = 0;
  for (int64_t t : data.SplitTimestamps(Split::kTrain)) {
    train_facts += static_cast<int64_t>(data.FactsAt(t).size());
  }

  double single_seconds = 0.0;
  {
    TkgDataset local = BenchData();
    LogClModel model(&local, BenchConfig());
    AdamOptimizer optimizer(model.Parameters());
    Clock::time_point start = Clock::now();
    for (int e = 0; e < epochs; ++e) model.TrainEpoch(&optimizer);
    single_seconds = SecondsSince(start) / epochs;
  }

  double dual_seconds = 0.0;
  RunWorld(2, [&](ProcessGroup* group, int rank) {
    TkgDataset local = BenchData();
    LogClModel model(&local, BenchConfig());
    AdamOptimizer optimizer(model.Parameters());
    DistributedTrainer trainer(group, &model, &optimizer);
    group->Barrier();
    Clock::time_point start = Clock::now();
    for (int e = 0; e < epochs; ++e) {
      Result<EpochStats> stats = trainer.TrainEpoch();
      if (!stats.ok()) {
        std::fprintf(stderr, "[rank %d] %s\n", rank,
                     std::string(stats.status().message()).c_str());
        return;
      }
    }
    if (rank == 0) dual_seconds = SecondsSince(start) / epochs;
  });

  std::printf("%-24s %10.2f s/epoch %10.0f facts/s\n", "1 rank",
              single_seconds,
              static_cast<double>(train_facts) / single_seconds);
  std::printf("%-24s %10.2f s/epoch %10.0f facts/s   speedup %.2fx\n",
              "2 ranks (loopback)", dual_seconds,
              static_cast<double>(train_facts) / dual_seconds,
              single_seconds / dual_seconds);
}

void BenchRouterQps(bool sharded) {
  TkgDataset data = BenchData();
  LogClModel model(&data, BenchConfig());
  model.SetEvalMode(true);
  const int64_t horizon = data.num_timestamps() - 2;
  const int64_t entities = data.num_entities();

  ReplicaWorkerOptions a, b;
  a.horizon = b.horizon = horizon;
  if (sharded) {
    a.entity_begin = 0;
    a.entity_end = entities / 2;
    b.entity_begin = entities / 2;
    b.entity_end = entities;
  }
  ReplicaWorker worker_a(&model, a), worker_b(&model, b);
  if (!worker_a.StartBackground().ok() || !worker_b.StartBackground().ok()) {
    std::fprintf(stderr, "worker start failed\n");
    return;
  }
  Result<std::unique_ptr<ServingRouter>> router =
      ServingRouter::Connect({worker_a.address(), worker_b.address()});
  if (!router.ok()) {
    std::fprintf(stderr, "router: %s\n",
                 std::string(router.status().message()).c_str());
    return;
  }

  const int clients = 4;
  const int requests_per_client = bench::FastMode() ? 25 : 250;
  std::vector<ServeQuery> batch = {{1, 0}, {5, 1}, {9, 2}, {13, 3}};
  std::atomic<int> failures{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < requests_per_client; ++i) {
        if (!router.value()->ScoreQueries(batch).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double seconds = SecondsSince(start);
  double total = static_cast<double>(clients) * requests_per_client;
  std::printf("%-24s %8.0f req/s  (%d clients, batch %zu, %d failures)\n",
              sharded ? "2 shards, fan-out" : "2 replicas, round-robin",
              total / seconds, clients, batch.size(), failures.load());
  router.value()->Shutdown();
  worker_a.Stop();
  worker_b.Stop();
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::bench::EnablePoolStatsDump();
  logcl::BenchAllReduce();
  logcl::BenchEpochThroughput();
  logcl::bench::PrintSectionTitle("ServingRouter QPS, loopback");
  logcl::BenchRouterQps(/*sharded=*/false);
  logcl::BenchRouterQps(/*sharded=*/true);
  return 0;
}
