// Table IV: LogCL ablations on the three ICEWS-like datasets:
//   LogCL            full model
//   LogCL-G          global encoder only (local branch removed)
//   LogCL-L          local encoder only (global branch removed)
//   LogCL-w/o-eatt   entity-aware attention removed (both encoders)
//   LogCL-G-w/o-eatt global-only, no attention
//   LogCL-L-w/o-eatt local-only, no attention
//   LogCL-w/o-cl     contrast module removed
//
// Expected shape (paper): full > -L > -w/o-cl > -G, and removing the
// entity-aware attention hurts every variant.

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

struct Variant {
  const char* label;
  bool use_local;
  bool use_global;
  bool use_attention;
  bool use_contrast;
};

constexpr Variant kVariants[] = {
    {"LogCL", true, true, true, true},
    {"LogCL-G", false, true, true, true},
    {"LogCL-L", true, false, true, true},
    {"LogCL-w/o-eatt", true, true, false, true},
    {"LogCL-G-w/o-eatt", false, true, false, true},
    {"LogCL-L-w/o-eatt", true, false, false, true},
    {"LogCL-w/o-cl", true, true, true, false},
};

// Paper Table IV MRR (ICEWS14, ICEWS18, ICEWS05-15).
constexpr double kPaperMrr[][3] = {
    {48.87, 35.67, 57.04}, {44.74, 30.21, 51.92}, {46.81, 35.31, 56.78},
    {40.34, 31.01, 46.25}, {38.61, 27.83, 41.40}, {39.86, 30.95, 46.16},
    {46.84, 35.32, 56.85},
};

void Run() {
  std::vector<PaperDataset> datasets = bench::SweepDatasets();
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Table IV on " + dataset.name());
    bench::PrintHeader("Variant");
    for (const Variant& variant : kVariants) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.use_local = variant.use_local;
      config.use_global = variant.use_global;
      config.use_entity_attention = variant.use_attention;
      // The contrast module needs both encoders; variants with one branch
      // have it off implicitly, matching the paper's setup.
      config.use_contrast =
          variant.use_contrast && variant.use_local && variant.use_global;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(5);
      train.learning_rate = bench::kLearningRate;
      bench::PrintRow(variant.label,
                      TrainAndEvaluate(&model, &filter, train));
    }
    std::printf("\nPaper Table IV MRR for reference:\n");
    int column = preset == PaperDataset::kIcews14Like   ? 0
                 : preset == PaperDataset::kIcews18Like ? 1
                                                        : 2;
    for (size_t i = 0; i < std::size(kVariants); ++i) {
      std::printf("  %-18s %6.2f\n", kVariants[i].label, kPaperMrr[i][column]);
    }
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
