// Fig.8: the lambda sweep — Eq.19's trade-off between the local and global
// representations. Expected shape (paper): performance rises, peaks at a
// local-heavy mix, and falls again at the extremes (pure-global lambda=0
// and pure-local lambda=1 are both worse than the blend).

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

void Run() {
  constexpr float kLambda[] = {0.0f, 0.3f, 0.5f, 0.7f, 0.9f, 1.0f};
  for (PaperDataset preset : bench::PrimaryDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.8 lambda sweep on " + dataset.name());
    bench::PrintHeader("lambda (local weight)");
    for (float lambda : kLambda) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.lambda = lambda;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(4);
      train.learning_rate = bench::kLearningRate;
      char label[32];
      std::snprintf(label, sizeof(label), "lambda=%.1f", lambda);
      bench::PrintRow(label, TrainAndEvaluate(&model, &filter, train));
    }
  }
  std::printf(
      "\nPaper Fig.8: rising-then-falling curve with the optimum at a\n"
      "local-heavy mix (paper reports 0.9 as the best prediction weight).\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
