// Micro-benchmarks (google-benchmark) for the tensor substrate: the kernels
// that dominate LogCL training time.

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Thread-count sweep over the 256^3 matmul: Args are {size, threads}.
// Speedups over the threads=1 row are only meaningful on machines with
// that many physical cores.
void BM_MatMulThreads(benchmark::State& state) {
  int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_MatMulBackward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Backward(ops::SumAll(ops::MatMul(a, b)));
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::RandomNormal(Shape{state.range(0), 128}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(16)->Arg(128);

void BM_IndexSelectScatter(benchmark::State& state) {
  int64_t edges = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::RandomNormal(Shape{256, 32}, 1.0f, &rng);
  std::vector<int64_t> src(static_cast<size_t>(edges));
  std::vector<int64_t> dst(static_cast<size_t>(edges));
  for (auto& v : src) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto& v : dst) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    Tensor selected = ops::IndexSelectRows(x, src);
    benchmark::DoNotOptimize(ops::ScatterMeanRows(selected, dst, 256));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_IndexSelectScatter)->Arg(512)->Arg(4096);

void BM_Conv2x3(benchmark::State& state) {
  Rng rng(5);
  Tensor h = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor r = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor kernels = Tensor::RandomNormal(Shape{50, 6}, 1.0f, &rng);
  Tensor bias = Tensor::Zeros(Shape{50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Conv2x3(h, r, kernels, bias));
  }
}
BENCHMARK(BM_Conv2x3)->Arg(32)->Arg(128);

// Chain of small ops in the decoder-input shape (the allocation-bound
// regime the buffer pool targets): gather entity/relation rows, concat,
// gate elementwise, slice halves back apart. The data-movement ops do O(n)
// copying per O(n) of fresh storage, so with malloc-per-op a large share of
// the runtime is allocation + zero-init — the part the pool elides on
// kUninit hits. Arg toggles the pool (0 = malloc per op, 1 = pooled);
// shapes repeat every iteration, so the pooled run is all hits after the
// first pass.
void BM_SmallOpChain(benchmark::State& state) {
  bool pool = state.range(0) != 0;
  bool saved_pool = BufferPoolEnabled();
  SetBufferPoolEnabled(pool);
  constexpr int64_t kBatch = 64;
  constexpr int64_t kDim = 64;
  constexpr int64_t kEntities = 256;
  constexpr int kRounds = 2;
  Rng rng(8);
  Tensor entities =
      Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng);
  Tensor relations = Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng);
  Tensor gate = Tensor::RandomNormal(Shape{kBatch, 2 * kDim}, 0.1f, &rng);
  Tensor bias = Tensor::RandomNormal(Shape{kBatch, 2 * kDim}, 0.1f, &rng);
  std::vector<int64_t> eidx(static_cast<size_t>(kBatch));
  std::vector<int64_t> ridx(static_cast<size_t>(kBatch));
  for (auto& v : eidx) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  for (auto& v : ridx) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  for (auto _ : state) {
    Tensor h;
    for (int i = 0; i < kRounds; ++i) {
      Tensor e = ops::IndexSelectRows(entities, eidx);
      Tensor r = ops::IndexSelectRows(relations, ridx);
      Tensor fused = ops::ConcatCols({e, r});
      fused = ops::Relu(ops::Add(ops::Mul(fused, gate), bias));
      h = ops::Add(ops::SliceCols(fused, 0, kDim),
                   ops::SliceCols(fused, kDim, kDim));
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * kBatch * kDim);
  SetBufferPoolEnabled(saved_pool);
}
BENCHMARK(BM_SmallOpChain)->Arg(0)->Arg(1);

// Full training-step variant: same gated-residual shape plus backward and
// grad zeroing. The pool's relative win is smaller here — kZero grad
// buffers must be cleared whether pooled or not, and the elementwise
// kernels are memory-bandwidth-bound — so this row is the honest
// end-to-end-step number next to the allocation-bound chain above.
void BM_SmallOpChainTrainStep(benchmark::State& state) {
  bool pool = state.range(0) != 0;
  bool saved_pool = BufferPoolEnabled();
  SetBufferPoolEnabled(pool);
  constexpr int64_t kBatch = 256;
  constexpr int64_t kDim = 128;
  constexpr int64_t kEntities = 512;
  constexpr int kLayers = 12;
  Rng rng(7);
  Tensor embeddings =
      Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng, true);
  std::vector<Tensor> gates, biases;
  for (int l = 0; l < kLayers; ++l) {
    gates.push_back(
        Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng, true));
    biases.push_back(
        Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng, true));
  }
  std::vector<int64_t> batch(static_cast<size_t>(kBatch));
  for (auto& v : batch) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  for (auto _ : state) {
    embeddings.ZeroGrad();
    for (int l = 0; l < kLayers; ++l) {
      gates[l].ZeroGrad();
      biases[l].ZeroGrad();
    }
    Tensor h = ops::IndexSelectRows(embeddings, batch);
    for (int l = 0; l < kLayers; ++l) {
      h = ops::Add(h, ops::Relu(ops::Add(ops::Mul(h, gates[l]), biases[l])));
    }
    Backward(ops::SumAll(ops::Mul(h, h)));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  SetBufferPoolEnabled(saved_pool);
}
BENCHMARK(BM_SmallOpChainTrainStep)->Arg(0)->Arg(1);

void BM_CrossEntropy(benchmark::State& state) {
  int64_t batch = state.range(0);
  Rng rng(6);
  Tensor logits = Tensor::RandomNormal(Shape{batch, 256}, 1.0f, &rng, true);
  std::vector<int64_t> targets(static_cast<size_t>(batch));
  for (auto& t : targets) t = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    logits.ZeroGrad();
    Backward(ops::CrossEntropyWithLogits(logits, targets));
  }
}
BENCHMARK(BM_CrossEntropy)->Arg(16)->Arg(128);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
