// Micro-benchmarks (google-benchmark) for the tensor substrate: the kernels
// that dominate LogCL training time.
//
// Benches taking a {size, simd} argument pair run under both kernel tables
// (0 = scalar, 1 = dispatched SIMD; see tensor/simd.h) and feed a
// scalar-vs-SIMD ratio table printed at exit. The same numbers land in the
// metrics registry as `logcl.bench.simd.*` histograms, so
// LOGCL_METRICS_DUMP picks them up through the shared reporting path.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/observability.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/logcl_model.h"
#include "serve/engine_snapshot.h"
#include "serve/quant.h"
#include "synth/generator.h"
#include "tensor/buffer_pool.h"
#include "tensor/jit.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tkg/dataset.h"

namespace logcl {
namespace {

// Last-seen ns/iter per kernel and table mode; the atexit hook renders the
// speedup column once both modes have run.
std::map<std::string, std::array<double, 2>>& SimdTimes() {
  static auto* table = new std::map<std::string, std::array<double, 2>>();
  return *table;
}

void ReportSimdTime(const std::string& kernel, bool simd_on,
                    double ns_per_iter) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] {
      std::printf("\n%-28s %14s %14s %9s\n", "kernel (scalar vs simd)",
                  "scalar ns/it", "simd ns/it", "speedup");
      for (const auto& [name, ns] : SimdTimes()) {
        if (ns[0] <= 0.0 || ns[1] <= 0.0) continue;
        std::printf("%-28s %14.0f %14.0f %8.2fx\n", name.c_str(), ns[0],
                    ns[1], ns[0] / ns[1]);
      }
    });
  }
  SimdTimes()[kernel][simd_on ? 1 : 0] = ns_per_iter;
  Metrics()
      .GetHistogram("logcl.bench.simd." + kernel +
                    (simd_on ? "_simd_ns" : "_scalar_ns"))
      ->Record(static_cast<int64_t>(ns_per_iter));
}

// Last-seen ns/iter per bench under the eager tape (0) and JIT replay (1);
// a second atexit table renders the eager-vs-replay ratio (tensor/jit.h).
std::map<std::string, std::array<double, 2>>& JitTimes() {
  static auto* table = new std::map<std::string, std::array<double, 2>>();
  return *table;
}

void ReportJitTime(const std::string& bench, bool jit_on,
                   double ns_per_iter) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] {
      std::printf("\n%-28s %14s %14s %9s\n", "bench (eager vs jit)",
                  "eager ns/it", "jit ns/it", "speedup");
      for (const auto& [name, ns] : JitTimes()) {
        if (ns[0] <= 0.0 || ns[1] <= 0.0) continue;
        std::printf("%-28s %14.0f %14.0f %8.2fx\n", name.c_str(), ns[0],
                    ns[1], ns[0] / ns[1]);
      }
    });
  }
  JitTimes()[bench][jit_on ? 1 : 0] = ns_per_iter;
  Metrics()
      .GetHistogram("logcl.bench.jit." + bench +
                    (jit_on ? "_jit_ns" : "_eager_ns"))
      ->Record(static_cast<int64_t>(ns_per_iter));
}

// Scoped JIT override for the eager-vs-replay benches.
class JitModeGuard {
 public:
  explicit JitModeGuard(bool enabled) : previous_(jit::JitEnabled()) {
    jit::SetJitEnabled(enabled);
  }
  ~JitModeGuard() { jit::SetJitEnabled(previous_); }

 private:
  bool previous_;
};

// Scoped kernel-table override for the {size, simd} benches.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(bool enabled) : previous_(simd::SimdEnabled()) {
    simd::SetSimdEnabled(enabled);
  }
  ~SimdModeGuard() { simd::SetSimdEnabled(previous_); }

 private:
  bool previous_;
};

double NsPerIter(const benchmark::State& state, uint64_t elapsed_ns) {
  return state.iterations() == 0
             ? 0.0
             : static_cast<double>(elapsed_ns) /
                   static_cast<double>(state.iterations());
}

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  SimdModeGuard simd_guard(state.range(1) != 0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  ReportSimdTime("matmul_" + std::to_string(n), state.range(1) != 0,
                 NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_MatMul)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Thread-count sweep over the 256^3 matmul: Args are {size, threads}.
// Speedups over the threads=1 row are only meaningful on machines with
// that many physical cores.
void BM_MatMulThreads(benchmark::State& state) {
  int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_MatMulBackward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Backward(ops::SumAll(ops::MatMul(a, b)));
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  int64_t rows = state.range(0);
  SimdModeGuard simd_guard(state.range(1) != 0);
  Rng rng(3);
  Tensor x = Tensor::RandomNormal(Shape{rows, 128}, 1.0f, &rng);
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
  ReportSimdTime("softmax_" + std::to_string(rows), state.range(1) != 0,
                 NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * rows * 128);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_Softmax)->Args({16, 0})->Args({16, 1})->Args({128, 0})->Args(
    {128, 1});

// The elementwise kSame fast path (tensor/ops.cc ElementwiseBinary): equal
// shapes, no broadcasting, forward routed straight through the simd::Add /
// simd::Mul / simd::Relu kernels. One iteration = gate-and-activate over a
// [rows, 256] block, the shape the encoder layers hit per snapshot.
void BM_ElementwiseSame(benchmark::State& state) {
  int64_t rows = state.range(0);
  SimdModeGuard simd_guard(state.range(1) != 0);
  Rng rng(9);
  Tensor x = Tensor::RandomNormal(Shape{rows, 256}, 1.0f, &rng);
  Tensor gate = Tensor::RandomNormal(Shape{rows, 256}, 1.0f, &rng);
  Tensor bias = Tensor::RandomNormal(Shape{rows, 256}, 1.0f, &rng);
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Relu(ops::Add(ops::Mul(x, gate), bias)));
  }
  ReportSimdTime("elementwise_same_" + std::to_string(rows),
                 state.range(1) != 0,
                 NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * rows * 256 * 3);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_ElementwiseSame)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

// Same fast path through the backward pass: kSame gradients are the
// simd::Accumulate / simd::MulAccumulate kernels.
// The serving score kernel at realistic candidate counts (the presets'
// entity counts are tiny, so bench_serve's end-to-end sweep is decode-bound;
// this isolates the scoring half that quantization accelerates). One
// iteration scores one decoded query row against E candidate rows:
// precision 0 = fp32 (the MatMulAccumNT the fused path lowers to),
// 1 = bf16, 2 = int8 (serve/quant.h bundles).
void BM_QuantScore(benchmark::State& state) {
  int64_t precision = state.range(0);
  SimdModeGuard simd_guard(state.range(1) != 0);
  constexpr int64_t kEntities = 4096;
  constexpr int64_t kDim = 32;
  Rng rng(11);
  Tensor entities =
      Tensor::RandomNormal(Shape{kEntities, kDim}, 1.0f, &rng);
  Tensor query = Tensor::RandomNormal(Shape{1, kDim}, 1.0f, &rng);
  QuantizedCandidates bundle = BuildQuantizedCandidates(
      entities, precision == 1 ? ScorePrecision::kBf16
                               : ScorePrecision::kInt8);
  std::vector<float> out(static_cast<size_t>(kEntities));
  const char* names[] = {"fp32", "bf16", "int8"};
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    if (precision == 0) {
      std::fill(out.begin(), out.end(), 0.0f);
      simd::MatMulAccumNT(query.data().data(), entities.data().data(),
                          out.data(), 1, kDim, kEntities);
    } else {
      ScoreQuantizedRow(bundle, query.data().data(), kDim, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  ReportSimdTime(std::string("score_") + names[precision],
                 state.range(1) != 0,
                 NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * kEntities * kDim);
  state.SetLabel(std::string(names[precision]) + "/" +
                 simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_QuantScore)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

void BM_ElementwiseSameBackward(benchmark::State& state) {
  int64_t rows = state.range(0);
  SimdModeGuard simd_guard(state.range(1) != 0);
  Rng rng(10);
  Tensor x = Tensor::RandomNormal(Shape{rows, 256}, 1.0f, &rng, true);
  Tensor gate = Tensor::RandomNormal(Shape{rows, 256}, 1.0f, &rng, true);
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    x.ZeroGrad();
    gate.ZeroGrad();
    Backward(ops::SumAll(ops::Relu(ops::Mul(x, gate))));
  }
  ReportSimdTime("elementwise_backward_" + std::to_string(rows),
                 state.range(1) != 0,
                 NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * rows * 256);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_ElementwiseSameBackward)->Args({256, 0})->Args({256, 1});

void BM_IndexSelectScatter(benchmark::State& state) {
  int64_t edges = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::RandomNormal(Shape{256, 32}, 1.0f, &rng);
  std::vector<int64_t> src(static_cast<size_t>(edges));
  std::vector<int64_t> dst(static_cast<size_t>(edges));
  for (auto& v : src) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto& v : dst) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    Tensor selected = ops::IndexSelectRows(x, src);
    benchmark::DoNotOptimize(ops::ScatterMeanRows(selected, dst, 256));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_IndexSelectScatter)->Arg(512)->Arg(4096);

void BM_Conv2x3(benchmark::State& state) {
  Rng rng(5);
  Tensor h = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor r = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor kernels = Tensor::RandomNormal(Shape{50, 6}, 1.0f, &rng);
  Tensor bias = Tensor::Zeros(Shape{50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Conv2x3(h, r, kernels, bias));
  }
}
BENCHMARK(BM_Conv2x3)->Arg(32)->Arg(128);

// Chain of small ops in the decoder-input shape (the allocation-bound
// regime the buffer pool targets): gather entity/relation rows, concat,
// gate elementwise, slice halves back apart. The data-movement ops do O(n)
// copying per O(n) of fresh storage, so with malloc-per-op a large share of
// the runtime is allocation + zero-init — the part the pool elides on
// kUninit hits. Arg selects the executor: 0 = malloc per op, 1 = pooled,
// 2 = pooled + JIT replay of the gate subchain (capture on the first
// iteration, straight-line fused replay after); shapes repeat every
// iteration, so the pooled runs are all hits after the first pass.
void BM_SmallOpChain(benchmark::State& state) {
  bool pool = state.range(0) != 0;
  bool jit_on = state.range(0) == 2;
  bool saved_pool = BufferPoolEnabled();
  SetBufferPoolEnabled(pool);
  JitModeGuard jit_guard(jit_on);
  static jit::ChainCache* gate_cache = new jit::ChainCache();
  constexpr int64_t kBatch = 64;
  constexpr int64_t kDim = 64;
  constexpr int64_t kEntities = 256;
  constexpr int kRounds = 2;
  Rng rng(8);
  Tensor entities =
      Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng);
  Tensor relations = Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng);
  Tensor gate = Tensor::RandomNormal(Shape{kBatch, 2 * kDim}, 0.1f, &rng);
  Tensor bias = Tensor::RandomNormal(Shape{kBatch, 2 * kDim}, 0.1f, &rng);
  std::vector<int64_t> eidx(static_cast<size_t>(kBatch));
  std::vector<int64_t> ridx(static_cast<size_t>(kBatch));
  for (auto& v : eidx) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  for (auto& v : ridx) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  auto gate_chain = [](const std::vector<Tensor>& in) {
    return ops::Relu(ops::Add(ops::Mul(in[0], in[1]), in[2]));
  };
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    Tensor h;
    for (int i = 0; i < kRounds; ++i) {
      Tensor e = ops::IndexSelectRows(entities, eidx);
      Tensor r = ops::IndexSelectRows(relations, ridx);
      Tensor fused = ops::ConcatCols({e, r});
      fused = gate_cache->Run({fused, gate, bias}, gate_chain);
      h = ops::Add(ops::SliceCols(fused, 0, kDim),
                   ops::SliceCols(fused, kDim, kDim));
    }
    benchmark::DoNotOptimize(h);
  }
  if (state.range(0) != 0) {
    ReportJitTime("small_op_chain", jit_on,
                  NsPerIter(state, MonotonicNowNs() - start_ns));
  }
  state.SetItemsProcessed(state.iterations() * kRounds * kBatch * kDim);
  SetBufferPoolEnabled(saved_pool);
}
BENCHMARK(BM_SmallOpChain)->Arg(0)->Arg(1)->Arg(2);

// Full training-step variant: same gated-residual shape plus backward and
// grad zeroing. The pool's relative win is smaller here — kZero grad
// buffers must be cleared whether pooled or not, and the elementwise
// kernels are memory-bandwidth-bound — so this row is the honest
// end-to-end-step number next to the allocation-bound chain above. Arg 2 =
// pooled + JIT: the 12 per-layer gated-residual chains replay one shared
// fused plan (forward and recorded backward).
void BM_SmallOpChainTrainStep(benchmark::State& state) {
  bool pool = state.range(0) != 0;
  bool jit_on = state.range(0) == 2;
  bool saved_pool = BufferPoolEnabled();
  SetBufferPoolEnabled(pool);
  JitModeGuard jit_guard(jit_on);
  static jit::ChainCache* layer_cache = new jit::ChainCache();
  constexpr int64_t kBatch = 256;
  constexpr int64_t kDim = 128;
  constexpr int64_t kEntities = 512;
  constexpr int kLayers = 12;
  Rng rng(7);
  Tensor embeddings =
      Tensor::RandomNormal(Shape{kEntities, kDim}, 0.1f, &rng, true);
  std::vector<Tensor> gates, biases;
  for (int l = 0; l < kLayers; ++l) {
    gates.push_back(
        Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng, true));
    biases.push_back(
        Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng, true));
  }
  std::vector<int64_t> batch(static_cast<size_t>(kBatch));
  for (auto& v : batch) v = static_cast<int64_t>(rng.UniformInt(kEntities));
  auto layer_chain = [](const std::vector<Tensor>& in) {
    return ops::Add(in[0],
                    ops::Relu(ops::Add(ops::Mul(in[0], in[1]), in[2])));
  };
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    embeddings.ZeroGrad();
    for (int l = 0; l < kLayers; ++l) {
      gates[l].ZeroGrad();
      biases[l].ZeroGrad();
    }
    Tensor h = ops::IndexSelectRows(embeddings, batch);
    for (int l = 0; l < kLayers; ++l) {
      h = layer_cache->Run({h, gates[l], biases[l]}, layer_chain);
    }
    Backward(ops::SumAll(ops::Mul(h, h)));
  }
  if (state.range(0) != 0) {
    ReportJitTime("small_op_chain_train", jit_on,
                  NsPerIter(state, MonotonicNowNs() - start_ns));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  SetBufferPoolEnabled(saved_pool);
}
BENCHMARK(BM_SmallOpChainTrainStep)->Arg(0)->Arg(1)->Arg(2);

// Pure elementwise chain in the GRU-combine shape (the JIT's target
// regime): h' = z*h + (1-z)*n, five kernels back to back with no data
// movement in between, at the paper's entity-matrix scale ([E, d] with E in
// the thousands — ICEWS14 is 7128 x 200). Eager walks the whole tensor once
// per op through five pooled intermediates; replay fuses the chain into one
// pass of L1-sized tiles, so the win grows with the working set. Arg:
// 0 = eager pooled, 1 = JIT replay.
void BM_JitFusedChain(benchmark::State& state) {
  bool jit_on = state.range(0) != 0;
  JitModeGuard jit_guard(jit_on);
  static jit::ChainCache* combine_cache = new jit::ChainCache();
  constexpr int64_t kBatch = 2048;
  constexpr int64_t kDim = 128;
  Rng rng(12);
  Tensor z = Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng);
  Tensor h = Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng);
  Tensor n = Tensor::RandomNormal(Shape{kBatch, kDim}, 0.1f, &rng);
  auto combine = [](const std::vector<Tensor>& in) {
    Tensor one_minus_z = ops::AddScalar(ops::Neg(in[0]), 1.0f);
    return ops::Add(ops::Mul(in[0], in[1]), ops::Mul(one_minus_z, in[2]));
  };
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(combine_cache->Run({z, h, n}, combine));
  }
  ReportJitTime("fused_chain", jit_on,
                NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() * kBatch * kDim * 5);
  state.SetLabel(jit_on ? "jit" : "eager");
}
BENCHMARK(BM_JitFusedChain)->Arg(0)->Arg(1);

// --- end-to-end eager-vs-replay: one LogCL training epoch and one serving
// batch on a small synthetic graph. These drive the real call sites (GRU
// gates, time gate, lambda fusion, decoder projection) through their
// ChainCaches; the atexit jit table prints the epoch and serving ratios.

TkgDataset JitBenchData() {
  SynthConfig config;
  config.name = "jit-bench";
  config.seed = 505;
  config.num_entities = 256;
  config.num_relations = 8;
  config.num_timestamps = 16;
  config.recurring_pool = 60;
  config.num_cyclic = 16;
  config.chains_per_timestamp = 3.0;
  return GenerateSyntheticTkg(config);
}

LogClConfig JitBenchConfig() {
  LogClConfig config;
  config.embedding_dim = 64;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 8;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 31;
  return config;
}

void BM_JitEpoch(benchmark::State& state) {
  bool jit_on = state.range(0) != 0;
  JitModeGuard jit_guard(jit_on);
  TkgDataset data = JitBenchData();
  LogClModel model(&data, JitBenchConfig());
  AdamOptimizer optimizer(model.Parameters(), {});
  model.TrainEpoch(&optimizer);  // warm-up: captures plans when enabled
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainEpoch(&optimizer));
  }
  ReportJitTime("epoch", jit_on,
                NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetLabel(jit_on ? "jit" : "eager");
}
BENCHMARK(BM_JitEpoch)->Arg(0)->Arg(1);

void BM_JitServe(benchmark::State& state) {
  bool jit_on = state.range(0) != 0;
  JitModeGuard jit_guard(jit_on);
  TkgDataset data = JitBenchData();
  LogClModel model(&data, JitBenchConfig());
  auto snapshot = EngineSnapshot::Build(&model, 12);
  Rng rng(13);
  std::vector<ServeQuery> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(
        {static_cast<int64_t>(rng.UniformInt(256)),
         static_cast<int64_t>(rng.UniformInt(8))});
  }
  snapshot->ScoreBatch(queries);  // warm-up: captures plans when enabled
  uint64_t start_ns = MonotonicNowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot->ScoreBatch(queries));
  }
  ReportJitTime("serve_batch32", jit_on,
                NsPerIter(state, MonotonicNowNs() - start_ns));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(jit_on ? "jit" : "eager");
}
BENCHMARK(BM_JitServe)->Arg(0)->Arg(1);

void BM_CrossEntropy(benchmark::State& state) {
  int64_t batch = state.range(0);
  Rng rng(6);
  Tensor logits = Tensor::RandomNormal(Shape{batch, 256}, 1.0f, &rng, true);
  std::vector<int64_t> targets(static_cast<size_t>(batch));
  for (auto& t : targets) t = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    logits.ZeroGrad();
    Backward(ops::CrossEntropyWithLogits(logits, targets));
  }
}
BENCHMARK(BM_CrossEntropy)->Arg(16)->Arg(128);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
