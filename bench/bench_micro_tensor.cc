// Micro-benchmarks (google-benchmark) for the tensor substrate: the kernels
// that dominate LogCL training time.

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Thread-count sweep over the 256^3 matmul: Args are {size, threads}.
// Speedups over the threads=1 row are only meaningful on machines with
// that many physical cores.
void BM_MatMulThreads(benchmark::State& state) {
  int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_MatMulBackward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Backward(ops::SumAll(ops::MatMul(a, b)));
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::RandomNormal(Shape{state.range(0), 128}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(16)->Arg(128);

void BM_IndexSelectScatter(benchmark::State& state) {
  int64_t edges = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::RandomNormal(Shape{256, 32}, 1.0f, &rng);
  std::vector<int64_t> src(static_cast<size_t>(edges));
  std::vector<int64_t> dst(static_cast<size_t>(edges));
  for (auto& v : src) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto& v : dst) v = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    Tensor selected = ops::IndexSelectRows(x, src);
    benchmark::DoNotOptimize(ops::ScatterMeanRows(selected, dst, 256));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_IndexSelectScatter)->Arg(512)->Arg(4096);

void BM_Conv2x3(benchmark::State& state) {
  Rng rng(5);
  Tensor h = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor r = Tensor::RandomNormal(Shape{state.range(0), 32}, 1.0f, &rng);
  Tensor kernels = Tensor::RandomNormal(Shape{50, 6}, 1.0f, &rng);
  Tensor bias = Tensor::Zeros(Shape{50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Conv2x3(h, r, kernels, bias));
  }
}
BENCHMARK(BM_Conv2x3)->Arg(32)->Arg(128);

void BM_CrossEntropy(benchmark::State& state) {
  int64_t batch = state.range(0);
  Rng rng(6);
  Tensor logits = Tensor::RandomNormal(Shape{batch, 256}, 1.0f, &rng, true);
  std::vector<int64_t> targets(static_cast<size_t>(batch));
  for (auto& t : targets) t = static_cast<int64_t>(rng.UniformInt(256));
  for (auto _ : state) {
    logits.ZeroGrad();
    Backward(ops::CrossEntropyWithLogits(logits, targets));
  }
}
BENCHMARK(BM_CrossEntropy)->Arg(16)->Arg(128);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
