// Table II: dataset statistics of the four benchmark stand-ins, next to the
// paper's originals (which are ~50-100x larger; see DESIGN.md §2).

#include <cstdio>

#include "bench_common.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

struct PaperStats {
  const char* name;
  int64_t entities, relations, train, valid, test, snapshots;
};

constexpr PaperStats kPaper[] = {
    {"ICEWS14", 6869, 230, 74845, 8514, 7371, 365},
    {"ICEWS18", 10094, 256, 373018, 45995, 49545, 365},
    {"ICEWS05-15", 23033, 251, 368868, 46302, 46159, 4017},
    {"GDELT", 7691, 240, 1734399, 238765, 305241, 2975},
};

void Run() {
  bench::PrintSectionTitle("Table II: dataset statistics (measured stand-ins)");
  std::printf("%-18s %9s %9s %9s %9s %9s %9s %12s\n", "Dataset", "Entities",
              "Relations", "Train", "Valid", "Test", "Snapshots",
              "Repetition%");
  for (PaperDataset preset : AllPaperDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    DatasetStats stats = dataset.Stats();
    // Fraction of test facts whose (s, r, o) already appeared in history —
    // the signal the paper's global encoder exploits.
    HistoryIndex history(dataset);
    int64_t repeated = 0;
    for (const Quadruple& q : dataset.test()) {
      if (history.SeenBefore(q.subject, q.relation, q.object, q.time)) {
        ++repeated;
      }
    }
    double repetition =
        100.0 * static_cast<double>(repeated) /
        static_cast<double>(std::max<size_t>(dataset.test().size(), 1));
    std::printf("%-18s %9lld %9lld %9lld %9lld %9lld %9lld %11.1f%%\n",
                stats.name.c_str(),
                static_cast<long long>(stats.num_entities),
                static_cast<long long>(stats.num_relations),
                static_cast<long long>(stats.num_train),
                static_cast<long long>(stats.num_valid),
                static_cast<long long>(stats.num_test),
                static_cast<long long>(stats.num_timestamps), repetition);
  }
  std::printf("\nPaper originals (Table II):\n");
  std::printf("%-18s %9s %9s %9s %9s %9s %9s\n", "Dataset", "Entities",
              "Relations", "Train", "Valid", "Test", "Snapshots");
  for (const PaperStats& p : kPaper) {
    std::printf("%-18s %9lld %9lld %9lld %9lld %9lld %9lld\n", p.name,
                static_cast<long long>(p.entities),
                static_cast<long long>(p.relations),
                static_cast<long long>(p.train),
                static_cast<long long>(p.valid),
                static_cast<long long>(p.test),
                static_cast<long long>(p.snapshots));
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
