// History-length sweep (paper Section IV.B implementation details: the
// optimal local KG snapshot sequence lengths are 7 / 7 / 9 / 7 per dataset).
// Also sweeps the global subgraph fan-out cap — the sampling knob DESIGN.md
// calls out as a deviation from the paper's uncapped per-query subgraphs.

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

void Run() {
  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  TimeAwareFilter filter(dataset);

  bench::PrintSectionTitle("History length m sweep on " + dataset.name());
  bench::PrintHeader("m");
  for (int64_t m : {2, 3, 5, 7, 9}) {
    LogClConfig config;
    config.embedding_dim = 32;
    config.local.history_length = m;
    LogClModel model(&dataset, config);
    OfflineOptions train;
    train.epochs = bench::Epochs(4);
    train.learning_rate = bench::kLearningRate;
    bench::PrintRow("m=" + std::to_string(m),
                    TrainAndEvaluate(&model, &filter, train));
  }
  std::printf(
      "\nPaper: m tuned to 7-9; too-short histories miss evolution context,\n"
      "too-long ones dilute it.\n");

  bench::PrintSectionTitle("Global subgraph fan-out cap sweep on " +
                           dataset.name());
  bench::PrintHeader("max edges per anchor");
  for (int64_t cap : {4, 16, 48}) {
    LogClConfig config;
    config.embedding_dim = 32;
    config.global.max_edges_per_anchor = cap;
    LogClModel model(&dataset, config);
    OfflineOptions train;
    train.epochs = bench::Epochs(4);
    train.learning_rate = bench::kLearningRate;
    bench::PrintRow("cap=" + std::to_string(cap),
                    TrainAndEvaluate(&model, &filter, train));
  }
  std::printf(
      "\nDESIGN.md ablation: the cap trades global-branch fidelity for\n"
      "compute; the paper's uncapped per-query subgraphs correspond to the\n"
      "large-cap end.\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
