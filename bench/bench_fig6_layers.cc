// Fig.6: number of R-GCN layers (hops) in the global entity-aware attention
// encoder on the ICEWS14/18-like datasets. Expected shape (paper): 2 layers
// slightly better than 1; going beyond 2 does not help (and hurts on
// ICEWS18).

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

void Run() {
  for (PaperDataset preset : bench::PrimaryDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.6 global R-GCN layers on " + dataset.name());
    bench::PrintHeader("Layers");
    for (int64_t layers : {1, 2, 3}) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.global.num_layers = layers;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(4);
      train.learning_rate = bench::kLearningRate;
      bench::PrintRow(std::to_string(layers) + "-layer",
                      TrainAndEvaluate(&model, &filter, train));
    }
  }
  std::printf(
      "\nPaper Fig.6: two hops are slightly better than one; three hops add\n"
      "nothing on ICEWS14 and hurt on ICEWS18.\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
