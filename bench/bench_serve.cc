// Serving benchmark: sequential per-query ScoreQueries versus the
// InferenceEngine with concurrent clients and micro-batching, on the
// ICEWS14-like preset. Reports QPS, p50/p99 latency and the realised batch
// size for a sweep of max_batch_size, plus the engine's own counters.
//
// Latency is reported twice on purpose: from the clients' own clocks and
// from the registry histogram `logcl.serve.request_us` the engine feeds
// (common/observability.h) — the two must reconcile within the histogram's
// 12.5% bucket resolution.
//
// The engine wins twice: the snapshot freezes the query-independent local
// evolution (recomputed per call by ScoreQueries), and coalesced batches
// amortise the query-subgraph encode + ConvTransE decode across clients.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/logcl_model.h"
#include "serve/inference_engine.h"
#include "serve/quant.h"
#include "tensor/simd.h"

namespace logcl {
namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[index];
}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Per-sweep view of a cumulative registry histogram: bucket-wise difference
// against the snapshot taken before the sweep (max is not diffable; the
// current max is an upper bound).
HistogramSnapshot SinceBaseline(const HistogramSnapshot& now,
                                const HistogramSnapshot& before) {
  HistogramSnapshot out = now;
  out.count -= before.count;
  out.sum -= before.sum;
  for (size_t i = 0; i < before.buckets.size() && i < out.buckets.size(); ++i) {
    out.buckets[i] -= before.buckets[i];
  }
  return out;
}

void Run() {
  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  LogClConfig config;
  config.embedding_dim = 32;
  config.local.history_length = 5;
  LogClModel model(&dataset, config);

  // Serve the last horizon that still has a day of real queries behind it.
  int64_t horizon = dataset.num_timestamps() - 2;
  const std::vector<Quadruple>& day = dataset.FactsAt(horizon);
  int64_t total = bench::FastMode() ? 64 : 512;
  std::vector<ServeQuery> queries;
  queries.reserve(total);
  for (int64_t i = 0; i < total; ++i) {
    const Quadruple& q = day[static_cast<size_t>(i) % day.size()];
    queries.push_back({q.subject, q.relation});
  }

  bench::PrintSectionTitle("Serving on " + dataset.name() +
                           " (horizon t=" + std::to_string(horizon) + ", " +
                           std::to_string(total) + " queries)");

  // --- Baseline: one offline ScoreQueries call per query, sequential. ---
  double baseline_seconds;
  {
    bench::PhaseTimer timer("serve_baseline");
    for (const ServeQuery& q : queries) {
      std::vector<Quadruple> single = {{q.subject, q.relation, 0, horizon}};
      volatile float sink = model.ScoreQueries(single)[0][0];
      (void)sink;
    }
    baseline_seconds = timer.Stop();
  }
  double baseline_qps = static_cast<double>(total) / baseline_seconds;
  std::printf("sequential ScoreQueries baseline: %8.1f QPS (%.3f s)\n\n",
              baseline_qps, baseline_seconds);

  // --- Engine sweep: concurrent clients, varying max_batch_size. ---
  std::printf("%-12s %10s %10s %10s %10s %10s %10s %10s\n", "max_batch",
              "QPS", "speedup", "p50 us", "p99 us", "reg_p50", "reg_p99",
              "mean_b");
  std::printf("%s\n", std::string(88, '-').c_str());
  constexpr int kClients = 32;  // enough concurrency to fill every batch size
  for (int64_t max_batch : {int64_t{1}, int64_t{8}, int64_t{32}}) {
    EngineOptions options;
    options.max_batch_size = max_batch;
    options.batch_deadline_us = 200;
    HistogramSnapshot before =
        Metrics().Snapshot().HistogramValue("logcl.serve.request_us");
    InferenceEngine engine(&model, horizon, options);
    std::vector<std::vector<double>> latencies(kClients);
    bench::PhaseTimer timer("serve_sweep");
    Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = c; i < total; i += kClients) {
          Clock::time_point sent = Clock::now();
          engine.Score(queries[static_cast<size_t>(i)]);
          latencies[c].push_back(SecondsSince(sent) * 1e6);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    double seconds = SecondsSince(start);
    timer.Stop();
    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    double qps = static_cast<double>(total) / seconds;
    EngineStats stats = engine.Snapshot();
    HistogramSnapshot served = SinceBaseline(
        Metrics().Snapshot().HistogramValue("logcl.serve.request_us"), before);
    std::printf("%-12lld %10.1f %9.1fx %10.0f %10.0f %10.0f %10.0f %10.2f\n",
                static_cast<long long>(max_batch), qps, qps / baseline_qps,
                Percentile(all, 0.50), Percentile(all, 0.99),
                served.Percentile(0.50), served.Percentile(0.99),
                stats.MeanBatchSize());
    std::fflush(stdout);
    if (max_batch == 32) {
      std::printf("\nengine counters: %s\n", stats.ToString().c_str());
    }
  }
  if (ObservabilityEnabled()) {
    bench::PrintMetrics("Registry metrics (logcl.serve.* / logcl.bench.*)");
  }
  std::printf(
      "\nExpected shape: QPS grows with max_batch; the batched engine beats\n"
      "the sequential baseline well beyond 5x once batches amortise the\n"
      "per-pass evolution and subgraph work. reg_p50/p99 come from the\n"
      "logcl.serve.request_us histogram and must track the client-side\n"
      "columns within bucket resolution.\n");
}

// --precision_sweep: fp32 vs bf16 vs int8 snapshot scoring at a fixed batch
// size (serve/quant.h). The fp32 row is the reference; the reduced-precision
// rows trade the fused fp32 score for a per-row quantized dot against the
// frozen candidate matrix, and are gated elsewhere by the Spearman/MRR
// parity tests (tests/quant_test.cc) — this sweep measures the throughput
// side of that trade for EXPERIMENTS.md.
void RunPrecisionSweep() {
  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  LogClConfig config;
  config.embedding_dim = 32;
  config.local.history_length = 5;
  LogClModel model(&dataset, config);

  int64_t horizon = dataset.num_timestamps() - 2;
  const std::vector<Quadruple>& day = dataset.FactsAt(horizon);
  int64_t total = bench::FastMode() ? 64 : 512;
  std::vector<ServeQuery> queries;
  queries.reserve(total);
  for (int64_t i = 0; i < total; ++i) {
    const Quadruple& q = day[static_cast<size_t>(i) % day.size()];
    queries.push_back({q.subject, q.relation});
  }

  bench::PrintSectionTitle(
      "Precision sweep on " + dataset.name() + " (horizon t=" +
      std::to_string(horizon) + ", " + std::to_string(total) +
      " queries, max_batch=32, simd=" +
      simd::IsaName(simd::ActiveIsa()) + ")");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "precision",
              "QPS", "speedup", "p50 us", "p99 us", "reg_p50", "reg_p99",
              "score_p50");
  std::printf("%s\n", std::string(87, '-').c_str());

  constexpr int kClients = 32;
  double fp32_qps = 0.0;
  for (ScorePrecision precision :
       {ScorePrecision::kFp32, ScorePrecision::kBf16, ScorePrecision::kInt8}) {
    EngineOptions options;
    options.max_batch_size = 32;
    options.batch_deadline_us = 200;
    options.precision = precision;
    MetricsSnapshot baseline = Metrics().Snapshot();
    HistogramSnapshot before =
        baseline.HistogramValue("logcl.serve.request_us");
    HistogramSnapshot score_before =
        baseline.HistogramValue("logcl.serve.score_us");
    InferenceEngine engine(&model, horizon, options);
    std::vector<std::vector<double>> latencies(kClients);
    bench::PhaseTimer timer("serve_precision_sweep");
    Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = c; i < total; i += kClients) {
          Clock::time_point sent = Clock::now();
          engine.Score(queries[static_cast<size_t>(i)]);
          latencies[c].push_back(SecondsSince(sent) * 1e6);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    double seconds = SecondsSince(start);
    timer.Stop();
    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    double qps = static_cast<double>(total) / seconds;
    if (precision == ScorePrecision::kFp32) fp32_qps = qps;
    MetricsSnapshot after = Metrics().Snapshot();
    HistogramSnapshot served = SinceBaseline(
        after.HistogramValue("logcl.serve.request_us"), before);
    HistogramSnapshot scored = SinceBaseline(
        after.HistogramValue("logcl.serve.score_us"), score_before);
    std::printf("%-10s %10.1f %9.2fx %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                PrecisionName(engine.snapshot()->precision()), qps,
                fp32_qps > 0.0 ? qps / fp32_qps : 1.0, Percentile(all, 0.50),
                Percentile(all, 0.99), served.Percentile(0.50),
                served.Percentile(0.99), scored.Percentile(0.50));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: bf16 and int8 beat fp32 on the scoring half (the\n"
      "decode is fp32 in every row, so end-to-end speedups are bounded by\n"
      "the score fraction). Accuracy gating lives in tests/quant_test.cc\n"
      "(per-query Spearman >= 0.99, |delta MRR| <= 0.005).\n");
}

}  // namespace
}  // namespace logcl

int main(int argc, char** argv) {
  logcl::bench::InitObservability();
  bool precision_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--precision_sweep") == 0) precision_sweep = true;
  }
  if (precision_sweep) {
    logcl::RunPrecisionSweep();
  } else {
    logcl::Run();
  }
  return 0;
}
