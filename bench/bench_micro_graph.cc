// Micro-benchmarks (google-benchmark) for the graph layers and encoders:
// per-layer forward cost, fused vs composed message passing, full local
// evolution, global subgraph sampling + encoding, and cold vs warm
// structure-cache epoch cost.

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "core/global_encoder.h"
#include "core/local_encoder.h"
#include "graph/rel_graph_encoder.h"
#include "synth/presets.h"
#include "tensor/ops.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

SnapshotGraph RandomGraph(int64_t nodes, int64_t edges, int64_t relations,
                          Rng* rng) {
  SnapshotGraph g;
  g.num_nodes = nodes;
  for (int64_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<int64_t>(rng->UniformInt(nodes)),
              static_cast<int64_t>(rng->UniformInt(relations)),
              static_cast<int64_t>(rng->UniformInt(nodes)));
  }
  return g;
}

void BM_LayerForward(benchmark::State& state) {
  GcnKind kind = static_cast<GcnKind>(state.range(0));
  Rng rng(1);
  auto layer = MakeRelGraphLayer(kind, 32, &rng);
  SnapshotGraph g = RandomGraph(256, 2048, 16, &rng);
  Tensor nodes = Tensor::RandomNormal(Shape{256, 32}, 1.0f, &rng);
  Tensor rels = Tensor::RandomNormal(Shape{16, 32}, 1.0f, &rng);
  // Warm the graph's lazily built aggregation layout (CSR) and any per-layer
  // one-off setup outside the timed loop; cold structure cost is measured
  // separately by BM_SnapshotStructureEpoch.
  g.DstCsr();
  layer->Forward(g, nodes, rels, /*training=*/false, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layer->Forward(g, nodes, rels, /*training=*/false, nullptr));
  }
  state.SetLabel(GcnKindToString(kind));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LayerForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Fused kernel vs the composed IndexSelect -> Add -> MatMul -> ScatterMean
// chain it replaces (RGCN aggregation), forward + backward, at a given
// thread count. Args: {num_edges, dim, fused, num_threads}.
void BM_MessagePassing(benchmark::State& state) {
  const int64_t num_edges = state.range(0);
  const int64_t dim = state.range(1);
  const bool fused = state.range(2) != 0;
  SetNumThreads(static_cast<int>(state.range(3)));
  const int64_t num_nodes = 2048;
  const int64_t num_rels = 32;
  Rng rng(5);
  SnapshotGraph g = RandomGraph(num_nodes, num_edges, num_rels, &rng);
  g.DstCsr();  // structure built once, outside the timed loop
  Tensor weight = Tensor::XavierUniform(Shape{dim, dim}, &rng,
                                        /*requires_grad=*/true);
  Tensor nodes = Tensor::RandomNormal(Shape{num_nodes, dim}, 0.1f, &rng,
                                      /*requires_grad=*/true);
  Tensor rels = Tensor::RandomNormal(Shape{num_rels, dim}, 0.1f, &rng,
                                     /*requires_grad=*/true);
  for (auto _ : state) {
    Tensor out;
    if (fused) {
      out = ops::FusedRelMessagePassing(nodes, rels, weight, g.src, g.rel,
                                        g.dst, g.DstCsr(),
                                        ops::EdgeCompose::kAdd);
    } else {
      // The pre-fusion tape: three materialized [E, d] intermediates and a
      // per-call degree recount in the 3-arg scatter-mean.
      Tensor gathered_nodes = ops::IndexSelectRows(nodes, g.src);
      Tensor gathered_rels = ops::IndexSelectRows(rels, g.rel);
      Tensor messages =
          ops::MatMul(ops::Add(gathered_nodes, gathered_rels), weight);
      out = ops::ScatterMeanRows(messages, g.dst, g.num_nodes);
    }
    Backward(ops::SumAll(out));
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(fused ? "fused" : "composed");
  state.SetItemsProcessed(state.iterations() * num_edges);
  SetNumThreads(0);
}
BENCHMARK(BM_MessagePassing)
    ->Args({2048, 32, 0, 1})
    ->Args({2048, 32, 1, 1})
    ->Args({2048, 200, 0, 1})
    ->Args({2048, 200, 1, 1})
    ->Args({50000, 32, 0, 1})
    ->Args({50000, 32, 1, 1})
    ->Args({50000, 200, 0, 1})  // the ISSUE's acceptance point
    ->Args({50000, 200, 1, 1})
    ->Args({50000, 200, 0, 4})
    ->Args({50000, 200, 1, 4})
    ->Unit(benchmark::kMillisecond);

void BM_LocalEncode(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  Rng rng(2);
  LocalEncoderOptions options;
  options.history_length = state.range(0);
  LocalEncoder encoder(32, dataset->num_relations_with_inverse(), options,
                       &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{dataset->num_entities(), 32}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), 32}, &rng);
  // Warm-up pass: the first encode over a window populates the dataset's
  // snapshot-graph/CSR caches, which would otherwise be billed to the first
  // timed iteration only (cold cost is BM_SnapshotStructureEpoch's job).
  encoder.Encode(*dataset, 50, h0, r0, /*training=*/false, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Encode(*dataset, 50, h0, r0, /*training=*/false, nullptr));
  }
}
BENCHMARK(BM_LocalEncode)->Arg(3)->Arg(5)->Arg(9);

void BM_GlobalSubgraphBuild(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  static HistoryIndex* history = new HistoryIndex(*dataset);
  Rng rng(3);
  GlobalEncoder encoder(32, {}, &rng);
  std::vector<Quadruple> queries =
      dataset->WithInverses(dataset->FactsAt(60));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.BuildQuerySubgraph(
        *history, queries, dataset->num_entities()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_GlobalSubgraphBuild);

void BM_GlobalEncode(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  static HistoryIndex* history = new HistoryIndex(*dataset);
  Rng rng(4);
  GlobalEncoder encoder(32, {}, &rng);
  std::vector<Quadruple> queries =
      dataset->WithInverses(dataset->FactsAt(60));
  SnapshotGraph graph = encoder.BuildQuerySubgraph(*history, queries,
                                                   dataset->num_entities());
  graph.DstCsr();  // structure built once, outside the timed loop
  Tensor h0 = Tensor::XavierUniform(Shape{dataset->num_entities(), 32}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Encode(graph, h0, r0, /*training=*/false, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_GlobalEncode);

// One epoch's worth of snapshot-graph structure work: every timestamp's
// inverse-augmented graph plus its CSR aggregation layout. Cold rebuilds
// everything (the pre-cache per-epoch cost); warm reads the dataset cache.
void BM_SnapshotStructureEpoch(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  const bool warm = state.range(0) != 0;
  if (warm) {
    for (int64_t t = 0; t < dataset->num_timestamps(); ++t) {
      dataset->SnapshotGraphAt(t).DstCsr();
    }
  }
  for (auto _ : state) {
    for (int64_t t = 0; t < dataset->num_timestamps(); ++t) {
      if (warm) {
        benchmark::DoNotOptimize(dataset->SnapshotGraphAt(t).DstCsr());
      } else {
        SnapshotGraph g = SnapshotGraph::FromFactsWithInverses(
            dataset->FactsAt(t), dataset->num_entities(),
            dataset->num_base_relations());
        benchmark::DoNotOptimize(g.DstCsr());
      }
    }
  }
  state.SetLabel(warm ? "warm" : "cold");
  state.SetItemsProcessed(state.iterations() * dataset->num_timestamps());
}
BENCHMARK(BM_SnapshotStructureEpoch)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// One epoch's worth of historical-query-subgraph construction over a range
// of timestamps. Cold samples + dedups every batch's subgraph; warm hits the
// encoder's cross-epoch cache.
void BM_QuerySubgraphEpoch(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  static HistoryIndex* history = new HistoryIndex(*dataset);
  const bool warm = state.range(0) != 0;
  Rng rng(6);
  GlobalEncoder encoder(32, {}, &rng);
  const int64_t t_begin = 50;
  const int64_t t_end = 60;
  std::vector<std::vector<Quadruple>> batches;
  for (int64_t t = t_begin; t < t_end; ++t) {
    batches.push_back(dataset->WithInverses(dataset->FactsAt(t)));
  }
  if (warm) {
    for (const auto& batch : batches) {
      encoder.QuerySubgraph(*history, batch, dataset->num_entities());
    }
  }
  for (auto _ : state) {
    for (const auto& batch : batches) {
      if (warm) {
        benchmark::DoNotOptimize(
            encoder.QuerySubgraph(*history, batch, dataset->num_entities()));
      } else {
        benchmark::DoNotOptimize(encoder.BuildQuerySubgraph(
            *history, batch, dataset->num_entities()));
      }
    }
  }
  state.SetLabel(warm ? "warm" : "cold");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batches.size()));
}
BENCHMARK(BM_QuerySubgraphEpoch)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
