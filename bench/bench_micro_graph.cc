// Micro-benchmarks (google-benchmark) for the graph layers and encoders:
// per-layer forward cost, full local evolution, and global subgraph
// sampling + encoding.

#include <benchmark/benchmark.h>

#include "core/global_encoder.h"
#include "core/local_encoder.h"
#include "graph/rel_graph_encoder.h"
#include "synth/presets.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

SnapshotGraph RandomGraph(int64_t nodes, int64_t edges, int64_t relations,
                          Rng* rng) {
  SnapshotGraph g;
  g.num_nodes = nodes;
  for (int64_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<int64_t>(rng->UniformInt(nodes)),
              static_cast<int64_t>(rng->UniformInt(relations)),
              static_cast<int64_t>(rng->UniformInt(nodes)));
  }
  return g;
}

void BM_LayerForward(benchmark::State& state) {
  GcnKind kind = static_cast<GcnKind>(state.range(0));
  Rng rng(1);
  auto layer = MakeRelGraphLayer(kind, 32, &rng);
  SnapshotGraph g = RandomGraph(256, 2048, 16, &rng);
  Tensor nodes = Tensor::RandomNormal(Shape{256, 32}, 1.0f, &rng);
  Tensor rels = Tensor::RandomNormal(Shape{16, 32}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layer->Forward(g, nodes, rels, /*training=*/false, nullptr));
  }
  state.SetLabel(GcnKindToString(kind));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LayerForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_LocalEncode(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  Rng rng(2);
  LocalEncoderOptions options;
  options.history_length = state.range(0);
  LocalEncoder encoder(32, dataset->num_relations_with_inverse(), options,
                       &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{dataset->num_entities(), 32}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Encode(*dataset, 50, h0, r0, /*training=*/false, nullptr));
  }
}
BENCHMARK(BM_LocalEncode)->Arg(3)->Arg(5)->Arg(9);

void BM_GlobalSubgraphBuild(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  static HistoryIndex* history = new HistoryIndex(*dataset);
  Rng rng(3);
  GlobalEncoder encoder(32, {}, &rng);
  std::vector<Quadruple> queries =
      dataset->WithInverses(dataset->FactsAt(60));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.BuildQuerySubgraph(
        *history, queries, dataset->num_entities()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_GlobalSubgraphBuild);

void BM_GlobalEncode(benchmark::State& state) {
  static TkgDataset* dataset =
      new TkgDataset(MakePaperDataset(PaperDataset::kIcews14Like));
  static HistoryIndex* history = new HistoryIndex(*dataset);
  Rng rng(4);
  GlobalEncoder encoder(32, {}, &rng);
  std::vector<Quadruple> queries =
      dataset->WithInverses(dataset->FactsAt(60));
  SnapshotGraph graph = encoder.BuildQuerySubgraph(*history, queries,
                                                   dataset->num_entities());
  Tensor h0 = Tensor::XavierUniform(Shape{dataset->num_entities(), 32}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Encode(graph, h0, r0, /*training=*/false, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_GlobalEncode);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
