// Table III: the main comparison — every zoo model on all four datasets
// with time-aware filtered MRR / Hits@1/3/10.
//
// Shape expectations from the paper (absolute values differ; the substrate
// is a miniature synthetic stand-in):
//   * extrapolation models > interpolation models > static models,
//   * local+global fusion (TiRGN, LogCL) > local-only (RE-GCN, CEN),
//   * LogCL at or near the top of every column.

#include <cstdio>
#include <memory>

#include "baselines/model_zoo.h"
#include "bench_common.h"

namespace logcl {
namespace {

struct PaperRow {
  const char* model;
  // MRR on ICEWS14, ICEWS18, ICEWS05-15, GDELT.
  double mrr[4];
};

// Paper Table III MRR columns (time-aware filtered).
constexpr PaperRow kPaperMrr[] = {
    {"DistMult", {15.44, 11.51, 17.95, 8.68}},
    {"ComplEx", {32.54, 22.94, 32.63, 16.96}},
    {"ConvE", {35.09, 24.51, 33.81, 16.55}},
    {"Conv-TransE", {33.80, 22.11, 33.03, 16.20}},
    {"RotatE", {21.31, 12.78, 24.71, 13.45}},
    {"TTransE", {13.72, 8.31, 15.57, 5.50}},
    {"TA-DistMult", {25.80, 16.75, 24.31, 12.00}},
    {"DE-SimplE", {33.36, 19.30, 35.02, 19.70}},
    {"TNTComplEx", {34.05, 21.23, 27.54, 19.53}},
    {"CyGNet", {35.05, 24.93, 36.81, 18.48}},
    {"RE-GCN", {40.39, 30.58, 48.03, 19.64}},
    {"CEN", {42.20, 31.50, 46.84, 20.39}},
    {"TiRGN", {44.04, 33.66, 50.04, 21.67}},
    {"CENET", {39.02, 27.85, 41.95, 20.23}},
    {"LogCL", {48.87, 35.67, 57.04, 23.75}},
};

const char* FamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kStatic:
      return "static";
    case ModelFamily::kInterpolation:
      return "interpolation";
    case ModelFamily::kExtrapolation:
      return "extrapolation";
  }
  return "?";
}

void Run() {
  std::vector<PaperDataset> datasets = AllPaperDatasets();
  if (bench::FastMode()) {
    datasets = {PaperDataset::kIcews14Like};
  }
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Table III on " + dataset.name() + " (" +
                             dataset.Stats().ToString() + ")");
    bench::PrintHeader("Model (family)");
    for (const ZooEntry& entry : ModelZooEntries()) {
      ZooOptions options;
      options.embedding_dim = 32;
      options.history_length = 5;
      std::unique_ptr<TkgModel> model =
          MakeZooModel(entry.name, &dataset, options);
      OfflineOptions train;
      train.epochs = bench::Epochs(DefaultEpochsFor(entry.name));
      train.learning_rate = bench::kLearningRate;
      EvalResult result = TrainAndEvaluate(model.get(), &filter, train);
      bench::PrintRow(
          entry.name + std::string(" (") + FamilyName(entry.family) + ")",
          result);
    }
    std::printf("\nPaper MRR column for reference:\n");
    int column = static_cast<int>(preset);
    for (const PaperRow& row : kPaperMrr) {
      std::printf("  %-14s %6.2f\n", row.model, row.mrr[column]);
    }
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::bench::EnablePoolStatsDump();
  logcl::Run();
  return 0;
}
