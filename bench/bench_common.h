// Shared helpers for the experiment binaries (one per paper table/figure):
// result-table rendering, training profiles, and the paper's reported
// numbers for side-by-side shape comparison.
//
// Every binary honours LOGCL_BENCH_FAST=1 (smoke-test profile: fewer epochs
// and datasets) so the suite can be iterated on quickly; the default profile
// is the one used for EXPERIMENTS.md.

#ifndef LOGCL_BENCH_BENCH_COMMON_H_
#define LOGCL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/observability.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "synth/presets.h"
#include "tensor/buffer_pool.h"
#include "tkg/filters.h"

namespace logcl {
namespace bench {

/// True when LOGCL_BENCH_FAST=1 (quick smoke-test profile).
inline bool FastMode() {
  const char* value = std::getenv("LOGCL_BENCH_FAST");
  return value != nullptr && std::string(value) == "1";
}

/// Scales an epoch count down in fast mode (minimum 1).
inline int64_t Epochs(int64_t full) {
  if (!FastMode()) return full;
  return full >= 4 ? full / 4 : 1;
}

/// Learning rate used across experiment binaries (tuned for the miniature
/// datasets; the paper uses 1e-3 at d=200 scale).
inline constexpr float kLearningRate = 3e-3f;

/// Header line for a metrics table.
inline void PrintHeader(const std::string& first_column) {
  std::printf("%-24s %8s %8s %8s %8s\n", first_column.c_str(), "MRR",
              "Hits@1", "Hits@3", "Hits@10");
  std::printf("%s\n", std::string(60, '-').c_str());
}

/// One row of measured results.
inline void PrintRow(const std::string& label, const EvalResult& result) {
  std::printf("%-24s %8.2f %8.2f %8.2f %8.2f\n", label.c_str(), result.mrr,
              result.hits1, result.hits3, result.hits10);
  std::fflush(stdout);
}

/// A paper-reported reference row (printed dimmed-style with a marker).
inline void PrintPaperRow(const std::string& label, double mrr, double h1,
                          double h3, double h10) {
  std::printf("%-24s %8.2f %8.2f %8.2f %8.2f   (paper)\n", label.c_str(), mrr,
              h1, h3, h10);
}

inline void PrintSectionTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Dumps the tensor buffer-pool counters (see tensor/buffer_pool.h) with a
/// label, e.g. after an epoch to inspect hit rate and peak live bytes.
inline void PrintPoolStats(const std::string& label) {
  std::printf("[pool] %s: %s\n", label.c_str(), PoolSnapshot().ToString().c_str());
  std::fflush(stdout);
}

/// When LOGCL_POOL_STATS=1, registers an atexit hook that dumps the final
/// buffer-pool counters; call once near the top of main(). Returns true when
/// the dump is enabled so binaries can also print per-phase snapshots.
inline bool EnablePoolStatsDump() {
  const char* value = std::getenv("LOGCL_POOL_STATS");
  if (value == nullptr || std::string(value) != "1") return false;
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] {
      std::printf("[pool] at exit: %s\n", PoolSnapshot().ToString().c_str());
    });
  }
  return true;
}

/// One-call observability setup for experiment binaries: arms the
/// LOGCL_METRICS_DUMP at-exit exporter (common/observability.h) next to the
/// legacy LOGCL_POOL_STATS dump. Call once near the top of main().
inline void InitObservability() {
  EnableMetricsDumpAtExit();
  EnablePoolStatsDump();
}

/// RAII bench phase timer: records elapsed microseconds into the registry
/// histogram `logcl.bench.<name>_us` so every binary reports through one
/// path (DumpMetrics) instead of hand-rolled clocks. `name` must be a
/// literal or otherwise outlive the process.
class PhaseTimer {
 public:
  explicit PhaseTimer(const std::string& name)
      : histogram_(Metrics().GetHistogram("logcl.bench." + name + "_us")),
        start_ns_(MonotonicNowNs()) {}
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Stops early and returns the elapsed seconds (also what the histogram
  /// records, in microseconds). Idempotent.
  double Stop() {
    if (histogram_ == nullptr) return seconds_;
    uint64_t elapsed_ns = MonotonicNowNs() - start_ns_;
    histogram_->Record(elapsed_ns / 1000);
    seconds_ = static_cast<double>(elapsed_ns) * 1e-9;
    histogram_ = nullptr;
    return seconds_;
  }

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
  double seconds_ = 0.0;
};

/// Prints the merged registry snapshot (text format) under a section title —
/// the shared reporting path for per-phase timings, pool pressure and
/// serving latencies.
inline void PrintMetrics(const std::string& title) {
  PrintSectionTitle(title);
  DumpMetrics(std::cout, MetricsFormat::kText);
  std::cout.flush();
}

/// Datasets used by two-dataset experiments (the paper sweeps ICEWS14/18).
inline std::vector<PaperDataset> SweepDatasets() {
  if (FastMode()) return {PaperDataset::kIcews14Like};
  return {PaperDataset::kIcews14Like, PaperDataset::kIcews18Like};
}

/// Single headline dataset for hyperparameter sweeps. The recorded profile
/// keeps single-core runtime bounded; pass LOGCL_BENCH_ALL=1 to sweep both
/// ICEWS14/18-like datasets as the paper's figures do.
inline std::vector<PaperDataset> PrimaryDatasets() {
  const char* all = std::getenv("LOGCL_BENCH_ALL");
  if (all != nullptr && std::string(all) == "1") return SweepDatasets();
  return {PaperDataset::kIcews14Like};
}

}  // namespace bench
}  // namespace logcl

#endif  // LOGCL_BENCH_BENCH_COMMON_H_
