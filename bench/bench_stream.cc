// Streaming continual-learning benchmark (DESIGN.md §17, EXPERIMENTS.md):
//
//   1. Generator scale — StreamGenerator throughput at the ~1M-fact scale of
//      a real ICEWS05-15/GDELT run, with the measured history-repetition
//      rate and the (bounded) reservoir footprint.
//   2. Continual-learning loop — a StreamSession ingesting live snapshots
//      (staleness eval, quiesced sparse fine-tune, dirty-row writeback,
//      advance, freshness eval) while an open-loop client submits query
//      traffic throughout, including during the quiesced fine-tune spans.
//   3. Offered-load sweep — open-loop query load at fractions/multiples of
//      the measured closed-loop capacity against an admission-controlled
//      engine: p50/p99 latency and shed rate per offered rate. Sheds should
//      be ~0 below saturation and climb above it — load shedding, not
//      collapse.
//
// `--smoke` (or LOGCL_BENCH_FAST=1) runs a seconds-scale profile of the
// same three sections for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "bench_common.h"
#include "core/logcl_model.h"
#include "eval/drift.h"
#include "serve/inference_engine.h"
#include "stream/stream_generator.h"
#include "stream/stream_session.h"

namespace logcl {
namespace {

using Clock = std::chrono::steady_clock;

bool g_smoke = false;

// Resident set size in MiB, from /proc/self/statm (0 where unavailable).
// The continual loop logs it per row so unbounded growth shows up in the
// table instead of as a late OOM.
double ResidentSetMib() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long long total = 0, resident = 0;
  int matched = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[index];
}

// --- 1. Generator scale ----------------------------------------------------

void RunGeneratorScale() {
  StreamConfig config;
  config.num_entities = 10000;
  config.num_relations = 250;
  config.facts_per_snapshot = 2000;
  config.repeat_reservoir = 100000;
  const uint64_t target = g_smoke ? 100000 : 2000000;

  bench::PrintSectionTitle("Stream generation at scale (target " +
                           std::to_string(target) + " facts)");
  StreamGenerator gen(config);
  Clock::time_point start = Clock::now();
  uint64_t snapshots = 0;
  while (gen.facts_emitted() < target) {
    volatile size_t sink = gen.NextSnapshot().size();
    (void)sink;
    ++snapshots;
  }
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  double reservoir_mb = static_cast<double>(config.repeat_reservoir) * 24.0 /
                        (1024.0 * 1024.0);
  std::printf(
      "facts=%llu snapshots=%llu  %.2f Mfacts/s  measured_repeat=%.3f "
      "(configured %.2f)  reservoir<=%.1f MiB\n\n",
      static_cast<unsigned long long>(gen.facts_emitted()),
      static_cast<unsigned long long>(snapshots),
      static_cast<double>(gen.facts_emitted()) / seconds / 1e6,
      gen.measured_repeat_rate(), config.history_repeat_rate, reservoir_mb);
}

// --- 2. Continual-learning loop --------------------------------------------

/// Open-loop client: submits top-10 queries at `rate` QPS on a fixed
/// schedule until stopped, independent of completions (futures are harvested
/// in submission order on the same thread — scoring dominates harvesting, so
/// ready-time skew is negligible).
class OpenLoopClient {
 public:
  OpenLoopClient(InferenceEngine* engine, std::vector<ServeQuery> queries,
                 double rate)
      : engine_(engine), queries_(std::move(queries)), rate_(rate) {
    thread_ = std::thread([this] { Run(); });
  }

  ~OpenLoopClient() { Stop(); }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  uint64_t submitted() const { return submitted_; }
  uint64_t answered() const { return answered_; }
  uint64_t shed() const { return shed_; }
  /// Client-clock latencies (us) of answered requests.
  const std::vector<double>& latencies_us() const { return latencies_us_; }

 private:
  struct Pending {
    Clock::time_point sent;
    std::future<InferenceEngine::EngineResponse> future;
  };

  void Harvest(bool drain) {
    while (!pending_.empty()) {
      Pending& p = pending_.front();
      if (!drain && p.future.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        return;
      }
      InferenceEngine::EngineResponse response = p.future.get();
      if (response.status.ok()) {
        ++answered_;
        latencies_us_.push_back(
            std::chrono::duration<double>(Clock::now() - p.sent).count() *
            1e6);
      } else {
        ++shed_;
      }
      pending_.pop_front();
    }
  }

  void Run() {
    Clock::time_point start = Clock::now();
    uint64_t i = 0;
    while (!stop_.load()) {
      Clock::time_point due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(i) /
                                                    rate_));
      std::this_thread::sleep_until(due);
      if (stop_.load()) break;
      Clock::time_point sent = Clock::now();
      auto result =
          engine_->Submit(queries_[i % queries_.size()], /*k=*/10);
      ++submitted_;
      ++i;
      if (result.ok()) {
        pending_.push_back(Pending{sent, std::move(result).value()});
      } else {
        ++shed_;  // rejected at submit (queue full)
      }
      Harvest(/*drain=*/false);
    }
    Harvest(/*drain=*/true);
  }

  InferenceEngine* engine_;
  std::vector<ServeQuery> queries_;
  double rate_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::deque<Pending> pending_;
  uint64_t submitted_ = 0;
  uint64_t answered_ = 0;
  uint64_t shed_ = 0;
  std::vector<double> latencies_us_;
};

std::vector<ServeQuery> QueriesFrom(const std::vector<Quadruple>& facts,
                                    size_t n) {
  std::vector<ServeQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n && !facts.empty(); ++i) {
    const Quadruple& q = facts[i % facts.size()];
    queries.push_back(ServeQuery{q.subject, q.relation});
  }
  return queries;
}

void RunContinualLoop() {
  StreamConfig stream;
  stream.num_entities = g_smoke ? 300 : 2000;
  stream.num_relations = g_smoke ? 20 : 50;
  stream.facts_per_snapshot = g_smoke ? 100 : 2000;
  stream.warmup_timestamps = g_smoke ? 6 : 12;
  // Full profile streams >1M facts (the generator lands slightly under its
  // per-snapshot target when the reservoir de-duplicates repeats).
  int64_t ingests = g_smoke ? 3 : 520;
  // Diagnostic override: run the same full-scale profile for fewer (or more)
  // ingests, e.g. LOGCL_BENCH_STREAM_INGESTS=25 for a minutes-scale run.
  if (const char* env = std::getenv("LOGCL_BENCH_STREAM_INGESTS")) {
    ingests = std::max<int64_t>(1, std::atoll(env));
  }

  bench::PrintSectionTitle(
      "Continual-learning loop (" + std::to_string(ingests) + " ingests x " +
      std::to_string(stream.facts_per_snapshot) + " facts, live query load)");

  StreamGenerator gen(stream);
  TkgDataset dataset = gen.WarmupDataset();
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  LogClModel model(&dataset, config);
  FitModel(&model, bench::Epochs(g_smoke ? 1 : 4), bench::kLearningRate);

  StreamSessionOptions options;
  options.engine.max_queue_depth = 256;
  options.engine.admission_deadline_us = 200000;
  options.adam.learning_rate = 1e-3f;
  options.eval_queries = g_smoke ? 32 : 128;
  options.mmap_checkpoint_path = "bench_stream.ckpt";
  StreamSession session(&model, stream.warmup_timestamps, options);

  OpenLoopClient client(&session.engine(),
                        QueriesFrom(dataset.FactsAt(0), 64),
                        /*rate=*/g_smoke ? 50.0 : 200.0);

  std::printf("%-6s %10s %9s %9s %11s %8s %6s %8s %7s %7s %7s %8s\n", "t",
              "loss", "mrr_stale", "mrr_fresh", "rows_wr", "served", "shed",
              "ms", "ft_ms", "adv_ms", "ev_ms", "rss_mb");
  std::printf("%s\n", std::string(107, '-').c_str());
  uint64_t facts_streamed = 0;
  double ingest_seconds = 0.0;
  const int64_t log_stride = std::max<int64_t>(1, ingests / 10);
  for (int64_t i = 0; i < ingests; ++i) {
    std::vector<Quadruple> facts = gen.NextSnapshot();
    facts_streamed += facts.size();
    StreamIngestReport report = session.IngestSnapshot(facts);
    ingest_seconds += report.seconds;
    bool log_row = g_smoke || i < 3 || (i + 1) % log_stride == 0;
    if (log_row) {
      std::printf(
          "%-6lld %10.4f %9.2f %9.2f %11lld %8llu %6llu %8.1f %7.1f %7.1f "
          "%7.1f %8.0f\n",
          static_cast<long long>(report.time), report.finetune_loss,
          report.drift.mrr_stale, report.drift.mrr_fresh,
          static_cast<long long>(report.rows_written),
          static_cast<unsigned long long>(report.served),
          static_cast<unsigned long long>(report.shed), report.seconds * 1e3,
          report.seconds_finetune * 1e3, report.seconds_advance * 1e3,
          report.seconds_eval * 1e3, ResidentSetMib());
      std::fflush(stdout);
    }
  }
  client.Stop();
  std::remove("bench_stream.ckpt");
  const DriftTracker& drift = session.drift();
  std::printf(
      "\nstreamed %llu facts in %.1f s of ingest (%.0f facts/s sustained)\n",
      static_cast<unsigned long long>(facts_streamed), ingest_seconds,
      static_cast<double>(facts_streamed) / ingest_seconds);
  std::printf("%s\n", drift.ToString().c_str());
  std::printf(
      "query traffic: submitted=%llu answered=%llu shed=%llu p99=%.0f us\n\n",
      static_cast<unsigned long long>(client.submitted()),
      static_cast<unsigned long long>(client.answered()),
      static_cast<unsigned long long>(client.shed()),
      Percentile(client.latencies_us(), 0.99));
}

// --- 3. Offered-load sweep -------------------------------------------------

void RunOfferedLoadSweep() {
  StreamConfig stream;
  stream.num_entities = g_smoke ? 300 : 2000;
  stream.num_relations = 20;
  stream.facts_per_snapshot = g_smoke ? 100 : 500;
  stream.warmup_timestamps = 6;

  StreamGenerator gen(stream);
  TkgDataset dataset = gen.WarmupDataset();
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  LogClModel model(&dataset, config);

  std::vector<ServeQuery> queries = QueriesFrom(dataset.FactsAt(0), 256);
  int64_t horizon = stream.warmup_timestamps;

  // Closed-loop capacity estimate: unthrottled clients against an engine
  // without admission control.
  double capacity_qps;
  {
    EngineOptions unlimited;
    InferenceEngine engine(&model, horizon, unlimited);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> done{0};
    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    Clock::time_point start = Clock::now();
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        uint64_t i = static_cast<uint64_t>(c);
        while (!stop.load()) {
          engine.TopK(queries[i % queries.size()], 10);
          done.fetch_add(1);
          i += kClients;
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(g_smoke ? 500 : 2000));
    stop.store(true);
    for (std::thread& t : clients) t.join();
    double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    capacity_qps = static_cast<double>(done.load()) / seconds;
  }

  bench::PrintSectionTitle(
      "Open-loop offered-load sweep (closed-loop capacity ~" +
      std::to_string(static_cast<int64_t>(capacity_qps)) + " QPS)");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "offered", "x_cap",
              "answered", "p50 us", "p99 us", "shed%");
  std::printf("%s\n", std::string(66, '-').c_str());

  for (double factor : {0.25, 0.5, 2.0, 4.0}) {
    EngineOptions options;
    options.max_queue_depth = 64;
    options.admission_deadline_us = 50000;
    InferenceEngine engine(&model, horizon, options);
    double rate = capacity_qps * factor;
    OpenLoopClient client(&engine, queries, rate);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(g_smoke ? 1000 : 4000));
    client.Stop();
    double shed_pct =
        client.submitted() == 0
            ? 0.0
            : 100.0 * static_cast<double>(client.shed()) /
                  static_cast<double>(client.submitted());
    std::printf("%-10.0f %10.2f %10llu %10.0f %10.0f %9.2f%%\n", rate, factor,
                static_cast<unsigned long long>(client.answered()),
                Percentile(client.latencies_us(), 0.50),
                Percentile(client.latencies_us(), 0.99), shed_pct);
  }
  std::printf(
      "\nexpectation: shed%% ~0 below capacity, rising above it (bounded "
      "queue + %d ms deadline shed instead of unbounded latency).\n",
      50);
}

void Run() {
  RunGeneratorScale();
  RunContinualLoop();
  RunOfferedLoadSweep();
}

}  // namespace
}  // namespace logcl

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) logcl::g_smoke = true;
  }
  if (logcl::bench::FastMode()) logcl::g_smoke = true;
  logcl::Run();
  return 0;
}
