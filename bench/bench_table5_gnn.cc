// Table V: swapping the GNN aggregator in both LogCL encoders
// (R-GCN / CompGCN-sub / CompGCN-mult / KBGAT). The paper finds all four
// close, with R-GCN best on ICEWS05-15; the expectation here is the same
// flat shape (no aggregator dominates).

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

// Paper Table V (MRR, Hits@1) per dataset column.
struct PaperRow {
  const char* label;
  double values[3][2];  // {ICEWS14, ICEWS18, ICEWS05-15} x {MRR, H@1}
};
constexpr PaperRow kPaper[] = {
    {"LogCL (RGCN)", {{48.87, 37.76}, {35.67, 24.53}, {57.04, 46.07}}},
    {"LogCL (CompGCN-sub)", {{49.25, 36.84}, {35.33, 24.26}, {56.93, 45.92}}},
    {"LogCL (CompGCN-mult)", {{47.92, 36.85}, {35.32, 24.05}, {56.40, 45.46}}},
    {"LogCL (KBGAT)", {{48.46, 37.17}, {35.70, 24.41}, {56.01, 45.14}}},
};

constexpr GcnKind kKinds[] = {GcnKind::kRgcn, GcnKind::kCompGcnSub,
                              GcnKind::kCompGcnMult, GcnKind::kKbgat};

void Run() {
  std::vector<PaperDataset> datasets = bench::SweepDatasets();
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Table V on " + dataset.name());
    bench::PrintHeader("Aggregator");
    for (size_t i = 0; i < std::size(kKinds); ++i) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.local.gcn_kind = kKinds[i];
      config.global.gcn_kind = kKinds[i];
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(5);
      train.learning_rate = bench::kLearningRate;
      bench::PrintRow(kPaper[i].label, TrainAndEvaluate(&model, &filter, train));
    }
    std::printf("\nPaper Table V (MRR / Hits@1) for reference:\n");
    int column = preset == PaperDataset::kIcews14Like   ? 0
                 : preset == PaperDataset::kIcews18Like ? 1
                                                        : 2;
    for (const PaperRow& row : kPaper) {
      std::printf("  %-22s %6.2f / %5.2f\n", row.label,
                  row.values[column][0], row.values[column][1]);
    }
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
