// Fig.7: single query-contrast strategies — LogCL-lg / -gl / -ll / -gg use
// exactly one of the four supervised contrast terms. Expected shape
// (paper): the cross-view variants (lg, gl) are slightly better than the
// same-view ones (ll, gg); the full four-term combination is used by LogCL.

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

struct Strategy {
  const char* label;
  bool lg, gl, ll, gg;
};

constexpr Strategy kStrategies[] = {
    {"LogCL (all four)", true, true, true, true},
    {"LogCL-lg", true, false, false, false},
    {"LogCL-gl", false, true, false, false},
    {"LogCL-ll", false, false, true, false},
    {"LogCL-gg", false, false, false, true},
};

void Run() {
  for (PaperDataset preset : bench::PrimaryDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.7 contrast strategies on " + dataset.name());
    bench::PrintHeader("Strategy");
    for (const Strategy& strategy : kStrategies) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.contrast.use_lg = strategy.lg;
      config.contrast.use_gl = strategy.gl;
      config.contrast.use_ll = strategy.ll;
      config.contrast.use_gg = strategy.gg;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(4);
      train.learning_rate = bench::kLearningRate;
      bench::PrintRow(strategy.label, TrainAndEvaluate(&model, &filter, train));
    }
  }
  std::printf(
      "\nPaper Fig.7: LogCL-gl and LogCL-lg perform slightly better than\n"
      "LogCL-gg and LogCL-ll (cross-view contrast > same-view contrast).\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
