// Fig.9: temperature-coefficient sweep of the contrast module. Expected
// shape (paper): datasets respond differently to tau and an appropriate
// value matters; at this miniature scale very sharp temperatures (<= 0.05)
// over-weight the contrast gradients and hurt (see DESIGN.md).

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

void Run() {
  constexpr float kTau[] = {0.05f, 0.1f, 0.2f, 0.5f, 1.0f};
  for (PaperDataset preset : bench::PrimaryDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.9 temperature sweep on " + dataset.name());
    bench::PrintHeader("tau");
    for (float tau : kTau) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.contrast.tau = tau;
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = bench::Epochs(4);
      train.learning_rate = bench::kLearningRate;
      char label[32];
      std::snprintf(label, sizeof(label), "tau=%.2f", tau);
      bench::PrintRow(label, TrainAndEvaluate(&model, &filter, train));
    }
  }
  std::printf(
      "\nPaper Fig.9: sensitivity to tau differs per dataset; choosing an\n"
      "appropriate temperature helps (paper optima 0.03-0.07 at d=200 scale;\n"
      "here the optimum sits higher because gradients scale with 1/tau).\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
