// Fig.10: online-learning study. Models are first trained offline, then the
// test split is replayed chronologically: each timestamp is evaluated and
// immediately absorbed with a gradient update (Section IV.H). Compared
// models follow the paper's panel: CEN, RE-GCN (as the RETIA stand-in — a
// twin-interaction evolutional model; see DESIGN.md) and LogCL. Expected
// shape (paper): online > offline for every model, with LogCL improving the
// most and staying on top.

#include <cstdio>
#include <memory>

#include "baselines/model_zoo.h"
#include "bench_common.h"

namespace logcl {
namespace {

void Run() {
  std::vector<PaperDataset> datasets = bench::SweepDatasets();
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.10 online training on " + dataset.name());
    std::printf("%-10s %12s %12s %12s %12s\n", "Model", "offline MRR",
                "online MRR", "offline H@1", "online H@1");
    for (const char* name : {"CEN", "RE-GCN", "LogCL"}) {
      ZooOptions zoo;
      zoo.embedding_dim = 32;
      zoo.history_length = 5;
      // Two identical models (same seed): one evaluated offline, one online.
      auto offline_model = MakeZooModel(name, &dataset, zoo);
      auto online_model = MakeZooModel(name, &dataset, zoo);
      OfflineOptions offline;
      offline.epochs = bench::Epochs(4);
      offline.learning_rate = bench::kLearningRate;
      EvalResult offline_result =
          TrainAndEvaluate(offline_model.get(), &filter, offline);
      OnlineOptions online;
      online.offline_epochs = offline.epochs;
      online.learning_rate = bench::kLearningRate;
      online.online_learning_rate = 1e-3f;  // gentle per-snapshot updates
      EvalResult online_result =
          TrainAndEvaluateOnline(online_model.get(), &filter, online);
      std::printf("%-10s %12.2f %12.2f %12.2f %12.2f\n", name,
                  offline_result.mrr, online_result.mrr, offline_result.hits1,
                  online_result.hits1);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nPaper Fig.10: online results exceed the offline Table III results\n"
      "for CEN, RETIA and LogCL, and LogCL gains the most.\n");
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
