// Fig.2: Gaussian-noise robustness of RE-GCN vs TiRGN vs LogCL on the
// ICEWS14/18-like datasets. Noise N(0, sigma^2) is added to the entity base
// embeddings on every forward pass (train and eval). Expected shape (paper):
// all models degrade with noise, RE-GCN degrades the most, LogCL the least.

#include <cstdio>
#include <memory>

#include "baselines/regcn.h"
#include "baselines/model_zoo.h"
#include "baselines/tirgn.h"
#include "bench_common.h"
#include "core/logcl_model.h"
#include "tensor/ops.h"

namespace logcl {
namespace {

// RE-GCN / TiRGN have no built-in noise hook; wrap them with one that
// perturbs the shared base entity embeddings before each scoring/training
// call by temporarily adding noise to the leaf parameter data.
class NoisyWrapper : public TkgModel {
 public:
  NoisyWrapper(std::unique_ptr<TkgModel> inner, Tensor base_entities,
               float stddev, uint64_t seed)
      : TkgModel(&inner->dataset()),
        inner_(std::move(inner)),
        base_entities_(base_entities),
        stddev_(stddev),
        rng_(seed) {
    AddChild(inner_.get());
  }

  std::string name() const override { return inner_->name(); }

  std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) override {
    NoiseScope scope(this);
    return inner_->ScoreQueries(queries);
  }

  EpochStats TrainEpoch(AdamOptimizer* optimizer) override {
    // Per-timestamp noise: delegate through TrainOnTimestamp (the wrapper
    // only observes the scalar loss, so the breakdown fields stay zero).
    EpochStats epoch;
    for (int64_t t : dataset().SplitTimestamps(Split::kTrain)) {
      if (t == 0) continue;
      epoch.loss += TrainOnTimestamp(t, optimizer);
      ++epoch.steps;
    }
    epoch.FinalizeMeans();
    return epoch;
  }

  double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) override {
    NoiseScope scope(this);
    return inner_->TrainOnTimestamp(t, optimizer);
  }

 private:
  // Adds noise to the embedding data for the duration of one call and
  // removes exactly the same noise afterwards (the optimizer updates in
  // between operate on the perturbed point, as with true noisy inputs).
  class NoiseScope {
   public:
    explicit NoiseScope(NoisyWrapper* owner) : owner_(owner) {
      if (owner_->stddev_ <= 0.0f) return;
      std::vector<float>& data = owner_->base_entities_.mutable_data();
      noise_.resize(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        noise_[i] = static_cast<float>(
            owner_->rng_.Normal(0.0, owner_->stddev_));
        data[i] += noise_[i];
      }
    }
    ~NoiseScope() {
      if (noise_.empty()) return;
      std::vector<float>& data = owner_->base_entities_.mutable_data();
      for (size_t i = 0; i < data.size(); ++i) data[i] -= noise_[i];
    }

   private:
    NoisyWrapper* owner_;
    std::vector<float> noise_;
  };

  std::unique_ptr<TkgModel> inner_;
  Tensor base_entities_;
  float stddev_;
  Rng rng_;
};

Tensor FindEntityEmbedding(TkgModel* model, int64_t num_entities) {
  // The entity table is the unique [E, d] parameter.
  for (Tensor& p : model->Parameters()) {
    if (p.shape().rank() == 2 && p.shape().rows() == num_entities) return p;
  }
  LOGCL_CHECK(false) << "no entity embedding found";
  return Tensor();
}

void Run() {
  constexpr float kNoise[] = {0.0f, 0.5f, 1.0f};
  for (PaperDataset preset : bench::SweepDatasets()) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.2 noise robustness on " + dataset.name());
    std::printf("%-10s %8s %10s %12s\n", "Model", "sigma", "MRR",
                "drop vs 0");
    for (const char* name : {"RE-GCN", "TiRGN", "LogCL"}) {
      double clean_mrr = 0.0;
      for (float sigma : kNoise) {
        std::unique_ptr<TkgModel> model;
        if (std::string(name) == "LogCL") {
          LogClConfig config;
          config.embedding_dim = 32;
          config.noise_stddev = sigma;
          model = std::make_unique<LogClModel>(&dataset, config);
        } else {
          ZooOptions zoo;
          zoo.embedding_dim = 32;
          zoo.history_length = 5;
          std::unique_ptr<TkgModel> inner = MakeZooModel(name, &dataset, zoo);
          Tensor entities =
              FindEntityEmbedding(inner.get(), dataset.num_entities());
          model = std::make_unique<NoisyWrapper>(std::move(inner), entities,
                                                 sigma, /*seed=*/97);
        }
        OfflineOptions train;
        train.epochs = bench::Epochs(4);
        train.learning_rate = bench::kLearningRate;
        EvalResult result = TrainAndEvaluate(model.get(), &filter, train);
        if (sigma == 0.0f) clean_mrr = result.mrr;
        double drop = clean_mrr > 0.0
                          ? 100.0 * (clean_mrr - result.mrr) / clean_mrr
                          : 0.0;
        std::printf("%-10s %8.2f %10.2f %11.1f%%\n", name, sigma, result.mrr,
                    drop);
        std::fflush(stdout);
      }
    }
    std::printf(
        "\nPaper Fig.2: with noise, RE-GCN loses ~64-66%% MRR, TiRGN less,\n"
        "LogCL the least; the same ordering of drops is expected above.\n");
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
