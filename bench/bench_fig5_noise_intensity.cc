// Fig.5: noise-intensity study — LogCL vs LogCL-w/o-cl under increasing
// Gaussian noise on the three ICEWS-like datasets (MRR and Hits@1).
// Expected shape (paper): both degrade as sigma grows; the contrastive
// variant stays above the -w/o-cl variant at every intensity, and the gap
// widens with stronger noise.

#include <cstdio>

#include "bench_common.h"
#include "core/logcl_model.h"

namespace logcl {
namespace {

void Run() {
  constexpr float kNoise[] = {0.0f, 1.0f, 2.0f};
  std::vector<PaperDataset> datasets = bench::PrimaryDatasets();
  for (PaperDataset preset : datasets) {
    TkgDataset dataset = MakePaperDataset(preset);
    TimeAwareFilter filter(dataset);
    bench::PrintSectionTitle("Fig.5 noise intensity on " + dataset.name());
    std::printf("%-16s %8s %10s %10s\n", "Variant", "sigma", "MRR", "Hits@1");
    for (bool use_contrast : {true, false}) {
      for (float sigma : kNoise) {
        LogClConfig config;
        config.embedding_dim = 32;
        config.use_contrast = use_contrast;
        config.noise_stddev = sigma;
        LogClModel model(&dataset, config);
        OfflineOptions train;
        train.epochs = bench::Epochs(4);
        train.learning_rate = bench::kLearningRate;
        EvalResult result = TrainAndEvaluate(&model, &filter, train);
        std::printf("%-16s %8.2f %10.2f %10.2f\n",
                    use_contrast ? "LogCL" : "LogCL-w/o-cl", sigma, result.mrr,
                    result.hits1);
        std::fflush(stdout);
      }
    }
    std::printf(
        "\nPaper Fig.5: LogCL stays above LogCL-w/o-cl at every noise level\n"
        "and degrades more slowly as the intensity grows.\n");
  }
}

}  // namespace
}  // namespace logcl

int main() {
  logcl::Run();
  return 0;
}
