// Micro-benchmarks for the parallel runtime: ParallelFor dispatch overhead
// and the blocked matmul kernel against the original (seed) serial kernel.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

// Dispatch cost of one parallel region over a trivially small body: the
// difference between threads=1 (inline) and threads=N is pure pool overhead.
void BM_ParallelForDispatch(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  std::vector<float> xs(1024, 1.0f);
  for (auto _ : state) {
    ParallelFor(0, static_cast<int64_t>(xs.size()), 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        xs[static_cast<size_t>(i)] += 1.0f;
      }
    });
    benchmark::DoNotOptimize(xs.data());
  }
  SetNumThreads(0);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The seed's un-blocked serial matmul kernel, kept verbatim as the baseline
// for the blocked/threaded implementation behind ops::MatMul.
void NaiveMatMulAccum(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t l = 0; l < k; ++l) {
      float av = a[i * k + l];
      if (av == 0.0f) continue;
      const float* brow = b + l * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void BM_MatMulNaiveSerial(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    NaiveMatMulAccum(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulNaiveSerial)->Arg(64)->Arg(128)->Arg(256);

// Blocked kernel at a fixed thread count; Args are {size, threads}. The
// {*, 1} rows isolate the cache-blocking gain over BM_MatMulNaiveSerial;
// higher thread counts add the pool on top.
void BM_MatMulBlocked(benchmark::State& state) {
  int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulBlocked)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
