// Micro-benchmarks for the parallel runtime: ParallelFor dispatch overhead,
// the blocked matmul kernel against the original (seed) serial kernel, the
// inter-op backward engine on a branchy graph, and the autograd graph
// collection data structures (epoch marks + counting order vs. the hash-set
// + sort approach they replaced).

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

// Dispatch cost of one parallel region over a trivially small body: the
// difference between threads=1 (inline) and threads=N is pure pool overhead.
void BM_ParallelForDispatch(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  std::vector<float> xs(1024, 1.0f);
  for (auto _ : state) {
    ParallelFor(0, static_cast<int64_t>(xs.size()), 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        xs[static_cast<size_t>(i)] += 1.0f;
      }
    });
    benchmark::DoNotOptimize(xs.data());
  }
  SetNumThreads(0);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The seed's un-blocked serial matmul kernel, kept verbatim as the baseline
// for the blocked/threaded implementation behind ops::MatMul.
void NaiveMatMulAccum(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t l = 0; l < k; ++l) {
      float av = a[i * k + l];
      if (av == 0.0f) continue;
      const float* brow = b + l * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void BM_MatMulNaiveSerial(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    NaiveMatMulAccum(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulNaiveSerial)->Arg(64)->Arg(128)->Arg(256);

// Blocked kernel at a fixed thread count; Args are {size, threads}. The
// {*, 1} rows isolate the cache-blocking gain over BM_MatMulNaiveSerial;
// higher thread counts add the pool on top.
void BM_MatMulBlocked(benchmark::State& state) {
  int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulBlocked)
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

// Backward over a diamond graph: one shared input feeding `branches`
// independent MatMul + Tanh towers re-joined into a scalar loss. The graph
// is built once; each iteration replays the tape. Args are
// {branches, threads, interop}: the {_, N, 0} rows are the serial engine at
// N threads (intra-op only), the {_, N, 1} rows add inter-op scheduling of
// the independent branches on top.
void BM_BackwardDiamond(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  SetNumThreads(threads);
  const bool previous_interop = InterOpEnabled();
  SetInterOpEnabled(state.range(2) != 0);
  Rng rng(42);
  Tensor x = Tensor::RandomNormal(Shape{32, 64}, 0.5f, &rng,
                                  /*requires_grad=*/true);
  std::vector<Tensor> weights;
  for (int b = 0; b < branches; ++b) {
    weights.push_back(Tensor::RandomNormal(Shape{64, 64}, 0.5f, &rng,
                                           /*requires_grad=*/true));
  }
  Tensor total;
  for (int b = 0; b < branches; ++b) {
    Tensor term = ops::SumAll(ops::Tanh(ops::MatMul(x, weights[b])));
    total = total.defined() ? ops::Add(total, term) : term;
  }
  Tensor loss = ops::Scale(total, 1.0f / static_cast<float>(branches));
  for (auto _ : state) {
    Backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * branches);
  SetInterOpEnabled(previous_interop);
  SetNumThreads(0);
}
BENCHMARK(BM_BackwardDiamond)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({8, 4, 0})
    ->Args({8, 4, 1})
    ->Args({16, 4, 0})
    ->Args({16, 4, 1})
    ->Args({16, 8, 1});

// Graph-collection bookkeeping in isolation, on plain structs mirroring the
// tape: the old unordered_set visited filter + std::sort by sequence vs. the
// epoch-stamped marks + counting placement backward.cc now uses.
struct FakeNode {
  std::vector<FakeNode*> parents;
  uint64_t sequence = 0;
  uint64_t visit_epoch = 0;
};

std::vector<FakeNode> MakeFakeTape(int64_t n) {
  Rng rng(7);
  std::vector<FakeNode> tape(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    tape[static_cast<size_t>(i)].sequence = static_cast<uint64_t>(i + 1);
    for (int64_t p = 0; p < 2 && i > 0; ++p) {
      int64_t j = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(i)));
      tape[static_cast<size_t>(i)].parents.push_back(
          &tape[static_cast<size_t>(j)]);
    }
  }
  return tape;
}

void BM_CollectHashSetSort(benchmark::State& state) {
  std::vector<FakeNode> tape = MakeFakeTape(state.range(0));
  for (auto _ : state) {
    std::unordered_set<FakeNode*> visited;
    std::vector<FakeNode*> stack{&tape.back()}, order;
    visited.insert(&tape.back());
    while (!stack.empty()) {
      FakeNode* n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (FakeNode* p : n->parents) {
        if (visited.insert(p).second) stack.push_back(p);
      }
    }
    std::sort(order.begin(), order.end(), [](FakeNode* a, FakeNode* b) {
      return a->sequence > b->sequence;
    });
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollectHashSetSort)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CollectEpochCounting(benchmark::State& state) {
  std::vector<FakeNode> tape = MakeFakeTape(state.range(0));
  uint64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    std::vector<FakeNode*> stack{&tape.back()}, nodes;
    tape.back().visit_epoch = epoch;
    uint64_t min_seq = ~uint64_t{0}, max_seq = 0;
    while (!stack.empty()) {
      FakeNode* n = stack.back();
      stack.pop_back();
      nodes.push_back(n);
      min_seq = std::min(min_seq, n->sequence);
      max_seq = std::max(max_seq, n->sequence);
      for (FakeNode* p : n->parents) {
        if (p->visit_epoch != epoch) {
          p->visit_epoch = epoch;
          stack.push_back(p);
        }
      }
    }
    std::vector<FakeNode*> slots(max_seq - min_seq + 1, nullptr);
    for (FakeNode* n : nodes) slots[n->sequence - min_seq] = n;
    std::vector<FakeNode*> order;
    order.reserve(nodes.size());
    for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
      if (*it != nullptr) order.push_back(*it);
    }
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollectEpochCounting)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace logcl

BENCHMARK_MAIN();
