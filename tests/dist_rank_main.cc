// dist_rank_main: one data-parallel rank as a real OS process, driven
// entirely by environment variables. The multi-process launcher test
// (dist_launch_test.cc) forks one of these per rank, waits for all to exit
// 0, then compares the checkpoints every rank wrote — the cross-PROCESS
// leg of the bitwise-parity contract that the in-process thread tests
// cannot cover (separate address spaces, separate allocators, separate
// thread pools).
//
// Environment:
//   LOGCL_DIST_RANK / LOGCL_DIST_WORLD / LOGCL_DIST_MASTER  rendezvous
//   LOGCL_DIST_EPOCHS       epochs to train (default 2)
//   LOGCL_DIST_CHECKPOINT   where to save final parameters (optional)
//   LOGCL_NUM_THREADS       intra-op threads (read by the runtime)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "dist/dist_trainer.h"
#include "dist/process_group.h"
#include "dist_test_util.h"
#include "serve/inference_engine.h"

namespace {

int Run() {
  using namespace logcl;
  using namespace logcl::dist;

  ProcessGroupOptions options = ProcessGroupOptions::FromEnv();
  Result<std::unique_ptr<ProcessGroup>> group =
      ProcessGroup::Rendezvous(options);
  if (!group.ok()) {
    std::fprintf(stderr, "[rank %d] rendezvous failed: %s\n", options.rank,
                 std::string(group.status().message()).c_str());
    return 1;
  }

  TkgDataset data = dist_test::DistData();
  LogClModel model(&data, dist_test::DistConfig());
  AdamOptimizer optimizer(model.Parameters());
  DistributedTrainer trainer(group.value().get(), &model, &optimizer);

  int epochs = 2;
  if (const char* env = std::getenv("LOGCL_DIST_EPOCHS")) {
    epochs = std::atoi(env);
  }
  for (int e = 0; e < epochs; ++e) {
    Result<EpochStats> stats = trainer.TrainEpoch();
    if (!stats.ok()) {
      std::fprintf(stderr, "[rank %d] epoch %d failed: %s\n", options.rank, e,
                   std::string(stats.status().message()).c_str());
      return 1;
    }
    std::fprintf(stderr, "[rank %d] epoch %d loss %.6f steps %lld\n",
                 options.rank, e, stats.value().loss,
                 static_cast<long long>(stats.value().steps));
  }

  if (const char* path = std::getenv("LOGCL_DIST_CHECKPOINT")) {
    Status saved = SaveModelCheckpoint(model, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[rank %d] checkpoint save failed: %s\n",
                   options.rank, std::string(saved.message()).c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
