// Tests for the common substrate: Status/Result, string utilities and the
// seeded RNG.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stringpiece.h"

namespace logcl {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IoError("x").code(), Status::FailedPrecondition("x").code(),
      Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(ResultTest, HoldsValue) {
  Result<int64_t> r = int64_t{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int64_t> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// --- String utilities --------------------------------------------------------

TEST(StringTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("hi"), "hi");
  EXPECT_EQ(StrTrim("\t\n "), "");
}

TEST(StringTest, ParseInt64Accepts) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13 ").value(), 13);
}

TEST(StringTest, ParseInt64Rejects) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5junk").ok());
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(6);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0, sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentUse) {
  // Drawing from a child stream must not perturb the parent sequence.
  Rng a(9);
  Rng a_child = a.Split();
  uint64_t next_after_split = a.Next();
  Rng b(9);
  Rng b_child = b.Split();
  for (int i = 0; i < 50; ++i) b_child.Next();  // burn the child
  EXPECT_EQ(b.Next(), next_after_split);
  (void)a_child;
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace logcl
