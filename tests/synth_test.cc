// Tests for the synthetic TKG generator: determinism, split structure, and
// that the planted pattern families actually materialise.

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <cstdlib>

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/presets.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

SynthConfig SmallConfig() {
  SynthConfig config;
  config.name = "small";
  config.seed = 99;
  config.num_entities = 30;
  config.num_relations = 6;
  config.num_timestamps = 40;
  config.recurring_pool = 20;
  config.recurring_prob = 0.3;
  config.num_cyclic = 10;
  config.chains_per_timestamp = 2.0;
  config.noise_per_timestamp = 1.0;
  return config;
}

TEST(SynthTest, DeterministicUnderSeed) {
  TkgDataset a = GenerateSyntheticTkg(SmallConfig());
  TkgDataset b = GenerateSyntheticTkg(SmallConfig());
  EXPECT_EQ(a.train(), b.train());
  EXPECT_EQ(a.valid(), b.valid());
  EXPECT_EQ(a.test(), b.test());
}

TEST(SynthTest, DifferentSeedsDiffer) {
  SynthConfig c1 = SmallConfig();
  SynthConfig c2 = SmallConfig();
  c2.seed = 100;
  EXPECT_NE(GenerateSyntheticTkg(c1).train(), GenerateSyntheticTkg(c2).train());
}

TEST(SynthTest, SplitIsChronological) {
  TkgDataset d = GenerateSyntheticTkg(SmallConfig());
  int64_t max_train = -1, min_valid = 1 << 20, max_valid = -1, min_test = 1 << 20;
  for (const Quadruple& q : d.train()) max_train = std::max(max_train, q.time);
  for (const Quadruple& q : d.valid()) {
    min_valid = std::min(min_valid, q.time);
    max_valid = std::max(max_valid, q.time);
  }
  for (const Quadruple& q : d.test()) min_test = std::min(min_test, q.time);
  EXPECT_LT(max_train, min_valid);
  EXPECT_LT(max_valid, min_test);
}

TEST(SynthTest, SplitProportionsRoughly801010) {
  TkgDataset d = GenerateSyntheticTkg(SmallConfig());
  double total = static_cast<double>(d.train().size() + d.valid().size() +
                                     d.test().size());
  EXPECT_GT(d.train().size() / total, 0.65);
  EXPECT_GT(d.valid().size(), 0u);
  EXPECT_GT(d.test().size(), 0u);
}

TEST(SynthTest, NoDuplicateFacts) {
  TkgDataset d = GenerateSyntheticTkg(SmallConfig());
  std::unordered_set<Quadruple, QuadrupleHash> seen;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : d.split(s)) {
      EXPECT_TRUE(seen.insert(q).second) << "duplicate " << q.ToString();
    }
  }
}

TEST(SynthTest, IdsInRange) {
  SynthConfig config = SmallConfig();
  TkgDataset d = GenerateSyntheticTkg(config);
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : d.split(s)) {
      EXPECT_LT(q.subject, config.num_entities);
      EXPECT_LT(q.object, config.num_entities);
      EXPECT_LT(q.relation, config.num_relations);
      EXPECT_LT(q.time, config.num_timestamps);
    }
  }
}

TEST(SynthTest, RepetitionActuallyMaterialises) {
  // A healthy fraction of test facts must have occurred before (the global
  // repetition signal the paper's global encoder exploits).
  TkgDataset d = GenerateSyntheticTkg(SmallConfig());
  HistoryIndex history(d);
  int64_t repeated = 0;
  for (const Quadruple& q : d.test()) {
    if (history.SeenBefore(q.subject, q.relation, q.object, q.time)) {
      ++repeated;
    }
  }
  double fraction =
      static_cast<double>(repeated) / static_cast<double>(d.test().size());
  EXPECT_GT(fraction, 0.3) << "repetition signal too weak";
}

TEST(SynthTest, ChainsCreateLocalSignal) {
  // With chains of length 3, many facts at t have a same-(s, o) companion
  // fact at t-1 (the local evolution signal).
  SynthConfig config = SmallConfig();
  config.chains_per_timestamp = 5.0;
  config.recurring_pool = 0;
  config.alternating_pool = 0;
  config.num_cyclic = 0;
  config.noise_per_timestamp = 0.0;
  TkgDataset d = GenerateSyntheticTkg(config);
  HistoryIndex history(d);
  int64_t with_recent_companion = 0;
  int64_t total = 0;
  for (const Quadruple& q : d.train()) {
    if (q.time == 0) continue;
    ++total;
    for (const HistoryEdge& e : history.FactsTouchingBefore(q.subject, q.time)) {
      if (e.time == q.time - 1 && e.neighbor == q.object) {
        ++with_recent_companion;
        break;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(with_recent_companion) /
                static_cast<double>(total),
            0.5);
}

TEST(SynthTest, CyclicFactsHaveFixedPeriod) {
  SynthConfig config = SmallConfig();
  config.recurring_pool = 0;
  config.alternating_pool = 0;
  config.chains_per_timestamp = 0.0;
  config.noise_per_timestamp = 0.0;
  config.num_cyclic = 5;
  config.cycle_min = 4;
  config.cycle_max = 4;
  TkgDataset d = GenerateSyntheticTkg(config);
  // Each distinct triple must appear at times phase, phase+4, phase+8, ...
  std::unordered_map<uint64_t, std::vector<int64_t>> occurrences;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : d.split(s)) {
      uint64_t key = static_cast<uint64_t>(q.subject) << 32 ^
                     static_cast<uint64_t>(q.relation) << 16 ^
                     static_cast<uint64_t>(q.object);
      occurrences[key].push_back(q.time);
    }
  }
  for (auto& [key, times] : occurrences) {
    std::sort(times.begin(), times.end());
    for (size_t i = 1; i < times.size(); ++i) {
      EXPECT_EQ((times[i] - times[0]) % 4, 0);
    }
  }
}

TEST(PresetTest, AllPresetsGenerate) {
  for (PaperDataset p : AllPaperDatasets()) {
    TkgDataset d = MakePaperDataset(p);
    EXPECT_GT(d.train().size(), 100u) << PaperDatasetName(p);
    EXPECT_GT(d.test().size(), 20u) << PaperDatasetName(p);
    EXPECT_EQ(d.name(), PaperDatasetName(p));
  }
}

TEST(PresetTest, Icews0515LikeHasLongestHorizon) {
  EXPECT_GT(MakePaperDataset(PaperDataset::kIcews0515Like).num_timestamps(),
            MakePaperDataset(PaperDataset::kIcews14Like).num_timestamps());
}

TEST(PresetTest, GdeltLikeIsNoisiest) {
  EXPECT_GT(PresetConfig(PaperDataset::kGdeltLike).noise_per_timestamp,
            PresetConfig(PaperDataset::kIcews14Like).noise_per_timestamp);
}

}  // namespace
}  // namespace logcl
