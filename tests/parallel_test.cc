// Tests for the parallel runtime: ParallelFor/ParallelReduce semantics and
// the thread-count determinism contract on a full LogCL training step.

#include "common/parallel.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/optimizer.h"

namespace logcl {
namespace {

// Restores the default thread count when a test exits, pass or fail.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ThreadCountTest, SetAndGetRoundTrip) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(0);  // restore default
  EXPECT_GE(GetNumThreads(), 1);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(2, 9, 100, [&](int64_t b, int64_t e) {
    ranges.emplace_back(b, e);  // single inline call: no race
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 2);
  EXPECT_EQ(ranges[0].second, 9);
}

TEST(ParallelForTest, SubRangesCoverEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  ParallelFor(0, kN, 16, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr int64_t kOuter = 12;
  constexpr int64_t kInner = 7;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h = 0;
  ParallelFor(0, kOuter, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelFor(0, kInner, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t j = ib; j < ie; ++j) {
          ++hits[static_cast<size_t>(i * kInner + j)];
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  int64_t result = ParallelReduce<int64_t>(
      3, 3, 1, int64_t{42},
      [](int64_t, int64_t) { return int64_t{1}; },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduceTest, SumsExactly) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr int64_t kN = 12345;
  int64_t sum = ParallelReduce<int64_t>(
      0, kN, 97, int64_t{0},
      [](int64_t b, int64_t e) {
        int64_t s = 0;
        for (int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(ParallelReduceTest, FloatSumIsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  constexpr int64_t kN = 40000;
  std::vector<float> xs(static_cast<size_t>(kN));
  uint32_t state = 12345;
  for (float& x : xs) {
    state = state * 1664525u + 1013904223u;  // LCG: deterministic data
    x = static_cast<float>(state % 1000) / 7.0f - 70.0f;
  }
  auto sum = [&] {
    return ParallelReduce<float>(
        0, kN, 128, 0.0f,
        [&](int64_t b, int64_t e) {
          float s = 0.0f;
          for (int64_t i = b; i < e; ++i) s += xs[static_cast<size_t>(i)];
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  SetNumThreads(1);
  float serial = sum();
  SetNumThreads(4);
  float threaded = sum();
  EXPECT_EQ(serial, threaded);  // bitwise, not near
}

// The ISSUE's acceptance test: one full LogCL training epoch plus scoring
// must produce identical forward scores and identical post-Adam-step
// parameters (hence identical gradients) at 1 vs 4 threads.
TEST(ThreadDeterminismTest, TrainingStepIdenticalAtOneVsFourThreads) {
  ThreadCountGuard guard;
  SynthConfig config;
  config.seed = 88;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  TkgDataset d = GenerateSyntheticTkg(config);
  LogClConfig model_config;
  model_config.embedding_dim = 8;
  model_config.local.history_length = 2;
  model_config.local.num_layers = 1;
  model_config.global.num_layers = 1;
  model_config.decoder.num_kernels = 4;
  model_config.seed = 99;

  struct RunResult {
    std::vector<std::vector<float>> scores;
    std::vector<std::vector<float>> params;
    std::vector<std::vector<float>> grads;
  };
  auto run = [&] {
    LogClModel model(&d, model_config);
    AdamOptimizer optimizer(model.Parameters(), {});
    model.TrainEpoch(&optimizer);
    RunResult r;
    r.scores = model.ScoreQueries({{0, 0, 1, 13}, {2, 1, 3, 13}});
    for (const Tensor& p : model.Parameters()) {
      r.params.push_back(p.data());
      r.grads.push_back(p.grad());
    }
    return r;
  };

  SetNumThreads(1);
  RunResult serial = run();
  SetNumThreads(4);
  RunResult threaded = run();

  EXPECT_EQ(serial.scores, threaded.scores);
  ASSERT_EQ(serial.params.size(), threaded.params.size());
  for (size_t i = 0; i < serial.params.size(); ++i) {
    EXPECT_EQ(serial.params[i], threaded.params[i]) << "parameter " << i;
    EXPECT_EQ(serial.grads[i], threaded.grads[i]) << "grad " << i;
  }
}

}  // namespace
}  // namespace logcl
