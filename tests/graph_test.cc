// Tests for the graph layers: hand-computed aggregations, invariances, and
// gradient flow through message passing.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "graph/compgcn_layer.h"
#include "graph/kbgat_layer.h"
#include "graph/rel_graph_encoder.h"
#include "graph/rgcn_layer.h"
#include "graph/snapshot_graph.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace logcl {
namespace {

TEST(SnapshotGraphTest, FromFactsCopiesEdges) {
  std::vector<Quadruple> facts = {{0, 1, 2, 5}, {2, 0, 1, 5}};
  SnapshotGraph g = SnapshotGraph::FromFacts(facts, 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.src[0], 0);
  EXPECT_EQ(g.rel[0], 1);
  EXPECT_EQ(g.dst[0], 2);
  EXPECT_FALSE(g.empty());
}

TEST(SnapshotGraphTest, EmptyGraph) {
  SnapshotGraph g = SnapshotGraph::FromFacts({}, 4);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes, 4);
}

// With identity-like weights we can hand-check the R-GCN mean aggregation.
TEST(RgcnLayerTest, MeanAggregationWithForcedWeights) {
  Rng rng(1);
  RgcnLayer layer(2, &rng);
  // Force W1 = I, W2 = 0.
  std::vector<Tensor> params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  params[0].mutable_data() = {1, 0, 0, 1};  // w_message
  params[1].mutable_data() = {0, 0, 0, 0};  // w_self_loop
  // Graph: edges 0->2 (rel 0) and 1->2 (rel 0).
  SnapshotGraph g;
  g.num_nodes = 3;
  g.AddEdge(0, 0, 2);
  g.AddEdge(1, 0, 2);
  Tensor nodes = Tensor::FromVector(Shape{3, 2}, {2, 0, 4, 0, 9, 9});
  Tensor rels = Tensor::FromVector(Shape{1, 2}, {0, 2});
  Tensor out = layer.Forward(g, nodes, rels, /*training=*/false, nullptr);
  // Node 2 receives mean((2,0)+(0,2), (4,0)+(0,2)) = (3, 2); eval RReLU is
  // identity on positives.
  EXPECT_NEAR(out.at(2, 0), 3.0f, 1e-5f);
  EXPECT_NEAR(out.at(2, 1), 2.0f, 1e-5f);
  // Nodes 0/1 receive nothing and have zero self-loop weight.
  EXPECT_NEAR(out.at(0, 0), 0.0f, 1e-5f);
}

TEST(RgcnLayerTest, IsolatedNodeKeepsSelfLoopOnly) {
  Rng rng(2);
  RgcnLayer layer(2, &rng);
  std::vector<Tensor> params = layer.Parameters();
  params[0].mutable_data() = {1, 0, 0, 1};
  params[1].mutable_data() = {1, 0, 0, 1};  // W2 = I
  SnapshotGraph g;
  g.num_nodes = 2;
  g.AddEdge(0, 0, 1);
  Tensor nodes = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor rels = Tensor::Zeros(Shape{1, 2});
  Tensor out = layer.Forward(g, nodes, rels, false, nullptr);
  EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-5f);  // self-loop only
  EXPECT_NEAR(out.at(0, 1), 2.0f, 1e-5f);
  EXPECT_NEAR(out.at(1, 0), 4.0f, 1e-5f);  // 3 (self) + 1 (message)
}

TEST(RgcnLayerTest, EmptyGraphAppliesSelfLoop) {
  Rng rng(3);
  RgcnLayer layer(2, &rng);
  SnapshotGraph g;
  g.num_nodes = 2;
  Tensor nodes = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor rels = Tensor::Zeros(Shape{1, 2});
  Tensor out = layer.Forward(g, nodes, rels, false, nullptr);
  EXPECT_EQ(out.shape(), Shape({2, 2}));
}

TEST(CompGcnLayerTest, SubtractAndMultiplyCompositionsDiffer) {
  Rng rng(4);
  CompGcnLayer sub(3, CompGcnComposition::kSubtract, &rng);
  Rng rng2(4);
  CompGcnLayer mult(3, CompGcnComposition::kMultiply, &rng2);
  SnapshotGraph g;
  g.num_nodes = 2;
  g.AddEdge(0, 0, 1);
  Tensor nodes = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  Tensor rels = Tensor::FromVector(Shape{1, 3}, {0.5f, 0.5f, 0.5f});
  Tensor a = sub.Forward(g, nodes, rels, false, nullptr);
  Tensor b = mult.Forward(g, nodes, rels, false, nullptr);
  bool differs = false;
  for (int64_t i = 0; i < 6; ++i) {
    if (std::abs(a.at(i) - b.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(KbgatLayerTest, AttentionWeightsAreConvex) {
  // KBGAT output for a node with two incoming edges lies between the two
  // message extremes (attention is a convex combination).
  Rng rng(5);
  KbgatLayer layer(2, &rng);
  std::vector<Tensor> params = layer.Parameters();
  // params: w_message, w_self_loop, attention.
  params[0].mutable_data() = {1, 0, 0, 1};
  params[1].mutable_data() = {0, 0, 0, 0};
  SnapshotGraph g;
  g.num_nodes = 3;
  g.AddEdge(0, 0, 2);
  g.AddEdge(1, 0, 2);
  Tensor nodes = Tensor::FromVector(Shape{3, 2}, {2, 0, 6, 0, 0, 0});
  Tensor rels = Tensor::Zeros(Shape{1, 2});
  Tensor out = layer.Forward(g, nodes, rels, false, nullptr);
  EXPECT_GE(out.at(2, 0), 2.0f - 1e-4f);
  EXPECT_LE(out.at(2, 0), 6.0f + 1e-4f);
}

TEST(RelGraphEncoderTest, FactoryMakesAllKinds) {
  Rng rng(6);
  for (GcnKind kind : {GcnKind::kRgcn, GcnKind::kCompGcnSub,
                       GcnKind::kCompGcnMult, GcnKind::kKbgat}) {
    auto layer = MakeRelGraphLayer(kind, 4, &rng);
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->Parameters().empty());
  }
}

TEST(RelGraphEncoderTest, KindStringRoundTrip) {
  for (GcnKind kind : {GcnKind::kRgcn, GcnKind::kCompGcnSub,
                       GcnKind::kCompGcnMult, GcnKind::kKbgat}) {
    EXPECT_EQ(GcnKindFromString(GcnKindToString(kind)), kind);
  }
}

TEST(RelGraphEncoderTest, StackedLayersChangeOutput) {
  Rng rng(7);
  RelGraphEncoder one(GcnKind::kRgcn, 1, 4, 0.0f, &rng);
  Rng rng2(7);
  RelGraphEncoder two(GcnKind::kRgcn, 2, 4, 0.0f, &rng2);
  EXPECT_EQ(one.num_layers(), 1);
  EXPECT_EQ(two.num_layers(), 2);
  EXPECT_GT(two.Parameters().size(), one.Parameters().size());
}

// Property: a parameterized gradcheck straight through the message passing.
class LayerGradCheck : public ::testing::TestWithParam<GcnKind> {};

TEST_P(LayerGradCheck, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  auto layer = MakeRelGraphLayer(GetParam(), 3, &rng);
  SnapshotGraph g;
  g.num_nodes = 4;
  g.AddEdge(0, 0, 1);
  g.AddEdge(2, 1, 1);
  g.AddEdge(3, 0, 2);
  g.AddEdge(1, 1, 0);
  Rng data_rng(9);
  Tensor nodes = Tensor::RandomNormal(Shape{4, 3}, 1.0f, &data_rng, true);
  Tensor rels = Tensor::RandomNormal(Shape{2, 3}, 1.0f, &data_rng, true);
  auto report = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = layer->Forward(g, in[0], in[1], /*training=*/false,
                                    nullptr);
        return ops::SumAll(ops::Tanh(out));
      },
      {nodes, rels});
  EXPECT_TRUE(report.passed) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LayerGradCheck,
                         ::testing::Values(GcnKind::kRgcn, GcnKind::kCompGcnSub,
                                           GcnKind::kCompGcnMult,
                                           GcnKind::kKbgat));

TEST(RelGraphEncoderTest, TrainingReducesReconstructionLoss) {
  // Sanity: a 1-layer RGCN + dot-product decoder can learn to separate a
  // true edge from a corrupted one on a toy graph.
  Rng rng(10);
  RelGraphEncoder encoder(GcnKind::kRgcn, 1, 8, 0.0f, &rng);
  Tensor nodes = Tensor::XavierUniform(Shape{4, 8}, &rng);
  Tensor rels = Tensor::XavierUniform(Shape{2, 8}, &rng);
  SnapshotGraph g;
  g.num_nodes = 4;
  g.AddEdge(0, 0, 1);
  g.AddEdge(1, 1, 2);
  g.AddEdge(2, 0, 3);
  std::vector<Tensor> params = encoder.Parameters();
  params.push_back(nodes);
  params.push_back(rels);
  AdamOptions opts;
  opts.learning_rate = 0.01f;
  AdamOptimizer optimizer(params, opts);
  auto loss_fn = [&]() {
    Tensor h = encoder.Forward(g, nodes, rels, /*training=*/false, nullptr);
    // Score object candidates for query (0, r0): target node 1.
    Tensor q = ops::Add(ops::SliceRows(h, 0, 1), ops::SliceRows(rels, 0, 1));
    Tensor logits = ops::MatMul(q, ops::Transpose(h));
    return ops::CrossEntropyWithLogits(logits, {1});
  };
  float initial = loss_fn().at(0);
  for (int step = 0; step < 60; ++step) {
    optimizer.ZeroGrad();
    Backward(loss_fn());
    optimizer.Step();
  }
  float trained = loss_fn().at(0);
  EXPECT_LT(trained, initial * 0.5f);
}

}  // namespace
}  // namespace logcl
