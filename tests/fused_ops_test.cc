// Tests for the fused CSR message-passing path: EdgeCsr layout correctness,
// bitwise parity of the CSR/fused ops against the composed reference chain
// (forward and backward, at 1 and 4 threads), gradchecks of the fused
// backwards, cross-epoch structure-cache identity, and fused-vs-composed
// bitwise determinism of a full training epoch.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/global_encoder.h"
#include "core/logcl_model.h"
#include "graph/rel_graph_encoder.h"
#include "graph/snapshot_graph.h"
#include "synth/generator.h"
#include "tensor/edge_csr.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

// Restores the default thread count when a test exits, pass or fail.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

// Forces the fused/composed path for a scope and restores the previous mode.
struct FusedModeGuard {
  explicit FusedModeGuard(bool enabled)
      : previous_(ops::FusedMessagePassingEnabled()) {
    ops::SetFusedMessagePassingEnabled(enabled);
  }
  ~FusedModeGuard() { ops::SetFusedMessagePassingEnabled(previous_); }
  bool previous_;
};

// Deterministic LCG for index/data generation (independent of common/rng.h).
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed) {}
  uint32_t Next() {
    state = state * 1664525u + 1013904223u;
    return state;
  }
  int64_t NextIndex(int64_t limit) {
    return static_cast<int64_t>(Next() % static_cast<uint32_t>(limit));
  }
  float NextFloat() {  // roughly [-1, 1]
    return static_cast<float>(Next() % 2000) / 1000.0f - 1.0f;
  }
};

// Random multigraph with duplicate edges and isolated tail nodes (the last
// quarter of the node range never appears as src or dst).
SnapshotGraph RandomGraph(int64_t num_nodes, int64_t num_rels,
                          int64_t num_edges, uint32_t seed) {
  SnapshotGraph g;
  g.num_nodes = num_nodes;
  Lcg lcg(seed);
  int64_t active = std::max<int64_t>(1, num_nodes - num_nodes / 4);
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t s = lcg.NextIndex(active);
    int64_t r = lcg.NextIndex(num_rels);
    int64_t d = lcg.NextIndex(active);
    g.AddEdge(s, r, d);
    if (e % 7 == 0) g.AddEdge(s, r, d);  // guaranteed duplicates
  }
  return g;
}

Tensor RandomTensor(const Shape& shape, uint32_t seed,
                    bool requires_grad = false) {
  Lcg lcg(seed);
  std::vector<float> values(static_cast<size_t>(shape.num_elements()));
  for (float& v : values) v = lcg.NextFloat();
  return Tensor::FromVector(shape, std::move(values), requires_grad);
}

// --- EdgeCsr layout ---------------------------------------------------------

TEST(EdgeCsrTest, GroupsEdgesByRowInAscendingEdgeOrder) {
  std::vector<int64_t> dst = {2, 0, 2, 1, 0, 2};
  EdgeCsrPtr csr = EdgeCsr::Build(dst, 4);
  EXPECT_EQ(csr->num_rows, 4);
  EXPECT_EQ(csr->num_edges, 6);
  EXPECT_EQ(csr->offsets, (std::vector<int64_t>{0, 2, 3, 6, 6}));
  // Stable counting sort: within each row, ascending edge id.
  EXPECT_EQ(csr->edge_order, (std::vector<int64_t>{1, 4, 3, 0, 2, 5}));
  EXPECT_FLOAT_EQ(csr->inv_in_degree[0], 0.5f);
  EXPECT_FLOAT_EQ(csr->inv_in_degree[1], 1.0f);
  EXPECT_FLOAT_EQ(csr->inv_in_degree[2], 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(csr->inv_in_degree[3], 0.0f);  // isolated row
  EXPECT_EQ(csr->degree(3), 0);
}

TEST(EdgeCsrTest, EmptyEdgeList) {
  EdgeCsrPtr csr = EdgeCsr::Build({}, 3);
  EXPECT_EQ(csr->num_edges, 0);
  EXPECT_EQ(csr->offsets, (std::vector<int64_t>{0, 0, 0, 0}));
  EXPECT_TRUE(csr->edge_order.empty());
}

// --- CSR overloads vs index-vector reference --------------------------------

// Runs fn for both the reference and CSR variants and demands bitwise equal
// outputs and input gradients.
void ExpectScatterParity(
    const std::function<Tensor(const Tensor&)>& reference,
    const std::function<Tensor(const Tensor&)>& csr_variant, int64_t num_edges,
    int64_t cols, uint32_t seed) {
  for (int num_threads : {1, 4}) {
    ThreadCountGuard guard;
    SetNumThreads(num_threads);
    Tensor v_ref = RandomTensor(Shape{num_edges, cols}, seed, true);
    Tensor v_csr = RandomTensor(Shape{num_edges, cols}, seed, true);
    Tensor out_ref = reference(v_ref);
    Tensor out_csr = csr_variant(v_csr);
    ASSERT_EQ(out_ref.shape(), out_csr.shape());
    EXPECT_EQ(out_ref.data(), out_csr.data()) << num_threads << " threads";
    // Distinct per-element grads via a fixed random mask.
    Tensor m = RandomTensor(out_ref.shape(), seed + 17);
    Backward(ops::SumAll(ops::Mul(out_ref, m)));
    Backward(ops::SumAll(ops::Mul(out_csr, m)));
    EXPECT_EQ(v_ref.grad(), v_csr.grad()) << num_threads << " threads";
  }
}

TEST(CsrOpsTest, ScatterAddRowsMatchesReference) {
  const int64_t kEdges = 57, kRows = 11, kCols = 5;
  Lcg lcg(101);
  std::vector<int64_t> indices;
  for (int64_t e = 0; e < kEdges; ++e) indices.push_back(lcg.NextIndex(kRows));
  EdgeCsrPtr csr = EdgeCsr::Build(indices, kRows);
  ExpectScatterParity(
      [&](const Tensor& v) { return ops::ScatterAddRows(v, indices, kRows); },
      [&](const Tensor& v) { return ops::ScatterAddRows(v, csr); }, kEdges,
      kCols, 7);
}

TEST(CsrOpsTest, ScatterMeanRowsMatchesReference) {
  const int64_t kEdges = 57, kRows = 11, kCols = 5;
  Lcg lcg(202);
  std::vector<int64_t> indices;
  for (int64_t e = 0; e < kEdges; ++e) indices.push_back(lcg.NextIndex(kRows));
  EdgeCsrPtr csr = EdgeCsr::Build(indices, kRows);
  ExpectScatterParity(
      [&](const Tensor& v) { return ops::ScatterMeanRows(v, indices, kRows); },
      [&](const Tensor& v) { return ops::ScatterMeanRows(v, csr); }, kEdges,
      kCols, 8);
}

TEST(CsrOpsTest, SegmentSoftmaxMatchesReference) {
  const int64_t kEdges = 43, kSegments = 9;
  Lcg lcg(303);
  std::vector<int64_t> segments;
  // Segment 0 stays empty; the rest get random edges.
  for (int64_t e = 0; e < kEdges; ++e) {
    segments.push_back(1 + lcg.NextIndex(kSegments - 1));
  }
  EdgeCsrPtr csr = EdgeCsr::Build(segments, kSegments);
  ExpectScatterParity(
      [&](const Tensor& v) {
        return ops::SegmentSoftmax(v, segments, kSegments);
      },
      [&](const Tensor& v) { return ops::SegmentSoftmax(v, csr); }, kEdges, 1,
      9);
}

// --- Fused layer path vs composed reference ---------------------------------

struct LayerRun {
  std::vector<float> output;
  std::vector<float> node_grads;
  std::vector<float> rel_grads;
  std::vector<std::vector<float>> param_grads;
};

LayerRun RunLayer(GcnKind kind, const SnapshotGraph& graph, bool fused,
                  int64_t dim, uint32_t seed) {
  FusedModeGuard mode(fused);
  Rng rng(seed);
  auto layer = MakeRelGraphLayer(kind, dim, &rng);
  Tensor nodes = RandomTensor(Shape{graph.num_nodes, dim}, seed + 1, true);
  Tensor rels = RandomTensor(Shape{4, dim}, seed + 2, true);
  Tensor out = layer->Forward(graph, nodes, rels, /*training=*/false, nullptr);
  Tensor mask = RandomTensor(out.shape(), seed + 3);
  Backward(ops::SumAll(ops::Mul(out, mask)));
  LayerRun run;
  run.output = out.data();
  run.node_grads = nodes.grad();
  run.rel_grads = rels.grad();
  for (const Tensor& p : layer->Parameters()) run.param_grads.push_back(p.grad());
  return run;
}

class FusedLayerParity : public ::testing::TestWithParam<GcnKind> {};

TEST_P(FusedLayerParity, BitwiseEqualForwardAndBackward) {
  // Odd sizes (not multiples of the 8-edge / 64-column tiles), duplicate
  // edges and isolated nodes.
  SnapshotGraph graph = RandomGraph(/*num_nodes=*/13, /*num_rels=*/4,
                                    /*num_edges=*/37, /*seed=*/11);
  for (int num_threads : {1, 4}) {
    ThreadCountGuard guard;
    SetNumThreads(num_threads);
    LayerRun fused = RunLayer(GetParam(), graph, /*fused=*/true, 5, 21);
    LayerRun composed = RunLayer(GetParam(), graph, /*fused=*/false, 5, 21);
    EXPECT_EQ(fused.output, composed.output) << num_threads << " threads";
    EXPECT_EQ(fused.node_grads, composed.node_grads);
    EXPECT_EQ(fused.rel_grads, composed.rel_grads);
    ASSERT_EQ(fused.param_grads.size(), composed.param_grads.size());
    for (size_t i = 0; i < fused.param_grads.size(); ++i) {
      EXPECT_EQ(fused.param_grads[i], composed.param_grads[i])
          << "param " << i;
    }
  }
}

TEST_P(FusedLayerParity, EmptyGraphMatches) {
  SnapshotGraph graph;
  graph.num_nodes = 6;
  LayerRun fused = RunLayer(GetParam(), graph, /*fused=*/true, 3, 5);
  LayerRun composed = RunLayer(GetParam(), graph, /*fused=*/false, 3, 5);
  EXPECT_EQ(fused.output, composed.output);
  EXPECT_EQ(fused.node_grads, composed.node_grads);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FusedLayerParity,
                         ::testing::Values(GcnKind::kRgcn, GcnKind::kCompGcnSub,
                                           GcnKind::kCompGcnMult,
                                           GcnKind::kKbgat));

// --- Gradchecks of the fused ops against finite differences -----------------

class FusedOpGradCheck : public ::testing::TestWithParam<ops::EdgeCompose> {};

TEST_P(FusedOpGradCheck, FusedRelMessagePassing) {
  SnapshotGraph g = RandomGraph(5, 2, 9, 31);
  const EdgeCsrPtr& csr = g.DstCsr();
  Tensor nodes = RandomTensor(Shape{5, 3}, 41, true);
  Tensor rels = RandomTensor(Shape{2, 3}, 42, true);
  Tensor weight = RandomTensor(Shape{3, 3}, 43, true);
  auto report = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = ops::FusedRelMessagePassing(in[0], in[1], in[2], g.src,
                                                 g.rel, g.dst, csr, GetParam());
        return ops::SumAll(ops::Tanh(out));
      },
      {nodes, rels, weight});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST_P(FusedOpGradCheck, EdgeMessages) {
  SnapshotGraph g = RandomGraph(5, 2, 9, 32);
  Tensor nodes = RandomTensor(Shape{5, 3}, 51, true);
  Tensor rels = RandomTensor(Shape{2, 3}, 52, true);
  Tensor weight = RandomTensor(Shape{3, 3}, 53, true);
  auto report = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out =
            ops::EdgeMessages(in[0], in[1], in[2], g.src, g.rel, GetParam());
        return ops::SumAll(ops::Tanh(out));
      },
      {nodes, rels, weight});
  EXPECT_TRUE(report.passed) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(AllCompositions, FusedOpGradCheck,
                         ::testing::Values(ops::EdgeCompose::kAdd,
                                           ops::EdgeCompose::kSubtract,
                                           ops::EdgeCompose::kMultiply));

// --- Structure caches -------------------------------------------------------

TEST(StructureCacheTest, SnapshotGraphAtIsCachedAndMatchesFromFacts) {
  SynthConfig config;
  config.seed = 77;
  config.num_entities = 12;
  config.num_relations = 3;
  config.num_timestamps = 8;
  TkgDataset d = GenerateSyntheticTkg(config);
  const SnapshotGraph& a = d.SnapshotGraphAt(3);
  const SnapshotGraph& b = d.SnapshotGraphAt(3);
  EXPECT_EQ(&a, &b);  // cache hit returns the same object
  SnapshotGraph fresh = SnapshotGraph::FromFacts(
      d.WithInverses(d.FactsAt(3)), d.num_entities());
  EXPECT_EQ(a.src, fresh.src);
  EXPECT_EQ(a.rel, fresh.rel);
  EXPECT_EQ(a.dst, fresh.dst);
  EXPECT_EQ(a.num_nodes, d.num_entities());
  // Out-of-range timestamps share the edgeless graph.
  const SnapshotGraph& past_end = d.SnapshotGraphAt(d.num_timestamps() + 5);
  EXPECT_TRUE(past_end.empty());
  EXPECT_EQ(past_end.num_nodes, d.num_entities());
  EXPECT_EQ(&past_end, &d.SnapshotGraphAt(-1));
}

TEST(StructureCacheTest, CsrLayoutsAreCachedAndInvalidatedByAddEdge) {
  SnapshotGraph g = RandomGraph(7, 3, 15, 61);
  const EdgeCsr* dst_csr = g.DstCsr().get();
  EXPECT_EQ(g.DstCsr().get(), dst_csr);  // cached
  const EdgeCsr* rel_csr = g.RelCsr(3).get();
  EXPECT_EQ(g.RelCsr(3).get(), rel_csr);
  g.AddEdge(0, 1, 2);
  EXPECT_NE(g.DstCsr().get(), dst_csr);  // invalidated and rebuilt
  EXPECT_EQ(g.DstCsr()->num_edges, g.num_edges());
  EXPECT_NE(g.RelCsr(3).get(), rel_csr);
}

TEST(StructureCacheTest, FromFactsWithInversesMatchesComposedBuild) {
  SynthConfig config;
  config.seed = 78;
  config.num_entities = 10;
  config.num_relations = 3;
  config.num_timestamps = 6;
  TkgDataset d = GenerateSyntheticTkg(config);
  SnapshotGraph direct = SnapshotGraph::FromFactsWithInverses(
      d.FactsAt(2), d.num_entities(), d.num_base_relations());
  SnapshotGraph composed = SnapshotGraph::FromFacts(
      d.WithInverses(d.FactsAt(2)), d.num_entities());
  EXPECT_EQ(direct.src, composed.src);
  EXPECT_EQ(direct.rel, composed.rel);
  EXPECT_EQ(direct.dst, composed.dst);
}

TEST(StructureCacheTest, QuerySubgraphCacheHitsAndKeying) {
  SynthConfig config;
  config.seed = 79;
  config.num_entities = 14;
  config.num_relations = 3;
  config.num_timestamps = 12;
  TkgDataset d = GenerateSyntheticTkg(config);
  HistoryIndex history(d);
  Rng rng(80);
  GlobalEncoder encoder(8, {}, &rng);
  std::vector<Quadruple> queries;
  for (const Quadruple& q : d.FactsAt(9)) queries.push_back(q);
  ASSERT_FALSE(queries.empty());

  auto first = encoder.QuerySubgraph(history, queries, d.num_entities());
  auto second = encoder.QuerySubgraph(history, queries, d.num_entities());
  EXPECT_EQ(first.get(), second.get());  // cache hit: same graph object

  // The cached result is the same graph BuildQuerySubgraph produces.
  SnapshotGraph direct =
      encoder.BuildQuerySubgraph(history, queries, d.num_entities());
  EXPECT_EQ(first->src, direct.src);
  EXPECT_EQ(first->rel, direct.rel);
  EXPECT_EQ(first->dst, direct.dst);

  // Different query sets key different entries.
  std::vector<Quadruple> other = {queries.front()};
  auto third = encoder.QuerySubgraph(history, other, d.num_entities());
  EXPECT_NE(first.get(), third.get());

  // Disabling the cache returns fresh graphs.
  GlobalEncoderOptions uncached;
  uncached.cache_query_subgraphs = false;
  Rng rng2(80);
  GlobalEncoder cold(8, uncached, &rng2);
  auto a = cold.QuerySubgraph(history, queries, d.num_entities());
  auto b = cold.QuerySubgraph(history, queries, d.num_entities());
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->src, b->src);
}

TEST(QuerySubgraphTest, EdgesAreDeduplicatedAndSorted) {
  SynthConfig config;
  config.seed = 81;
  config.num_entities = 14;
  config.num_relations = 3;
  config.num_timestamps = 12;
  TkgDataset d = GenerateSyntheticTkg(config);
  HistoryIndex history(d);
  Rng rng(82);
  GlobalEncoder encoder(8, {}, &rng);
  std::vector<Quadruple> queries;
  for (const Quadruple& q : d.FactsAt(10)) queries.push_back(q);
  ASSERT_FALSE(queries.empty());
  SnapshotGraph g =
      encoder.BuildQuerySubgraph(history, queries, d.num_entities());
  ASSERT_GT(g.num_edges(), 0);
  for (int64_t e = 1; e < g.num_edges(); ++e) {
    auto key = [&](int64_t i) {
      return std::tuple(g.src[static_cast<size_t>(i)],
                        g.rel[static_cast<size_t>(i)],
                        g.dst[static_cast<size_t>(i)]);
    };
    EXPECT_LT(key(e - 1), key(e)) << "edges must be strictly ascending";
  }
}

// --- End-to-end: fused vs composed training epoch ---------------------------

struct EpochResult {
  double loss = 0.0;
  std::vector<std::vector<float>> scores;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> grads;
};

EpochResult RunEpoch(const TkgDataset& d, bool fused) {
  FusedModeGuard mode(fused);
  LogClConfig config;
  config.embedding_dim = 8;
  config.local.history_length = 2;
  config.local.num_layers = 1;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 4;
  config.seed = 99;
  LogClModel model(&d, config);
  AdamOptimizer optimizer(model.Parameters(), {});
  EpochResult r;
  r.loss = model.TrainEpoch(&optimizer).loss;
  r.scores = model.ScoreQueries({{0, 0, 1, 13}, {2, 1, 3, 13}});
  for (const Tensor& p : model.Parameters()) {
    r.params.push_back(p.data());
    r.grads.push_back(p.grad());
  }
  return r;
}

// The ISSUE's acceptance test: the fused path must produce bitwise-identical
// losses, scores, gradients and post-step parameters to the composed path,
// at 1 and at 4 threads.
TEST(FusedEpochParityTest, LossesAndParametersBitwiseIdentical) {
  SynthConfig config;
  config.seed = 88;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  TkgDataset d = GenerateSyntheticTkg(config);
  for (int num_threads : {1, 4}) {
    ThreadCountGuard guard;
    SetNumThreads(num_threads);
    EpochResult fused = RunEpoch(d, /*fused=*/true);
    EpochResult composed = RunEpoch(d, /*fused=*/false);
    EXPECT_EQ(fused.loss, composed.loss) << num_threads << " threads";
    EXPECT_EQ(fused.scores, composed.scores);
    ASSERT_EQ(fused.params.size(), composed.params.size());
    for (size_t i = 0; i < fused.params.size(); ++i) {
      EXPECT_EQ(fused.params[i], composed.params[i]) << "parameter " << i;
      EXPECT_EQ(fused.grads[i], composed.grads[i]) << "grad " << i;
    }
  }
}

}  // namespace
}  // namespace logcl
