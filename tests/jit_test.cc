// Tests pinning the graph-capture JIT executor (tensor/jit.h): replayed
// plans are bitwise identical to the eager define-by-run path, forward and
// backward, at 1 and 4 threads; every invalidation signal (shape change,
// requires_grad flip, mid-process disable) falls back to eager with
// identical results; and a captured plan survives numerical gradcheck. The
// end-to-end half trains a full epoch and scores a serving batch under
// LOGCL_JIT on/off and demands bitwise-equal scores.

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/observability.h"
#include "common/parallel.h"
#include "core/logcl_model.h"
#include "serve/engine_snapshot.h"
#include "synth/generator.h"
#include "tensor/gradcheck.h"
#include "tensor/jit.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tkg/dataset.h"

namespace logcl {
namespace {

// Deterministic fill with awkward float values; same generator as
// simd_test.cc so parity failures cannot hide behind friendly inputs.
std::vector<float> Fill(int64_t n, uint64_t seed) {
  std::vector<float> out(static_cast<size_t>(n));
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint32_t r = static_cast<uint32_t>(state >> 33);
    out[static_cast<size_t>(i)] =
        static_cast<float>(static_cast<int32_t>(r % 2001) - 1000) / 147.0f;
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " differs at " << i << ": " << a[i] << " vs "
                      << b[i];
  }
}

// Restores the JIT enable flag on scope exit.
class JitGuard {
 public:
  JitGuard() : previous_(jit::JitEnabled()) {}
  ~JitGuard() { jit::SetJitEnabled(previous_); }

 private:
  bool previous_;
};

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadCountGuard() { SetNumThreads(previous_); }

 private:
  int previous_;
};

Tensor Leaf(const Shape& shape, uint64_t seed, bool requires_grad) {
  return Tensor::FromVector(shape, Fill(shape.num_elements(), seed),
                            requires_grad);
}

// A 3-op chain exercising binary, binary, activation fusion.
Tensor MulAddRelu(const std::vector<Tensor>& in) {
  return ops::Relu(ops::Add(ops::Mul(in[0], in[1]), in[2]));
}

// Smooth everywhere (no ReLU kink) — the gradcheck chain.
Tensor MulAddTanh(const std::vector<Tensor>& in) {
  return ops::Tanh(ops::Add(ops::Mul(in[0], in[1]), in[2]));
}

// GRU-gate shape: row-broadcast bias into a sigmoid.
Tensor BiasSigmoid(const std::vector<Tensor>& in) {
  return ops::Sigmoid(ops::Add(in[0], in[1]));
}

// --- forward/backward replay parity ----------------------------------------

TEST(JitChainTest, ReplayMatchesEagerBitwise) {
  JitGuard guard;
  for (const Shape& shape :
       {Shape{7, 33}, Shape{64, 16}, Shape{1027}, Shape{3}}) {
    Tensor a = Leaf(shape, 1, false), b = Leaf(shape, 2, false);
    Tensor c = Leaf(shape, 3, false);
    jit::SetJitEnabled(false);
    Tensor eager = MulAddRelu({a, b, c});
    jit::SetJitEnabled(true);
    jit::ResetJitStats();
    jit::ChainCache cache;
    Tensor captured = cache.Run({a, b, c}, MulAddRelu);  // capture
    Tensor replayed = cache.Run({a, b, c}, MulAddRelu);  // replay
    ASSERT_TRUE(replayed.shape() == shape);
    ExpectBitwiseEqual(eager.data(), captured.data(), "capture forward");
    ExpectBitwiseEqual(eager.data(), replayed.data(), "replay forward");
    jit::JitStats stats = jit::JitSnapshot();
    EXPECT_EQ(stats.plans_captured, 1u);
    EXPECT_EQ(stats.replays, 1u);
    EXPECT_EQ(stats.fusions_applied, 2u);  // 3 ops merged into one plan
    EXPECT_EQ(stats.eager_fallbacks, 0u);
    EXPECT_EQ(cache.num_plans(), 1);
  }
}

TEST(JitChainTest, BackwardThroughReplayMatchesEager) {
  JitGuard guard;
  for (int threads : {1, 4}) {
    ThreadCountGuard thread_guard(threads);
    auto run = [&](bool jit_on) {
      jit::SetJitEnabled(jit_on);
      jit::ChainCache cache;
      Tensor a = Leaf(Shape{9, 65}, 11, true);
      Tensor b = Leaf(Shape{9, 65}, 12, true);
      Tensor c = Leaf(Shape{9, 65}, 13, true);
      // Two passes so the JIT run exercises the *replayed* backward too.
      for (int pass = 0; pass < 2; ++pass) {
        Backward(ops::SumAll(cache.Run({a, b, c}, MulAddRelu)));
      }
      std::vector<std::vector<float>> grads = {a.grad(), b.grad(), c.grad()};
      return grads;
    };
    auto eager = run(false);
    auto jitted = run(true);
    for (size_t i = 0; i < eager.size(); ++i) {
      ExpectBitwiseEqual(eager[i], jitted[i], "input grad");
    }
  }
}

TEST(JitChainTest, RowBroadcastBackwardMatchesEager) {
  JitGuard guard;
  for (int threads : {1, 4}) {
    ThreadCountGuard thread_guard(threads);
    auto run = [&](bool jit_on) {
      jit::SetJitEnabled(jit_on);
      jit::ChainCache cache;
      Tensor pre = Leaf(Shape{13, 24}, 21, true);
      Tensor bias = Leaf(Shape{1, 24}, 22, true);
      for (int pass = 0; pass < 2; ++pass) {
        Backward(ops::SumAll(cache.Run({pre, bias}, BiasSigmoid)));
      }
      std::vector<std::vector<float>> out = {pre.grad(), bias.grad()};
      return out;
    };
    auto eager = run(false);
    auto jitted = run(true);
    ExpectBitwiseEqual(eager[0], jitted[0], "pre grad");
    ExpectBitwiseEqual(eager[1], jitted[1], "row-broadcast bias grad");
  }
}

// --- invalidation -----------------------------------------------------------

TEST(JitInvalidationTest, ShapeChangeRecapturesWithCorrectResults) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ResetJitStats();
  jit::ChainCache cache;
  for (const Shape& shape : {Shape{4, 16}, Shape{5, 16}, Shape{4, 16}}) {
    Tensor a = Leaf(shape, 31, false), b = Leaf(shape, 32, false);
    Tensor c = Leaf(shape, 33, false);
    jit::SetJitEnabled(false);
    Tensor eager = MulAddRelu({a, b, c});
    jit::SetJitEnabled(true);
    Tensor got = cache.Run({a, b, c}, MulAddRelu);
    ExpectBitwiseEqual(eager.data(), got.data(), "post-shape-change result");
  }
  jit::JitStats stats = jit::JitSnapshot();
  EXPECT_EQ(stats.plans_captured, 2u);  // two distinct shapes
  EXPECT_EQ(stats.invalidations, 1u);   // the {5,16} miss on a warm cache
  EXPECT_EQ(stats.replays, 1u);         // third call re-hits the first plan
  EXPECT_EQ(cache.num_plans(), 2);
}

TEST(JitInvalidationTest, RequiresGradFlipRecapturesWithCorrectResults) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ChainCache cache;
  // Grad pass first: captures a plan with a backward program.
  Tensor a = Leaf(Shape{6, 10}, 41, true), b = Leaf(Shape{6, 10}, 42, true);
  Tensor c = Leaf(Shape{6, 10}, 43, true);
  Backward(ops::SumAll(cache.Run({a, b, c}, MulAddRelu)));
  EXPECT_EQ(cache.num_plans(), 1);
  // Same shapes, requires_grad off: a different signature, a second plan,
  // and an output that must not be wired into the autograd graph.
  Tensor a2 = Leaf(Shape{6, 10}, 41, false), b2 = Leaf(Shape{6, 10}, 42, false);
  Tensor c2 = Leaf(Shape{6, 10}, 43, false);
  jit::SetJitEnabled(false);
  Tensor eager = MulAddRelu({a2, b2, c2});
  jit::SetJitEnabled(true);
  Tensor cold = cache.Run({a2, b2, c2}, MulAddRelu);
  Tensor warm = cache.Run({a2, b2, c2}, MulAddRelu);
  EXPECT_FALSE(warm.requires_grad());
  ExpectBitwiseEqual(eager.data(), cold.data(), "no-grad capture");
  ExpectBitwiseEqual(eager.data(), warm.data(), "no-grad replay");
  EXPECT_EQ(cache.num_plans(), 2);
}

TEST(JitInvalidationTest, DisableMidProcessFallsBackToEager) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ChainCache cache;
  Tensor a = Leaf(Shape{8, 8}, 51, false), b = Leaf(Shape{8, 8}, 52, false);
  Tensor c = Leaf(Shape{8, 8}, 53, false);
  Tensor reference = cache.Run({a, b, c}, MulAddRelu);  // capture
  cache.Run({a, b, c}, MulAddRelu);                     // replay
  // LOGCL_JIT flipped off mid-process: instant bypass, eager results, no
  // replay counted.
  jit::SetJitEnabled(false);
  jit::ResetJitStats();
  Tensor disabled = cache.Run({a, b, c}, MulAddRelu);
  ExpectBitwiseEqual(reference.data(), disabled.data(), "disabled result");
  EXPECT_EQ(jit::JitSnapshot().replays, 0u);
  // Re-enabling resumes replay from the retained plan.
  jit::SetJitEnabled(true);
  Tensor resumed = cache.Run({a, b, c}, MulAddRelu);
  ExpectBitwiseEqual(reference.data(), resumed.data(), "resumed result");
  EXPECT_EQ(jit::JitSnapshot().replays, 1u);
}

TEST(JitFallbackTest, UntraceableChainStaysEagerWithCorrectResults) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ResetJitStats();
  jit::ChainCache cache;
  // MatMul has no trace hook: the node-count audit rejects the capture and
  // the signature is remembered as uncompilable.
  auto with_matmul = [](const std::vector<Tensor>& in) {
    return ops::Relu(ops::MatMul(in[0], in[1]));
  };
  Tensor a = Leaf(Shape{5, 7}, 61, false), b = Leaf(Shape{7, 9}, 62, false);
  jit::SetJitEnabled(false);
  Tensor eager = with_matmul({a, b});
  jit::SetJitEnabled(true);
  Tensor first = cache.Run({a, b}, with_matmul);
  Tensor second = cache.Run({a, b}, with_matmul);
  ExpectBitwiseEqual(eager.data(), first.data(), "rejected capture result");
  ExpectBitwiseEqual(eager.data(), second.data(), "eager fallback result");
  jit::JitStats stats = jit::JitSnapshot();
  EXPECT_EQ(stats.capture_failures, 1u);
  EXPECT_GE(stats.eager_fallbacks, 1u);
  EXPECT_EQ(stats.plans_captured, 0u);
  EXPECT_EQ(cache.num_plans(), 0);
}

// --- gradients through a captured plan --------------------------------------

TEST(JitGradcheckTest, CapturedPlanPassesNumericalGradcheck) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ResetJitStats();
  jit::ChainCache cache;
  auto fn = [&cache](const std::vector<Tensor>& inputs) {
    return ops::SumAll(cache.Run(inputs, MulAddTanh));
  };
  std::vector<Tensor> inputs = {Leaf(Shape{4, 6}, 71, true),
                                Leaf(Shape{4, 6}, 72, true),
                                Leaf(Shape{4, 6}, 73, true)};
  GradCheckReport report = CheckGradients(fn, inputs);
  EXPECT_TRUE(report.passed) << report.detail;
  // The finite-difference probes must actually have exercised the plan.
  EXPECT_GT(jit::JitSnapshot().replays, 0u);
}

// --- observability ----------------------------------------------------------

TEST(JitMetricsTest, SourcePublishesUnderRegistryNames) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ChainCache cache;
  Tensor a = Leaf(Shape{4, 8}, 91, false), b = Leaf(Shape{4, 8}, 92, false);
  Tensor c = Leaf(Shape{4, 8}, 93, false);
  cache.Run({a, b, c}, MulAddRelu);
  cache.Run({a, b, c}, MulAddRelu);
  // The registered source surfaces the same numbers as JitSnapshot() under
  // the logcl.jit.* schema (DESIGN.md §12/§14).
  jit::JitStats stats = jit::JitSnapshot();
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_GE(snap.CounterValue("logcl.jit.plans_captured"),
            stats.plans_captured);
  EXPECT_GE(snap.CounterValue("logcl.jit.replays"), stats.replays);
  EXPECT_GE(snap.CounterValue("logcl.jit.fusions_applied"),
            stats.fusions_applied);
  EXPECT_NE(snap.Find("logcl.jit.eager_fallbacks"), nullptr);
  EXPECT_NE(snap.Find("logcl.jit.arena_bytes"), nullptr);
  EXPECT_NE(snap.Find("logcl.jit.plans_live"), nullptr);
}

// --- concurrency ------------------------------------------------------------

TEST(JitConcurrencyTest, ConcurrentReplaysAreRaceFree) {
  JitGuard guard;
  jit::SetJitEnabled(true);
  jit::ChainCache cache;
  Tensor a = Leaf(Shape{31, 17}, 81, false), b = Leaf(Shape{31, 17}, 82, false);
  Tensor c = Leaf(Shape{31, 17}, 83, false);
  Tensor reference = cache.Run({a, b, c}, MulAddRelu);  // capture once
  constexpr int kThreads = 4, kReps = 8;
  std::vector<std::vector<float>> results(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Tensor out;
      for (int rep = 0; rep < kReps; ++rep) {
        out = cache.Run({a, b, c}, MulAddRelu);
      }
      results[static_cast<size_t>(w)] = out.data();
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) {
    ExpectBitwiseEqual(reference.data(), results[static_cast<size_t>(w)],
                       "concurrent replay");
  }
}

// --- end to end: epoch and serving parity ------------------------------------

TkgDataset JitData() {
  SynthConfig config;
  config.name = "jit-test";
  config.seed = 505;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 12;
  config.recurring_pool = 15;
  config.num_cyclic = 6;
  config.chains_per_timestamp = 1.5;
  return GenerateSyntheticTkg(config);
}

LogClConfig JitModelConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 31;
  return config;
}

TEST(JitEpochParityTest, TrainEpochBitwiseInvariantToJit) {
  TkgDataset data = JitData();
  auto train_and_score = [&](bool jit_on, int threads) {
    JitGuard jit_guard;
    ThreadCountGuard thread_guard(threads);
    jit::SetJitEnabled(jit_on);
    LogClModel model(&data, JitModelConfig());
    AdamOptimizer optimizer(model.Parameters(), {});
    model.TrainEpoch(&optimizer);
    return model.ScoreQueries({{0, 0, 1, 10}, {3, 2, 5, 10}, {7, 1, 2, 10}});
  };
  std::vector<std::vector<float>> reference = train_and_score(false, 1);
  for (int threads : {1, 4}) {
    std::vector<std::vector<float>> eager = train_and_score(false, threads);
    std::vector<std::vector<float>> jitted = train_and_score(true, threads);
    ASSERT_EQ(jitted.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectBitwiseEqual(reference[i], eager[i], "eager epoch scores");
      ExpectBitwiseEqual(reference[i], jitted[i], "jit epoch scores");
    }
  }
}

TEST(JitServeParityTest, ScoreBatchBitwiseInvariantToJit) {
  JitGuard jit_guard;
  TkgDataset data = JitData();
  jit::SetJitEnabled(false);
  LogClModel model(&data, JitModelConfig());
  std::vector<Quadruple> queries = {{0, 0, 1, 10}, {3, 2, 5, 10}, {7, 1, 2, 10}};
  std::vector<std::vector<float>> oracle = model.ScoreQueries(queries);
  std::vector<ServeQuery> serve_queries;
  for (const Quadruple& q : queries) {
    serve_queries.push_back({q.subject, q.relation});
  }
  for (int threads : {1, 4}) {
    ThreadCountGuard thread_guard(threads);
    jit::SetJitEnabled(true);
    auto snapshot = EngineSnapshot::Build(&model, 10);
    // Two batches: the first may capture on cold call sites, the second
    // replays; both must equal the eager oracle bitwise.
    for (int pass = 0; pass < 2; ++pass) {
      Tensor scores = snapshot->ScoreBatch(serve_queries);
      ASSERT_EQ(static_cast<size_t>(scores.shape().rows()), oracle.size());
      int64_t num_entities = scores.shape().cols();
      for (size_t i = 0; i < oracle.size(); ++i) {
        for (int64_t e = 0; e < num_entities; ++e) {
          ASSERT_EQ(scores.data()[static_cast<int64_t>(i) * num_entities + e],
                    oracle[i][e])
              << "serving score mismatch at row " << i << " entity " << e;
        }
      }
    }
  }
}

}  // namespace
}  // namespace logcl
