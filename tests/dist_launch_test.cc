// Multi-process launch test: forks real dist_rank_main processes (fork +
// execve, one per rank) over a unix-socket rendezvous, waits for every rank
// to exit 0, then loads the checkpoints each rank wrote and asserts the
// cross-process parity contract: every rank's parameters are bitwise
// identical to each other AND to the in-parent DataParallelSimulator replay
// of the same run. Exercised at 1 and 4 intra-op threads.
//
// This is the CI stand-in for a real 2-node launch: separate address
// spaces, separate allocators, separate thread pools — only the socket
// protocol connects them.

#include <libgen.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "dist/dist_trainer.h"
#include "dist_test_util.h"
#include "serve/inference_engine.h"

namespace logcl {
namespace dist {
namespace {

namespace fs = std::filesystem;

using dist_test::DistConfig;
using dist_test::DistData;
using dist_test::FlattenParameters;

/// Directory holding the current test binary — dist_rank_main sits next to
/// it in the build tree.
std::string SelfDirectory() {
  char buffer[4096];
  ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return ".";
  buffer[len] = '\0';
  return ::dirname(buffer);
}

struct RankProcess {
  pid_t pid = -1;
  std::string checkpoint;
};

/// Forks + execs dist_rank_main for `rank`. All strings are materialised
/// BEFORE fork (no allocation between fork and execve).
RankProcess LaunchRank(const std::string& binary, int rank, int world,
                       const std::string& master, int epochs, int threads,
                       const fs::path& workdir) {
  RankProcess process;
  process.checkpoint =
      (workdir / ("rank" + std::to_string(rank) + ".ckpt")).string();
  std::vector<std::string> env_strings = {
      "LOGCL_DIST_RANK=" + std::to_string(rank),
      "LOGCL_DIST_WORLD=" + std::to_string(world),
      "LOGCL_DIST_MASTER=" + master,
      "LOGCL_DIST_EPOCHS=" + std::to_string(epochs),
      "LOGCL_DIST_CHECKPOINT=" + process.checkpoint,
      "LOGCL_NUM_THREADS=" + std::to_string(threads),
  };
  std::vector<char*> envp;
  for (std::string& s : env_strings) envp.push_back(s.data());
  envp.push_back(nullptr);
  std::string argv0 = binary;
  char* argv[] = {argv0.data(), nullptr};

  process.pid = ::fork();
  if (process.pid == 0) {
    ::execve(binary.c_str(), argv, envp.data());
    ::_exit(127);  // execve only returns on failure
  }
  return process;
}

void RunLaunch(int world, int threads) {
  const int epochs = 2;
  std::string binary = SelfDirectory() + "/dist_rank_main";
  ASSERT_TRUE(fs::exists(binary))
      << binary << " missing — build the dist_rank_main target";

  fs::path workdir =
      fs::temp_directory_path() /
      ("logcl_dist_launch_" + std::to_string(::getpid()) + "_t" +
       std::to_string(threads));
  fs::create_directories(workdir);
  std::string master = "unix:" + (workdir / "master.sock").string();

  std::vector<RankProcess> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.push_back(
        LaunchRank(binary, r, world, master, epochs, threads, workdir));
    ASSERT_GT(ranks.back().pid, 0) << "fork failed for rank " << r;
  }
  for (const RankProcess& rank : ranks) {
    int wstatus = 0;
    ASSERT_EQ(::waitpid(rank.pid, &wstatus, 0), rank.pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "rank did not exit normally";
    ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "rank exited non-zero";
  }

  // Load every rank's checkpoint into a fresh model and flatten.
  std::vector<std::vector<float>> params;
  for (const RankProcess& rank : ranks) {
    TkgDataset data = DistData();
    LogClModel model(&data, DistConfig());
    Status loaded = LoadModelCheckpoint(&model, rank.checkpoint);
    ASSERT_TRUE(loaded.ok()) << loaded.message();
    params.push_back(FlattenParameters(model));
  }

  // The in-parent oracle: the single-process virtual-rank replay.
  std::vector<float> expected;
  {
    int previous = GetNumThreads();
    SetNumThreads(threads);
    TkgDataset data = DistData();
    LogClModel model(&data, DistConfig());
    AdamOptimizer optimizer(model.Parameters());
    DataParallelSimulator simulator(&model, &optimizer, world);
    for (int e = 0; e < epochs; ++e) simulator.TrainEpoch();
    expected = FlattenParameters(model);
    SetNumThreads(previous);
  }

  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(params[static_cast<size_t>(r)].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      uint32_t got, want;
      std::memcpy(&got, &params[static_cast<size_t>(r)][i], 4);
      std::memcpy(&want, &expected[i], 4);
      ASSERT_EQ(got, want)
          << "rank " << r << " diverges from the simulator at element " << i;
    }
  }
  fs::remove_all(workdir);
}

TEST(DistLaunchTest, TwoProcessesMatchSimulatorSingleThread) {
  RunLaunch(/*world=*/2, /*threads=*/1);
}

TEST(DistLaunchTest, TwoProcessesMatchSimulatorFourThreads) {
  RunLaunch(/*world=*/2, /*threads=*/4);
}

}  // namespace
}  // namespace dist
}  // namespace logcl
