// Tests for the inter-op autograd engine (tensor/backward.cc): bitwise
// parity of the ready-queue executor against the serial tape replay across
// thread counts, the scalar-loss API contract and its explicit-seed escape
// hatch, the kUninit fresh-grad write path under poison mode (including the
// -0.0 normalisation the `0.0f + x` form exists for), full-epoch training
// parity with LOGCL_INTEROP on/off, JIT-chain scheduling under the engine,
// and the logcl.autograd.* metrics.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/observability.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/buffer_pool.h"
#include "tensor/jit.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

// Restores the default thread count when a test exits, pass or fail.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

// Forces the inter-op engine on/off for a scope and restores the previous
// mode (which may come from the LOGCL_INTEROP env var).
struct InterOpModeGuard {
  explicit InterOpModeGuard(bool enabled) : previous_(InterOpEnabled()) {
    SetInterOpEnabled(enabled);
  }
  ~InterOpModeGuard() { SetInterOpEnabled(previous_); }
  bool previous_;
};

// Scoped poison mode (read-before-write detection on kUninit buffers).
struct PoisonModeGuard {
  explicit PoisonModeGuard(bool enabled) : previous_(PoisonUninitEnabled()) {
    SetPoisonUninitEnabled(enabled);
  }
  ~PoisonModeGuard() { SetPoisonUninitEnabled(previous_); }
  bool previous_;
};

// Scoped JIT capture mode.
struct JitModeGuard {
  explicit JitModeGuard(bool enabled) : previous_(jit::JitEnabled()) {
    jit::SetJitEnabled(enabled);
  }
  ~JitModeGuard() { jit::SetJitEnabled(previous_); }
  bool previous_;
};

// --- Diamond workload -------------------------------------------------------
//
// One shared input feeds `branches` independent MatMul + activation towers
// whose scalar summaries re-join into a single loss. The shared input has
// one distinct consumer per branch (>= 8 below), and the towers carry no
// data dependencies between each other, so the ready queue can run them
// concurrently — exactly the shape the per-parent consumer chains must
// serialise into tape order to stay bitwise-equal to the serial replay.

struct DiamondResult {
  float loss = 0.0f;
  std::vector<std::vector<float>> grads;  // shared input first, then weights
};

DiamondResult RunDiamond(int branches, bool interop, int threads) {
  ThreadCountGuard thread_guard;
  SetNumThreads(threads);
  InterOpModeGuard mode(interop);
  Rng rng(1234);
  Tensor x = Tensor::RandomNormal(Shape{12, 24}, 0.5f, &rng,
                                  /*requires_grad=*/true);
  std::vector<Tensor> weights;
  weights.reserve(branches);
  for (int b = 0; b < branches; ++b) {
    weights.push_back(Tensor::RandomNormal(Shape{24, 24}, 0.5f, &rng,
                                           /*requires_grad=*/true));
  }
  Tensor total;
  for (int b = 0; b < branches; ++b) {
    Tensor h = ops::MatMul(x, weights[b]);
    switch (b % 3) {  // vary activations so branches are not symmetric
      case 0:
        h = ops::Tanh(h);
        break;
      case 1:
        h = ops::Relu(h);
        break;
      default:
        h = ops::Sigmoid(h);
        break;
    }
    h = ops::Mul(h, h);  // h gets two consumer slots of one node
    Tensor term = ops::SumAll(h);
    total = total.defined() ? ops::Add(total, term) : term;
  }
  Tensor loss = ops::Scale(total, 1.0f / static_cast<float>(branches));
  Backward(loss);
  DiamondResult r;
  r.loss = loss.at(0);
  r.grads.push_back(x.grad());
  for (const Tensor& w : weights) r.grads.push_back(w.grad());
  return r;
}

TEST(AutogradParityTest, DiamondBitwiseIdenticalAcrossInterOpAndThreads) {
  // >= 8 distinct consumers of the shared tensor, per the engine's
  // multi-consumer accumulation contract.
  const DiamondResult reference = RunDiamond(10, /*interop=*/false, 1);
  ASSERT_EQ(reference.grads.size(), 11u);
  for (bool interop : {false, true}) {
    for (int threads : {1, 4, 8}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        DiamondResult run = RunDiamond(10, interop, threads);
        EXPECT_EQ(reference.loss, run.loss)
            << "interop=" << interop << " threads=" << threads
            << " repeat=" << repeat;
        ASSERT_EQ(reference.grads.size(), run.grads.size());
        for (size_t i = 0; i < reference.grads.size(); ++i) {
          EXPECT_EQ(reference.grads[i], run.grads[i])
              << "grad " << i << " interop=" << interop
              << " threads=" << threads << " repeat=" << repeat;
        }
      }
    }
  }
}

// Randomised DAGs with heavy tensor sharing: every intermediate is eligible
// as an operand of later ops, so multi-consumer chains of varying length and
// interleaving appear. Serial and inter-op engines must agree bitwise.
TEST(AutogradParityTest, RandomSharedDagsBitwiseIdentical) {
  auto run = [](uint64_t seed, bool interop, int threads) {
    ThreadCountGuard thread_guard;
    SetNumThreads(threads);
    InterOpModeGuard mode(interop);
    Rng rng(seed);
    const Shape shape{6, 8};
    std::vector<Tensor> pool;
    pool.push_back(Tensor::RandomNormal(shape, 0.5f, &rng, true));
    pool.push_back(Tensor::RandomNormal(shape, 0.5f, &rng, true));
    for (int step = 0; step < 40; ++step) {
      const Tensor& a = pool[rng.UniformInt(pool.size())];
      const Tensor& b = pool[rng.UniformInt(pool.size())];
      Tensor out;
      switch (rng.UniformInt(6)) {
        case 0:
          out = ops::Add(a, b);
          break;
        case 1:
          out = ops::Sub(a, b);
          break;
        case 2:
          out = ops::Mul(a, b);
          break;
        case 3:
          out = ops::Tanh(a);
          break;
        case 4:
          out = ops::Relu(a);
          break;
        default:
          out = ops::Scale(a, 0.5f);
          break;
      }
      pool.push_back(out);
    }
    Tensor loss = ops::MeanAll(pool.back());
    for (size_t i = pool.size() - 4; i < pool.size() - 1; ++i) {
      loss = ops::Add(loss, ops::MeanAll(pool[i]));
    }
    Backward(loss);
    std::vector<std::vector<float>> grads;
    grads.push_back(pool[0].grad());
    grads.push_back(pool[1].grad());
    return grads;
  };
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto reference = run(seed, /*interop=*/false, 1);
    for (int threads : {4, 8}) {
      auto parallel = run(seed, /*interop=*/true, threads);
      ASSERT_EQ(reference.size(), parallel.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i], parallel[i])
            << "seed=" << seed << " threads=" << threads << " leaf=" << i;
      }
    }
  }
}

// --- API contract -----------------------------------------------------------

TEST(AutogradApiDeathTest, BackwardRequiresScalarLoss) {
  Tensor x = Tensor::Full(Shape{2, 3}, 1.0f, /*requires_grad=*/true);
  Tensor y = ops::Scale(x, 2.0f);
  EXPECT_DEATH(Backward(y), "scalar loss");
}

TEST(AutogradApiDeathTest, SeedGradientMustMatchLossSize) {
  Tensor x = Tensor::Full(Shape{2, 3}, 1.0f, /*requires_grad=*/true);
  Tensor y = ops::Scale(x, 2.0f);
  Tensor seed = Tensor::Full(Shape{2, 2}, 1.0f);
  EXPECT_DEATH(Backward(y, seed), "seed");
}

// Backward(y, seed) is defined as d(sum(y * seed))/dx. With a seed whose
// values survive the product exactly (powers of two), the explicit-seed path
// must be bitwise-equal to the scalar-loss formulation.
TEST(AutogradApiTest, ExplicitSeedGradientMatchesScalarFormulation) {
  auto make_input = [] {
    Rng rng(77);
    return Tensor::RandomNormal(Shape{4, 5}, 1.0f, &rng,
                                /*requires_grad=*/true);
  };
  Tensor x1 = make_input();
  Tensor y1 = ops::Tanh(x1);
  Tensor seed = Tensor::Full(Shape{4, 5}, 0.5f);
  Backward(y1, seed);

  Tensor x2 = make_input();
  Tensor loss = ops::SumAll(ops::Mul(ops::Tanh(x2), seed));
  Backward(loss);

  EXPECT_EQ(x1.grad(), x2.grad());
}

// --- Fresh-grad (kUninit) path ---------------------------------------------

// With poison mode on, a read of an unwritten pooled buffer surfaces as NaN.
// The fresh-grad path acquires grads as kUninit and promises full coverage;
// if any kernel under-writes, the poison leaks into the leaf grads.
TEST(AutogradFreshGradTest, PoisonModeStaysCleanUnderInterOp) {
  PoisonModeGuard poison(true);
  DiamondResult r = RunDiamond(9, /*interop=*/true, 4);
  EXPECT_TRUE(std::isfinite(r.loss));
  for (const auto& grad : r.grads) {
    for (float g : grad) ASSERT_TRUE(std::isfinite(g)) << "poisoned grad";
  }
}

// The fresh kernels write `0.0f + contribution`, not a plain store, so that
// a -0.0 contribution lands as +0.0 exactly like accumulating into a zeroed
// buffer. Mul backward with g = -1 against a zero operand produces -0.0
// contributions; the leaf grad must come out +0.0 on both paths.
TEST(AutogradFreshGradTest, NegativeZeroContributionsNormalised) {
  auto leaf_grad = [](bool interop) {
    InterOpModeGuard mode(interop);
    Tensor x = Tensor::Full(Shape{3, 7}, 2.0f, /*requires_grad=*/true);
    Tensor zeros = Tensor::Zeros(Shape{3, 7});
    // d(loss)/dx = -1 * zeros = -0.0 per element before normalisation.
    Tensor loss = ops::Scale(ops::SumAll(ops::Mul(x, zeros)), -1.0f);
    Backward(loss);
    return x.grad();
  };
  for (bool interop : {false, true}) {
    std::vector<float> grad = leaf_grad(interop);
    ASSERT_EQ(grad.size(), 21u);
    for (float g : grad) {
      EXPECT_EQ(g, 0.0f) << "interop=" << interop;
      EXPECT_FALSE(std::signbit(g)) << "-0.0 leaked, interop=" << interop;
    }
  }
}

// --- Full-epoch parity ------------------------------------------------------

struct EpochResult {
  double loss = 0.0;
  std::vector<std::vector<float>> scores;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> grads;
};

TkgDataset SmallDataset() {
  SynthConfig config;
  config.seed = 88;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  return GenerateSyntheticTkg(config);
}

EpochResult RunEpochInterOp(const TkgDataset& d, bool interop) {
  InterOpModeGuard mode(interop);
  LogClConfig config;
  config.embedding_dim = 8;
  config.local.history_length = 2;
  config.local.num_layers = 1;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 4;
  config.seed = 99;
  LogClModel model(&d, config);
  AdamOptimizer optimizer(model.Parameters(), {});
  EpochResult r;
  r.loss = model.TrainEpoch(&optimizer).loss;
  r.scores = model.ScoreQueries({{0, 0, 1, 13}, {2, 1, 3, 13}});
  for (const Tensor& p : model.Parameters()) {
    r.params.push_back(p.data());
    r.grads.push_back(p.grad());
  }
  return r;
}

TEST(AutogradEpochParityTest, TrainEpochBitwiseIdenticalInterOpOnOff) {
  TkgDataset d = SmallDataset();
  for (int threads : {1, 4}) {
    ThreadCountGuard thread_guard;
    SetNumThreads(threads);
    EpochResult on = RunEpochInterOp(d, /*interop=*/true);
    EpochResult off = RunEpochInterOp(d, /*interop=*/false);
    EXPECT_EQ(on.loss, off.loss) << threads << " threads";
    EXPECT_EQ(on.scores, off.scores) << threads << " threads";
    ASSERT_EQ(on.params.size(), off.params.size());
    for (size_t i = 0; i < on.params.size(); ++i) {
      EXPECT_EQ(on.params[i], off.params[i])
          << "parameter " << i << " at " << threads << " threads";
      EXPECT_EQ(on.grads[i], off.grads[i])
          << "grad " << i << " at " << threads << " threads";
    }
  }
}

// JIT fused-chain nodes are scheduled as ordinary engine nodes; capture +
// replay under the inter-op engine must match the serial engine bitwise.
TEST(AutogradEpochParityTest, JitChainsScheduleBitwiseUnderInterOp) {
  JitModeGuard jit(true);
  TkgDataset d = SmallDataset();
  ThreadCountGuard thread_guard;
  SetNumThreads(4);
  EpochResult on = RunEpochInterOp(d, /*interop=*/true);
  EpochResult off = RunEpochInterOp(d, /*interop=*/false);
  EXPECT_EQ(on.loss, off.loss);
  EXPECT_EQ(on.scores, off.scores);
  ASSERT_EQ(on.params.size(), off.params.size());
  for (size_t i = 0; i < on.params.size(); ++i) {
    EXPECT_EQ(on.params[i], off.params[i]) << "parameter " << i;
    EXPECT_EQ(on.grads[i], off.grads[i]) << "grad " << i;
  }
}

// --- Metrics ----------------------------------------------------------------

class AutogradMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = ObservabilityEnabled();
    SetObservabilityEnabled(true);  // CI also runs with LOGCL_OBSERVABILITY=0
  }
  void TearDown() override { SetObservabilityEnabled(previous_); }
  bool previous_ = false;
};

TEST_F(AutogradMetricsTest, EngineCountersPublished) {
  MetricsSnapshot before = Metrics().Snapshot();
  RunDiamond(10, /*interop=*/true, 4);
  MetricsSnapshot after = Metrics().Snapshot();
  EXPECT_GT(after.CounterValue("logcl.autograd.backwards"),
            before.CounterValue("logcl.autograd.backwards"));
  EXPECT_GT(after.CounterValue("logcl.autograd.interop_backwards"),
            before.CounterValue("logcl.autograd.interop_backwards"));
  EXPECT_GT(after.CounterValue("logcl.autograd.nodes"),
            before.CounterValue("logcl.autograd.nodes"));
  // Every executed node is attributed to exactly one drain mode.
  uint64_t executed = after.CounterValue("logcl.autograd.inline_nodes") +
                      after.CounterValue("logcl.autograd.pooled_nodes");
  uint64_t executed_before =
      before.CounterValue("logcl.autograd.inline_nodes") +
      before.CounterValue("logcl.autograd.pooled_nodes");
  EXPECT_EQ(executed - executed_before,
            after.CounterValue("logcl.autograd.nodes") -
                before.CounterValue("logcl.autograd.nodes"));
  EXPECT_GE(after.HistogramValue("logcl.autograd.ready_depth").count,
            before.HistogramValue("logcl.autograd.ready_depth").count);
}

TEST_F(AutogradMetricsTest, SerialEngineSkipsInterOpCounters) {
  MetricsSnapshot before = Metrics().Snapshot();
  RunDiamond(10, /*interop=*/false, 4);
  MetricsSnapshot after = Metrics().Snapshot();
  EXPECT_GT(after.CounterValue("logcl.autograd.backwards"),
            before.CounterValue("logcl.autograd.backwards"));
  EXPECT_EQ(after.CounterValue("logcl.autograd.interop_backwards"),
            before.CounterValue("logcl.autograd.interop_backwards"));
}

}  // namespace
}  // namespace logcl
