// Tests for reduced-precision snapshot scoring (serve/quant.h): bf16
// round-to-nearest-even conversion, symmetric per-row int8 quantization, and
// the statistical gates the serving integration is held to — per-query
// Spearman rank correlation >= 0.99 and |delta MRR| <= 0.005 against the
// fp32 scorer on a synthetic eval set. Quantized scoring has no bitwise
// contract with fp32; these gates are the contract.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/logcl_model.h"
#include "eval/metrics.h"
#include "eval/ranking.h"
#include "serve/engine_snapshot.h"
#include "serve/inference_engine.h"
#include "serve/quant.h"
#include "synth/generator.h"
#include "tkg/dataset.h"

namespace logcl {
namespace {

// --- bf16 conversion --------------------------------------------------------

float FromBits(uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

TEST(Bf16Test, ExactValuesRoundTrip) {
  for (float v : {0.0f, -0.0f, 1.0f, -2.5f, 0.15625f, 128.0f,
                  std::numeric_limits<float>::infinity(),
                  -std::numeric_limits<float>::infinity()}) {
    EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(v)), v) << v;
  }
}

TEST(Bf16Test, RoundsToNearest) {
  // 0x3f80'0001 (just above 1.0) is nearer 1.0 than the next bf16 step.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f800001u)), 0x3f80u);
  // 0x3f80'c000 is past the halfway point between 0x3f80 and 0x3f81.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x3f80c000u)), 0x3f81u);
}

TEST(Bf16Test, TiesGoToEven) {
  // Discarded bits exactly 0x8000: round toward the even 16-bit result.
  EXPECT_EQ(Bf16FromFloat(FromBits(0x40008000u)), 0x4000u);  // even stays
  EXPECT_EQ(Bf16FromFloat(FromBits(0x40018000u)), 0x4002u);  // odd bumps
}

TEST(Bf16Test, NanStaysNan) {
  uint16_t q = Bf16FromFloat(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(Bf16ToFloat(q)));
  // A NaN whose payload lives entirely in the discarded bits must not
  // truncate to infinity.
  EXPECT_TRUE(std::isnan(Bf16ToFloat(Bf16FromFloat(FromBits(0x7f800001u)))));
}

TEST(Bf16Test, RelativeErrorBounded) {
  // bf16 keeps 8 mantissa bits: relative error <= 2^-9 after rounding.
  for (float v : {3.14159f, -0.001234f, 12345.678f, 1e-20f, -7.77e8f}) {
    float back = Bf16ToFloat(Bf16FromFloat(v));
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 512.0f)) << v;
  }
}

// --- int8 symmetric per-row quantization ------------------------------------

TEST(Int8QuantTest, CodesAndScale) {
  const float row[] = {-1.0f, 0.0f, 0.5f, 1.0f};
  int8_t codes[4];
  float scale = QuantizeRowInt8(row, 4, codes);
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
  EXPECT_EQ(codes[0], -127);
  EXPECT_EQ(codes[1], 0);
  EXPECT_EQ(codes[2], 64);  // 63.5 ties-to-even -> 64
  EXPECT_EQ(codes[3], 127);
}

TEST(Int8QuantTest, AllZeroRowHasZeroScale) {
  const float row[] = {0.0f, 0.0f, 0.0f};
  int8_t codes[3] = {9, 9, 9};
  EXPECT_EQ(QuantizeRowInt8(row, 3, codes), 0.0f);
  for (int8_t c : codes) EXPECT_EQ(c, 0);
}

TEST(Int8QuantTest, ReconstructionErrorWithinHalfStep) {
  std::vector<float> row;
  for (int i = 0; i < 57; ++i) {
    row.push_back(static_cast<float>(i * 13 % 29) / 7.0f - 2.0f);
  }
  std::vector<int8_t> codes(row.size());
  float scale = QuantizeRowInt8(row.data(), row.size(), codes.data());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_LE(std::fabs(row[i] - scale * codes[i]), scale * 0.5f + 1e-7f);
  }
}

TEST(Int8QuantTest, PerRowScalesAreIndependent) {
  // Two rows with very different ranges must not share a scale.
  const float m[] = {100.0f, -50.0f, 0.01f, -0.005f};
  Int8Matrix q = QuantizeInt8PerRow(m, 2, 2);
  EXPECT_FLOAT_EQ(q.scales[0], 100.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[1], 0.01f / 127.0f);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[2], 127);
}

TEST(QuantBundleTest, Fp32BundleIsEmpty) {
  Tensor m = Tensor::Zeros(Shape{4, 8});
  QuantizedCandidates q =
      BuildQuantizedCandidates(m, ScorePrecision::kFp32);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.precision, ScorePrecision::kFp32);
}

TEST(QuantPrecisionEnvTest, ParsesKnownNames) {
  EXPECT_STREQ(PrecisionName(ScorePrecision::kFp32), "fp32");
  EXPECT_STREQ(PrecisionName(ScorePrecision::kBf16), "bf16");
  EXPECT_STREQ(PrecisionName(ScorePrecision::kInt8), "int8");
}

// --- statistical gates on the serving path ----------------------------------

TkgDataset QuantData() {
  SynthConfig config;
  config.name = "quant-test";
  config.seed = 404;
  config.num_entities = 25;
  config.num_relations = 5;
  config.num_timestamps = 30;
  config.recurring_pool = 25;
  config.recurring_prob = 0.35;
  config.alternating_pool = 12;
  config.num_cyclic = 8;
  config.chains_per_timestamp = 2.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

LogClConfig QuantModelConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 77;
  return config;
}

// A batch wide enough for stable rank statistics: every entity appears as a
// subject, relations cycle.
std::vector<ServeQuery> EvalQueries(const TkgDataset& data) {
  std::vector<ServeQuery> queries;
  for (int64_t s = 0; s < data.num_entities(); ++s) {
    queries.push_back({s, s % data.num_base_relations()});
  }
  return queries;
}

// Spearman rank correlation between two score rows (average ranks for ties).
double Spearman(const std::vector<float>& a, const std::vector<float>& b) {
  auto ranks = [](const std::vector<float>& v) {
    std::vector<int64_t> order(v.size());
    for (size_t i = 0; i < v.size(); ++i) order[i] = static_cast<int64_t>(i);
    std::sort(order.begin(), order.end(),
              [&](int64_t x, int64_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      while (j + 1 < order.size() &&
             v[order[j + 1]] == v[order[i]]) {
        ++j;
      }
      double mean_rank = 0.5 * (static_cast<double>(i) +
                                static_cast<double>(j)) + 1.0;
      for (size_t t = i; t <= j; ++t) r[order[t]] = mean_rank;
      i = j + 1;
    }
    return r;
  };
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(ra.size());
  mb /= static_cast<double>(rb.size());
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

double MrrOf(const std::vector<std::vector<float>>& scores,
             const TkgDataset& data) {
  MetricsAccumulator acc;
  for (size_t i = 0; i < scores.size(); ++i) {
    // Deterministic spread of targets across entities.
    int64_t target = static_cast<int64_t>(i * 7 + 3) % data.num_entities();
    acc.AddRank(RankOfTarget(scores[i], target));
  }
  return acc.Result().mrr / 100.0;
}

std::vector<std::vector<float>> Fp32Rows(const EngineSnapshot& snapshot,
                                         const std::vector<ServeQuery>& qs) {
  Tensor scores = snapshot.ScoreBatch(qs);
  int64_t cols = scores.shape().cols();
  const float* data = scores.data().data();
  std::vector<std::vector<float>> rows(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    const float* row = data + static_cast<int64_t>(i) * cols;
    rows[i].assign(row, row + cols);
  }
  return rows;
}

class QuantGateTest : public ::testing::TestWithParam<ScorePrecision> {};

TEST_P(QuantGateTest, SpearmanAndMrrParityWithFp32) {
  ScorePrecision precision = GetParam();
  TkgDataset data = QuantData();
  LogClModel model(&data, QuantModelConfig());
  auto fp32 = EngineSnapshot::Build(&model, 25, ScorePrecision::kFp32);
  auto quant = EngineSnapshot::Build(&model, 25, precision);
  ASSERT_EQ(fp32->precision(), ScorePrecision::kFp32);
  ASSERT_EQ(quant->precision(), precision);

  std::vector<ServeQuery> queries = EvalQueries(data);
  std::vector<std::vector<float>> exact = Fp32Rows(*fp32, queries);
  std::vector<std::vector<float>> approx = quant->ScoreBatchQuantized(queries);
  ASSERT_EQ(exact.size(), approx.size());

  for (size_t i = 0; i < exact.size(); ++i) {
    ASSERT_EQ(exact[i].size(), approx[i].size());
    EXPECT_GE(Spearman(exact[i], approx[i]), 0.99) << "query " << i;
  }
  EXPECT_LE(std::fabs(MrrOf(exact, data) - MrrOf(approx, data)), 0.005);
}

INSTANTIATE_TEST_SUITE_P(Precisions, QuantGateTest,
                         ::testing::Values(ScorePrecision::kBf16,
                                           ScorePrecision::kInt8));

TEST(QuantSnapshotTest, GlobalOnlyModelFallsBackToFp32) {
  TkgDataset data = QuantData();
  LogClConfig config = QuantModelConfig();
  config.use_local = false;  // no query-independent candidate matrix
  LogClModel model(&data, config);
  auto snapshot = EngineSnapshot::Build(&model, 25, ScorePrecision::kInt8);
  EXPECT_EQ(snapshot->precision(), ScorePrecision::kFp32);
  EXPECT_TRUE(snapshot->quantized_candidates().empty());
}

TEST(QuantSnapshotTest, AdvanceRequantizesMatchingFreshBuild) {
  TkgDataset data = QuantData();
  LogClModel model(&data, QuantModelConfig());
  int64_t horizon = 25;
  ASSERT_FALSE(data.FactsAt(horizon).empty());
  auto built = EngineSnapshot::Build(&model, horizon, ScorePrecision::kInt8);
  auto advanced = built->Advance(data.FactsAt(horizon));
  ASSERT_EQ(advanced->precision(), ScorePrecision::kInt8);

  // The advanced window equals the dataset's own window at horizon + 1, so
  // a fresh build there must produce identical quantized scores.
  auto fresh =
      EngineSnapshot::Build(&model, horizon + 1, ScorePrecision::kInt8);
  std::vector<ServeQuery> queries = EvalQueries(data);
  EXPECT_EQ(advanced->ScoreBatchQuantized(queries),
            fresh->ScoreBatchQuantized(queries));
}

TEST(QuantEngineTest, QuantizedEngineAnswersMatchSnapshotScoring) {
  TkgDataset data = QuantData();
  LogClModel model(&data, QuantModelConfig());
  EngineOptions options;
  options.precision = ScorePrecision::kInt8;
  InferenceEngine engine(&model, 25, options);
  ASSERT_EQ(engine.snapshot()->precision(), ScorePrecision::kInt8);

  // Full-row answers come straight from ScoreBatchQuantized on a
  // singleton batch.
  ServeQuery q{3, 1};
  std::vector<float> row = engine.Score(q);
  std::vector<std::vector<float>> direct =
      engine.snapshot()->ScoreBatchQuantized({q});
  EXPECT_EQ(row, direct[0]);

  // Top-k selection runs on the quantized logits.
  auto top = engine.TopK(q, 3);
  ASSERT_EQ(top.size(), 3u);
  std::vector<int64_t> expect =
      TopKPartial(direct[0].data(), static_cast<int64_t>(direct[0].size()), 3);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].first, expect[i]);
  }
}

}  // namespace
}  // namespace logcl
