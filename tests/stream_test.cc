// Tests for the streaming continual-learning tier: SparseAdam bitwise parity
// with dense Adam (including lazy catch-up and signed-zero corner cases),
// mmap checkpoint round-trips and dirty-row writeback, typed admission-
// control shedding under overload (and that it never deadlocks), the
// StreamGenerator's statistics, and the StreamSession's drift numbers
// against an offline re-evaluation built from the public primitives.

#include <atomic>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/logcl_model.h"
#include "eval/drift.h"
#include "serve/engine_snapshot.h"
#include "serve/inference_engine.h"
#include "stream/stream_generator.h"
#include "stream/stream_session.h"
#include "synth/generator.h"
#include "tensor/buffer_pool.h"
#include "tensor/checkpoint.h"
#include "tensor/optimizer.h"
#include "tensor/sparse_adam.h"

namespace logcl {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SparseAdam parity
// ---------------------------------------------------------------------------

std::vector<Tensor> DeterministicParams() {
  std::vector<float> a(8 * 4);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.05f * static_cast<float>(i % 11) - 0.2f;
  }
  std::vector<float> b(6);
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.3f - 0.07f * static_cast<float>(i);
  }
  return {Tensor::FromVector(Shape({8, 4}), a, /*requires_grad=*/true),
          Tensor::FromVector(Shape({6}), b, /*requires_grad=*/true)};
}

/// Writes `value(i)` into row `row` of the parameter's gradient.
void SetRowGrad(Tensor& parameter, int64_t row, float base) {
  int64_t row_len = parameter.shape().rank() == 1
                        ? 1
                        : parameter.num_elements() / parameter.shape().dim(0);
  std::vector<float>& grad = parameter.mutable_grad();
  for (int64_t j = 0; j < row_len; ++j) {
    grad[static_cast<size_t>(row * row_len + j)] =
        base + 0.01f * static_cast<float>(j);
  }
}

void ExpectBitwiseEqual(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].num_elements(), b[i].num_elements());
    EXPECT_EQ(0, std::memcmp(a[i].data().data(), b[i].data().data(),
                             sizeof(float) * a[i].data().size()))
        << "parameter " << i << " diverged";
  }
}

class StreamSparseAdamTest : public ::testing::TestWithParam<float> {};

TEST_P(StreamSparseAdamTest, BitwiseParityWithDenseAdam) {
  AdamOptions options;
  options.learning_rate = 0.05f;
  options.weight_decay = GetParam();

  std::vector<Tensor> dense_params = DeterministicParams();
  std::vector<Tensor> sparse_params = DeterministicParams();
  AdamOptimizer dense(dense_params, options);
  SparseAdamOptimizer sparse(sparse_params, options);

  // Scripted touch sets: rows come and go, some rows stay silent for many
  // steps before being touched again (exercising multi-step replay).
  const std::vector<std::vector<int64_t>> touches_p0 = {
      {0, 3}, {3}, {1, 5, 7}, {0}, {}, {3, 5}, {2}, {0, 1, 2, 3, 4, 5, 6, 7}};
  const std::vector<std::vector<int64_t>> touches_p1 = {
      {2}, {}, {0, 5}, {}, {1}, {2}, {}, {0, 1, 2, 3, 4, 5}};

  for (size_t s = 0; s < touches_p0.size(); ++s) {
    dense.ZeroGrad();
    sparse.ZeroGrad();
    float base = 0.1f + 0.03f * static_cast<float>(s);
    for (int64_t row : touches_p0[s]) {
      SetRowGrad(dense_params[0], row, base);
      SetRowGrad(sparse_params[0], row, base);
    }
    for (int64_t row : touches_p1[s]) {
      SetRowGrad(dense_params[1], row, -base);
      SetRowGrad(sparse_params[1], row, -base);
    }
    dense.Step();
    std::vector<std::vector<int64_t>> touched;
    for (const Tensor& p : sparse_params) {
      touched.push_back(SparseAdamOptimizer::NonZeroGradRows(p));
    }
    EXPECT_EQ(touched[0], touches_p0[s]);
    EXPECT_EQ(touched[1], touches_p1[s]);
    sparse.Step(touched);

    // Touched rows must already match dense, step by step.
    for (int64_t row : touches_p0[s]) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(dense_params[0].at(row, j), sparse_params[0].at(row, j))
            << "step " << s << " row " << row;
      }
    }
  }

  // After CatchUp every row (touched or not) is bitwise the dense state.
  sparse.CatchUp();
  ExpectBitwiseEqual(dense_params, sparse_params);

  // Parity survives further sparse steps after a CatchUp.
  dense.ZeroGrad();
  sparse.ZeroGrad();
  SetRowGrad(dense_params[0], 6, 0.2f);
  SetRowGrad(sparse_params[0], 6, 0.2f);
  dense.Step();
  sparse.Step({{6}, {}});
  sparse.CatchUp();
  ExpectBitwiseEqual(dense_params, sparse_params);
  EXPECT_EQ(dense.num_steps(), sparse.num_steps());
}

INSTANTIATE_TEST_SUITE_P(WeightDecay, StreamSparseAdamTest,
                         ::testing::Values(0.0f, 0.01f));

TEST(StreamSparseAdamRowsTest, NegativeZeroGradientCountsAsTouched) {
  Tensor p = Tensor::Zeros(Shape({3, 2}), /*requires_grad=*/true);
  std::vector<float>& grad = p.mutable_grad();
  grad.assign(p.data().size(), 0.0f);
  grad[2] = -0.0f;  // row 1: signed zero — nonzero bits, zero value
  grad[4] = 1.0f;   // row 2: plainly touched
  std::vector<int64_t> rows = SparseAdamOptimizer::NonZeroGradRows(p);
  EXPECT_EQ(rows, (std::vector<int64_t>{1, 2}));
}

TEST(StreamSparseAdamRowsTest, DirtyRowsDrainOnceAndAccumulate) {
  std::vector<Tensor> params = DeterministicParams();
  SparseAdamOptimizer sparse(params, {});
  sparse.ZeroGrad();
  SetRowGrad(params[0], 2, 0.5f);
  SetRowGrad(params[1], 4, 0.5f);
  sparse.Step({{2}, {4}});
  std::vector<std::vector<int64_t>> dirty = sparse.DrainDirtyRows();
  EXPECT_EQ(dirty[0], (std::vector<int64_t>{2}));
  EXPECT_EQ(dirty[1], (std::vector<int64_t>{4}));
  // Drained: nothing new until the next step touches something.
  dirty = sparse.DrainDirtyRows();
  EXPECT_TRUE(dirty[0].empty());
  EXPECT_TRUE(dirty[1].empty());
}

// ---------------------------------------------------------------------------
// Mmap checkpoint
// ---------------------------------------------------------------------------

TEST(StreamCheckpointTest, MmapViewMatchesInMemoryLoad) {
  std::vector<Tensor> params = DeterministicParams();
  fs::path path = fs::temp_directory_path() / "stream_ckpt_roundtrip.bin";
  ASSERT_TRUE(checkpoint::Save(params, path.string()).ok());

  std::vector<Tensor> loaded = {Tensor::Zeros(Shape({8, 4})),
                                Tensor::Zeros(Shape({6}))};
  ASSERT_TRUE(checkpoint::Load(path.string(), &loaded).ok());
  ExpectBitwiseEqual(params, loaded);

  Result<checkpoint::MmapCheckpoint> opened = checkpoint::Open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  checkpoint::MmapCheckpoint view = std::move(opened).value();
  ASSERT_EQ(view.tensor_count(), 2u);
  std::vector<Tensor> materialized = {Tensor::Zeros(Shape({8, 4})),
                                      Tensor::Zeros(Shape({6}))};
  ASSERT_TRUE(view.Materialize(&materialized).ok());
  ExpectBitwiseEqual(params, materialized);
  // The raw view aliases the same bytes Load produced.
  EXPECT_EQ(0, std::memcmp(view.data(0), params[0].data().data(),
                           sizeof(float) * params[0].data().size()));
  fs::remove(path);
}

TEST(StreamCheckpointTest, WritebackRowsPersistsOnlyDirtyRows) {
  std::vector<Tensor> params = DeterministicParams();
  fs::path path = fs::temp_directory_path() / "stream_ckpt_writeback.bin";
  ASSERT_TRUE(checkpoint::Save(params, path.string()).ok());

  // Mutate rows 1 and 5 of the matrix and element 3 of the vector.
  std::vector<Tensor> mutated = DeterministicParams();
  for (int64_t j = 0; j < 4; ++j) {
    mutated[0].mutable_data()[1 * 4 + j] = 9.0f + static_cast<float>(j);
    mutated[0].mutable_data()[5 * 4 + j] = -9.0f - static_cast<float>(j);
  }
  mutated[1].mutable_data()[3] = 42.0f;

  {
    Result<checkpoint::MmapCheckpoint> opened =
        checkpoint::Open(path.string());
    ASSERT_TRUE(opened.ok());
    checkpoint::MmapCheckpoint view = std::move(opened).value();
    ASSERT_TRUE(view.WritebackRows(0, mutated[0], {1, 5}).ok());
    ASSERT_TRUE(view.WritebackRows(1, mutated[1], {3}).ok());
    ASSERT_TRUE(view.Flush().ok());
  }

  // Re-read from scratch: dirty rows carry the new values, the rest the old.
  std::vector<Tensor> reread = {Tensor::Zeros(Shape({8, 4})),
                                Tensor::Zeros(Shape({6}))};
  ASSERT_TRUE(checkpoint::Load(path.string(), &reread).ok());
  for (int64_t row = 0; row < 8; ++row) {
    for (int64_t j = 0; j < 4; ++j) {
      float expected = (row == 1 || row == 5) ? mutated[0].at(row, j)
                                              : params[0].at(row, j);
      EXPECT_EQ(expected, reread[0].at(row, j)) << row << "," << j;
    }
  }
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(i == 3 ? 42.0f : params[1].at(i), reread[1].at(i));
  }
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Pool cap under streaming size drift
// ---------------------------------------------------------------------------

// Streaming ingest grows history-dependent tensor shapes every snapshot, so
// each release lands in a fresh exact-size bucket that nothing ever pops
// again. Without the global-tier byte cap the process grows without bound
// (observed: ~750 MiB/ingest at bench_stream's full profile).
TEST(StreamPoolCapTest, GlobalTierStaysBoundedUnderSizeDrift) {
  const bool pool_was = BufferPoolEnabled();
  const int64_t cap_was = BufferPoolCapBytes();
  SetBufferPoolEnabled(true);
  TrimBufferPool();
  const int64_t cap = int64_t{100} << 20;  // 100 MiB global tier
  SetBufferPoolCapBytes(cap);
  const uint64_t base = PoolSnapshot().pooled_bytes;

  // Each buffer is ~40 MiB — over the thread-cache budget, so every release
  // spills straight to the capped global tier — and every size is new.
  const size_t kBase = (size_t{40} << 20) / sizeof(float);
  bool saw_trim = false;
  uint64_t prev = base;
  for (size_t i = 0; i < 10; ++i) {
    ReleaseBuffer(AcquireBuffer(kBase + i * 1024, BufferFill::kUninit));
    uint64_t pooled = PoolSnapshot().pooled_bytes;
    EXPECT_LE(pooled - base, static_cast<uint64_t>(cap)) << "iteration " << i;
    if (pooled < prev) saw_trim = true;
    prev = pooled;
  }
  EXPECT_TRUE(saw_trim) << "cap never engaged: drifting sizes accumulated";

  // A single buffer larger than the cap is freed, not pooled.
  SetBufferPoolCapBytes(int64_t{1} << 20);
  TrimBufferPool();
  const uint64_t before_oversize = PoolSnapshot().pooled_bytes;
  ReleaseBuffer(AcquireBuffer(kBase, BufferFill::kUninit));
  EXPECT_EQ(before_oversize, PoolSnapshot().pooled_bytes);

  SetBufferPoolCapBytes(cap_was);
  TrimBufferPool();
  SetBufferPoolEnabled(pool_was);
}

// ---------------------------------------------------------------------------
// Admission control under overload
// ---------------------------------------------------------------------------

StreamConfig SmallStreamConfig() {
  StreamConfig config;
  config.num_entities = 40;
  config.num_relations = 6;
  config.facts_per_snapshot = 30;
  config.warmup_timestamps = 6;
  config.repeat_reservoir = 500;
  return config;
}

LogClConfig SmallModelConfig() {
  LogClConfig config;
  config.embedding_dim = 8;
  config.local.history_length = 2;
  return config;
}

TEST(StreamShedTest, SubmitRejectionsAreTyped) {
  StreamGenerator gen(SmallStreamConfig());
  TkgDataset dataset = gen.WarmupDataset();
  LogClModel model(&dataset, SmallModelConfig());
  EngineOptions options;
  options.max_queue_depth = 2;
  InferenceEngine engine(&model, dataset.num_timestamps() - 1, options);

  // Out-of-range ids are a caller bug, not load.
  Result<std::future<InferenceEngine::EngineResponse>> bad =
      engine.Submit(ServeQuery{-1, 0}, 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Pause dispatch so the queue cannot drain, then overfill it: exactly
  // max_queue_depth submissions are accepted, the rest shed kUnavailable.
  engine.Pause();
  std::vector<std::future<InferenceEngine::EngineResponse>> accepted;
  int64_t shed = 0;
  for (int i = 0; i < 10; ++i) {
    Result<std::future<InferenceEngine::EngineResponse>> r =
        engine.Submit(ServeQuery{1, 1}, 3);
    if (r.ok()) {
      accepted.push_back(std::move(r).value());
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(accepted.size()), 2);
  EXPECT_EQ(shed, 8);
  engine.Resume();
  for (std::future<InferenceEngine::EngineResponse>& f : accepted) {
    InferenceEngine::EngineResponse response = f.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.topk.size(), 3u);
  }
  EXPECT_EQ(engine.Snapshot().shed, 8u);
}

TEST(StreamShedTest, DeadlineShedAnswersThroughTheFuture) {
  StreamGenerator gen(SmallStreamConfig());
  TkgDataset dataset = gen.WarmupDataset();
  LogClModel model(&dataset, SmallModelConfig());
  EngineOptions options;
  options.admission_deadline_us = 1000;  // 1ms — ages out while paused
  InferenceEngine engine(&model, dataset.num_timestamps() - 1, options);

  engine.Pause();
  std::vector<std::future<InferenceEngine::EngineResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    Result<std::future<InferenceEngine::EngineResponse>> r =
        engine.Submit(ServeQuery{2, 0}, 0);
    ASSERT_TRUE(r.ok());
    futures.push_back(std::move(r).value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.Resume();
  uint64_t shed = 0;
  for (std::future<InferenceEngine::EngineResponse>& f : futures) {
    InferenceEngine::EngineResponse response = f.get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(engine.Snapshot().shed, shed);
}

TEST(StreamShedTest, OverloadWithPauseResumeNeverDeadlocks) {
  StreamGenerator gen(SmallStreamConfig());
  TkgDataset dataset = gen.WarmupDataset();
  LogClModel model(&dataset, SmallModelConfig());
  EngineOptions options;
  options.max_queue_depth = 8;
  options.admission_deadline_us = 2000;
  InferenceEngine engine(&model, gen.next_time(), options);

  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> shed{0};
  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Result<std::vector<std::pair<int64_t, float>>> r =
            engine.TryTopK(ServeQuery{(c + i) % 40, i % 6}, 5);
        if (r.ok()) {
          answered.fetch_add(1);
        } else {
          EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
          shed.fetch_add(1);
        }
      }
    });
  }
  // Interleave quiesce cycles and an advance with the query storm.
  for (int i = 0; i < 5; ++i) {
    engine.Pause();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    engine.Resume();
  }
  engine.Advance(gen.NextSnapshot());
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(answered.load() + shed.load(),
            static_cast<uint64_t>(kClients * kPerClient));
  // Destructor drains cleanly (no deadlock) — reaching here is the test.
}

// ---------------------------------------------------------------------------
// StreamGenerator statistics
// ---------------------------------------------------------------------------

TEST(StreamGeneratorTest, DeterministicPerSeed) {
  StreamGenerator a(SmallStreamConfig());
  StreamGenerator b(SmallStreamConfig());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.NextSnapshot(), b.NextSnapshot());
  }
  StreamConfig other = SmallStreamConfig();
  other.seed = 99;
  StreamGenerator c(other);
  c.NextSnapshot();
  EXPECT_NE(a.NextSnapshot(), c.NextSnapshot());
}

TEST(StreamGeneratorTest, MeasuredRepeatRateTracksConfigured) {
  StreamConfig config;
  config.num_entities = 500;
  config.num_relations = 20;
  config.facts_per_snapshot = 400;
  config.history_repeat_rate = 0.6;
  StreamGenerator gen(config);
  for (int i = 0; i < 100; ++i) gen.NextSnapshot();
  EXPECT_NEAR(gen.measured_repeat_rate(), 0.6, 0.05);
}

TEST(StreamGeneratorTest, WarmupDatasetCoversExactlyTheWarmupWindow) {
  StreamConfig config = SmallStreamConfig();
  StreamGenerator gen(config);
  TkgDataset dataset = gen.WarmupDataset();
  EXPECT_EQ(dataset.num_timestamps(), config.warmup_timestamps);
  EXPECT_EQ(gen.next_time(), config.warmup_timestamps);
  EXPECT_EQ(dataset.num_entities(), config.num_entities);
  // The live stream continues where the warmup stopped.
  std::vector<Quadruple> next = gen.NextSnapshot();
  ASSERT_FALSE(next.empty());
  EXPECT_EQ(next.front().time, config.warmup_timestamps);
}

TEST(StreamGeneratorTest, ZipfHeadDominates) {
  std::vector<double> cdf = BuildZipfCdf(1000, 1.1);
  ASSERT_EQ(cdf.size(), 1000u);
  // The head rank alone carries far more than the uniform 1/1000 share, and
  // the cdf is monotone ending at 1.
  EXPECT_GT(cdf[0], 0.05);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// StreamSession drift vs offline re-eval
// ---------------------------------------------------------------------------

TEST(StreamSessionTest, DriftMatchesOfflineReEvalOnTwoAdvances) {
  StreamConfig stream = SmallStreamConfig();
  // Two identical universes: same warmup data, same model init, same
  // pretraining, same scripted arrivals.
  StreamGenerator gen_a(stream);
  StreamGenerator gen_b(stream);
  TkgDataset dataset_a = gen_a.WarmupDataset();
  TkgDataset dataset_b = gen_b.WarmupDataset();
  LogClModel model_a(&dataset_a, SmallModelConfig());
  LogClModel model_b(&dataset_b, SmallModelConfig());
  FitModel(&model_a, 2, 0.01f);
  FitModel(&model_b, 2, 0.01f);

  AdamOptions adam;
  adam.learning_rate = 0.01f;

  // Universe A: the StreamSession API.
  StreamSessionOptions options;
  options.adam = adam;
  options.eval_queries = 1 << 20;  // evaluate every arrival
  StreamSession session(&model_a, stream.warmup_timestamps, options);

  // Universe B: the same loop hand-built from the public primitives.
  model_b.SetEvalMode(true);
  SparseAdamOptimizer optimizer_b(model_b.Parameters(), adam);
  std::shared_ptr<const EngineSnapshot> snap =
      EngineSnapshot::Build(&model_b, stream.warmup_timestamps);

  auto score_rows = [](const EngineSnapshot& s,
                       const std::vector<Quadruple>& facts) {
    std::vector<ServeQuery> queries;
    for (const Quadruple& q : facts) queries.push_back({q.subject, q.relation});
    Tensor scores = s.ScoreBatch(queries);
    int64_t cols = scores.shape().cols();
    std::vector<std::vector<float>> rows(queries.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const float* begin =
          scores.data().data() + static_cast<int64_t>(i) * cols;
      rows[i].assign(begin, begin + cols);
    }
    return rows;
  };

  for (int advance = 0; advance < 2; ++advance) {
    std::vector<Quadruple> facts_a = gen_a.NextSnapshot();
    std::vector<Quadruple> facts_b = gen_b.NextSnapshot();
    ASSERT_EQ(facts_a, facts_b);
    int64_t t = snap->time();

    StreamIngestReport report = session.IngestSnapshot(facts_a);

    double stale = EvalScoredFacts(score_rows(*snap, facts_b), facts_b).mrr;
    model_b.ExtendHistory(facts_b);
    std::vector<const SnapshotGraph*> graphs;
    std::vector<int64_t> times;
    for (const auto& [wt, graph] : snap->window()) {
      times.push_back(wt);
      graphs.push_back(graph.get());
    }
    model_b.TrainOnStreamFacts(facts_b, graphs, times, t, &optimizer_b);
    optimizer_b.CatchUp();
    snap = snap->Advance(facts_b);
    double fresh = EvalScoredFacts(score_rows(*snap, facts_b), facts_b).mrr;

    EXPECT_EQ(report.drift.mrr_stale, stale) << "advance " << advance;
    EXPECT_EQ(report.drift.mrr_fresh, fresh) << "advance " << advance;
    EXPECT_EQ(report.drift.count, static_cast<int64_t>(facts_a.size()));
    EXPECT_EQ(report.time, t);
  }
  EXPECT_EQ(session.drift().advances(), 2);
}

TEST(StreamSessionTest, MmapWritebackPersistsFineTunedRows) {
  StreamConfig stream = SmallStreamConfig();
  StreamGenerator gen(stream);
  TkgDataset dataset = gen.WarmupDataset();
  LogClModel model(&dataset, SmallModelConfig());
  FitModel(&model, 1, 0.01f);

  fs::path path = fs::temp_directory_path() / "stream_session_ckpt.bin";
  StreamSessionOptions options;
  options.eval_queries = 8;
  options.mmap_checkpoint_path = path.string();
  {
    StreamSession session(&model, stream.warmup_timestamps, options);
    StreamIngestReport report = session.IngestSnapshot(gen.NextSnapshot());
    EXPECT_GT(report.rows_written, 0);
  }
  // The checkpoint on disk now equals the live fine-tuned parameters.
  std::vector<Tensor> params = model.Parameters();
  std::vector<Tensor> reloaded;
  for (const Tensor& p : params) reloaded.push_back(Tensor::Zeros(p.shape()));
  ASSERT_TRUE(checkpoint::Load(path.string(), &reloaded).ok());
  ExpectBitwiseEqual(params, reloaded);
  fs::remove(path);
}

}  // namespace
}  // namespace logcl
