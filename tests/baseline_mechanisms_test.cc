// Mechanism-level tests for individual baselines: each model's defining
// computation is checked directly (not just smoke-trained).

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "baselines/cenet.h"
#include "baselines/complex.h"
#include "baselines/conve.h"
#include "baselines/de_simple.h"
#include "baselines/distmult.h"
#include "baselines/rotate.h"
#include "baselines/ta_distmult.h"
#include "baselines/tntcomplex.h"
#include "baselines/ttranse.h"
#include "synth/generator.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

TkgDataset TinyData() {
  SynthConfig config;
  config.seed = 606;
  config.num_entities = 12;
  config.num_relations = 3;
  config.num_timestamps = 12;
  config.recurring_pool = 10;
  config.alternating_pool = 5;
  config.num_cyclic = 3;
  config.chains_per_timestamp = 1.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

TEST(DistMultMechanism, ScoreIsBilinearDiagonal) {
  TkgDataset d = TinyData();
  DistMult model(&d, 8);
  // score(s, r, o) must equal sum_k E[s,k] R[r,k] E[o,k].
  std::vector<Tensor> params = model.Parameters();
  const Tensor& entities = params[0];   // [E, 8]
  const Tensor& relations = params[1];  // [2R, 8]
  auto scores = model.ScoreQueries({{2, 1, 0, 5}});
  for (int64_t o = 0; o < d.num_entities(); ++o) {
    float expected = 0.0f;
    for (int64_t k = 0; k < 8; ++k) {
      expected += entities.at(2, k) * relations.at(1, k) * entities.at(o, k);
    }
    EXPECT_NEAR(scores[0][static_cast<size_t>(o)], expected, 1e-4f);
  }
}

TEST(DistMultMechanism, TimeInvariant) {
  // A static model must give identical scores at different query times.
  TkgDataset d = TinyData();
  DistMult model(&d, 8);
  EXPECT_EQ(model.ScoreQueries({{2, 1, 0, 3}}),
            model.ScoreQueries({{2, 1, 0, 9}}));
}

TEST(TTransEMechanism, TimeSensitive) {
  TkgDataset d = TinyData();
  TTransE model(&d, 8);
  EXPECT_NE(model.ScoreQueries({{2, 1, 0, 3}}),
            model.ScoreQueries({{2, 1, 0, 9}}));
}

TEST(TTransEMechanism, ClosestTranslationScoresHighest) {
  // Force entity 0 + relation 0 + time 0 == entity 1 exactly; entity 1 must
  // then be the argmax (distance zero).
  TkgDataset d = TinyData();
  TTransE model(&d, 4);
  std::vector<Tensor> params = model.Parameters();
  // params: entities [E,4], relations [2R,4], time [T,4].
  Tensor entities = params[0];
  Tensor relations = params[1];
  Tensor times = params[2];
  for (int64_t k = 0; k < 4; ++k) {
    entities.mutable_data()[static_cast<size_t>(0 * 4 + k)] = 0.1f * k;
    relations.mutable_data()[static_cast<size_t>(k)] = 0.2f;
    times.mutable_data()[static_cast<size_t>(k)] = 0.05f;
    entities.mutable_data()[static_cast<size_t>(1 * 4 + k)] =
        0.1f * k + 0.2f + 0.05f;
  }
  auto scores = model.ScoreQueries({{0, 0, 1, 0}});
  int64_t best = 0;
  for (int64_t o = 1; o < d.num_entities(); ++o) {
    if (scores[0][static_cast<size_t>(o)] > scores[0][static_cast<size_t>(best)]) {
      best = o;
    }
  }
  EXPECT_EQ(best, 1);
}

TEST(TaDistMultMechanism, TimeModulatesRelation) {
  TkgDataset d = TinyData();
  TaDistMult model(&d, 8);
  EXPECT_NE(model.ScoreQueries({{2, 1, 0, 3}}),
            model.ScoreQueries({{2, 1, 0, 9}}));
}

TEST(DeSimplEMechanism, DiachronicPartMakesEntitiesTimeDependent) {
  TkgDataset d = TinyData();
  DeSimplE model(&d, 8, 0.5f);
  EXPECT_NE(model.ScoreQueries({{2, 1, 0, 3}}),
            model.ScoreQueries({{2, 1, 0, 9}}));
}

TEST(TntComplExMechanism, HasTemporalAndStaticRelationParts) {
  TkgDataset d = TinyData();
  TntComplEx model(&d, 8);
  // Entities, static relations, temporal relations, time table.
  EXPECT_EQ(model.Parameters().size(), 4u);
  EXPECT_NE(model.ScoreQueries({{2, 1, 0, 3}}),
            model.ScoreQueries({{2, 1, 0, 9}}));
}

TEST(RotatEMechanism, RotationPreservesComplexNorm) {
  // |h o r| == |h| for a pure rotation: the rotated query's squared norm
  // equals the subject's. We verify via the score identity
  // score = 2 q.h_o - ||h_o||^2, probing with a one-hot candidate basis is
  // overkill; instead check rotation invariance indirectly: scores against
  // the subject itself must equal 2||h||^2(cos component...) — simplest
  // robust check: rotating by a zero-phase relation is the identity.
  TkgDataset d = TinyData();
  RotatE model(&d, 8);
  std::vector<Tensor> params = model.Parameters();
  Tensor relations = params[1];
  // Zero the phase of relation 0 -> rotation by angle 0 everywhere.
  for (int64_t k = 0; k < 4; ++k) {
    relations.mutable_data()[static_cast<size_t>(k)] = 0.0f;
  }
  // With identity rotation, the best-scoring candidate of (s, r0) is s
  // itself (distance 0 to its own embedding).
  auto scores = model.ScoreQueries({{3, 0, 0, 5}});
  int64_t best = 0;
  for (int64_t o = 1; o < d.num_entities(); ++o) {
    if (scores[0][static_cast<size_t>(o)] > scores[0][static_cast<size_t>(best)]) {
      best = o;
    }
  }
  EXPECT_EQ(best, 3);
}

TEST(ConvEMechanism, RequiresFactorableDim) {
  TkgDataset d = TinyData();
  EXPECT_DEATH(ConvE(&d, /*dim=*/10, /*num_kernels=*/4, /*reshape_h=*/4),
               "factor");
}

TEST(CenetMechanism, FrequencyFeaturesBoostHistoricalAnswers) {
  TkgDataset d = TinyData();
  HistoryIndex history(d);
  Cenet model(&d, 8);
  // Find a test query with a historical answer.
  for (const Quadruple& q : d.test()) {
    auto counts = history.ObjectCountsBefore(q.subject, q.relation, q.time);
    if (counts.empty()) continue;
    // Crank the frequency gain: the most frequent historical object must
    // dominate the untrained similarity term.
    for (Tensor& p : model.Parameters()) {
      if (p.shape().rank() == 0) p.mutable_data()[0] = 100.0f;
    }
    int64_t most_frequent = counts.front().first;
    int64_t best_count = counts.front().second;
    for (const auto& [object, count] : counts) {
      if (count > best_count) {
        most_frequent = object;
        best_count = count;
      }
    }
    auto scores = model.ScoreQueries({q});
    int64_t argmax = 0;
    for (int64_t o = 1; o < d.num_entities(); ++o) {
      if (scores[0][static_cast<size_t>(o)] >
          scores[0][static_cast<size_t>(argmax)]) {
        argmax = o;
      }
    }
    EXPECT_EQ(argmax, most_frequent);
    return;
  }
  GTEST_SKIP() << "no historical query in tiny dataset";
}

TEST(ComplExMechanism, ReducesToDistMultWithZeroImaginary) {
  TkgDataset d = TinyData();
  ComplEx model(&d, 8);
  std::vector<Tensor> params = model.Parameters();
  // Zero the imaginary halves of entities and relations: ComplEx then
  // equals DistMult on the real halves.
  for (size_t table_index : {size_t{0}, size_t{1}}) {
    Tensor table = params[table_index];  // handle aliases the storage
    int64_t rows = table.shape().rows();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t k = 4; k < 8; ++k) {
        table.mutable_data()[static_cast<size_t>(i * 8 + k)] = 0.0f;
      }
    }
  }
  auto scores = model.ScoreQueries({{2, 1, 0, 5}});
  const Tensor& entities = params[0];
  const Tensor& relations = params[1];
  for (int64_t o = 0; o < d.num_entities(); ++o) {
    float expected = 0.0f;
    for (int64_t k = 0; k < 4; ++k) {
      expected += entities.at(2, k) * relations.at(1, k) * entities.at(o, k);
    }
    EXPECT_NEAR(scores[0][static_cast<size_t>(o)], expected, 1e-4f);
  }
}

}  // namespace
}  // namespace logcl
