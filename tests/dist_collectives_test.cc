// Collectives tests: every collective is checked against a single-process
// oracle at world sizes 1, 2 and 3 with in-process rank threads over real
// sockets, including ragged lengths that straddle the chunk boundary. The
// determinism contract — rank-order accumulation, bitwise identical on
// every rank — is asserted with integer compares of the float bits.

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/process_group.h"
#include "dist/transport.h"

namespace logcl {
namespace dist {
namespace {

using WorldBody = std::function<Status(ProcessGroup&)>;

/// Runs `body(group)` on `world` in-process rank threads connected through
/// a loopback TCP rendezvous (port 0 throughout). Returns per-rank Status.
std::vector<Status> RunWorld(int world, const WorldBody& body,
                             int64_t io_timeout_ms = kDefaultIoTimeoutMs) {
  Result<Listener> master = Listener::Open("127.0.0.1:0");
  EXPECT_TRUE(master.ok()) << master.status().message();
  std::string master_address = master.value().bound_address();
  std::vector<Status> results(static_cast<size_t>(world), Status::Ok());
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = world;
      options.master = master_address;
      options.io_timeout_ms = io_timeout_ms;
      if (r == 0) options.master_listener = &master.value();
      Result<std::unique_ptr<ProcessGroup>> group =
          ProcessGroup::Rendezvous(options);
      if (!group.ok()) {
        results[static_cast<size_t>(r)] = group.status();
        return;
      }
      results[static_cast<size_t>(r)] = body(*group.value());
    });
  }
  for (std::thread& t : ranks) t.join();
  return results;
}

/// Deterministic per-rank test pattern with negative values and exact
/// binary fractions mixed with non-exact ones.
float PatternValue(int rank, int64_t i) {
  float sign = ((i + rank) % 3 == 0) ? -1.0f : 1.0f;
  return sign * (0.001f * static_cast<float>((i * 37 + rank * 101) % 997) +
                 static_cast<float>(rank) * 0.25f);
}

void ExpectBitwiseEqual(const std::vector<float>& got,
                        const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    uint32_t g, w;
    std::memcpy(&g, &got[i], 4);
    std::memcpy(&w, &want[i], 4);
    ASSERT_EQ(g, w) << what << " diverges at element " << i;
  }
}

// Chunk-straddling and degenerate lengths. 64*1024 + 13 spans two chunks
// with a ragged tail; 3 * 64 * 1024 exercises a multi-chunk pipeline.
const int64_t kLengths[] = {0, 1, 5, ProcessGroup::kChunkElems + 13,
                            3 * ProcessGroup::kChunkElems};

TEST(CollectivesTest, AllReduceSumMatchesRankOrderOracleAtWorlds123) {
  for (int world = 1; world <= 3; ++world) {
    for (int64_t n : kLengths) {
      // Oracle: left-fold over ranks in ascending order, elementwise —
      // exactly the accumulation order the ring guarantees.
      std::vector<float> oracle(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        float acc = PatternValue(0, i);
        for (int r = 1; r < world; ++r) acc = PatternValue(r, i) + acc;
        oracle[static_cast<size_t>(i)] = acc;
      }
      std::vector<std::vector<float>> outputs(
          static_cast<size_t>(world), std::vector<float>(static_cast<size_t>(n)));
      std::vector<Status> results = RunWorld(world, [&](ProcessGroup& group) {
        std::vector<float>& data = outputs[static_cast<size_t>(group.rank())];
        for (int64_t i = 0; i < n; ++i) {
          data[static_cast<size_t>(i)] = PatternValue(group.rank(), i);
        }
        return group.AllReduceSum(data.data(), n);
      });
      for (int r = 0; r < world; ++r) {
        ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
            << "world " << world << " rank " << r << ": "
            << results[static_cast<size_t>(r)].message();
        ExpectBitwiseEqual(outputs[static_cast<size_t>(r)], oracle,
                           "allreduce");
      }
    }
  }
}

TEST(CollectivesTest, AllReduceSumIsRunToRunDeterministic) {
  const int world = 3;
  const int64_t n = ProcessGroup::kChunkElems + 13;
  std::vector<std::vector<float>> runs;
  for (int run = 0; run < 2; ++run) {
    std::vector<float> rank0_out(static_cast<size_t>(n));
    std::vector<Status> results = RunWorld(world, [&](ProcessGroup& group) {
      std::vector<float> data(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        data[static_cast<size_t>(i)] = PatternValue(group.rank(), i);
      }
      Status status = group.AllReduceSum(data.data(), n);
      if (group.rank() == 0) rank0_out = data;
      return status;
    });
    for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.message();
    runs.push_back(std::move(rank0_out));
  }
  ExpectBitwiseEqual(runs[0], runs[1], "allreduce across runs");
}

TEST(CollectivesTest, BroadcastDeliversRootBufferFromAnyRoot) {
  for (int world = 2; world <= 3; ++world) {
    for (int root : {0, world - 1}) {
      const int64_t n = ProcessGroup::kChunkElems + 7;
      std::vector<float> expected(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        expected[static_cast<size_t>(i)] = PatternValue(root, i);
      }
      std::vector<std::vector<float>> outputs(
          static_cast<size_t>(world), std::vector<float>(static_cast<size_t>(n)));
      std::vector<Status> results = RunWorld(world, [&](ProcessGroup& group) {
        std::vector<float>& data = outputs[static_cast<size_t>(group.rank())];
        if (group.rank() == root) {
          for (int64_t i = 0; i < n; ++i) {
            data[static_cast<size_t>(i)] = PatternValue(root, i);
          }
        }
        return group.Broadcast(data.data(), n, root);
      });
      for (int r = 0; r < world; ++r) {
        ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
            << results[static_cast<size_t>(r)].message();
        ExpectBitwiseEqual(outputs[static_cast<size_t>(r)], expected,
                           "broadcast");
      }
    }
  }
}

TEST(CollectivesTest, AllGatherConcatenatesRankMajor) {
  for (int world = 1; world <= 3; ++world) {
    const int64_t n = 1000;  // deliberately not a multiple of anything
    std::vector<float> expected(static_cast<size_t>(world * n));
    for (int r = 0; r < world; ++r) {
      for (int64_t i = 0; i < n; ++i) {
        expected[static_cast<size_t>(r * n + i)] = PatternValue(r, i);
      }
    }
    std::vector<std::vector<float>> outputs(
        static_cast<size_t>(world),
        std::vector<float>(static_cast<size_t>(world * n)));
    std::vector<Status> results = RunWorld(world, [&](ProcessGroup& group) {
      std::vector<float> input(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        input[static_cast<size_t>(i)] = PatternValue(group.rank(), i);
      }
      return group.AllGather(input.data(), n,
                             outputs[static_cast<size_t>(group.rank())].data());
    });
    for (int r = 0; r < world; ++r) {
      ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
          << results[static_cast<size_t>(r)].message();
      ExpectBitwiseEqual(outputs[static_cast<size_t>(r)], expected,
                         "allgather");
    }
  }
}

TEST(CollectivesTest, BarrierSynchronisesAllRanks) {
  const int world = 3;
  const int rounds = 5;
  std::atomic<int> arrivals{0};
  std::vector<Status> results = RunWorld(world, [&](ProcessGroup& group) {
    for (int round = 0; round < rounds; ++round) {
      arrivals.fetch_add(1);
      LOGCL_RETURN_IF_ERROR(group.Barrier());
      // After the barrier every rank of this round must have arrived.
      if (arrivals.load() < (round + 1) * world) {
        return Status::Internal("barrier released before all ranks arrived");
      }
    }
    return Status::Ok();
  });
  for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.message();
}

TEST(CollectivesTest, DroppedPeerPropagatesStatusNotHang) {
  const int world = 2;
  const int64_t n = 256;
  // Rank 1 exits immediately (destroying its ProcessGroup closes its mesh
  // connections); rank 0's collective must fail within the short deadline
  // instead of hanging.
  std::vector<Status> results = RunWorld(
      world,
      [&](ProcessGroup& group) -> Status {
        if (group.rank() == 1) return Status::Ok();  // drop out
        std::vector<float> data(static_cast<size_t>(n), 1.0f);
        Status status = group.AllReduceSum(data.data(), n);
        if (status.ok()) {
          return Status::Internal("allreduce succeeded against a dead peer");
        }
        return Status::Ok();
      },
      /*io_timeout_ms=*/2000);
  for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.message();
}

TEST(CollectivesTest, RendezvousValidatesOptions) {
  ProcessGroupOptions options;
  options.rank = 2;
  options.world_size = 2;
  EXPECT_EQ(ProcessGroup::Rendezvous(options).status().code(),
            StatusCode::kInvalidArgument);
  options.rank = 0;
  options.world_size = 2;
  options.master = "";  // multi-rank world needs a master
  EXPECT_EQ(ProcessGroup::Rendezvous(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CollectivesTest, WorldOfOneNeedsNoSockets) {
  ProcessGroupOptions options;  // defaults: rank 0, world 1, no master
  Result<std::unique_ptr<ProcessGroup>> group =
      ProcessGroup::Rendezvous(options);
  ASSERT_TRUE(group.ok()) << group.status().message();
  std::vector<float> data = {1.0f, 2.0f};
  ASSERT_TRUE(group.value()->AllReduceSum(data.data(), 2).ok());
  EXPECT_EQ(data[0], 1.0f);
  ASSERT_TRUE(group.value()->Barrier().ok());
  std::vector<float> out(2);
  ASSERT_TRUE(group.value()->AllGather(data.data(), 2, out.data()).ok());
  EXPECT_EQ(out[1], 2.0f);
}

TEST(CollectivesTest, UnixSocketRendezvousWorks) {
  // The mesh inherits the unix transport from the master address (the
  // multi-process launcher path).
  std::string master = "unix:/tmp/logcl_collective_" +
                       std::to_string(::getpid()) + ".sock";
  std::vector<std::thread> ranks;
  std::vector<Status> results(2, Status::Ok());
  std::vector<std::vector<float>> outputs(2, std::vector<float>(3));
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = 2;
      options.master = master;
      Result<std::unique_ptr<ProcessGroup>> group =
          ProcessGroup::Rendezvous(options);
      if (!group.ok()) {
        results[static_cast<size_t>(r)] = group.status();
        return;
      }
      std::vector<float>& data = outputs[static_cast<size_t>(r)];
      for (int64_t i = 0; i < 3; ++i) data[static_cast<size_t>(i)] = PatternValue(r, i);
      results[static_cast<size_t>(r)] =
          group.value()->AllReduceSum(data.data(), 3);
    });
  }
  for (std::thread& t : ranks) t.join();
  for (const Status& s : results) ASSERT_TRUE(s.ok()) << s.message();
  ExpectBitwiseEqual(outputs[0], outputs[1], "unix allreduce");
}

}  // namespace
}  // namespace dist
}  // namespace logcl
