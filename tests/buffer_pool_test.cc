// Tests for the pooled tensor memory subsystem: bucket reuse identity,
// allocation-stats accounting, cross-thread recycling (TSan-covered),
// poison-fill detection of read-before-write kernels, thread-local grad
// mode, and epoch-level bitwise parity of training with the pool on vs off.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

// Restores the default thread count when a test exits, pass or fail.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

// Forces the pool on/off for a scope and restores the previous mode.
struct PoolModeGuard {
  explicit PoolModeGuard(bool enabled) : previous_(BufferPoolEnabled()) {
    SetBufferPoolEnabled(enabled);
  }
  ~PoolModeGuard() { SetBufferPoolEnabled(previous_); }
  bool previous_;
};

// Scoped poison mode.
struct PoisonModeGuard {
  explicit PoisonModeGuard(bool enabled) : previous_(PoisonUninitEnabled()) {
    SetPoisonUninitEnabled(enabled);
  }
  ~PoisonModeGuard() { SetPoisonUninitEnabled(previous_); }
  bool previous_;
};

// --- Bucket reuse -----------------------------------------------------------

TEST(BufferPoolTest, SameSizeRequestReturnsSameStorage) {
  PoolModeGuard pool(true);
  PoisonModeGuard poison(false);  // asserts stale contents survive kUninit
  TrimBufferPool();
  constexpr size_t kSize = 12345;  // uncommon size: private bucket
  std::vector<float> buffer = AcquireBuffer(kSize, BufferFill::kZero);
  const float* storage = buffer.data();
  buffer[0] = 42.0f;
  ReleaseBuffer(std::move(buffer));
  // LIFO bucket: the same storage comes back on a same-size request, and a
  // kUninit acquire keeps the stale contents (the zero-init elision).
  std::vector<float> again = AcquireBuffer(kSize, BufferFill::kUninit);
  EXPECT_EQ(again.data(), storage);
  EXPECT_EQ(again[0], 42.0f);
  ReleaseBuffer(std::move(again));
  // A kZero acquire of the same recycled storage must be fully zeroed.
  std::vector<float> zeroed = AcquireBuffer(kSize, BufferFill::kZero);
  EXPECT_EQ(zeroed.data(), storage);
  for (float v : zeroed) ASSERT_EQ(v, 0.0f);
  ReleaseBuffer(std::move(zeroed));
}

TEST(BufferPoolTest, TensorStorageIsRecycledAcrossNodeLifetimes) {
  PoolModeGuard pool(true);
  TrimBufferPool();
  const Shape shape{37, 11};
  const float* storage = nullptr;
  {
    Tensor t = Tensor::Full(shape, 3.5f);
    storage = t.data().data();
  }  // ~TensorNode returns the buffer to the pool
  Tensor reborn = Tensor::Zeros(shape);
  EXPECT_EQ(reborn.data().data(), storage);
  // Zeros must really be zeros even on dirty recycled storage.
  for (float v : reborn.data()) ASSERT_EQ(v, 0.0f);
}

TEST(BufferPoolTest, DisabledPoolFreesInsteadOfRecycling) {
  PoolModeGuard pool(false);
  std::vector<float> buffer = AcquireBuffer(64, BufferFill::kZero);
  ReleaseBuffer(std::move(buffer));
  EXPECT_TRUE(buffer.empty());
  BufferPoolStats stats = PoolSnapshot();
  EXPECT_EQ(stats.pooled_buffers, 0u);
  EXPECT_EQ(stats.pooled_bytes, 0u);
}

// --- Allocation stats -------------------------------------------------------

TEST(BufferPoolTest, StatsAccountForHitsMissesAndLiveBytes) {
  PoolModeGuard pool(true);
  TrimBufferPool();
  ResetPoolStats();
  constexpr size_t kSize = 54321;
  BufferPoolStats before = PoolSnapshot();

  std::vector<float> a = AcquireBuffer(kSize, BufferFill::kZero);
  BufferPoolStats live = PoolSnapshot();
  EXPECT_EQ(live.acquires - before.acquires, 1u);
  EXPECT_EQ(live.misses - before.misses, 1u);  // cold: fresh allocation
  EXPECT_EQ(live.live_bytes - before.live_bytes, kSize * sizeof(float));
  EXPECT_EQ(live.outstanding_buffers - before.outstanding_buffers, 1u);
  EXPECT_GE(live.peak_live_bytes, live.live_bytes);

  ReleaseBuffer(std::move(a));
  std::vector<float> b = AcquireBuffer(kSize, BufferFill::kUninit);
  BufferPoolStats after = PoolSnapshot();
  EXPECT_EQ(after.hits - before.hits, 1u);  // warm: served from the bucket
  EXPECT_EQ(after.releases - before.releases, 1u);
  EXPECT_EQ(after.bytes_requested - before.bytes_requested,
            2 * kSize * sizeof(float));
  ReleaseBuffer(std::move(b));
}

TEST(BufferPoolTest, AdoptedBuffersBalanceTheLiveCounters) {
  PoolModeGuard pool(true);
  ResetPoolStats();
  BufferPoolStats before = PoolSnapshot();
  {
    // FromVector adopts caller storage; destruction releases it. The live
    // gauges must return exactly to their starting point.
    Tensor t = Tensor::FromVector(Shape{8, 4}, std::vector<float>(32, 1.0f));
    BufferPoolStats mid = PoolSnapshot();
    EXPECT_EQ(mid.adoptions - before.adoptions, 1u);
    EXPECT_EQ(mid.live_bytes - before.live_bytes, 32 * sizeof(float));
  }
  BufferPoolStats after = PoolSnapshot();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.outstanding_buffers, before.outstanding_buffers);
}

// --- Cross-thread recycling (run under TSan in CI) --------------------------

TEST(BufferPoolThreadsTest, BufferReleasedOnOneThreadIsReusedOnAnother) {
  PoolModeGuard pool(true);
  PoisonModeGuard poison(false);  // asserts stale contents survive kUninit
  TrimBufferPool();
  constexpr size_t kSize = 7777;
  std::thread producer([] {
    std::vector<float> buffer = AcquireBuffer(kSize, BufferFill::kZero);
    for (float& v : buffer) v = 42.0f;
    ReleaseBuffer(std::move(buffer));
    // Thread exit flushes this thread's cache into the global pool.
  });
  producer.join();
  // The global pool's mutex provides the happens-before edge: the stale
  // contents written by the producer must be visible here, race-free.
  std::vector<float> buffer = AcquireBuffer(kSize, BufferFill::kUninit);
  for (float v : buffer) ASSERT_EQ(v, 42.0f);
  ReleaseBuffer(std::move(buffer));
}

TEST(BufferPoolThreadsTest, ConcurrentAcquireReleaseIsRaceFree) {
  PoolModeGuard pool(true);
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int round = 0; round < kRounds; ++round) {
        // Overlapping sizes across threads so buffers migrate between
        // thread caches via the global tier.
        size_t size = 128 + 64 * static_cast<size_t>((t + round) % kThreads);
        std::vector<float> buffer = AcquireBuffer(size, BufferFill::kUninit);
        buffer[0] = static_cast<float>(t);
        ReleaseBuffer(std::move(buffer));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  BufferPoolStats stats = PoolSnapshot();
  EXPECT_GE(stats.acquires, static_cast<uint64_t>(kThreads * kRounds));
}

// --- Poison mode ------------------------------------------------------------

TEST(BufferPoolPoisonTest, PoisonFillCatchesReadBeforeWrite) {
  PoolModeGuard pool(true);
  PoisonModeGuard poison(true);
  // A "kernel" that wrongly reads its kUninit output before writing it must
  // see NaNs, both on a fresh buffer and on a recycled one.
  Tensor fresh = Tensor::Uninitialized(Shape{4, 4});
  for (float v : fresh.data()) EXPECT_TRUE(std::isnan(v));
  {
    Tensor dirty = Tensor::Full(Shape{6, 6}, 1.0f);
  }
  Tensor recycled = Tensor::Uninitialized(Shape{6, 6});
  for (float v : recycled.data()) EXPECT_TRUE(std::isnan(v));
}

TEST(BufferPoolPoisonTest, KernelsFullyOverwriteUninitOutputs) {
  // The zero-init-elision safety argument, executed: with poisoning on, a
  // training step's ops must produce NaN-free outputs, proving every
  // kUninit buffer is fully overwritten before it is read.
  PoolModeGuard pool(true);
  PoisonModeGuard poison(true);
  Tensor a = Tensor::Full(Shape{5, 8}, 0.5f, /*requires_grad=*/true);
  Tensor b = Tensor::Full(Shape{8, 3}, -0.25f, /*requires_grad=*/true);
  Tensor h = ops::Relu(ops::MatMul(a, b));
  Tensor loss = ops::MeanAll(ops::Mul(h, h));
  Backward(loss);
  EXPECT_FALSE(std::isnan(loss.at(0)));
  for (float v : a.grad()) EXPECT_FALSE(std::isnan(v));
  for (float v : b.grad()) EXPECT_FALSE(std::isnan(v));
}

// --- Thread-local grad mode (run under TSan in CI) --------------------------

TEST(GradModeThreadLocalTest, NoGradGuardDoesNotLeakAcrossThreads) {
  NoGradGuard guard;  // disables recording on THIS thread only
  ASSERT_FALSE(GradModeEnabled());
  bool other_thread_records = false;
  std::thread checker([&] {
    // A fresh thread starts with grad mode on; ops there still record.
    Tensor x = Tensor::Full(Shape{2, 2}, 1.0f, /*requires_grad=*/true);
    Tensor y = ops::Scale(x, 2.0f);
    other_thread_records = GradModeEnabled() && y.requires_grad();
  });
  checker.join();
  EXPECT_TRUE(other_thread_records);
  // And this thread is still in no-grad mode.
  Tensor x = Tensor::Full(Shape{2, 2}, 1.0f, /*requires_grad=*/true);
  EXPECT_FALSE(ops::Scale(x, 2.0f).requires_grad());
}

TEST(GradModeThreadLocalTest, ConcurrentGuardsDoNotRace) {
  // TSan regression: one thread toggling NoGradGuard in a loop while others
  // construct op outputs. With a global flag this is a data race; with the
  // thread_local flag it is race-free and each thread sees its own mode.
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      NoGradGuard guard;
    }
  });
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::Full(Shape{3, 3}, 1.0f, /*requires_grad=*/true);
    ASSERT_TRUE(ops::Scale(x, 0.5f).requires_grad());
  }
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
}

// --- End-to-end: pool on/off parity + steady-state hit rate -----------------

struct EpochResult {
  double loss = 0.0;
  std::vector<std::vector<float>> scores;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> grads;
};

TkgDataset SmallDataset() {
  SynthConfig config;
  config.seed = 88;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  return GenerateSyntheticTkg(config);
}

EpochResult RunEpoch(const TkgDataset& d, bool pooled) {
  PoolModeGuard mode(pooled);
  LogClConfig config;
  config.embedding_dim = 8;
  config.local.history_length = 2;
  config.local.num_layers = 1;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 4;
  config.seed = 99;
  LogClModel model(&d, config);
  AdamOptimizer optimizer(model.Parameters(), {});
  EpochResult r;
  r.loss = model.TrainEpoch(&optimizer).loss;
  r.scores = model.ScoreQueries({{0, 0, 1, 13}, {2, 1, 3, 13}});
  for (const Tensor& p : model.Parameters()) {
    r.params.push_back(p.data());
    r.grads.push_back(p.grad());
  }
  return r;
}

// The ISSUE's acceptance test: recycled (possibly stale) buffers must not
// change a single bit of training or eval output, at 1 and 4 threads.
TEST(PoolEpochParityTest, PoolOnOffBitwiseIdentical) {
  TkgDataset d = SmallDataset();
  for (int num_threads : {1, 4}) {
    ThreadCountGuard guard;
    SetNumThreads(num_threads);
    EpochResult pooled = RunEpoch(d, /*pooled=*/true);
    EpochResult malloced = RunEpoch(d, /*pooled=*/false);
    EXPECT_EQ(pooled.loss, malloced.loss) << num_threads << " threads";
    EXPECT_EQ(pooled.scores, malloced.scores);
    ASSERT_EQ(pooled.params.size(), malloced.params.size());
    for (size_t i = 0; i < pooled.params.size(); ++i) {
      EXPECT_EQ(pooled.params[i], malloced.params[i]) << "parameter " << i;
      EXPECT_EQ(pooled.grads[i], malloced.grads[i]) << "grad " << i;
    }
  }
}

// The ISSUE's acceptance criterion: shapes repeat across steps, so after a
// warm epoch virtually every acquisition is served from a free list.
TEST(PoolEpochParityTest, SteadyStateHitRateIsAtLeast95Percent) {
  PoolModeGuard pool(true);
  TkgDataset d = SmallDataset();
  RunEpoch(d, /*pooled=*/true);  // warm the buckets
  ResetPoolStats();
  RunEpoch(d, /*pooled=*/true);
  BufferPoolStats stats = PoolSnapshot();
  EXPECT_GT(stats.acquires, 1000u) << "epoch unexpectedly small";
  EXPECT_GE(stats.HitRate(), 0.95)
      << "hit rate " << stats.HitRate() << " — " << stats.ToString();
}

}  // namespace
}  // namespace logcl
