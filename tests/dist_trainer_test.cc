// Distributed-trainer tests: the bitwise parity chain
//   plain TrainEpoch == world-1 DistributedTrainer
//                    == DataParallelSimulator(1)
// and
//   2-rank DistributedTrainer (real sockets, in-process rank threads)
//                    == DataParallelSimulator(2)
// at intra-op thread counts 1 and 4 — plus GradientBuckets and sharding
// units. "Bitwise" means integer-compared float bits throughout.

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "dist/dist_trainer.h"
#include "dist/gradient_buckets.h"
#include "dist/process_group.h"
#include "dist_test_util.h"

namespace logcl {
namespace dist {
namespace {

using dist_test::DistConfig;
using dist_test::DistData;
using dist_test::FlattenParameters;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadCountGuard() { SetNumThreads(previous_); }

 private:
  int previous_;
};

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ai, bi;
    std::memcpy(&ai, &a[i], 4);
    std::memcpy(&bi, &b[i], 4);
    ASSERT_EQ(ai, bi) << what << " diverges at parameter element " << i;
  }
}

TEST(ShardingTest, RoundRobinCoversEveryFactOnce) {
  std::vector<Quadruple> facts;
  for (int64_t i = 0; i < 11; ++i) facts.push_back({i, 0, i + 1, 3});
  const int world = 3;
  std::vector<int> seen(11, 0);
  size_t total = 0;
  for (int r = 0; r < world; ++r) {
    std::vector<Quadruple> shard =
        DistributedTrainer::ShardForRank(facts, r, world);
    total += shard.size();
    int64_t last_subject = -1;
    for (const Quadruple& q : shard) {
      seen[static_cast<size_t>(q.subject)]++;
      // Round-robin keeps the original relative order inside a shard.
      EXPECT_GT(q.subject, last_subject);
      last_subject = q.subject;
    }
  }
  EXPECT_EQ(total, facts.size());
  for (int count : seen) EXPECT_EQ(count, 1);
  // World of one is the identity.
  EXPECT_EQ(DistributedTrainer::ShardForRank(facts, 0, 1).size(),
            facts.size());
}

TEST(GradientBucketsTest, GatherScatterRoundTripAndBucketing) {
  Tensor a = Tensor::Zeros({3, 4}, /*requires_grad=*/true);
  Tensor b = Tensor::Zeros({5}, /*requires_grad=*/true);
  GradientBuckets buckets({a, b});
  EXPECT_EQ(buckets.total_elems(), 17);
  EXPECT_EQ(buckets.num_buckets(), 1);  // tiny models fit one bucket
  EXPECT_EQ(buckets.bucket_elems(0), 17);

  for (size_t i = 0; i < 12; ++i) a.mutable_grad()[i] = 0.5f * (i + 1);
  for (size_t i = 0; i < 5; ++i) b.mutable_grad()[i] = -1.0f * (i + 1);
  buckets.GatherGrads();
  EXPECT_EQ(buckets.flat()[0], 0.5f);
  EXPECT_EQ(buckets.flat()[12], -1.0f);

  buckets.ScatterGrads(0.5f);
  EXPECT_EQ(a.grad()[0], 0.25f);
  EXPECT_EQ(b.grad()[4], -2.5f);

  // Data transfers use the same layout.
  a.mutable_data()[3] = 7.0f;
  buckets.GatherData();
  EXPECT_EQ(buckets.flat()[3], 7.0f);
  buckets.flat();  // const accessor compiles
}

TEST(GradientBucketsTest, AccumulatePreservesNegativeZero) {
  Tensor a = Tensor::Zeros({2}, /*requires_grad=*/true);
  GradientBuckets lhs({a}), rhs({a});
  a.mutable_grad()[0] = -0.0f;
  a.mutable_grad()[1] = 2.0f;
  rhs.GatherGrads();
  lhs.CopyFrom(rhs);
  uint32_t bits;
  std::memcpy(&bits, &lhs.flat()[0], 4);
  EXPECT_EQ(bits, 0x80000000u);  // CopyFrom keeps -0.0 exactly
  lhs.AccumulateFrom(rhs);
  EXPECT_EQ(lhs.flat()[1], 4.0f);
}

TEST(GradientBucketsTest, LargeParameterSpansMultipleBuckets) {
  Tensor big = Tensor::Zeros({GradientBuckets::kBucketElems + 100},
                             /*requires_grad=*/true);
  GradientBuckets buckets({big});
  EXPECT_EQ(buckets.num_buckets(), 2);
  EXPECT_EQ(buckets.bucket_elems(0), GradientBuckets::kBucketElems);
  EXPECT_EQ(buckets.bucket_elems(1), 100);
}

// Runs a real W-rank DistributedTrainer with in-process rank threads over
// loopback sockets for `epochs` epochs; returns each rank's final flattened
// parameters.
std::vector<std::vector<float>> RunDistributedEpochs(int world, int epochs) {
  Result<Listener> master = Listener::Open("127.0.0.1:0");
  EXPECT_TRUE(master.ok()) << master.status().message();
  std::string master_address = master.value().bound_address();
  std::vector<std::vector<float>> params(static_cast<size_t>(world));
  std::vector<Status> results(static_cast<size_t>(world), Status::Ok());
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      // Per-rank dataset + model, exactly as separate processes would
      // (TkgDataset's lazy caches are not shareable across rank threads).
      TkgDataset data = DistData();
      LogClModel model(&data, DistConfig());
      AdamOptimizer optimizer(model.Parameters());
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = world;
      options.master = master_address;
      if (r == 0) options.master_listener = &master.value();
      Result<std::unique_ptr<ProcessGroup>> group =
          ProcessGroup::Rendezvous(options);
      if (!group.ok()) {
        results[static_cast<size_t>(r)] = group.status();
        return;
      }
      DistributedTrainer trainer(group.value().get(), &model, &optimizer);
      for (int e = 0; e < epochs; ++e) {
        Result<EpochStats> stats = trainer.TrainEpoch();
        if (!stats.ok()) {
          results[static_cast<size_t>(r)] = stats.status();
          return;
        }
        if (stats.value().steps <= 0) {
          results[static_cast<size_t>(r)] =
              Status::Internal("epoch took no steps");
          return;
        }
      }
      params[static_cast<size_t>(r)] = FlattenParameters(model);
    });
  }
  for (std::thread& t : ranks) t.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok()) << s.message();
  return params;
}

TEST(DistributedTrainerTest, WorldOfOneMatchesPlainTrainEpochBitwise) {
  ThreadCountGuard guard(1);
  const int epochs = 2;
  TkgDataset plain_data = DistData();
  LogClModel plain_model(&plain_data, DistConfig());
  AdamOptimizer plain_optimizer(plain_model.Parameters());
  for (int e = 0; e < epochs; ++e) plain_model.TrainEpoch(&plain_optimizer);

  std::vector<std::vector<float>> dist_params =
      RunDistributedEpochs(/*world=*/1, epochs);
  ASSERT_EQ(dist_params.size(), 1u);
  ExpectBitwiseEqual(dist_params[0], FlattenParameters(plain_model),
                     "world-1 distributed vs plain");
}

TEST(DistributedTrainerTest, SimulatorWorldOneMatchesPlainTrainEpoch) {
  ThreadCountGuard guard(1);
  TkgDataset plain_data = DistData();
  LogClModel plain_model(&plain_data, DistConfig());
  AdamOptimizer plain_optimizer(plain_model.Parameters());
  EpochStats plain_stats = plain_model.TrainEpoch(&plain_optimizer);

  TkgDataset sim_data = DistData();
  LogClModel sim_model(&sim_data, DistConfig());
  AdamOptimizer sim_optimizer(sim_model.Parameters());
  DataParallelSimulator simulator(&sim_model, &sim_optimizer, /*world=*/1);
  EpochStats sim_stats = simulator.TrainEpoch();

  ExpectBitwiseEqual(FlattenParameters(sim_model),
                     FlattenParameters(plain_model),
                     "simulator(1) vs plain");
  EXPECT_EQ(sim_stats.steps, plain_stats.steps);
  EXPECT_DOUBLE_EQ(sim_stats.loss, plain_stats.loss);
}

void ExpectTwoRankRunMatchesSimulator(int threads) {
  ThreadCountGuard guard(threads);
  const int epochs = 2;
  std::vector<std::vector<float>> dist_params =
      RunDistributedEpochs(/*world=*/2, epochs);
  ASSERT_EQ(dist_params.size(), 2u);
  ASSERT_FALSE(dist_params[0].empty());
  // Every rank ends with identical parameters...
  ExpectBitwiseEqual(dist_params[0], dist_params[1], "rank 0 vs rank 1");

  // ...and they equal the single-process virtual-rank replay.
  TkgDataset sim_data = DistData();
  LogClModel sim_model(&sim_data, DistConfig());
  AdamOptimizer sim_optimizer(sim_model.Parameters());
  DataParallelSimulator simulator(&sim_model, &sim_optimizer, /*world=*/2);
  for (int e = 0; e < epochs; ++e) {
    EpochStats stats = simulator.TrainEpoch();
    ASSERT_GT(stats.steps, 0);
  }
  ExpectBitwiseEqual(dist_params[0], FlattenParameters(sim_model),
                     "2-rank distributed vs simulator(2)");
}

TEST(DistributedTrainerTest, TwoRanksMatchSimulatorBitwiseSingleThread) {
  ExpectTwoRankRunMatchesSimulator(/*threads=*/1);
}

TEST(DistributedTrainerTest, TwoRanksMatchSimulatorBitwiseFourThreads) {
  ExpectTwoRankRunMatchesSimulator(/*threads=*/4);
}

TEST(DistributedTrainerTest, SimulatorIsThreadCountInvariant) {
  // The repo-wide determinism contract extends through the simulator: the
  // same virtual 3-rank run at 1 and 4 intra-op threads is bitwise equal.
  std::vector<std::vector<float>> runs;
  for (int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    TkgDataset data = DistData();
    LogClModel model(&data, DistConfig());
    AdamOptimizer optimizer(model.Parameters());
    DataParallelSimulator simulator(&model, &optimizer, /*world=*/3);
    simulator.TrainEpoch();
    runs.push_back(FlattenParameters(model));
  }
  ExpectBitwiseEqual(runs[0], runs[1], "simulator across thread counts");
}

}  // namespace
}  // namespace dist
}  // namespace logcl
