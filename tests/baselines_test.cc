// Tests for the baseline zoo: construction, scoring shape, training
// behaviour and model-specific mechanisms.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "baselines/cen.h"
#include "baselines/cygnet.h"
#include "baselines/model_zoo.h"
#include "baselines/regcn.h"
#include "baselines/tirgn.h"
#include "core/trainer.h"
#include "synth/generator.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

TkgDataset SmallData() {
  SynthConfig config;
  config.name = "baseline-test";
  config.seed = 505;
  config.num_entities = 24;
  config.num_relations = 5;
  config.num_timestamps = 30;
  config.recurring_pool = 20;
  config.recurring_prob = 0.3;
  config.alternating_pool = 15;
  config.num_cyclic = 8;
  // Drift + chains: the signals static models cannot capture.
  config.pattern_lifetime = 12;
  config.chains_per_timestamp = 4.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

TEST(ModelZooTest, EntriesCoverAllFamilies) {
  std::vector<ZooEntry> entries = ModelZooEntries();
  EXPECT_EQ(entries.size(), 15u);
  int statics = 0, interp = 0, extrap = 0;
  for (const ZooEntry& e : entries) {
    switch (e.family) {
      case ModelFamily::kStatic: ++statics; break;
      case ModelFamily::kInterpolation: ++interp; break;
      case ModelFamily::kExtrapolation: ++extrap; break;
    }
  }
  EXPECT_EQ(statics, 5);
  EXPECT_EQ(interp, 4);
  EXPECT_EQ(extrap, 6);
  EXPECT_EQ(entries.back().name, "LogCL");
}

TEST(ModelZooTest, DefaultEpochsPerFamily) {
  EXPECT_GT(DefaultEpochsFor("DistMult"), DefaultEpochsFor("RE-GCN"));
}

// Parameterized over every zoo model: construct, score, one training step.
class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, ConstructScoreAndTrain) {
  TkgDataset data = SmallData();
  ZooOptions options;
  options.embedding_dim = 16;
  options.history_length = 3;
  std::unique_ptr<TkgModel> model = MakeZooModel(GetParam(), &data, options);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());
  EXPECT_FALSE(model->Parameters().empty());

  std::vector<Quadruple> queries = {{0, 0, 1, 26}, {2, 1, 3, 26}};
  auto scores = model->ScoreQueries(queries);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].size(), static_cast<size_t>(data.num_entities()));
  for (float v : scores[0]) EXPECT_FALSE(std::isnan(v));

  AdamOptimizer optimizer(model->Parameters(), {});
  double first = model->TrainEpoch(&optimizer).loss;
  double second = model->TrainEpoch(&optimizer).loss;
  double third = model->TrainEpoch(&optimizer).loss;
  EXPECT_LT(std::min(second, third), first) << "loss did not decrease";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooModelTest,
    ::testing::Values("DistMult", "ComplEx", "ConvE", "Conv-TransE", "RotatE",
                      "TTransE", "TA-DistMult", "DE-SimplE", "TNTComplEx",
                      "CyGNet", "RE-GCN", "CEN", "TiRGN", "CENET", "LogCL"));

TEST(CyGNetTest, ScoresAreLogProbabilities) {
  TkgDataset data = SmallData();
  CyGNet model(&data, 16);
  auto scores = model.ScoreQueries({{0, 0, 1, 26}});
  double sum = 0.0;
  for (float v : scores[0]) {
    EXPECT_LE(v, 1e-5f);  // log p <= 0
    sum += std::exp(v);
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(TiRgnTest, HistoryMaskZeroForSeenMinusInfForUnseen) {
  TkgDataset data = SmallData();
  HistoryIndex history(data);
  std::vector<Quadruple> queries = {{0, 0, 0, 29}};
  Tensor mask = HistoryVocabularyMask(history, queries, data.num_entities());
  std::vector<int64_t> seen = history.ObjectsBefore(0, 0, 29);
  for (int64_t e = 0; e < data.num_entities(); ++e) {
    bool is_seen =
        std::find(seen.begin(), seen.end(), e) != seen.end();
    if (is_seen) {
      EXPECT_EQ(mask.at(0, e), 0.0f);
    } else {
      EXPECT_LT(mask.at(0, e), -1e8f);
    }
  }
}

TEST(CenTest, EnsembleDiffersFromSingleLength) {
  TkgDataset data = SmallData();
  Cen ensemble(&data, 16, {1, 3}, /*seed=*/33);
  Cen single(&data, 16, {3}, /*seed=*/33);
  auto a = ensemble.ScoreQueries({{0, 0, 1, 26}});
  auto b = single.ScoreQueries({{0, 0, 1, 26}});
  EXPECT_NE(a[0], b[0]);
}

TEST(ReGcnTest, TrainedBeatsUntrained) {
  TkgDataset data = SmallData();
  TimeAwareFilter filter(data);
  ReGcn untrained(&data, 16, 3);
  EvalResult before = untrained.Evaluate(Split::kTest, &filter);
  ReGcn trained(&data, 16, 3);
  FitModel(&trained, /*epochs=*/4, /*learning_rate=*/1e-3f);
  EvalResult after = trained.Evaluate(Split::kTest, &filter);
  EXPECT_GT(after.mrr, before.mrr);
}

TEST(ZooComparisonTest, ExtrapolationBeatsStaticOnPlantedPatterns) {
  // The headline qualitative claim of Table III at miniature scale: an
  // extrapolation model (RE-GCN) outperforms a static one (DistMult).
  TkgDataset data = SmallData();
  TimeAwareFilter filter(data);
  ZooOptions options;
  options.embedding_dim = 16;
  options.history_length = 3;
  auto distmult = MakeZooModel("DistMult", &data, options);
  auto regcn = MakeZooModel("RE-GCN", &data, options);
  EvalResult static_result =
      TrainAndEvaluate(distmult.get(), &filter, {.epochs = 15});
  EvalResult extrap_result =
      TrainAndEvaluate(regcn.get(), &filter, {.epochs = 8});
  EXPECT_GT(extrap_result.mrr, static_result.mrr);
}

}  // namespace
}  // namespace logcl
