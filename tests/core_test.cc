// Tests for the LogCL core: contrast module, local/global encoders, the
// assembled model, ablation switches, two-phase propagation and training
// behaviour on small synthetic data.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/contrast.h"
#include "core/global_encoder.h"
#include "core/local_encoder.h"
#include "core/logcl_model.h"
#include "core/trainer.h"
#include "synth/generator.h"
#include "tensor/ops.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

// --- Contrast --------------------------------------------------------------

Tensor UnitRows(std::vector<float> data, int64_t rows, int64_t cols) {
  return ops::RowL2Normalize(
      Tensor::FromVector(Shape{rows, cols}, std::move(data)));
}

TEST(SupervisedInfoNceTest, AlignedPairsScoreLowerThanMisaligned) {
  // Anchors equal to their positives -> low loss; orthogonal -> higher.
  Tensor a = UnitRows({1, 0, 0, 1}, 2, 2);
  Tensor aligned = UnitRows({1, 0, 0, 1}, 2, 2);
  Tensor misaligned = UnitRows({0, 1, 1, 0}, 2, 2);
  std::vector<int64_t> labels = {0, 1};
  float low = SupervisedInfoNce(a, aligned, labels, 0.1f, false).at(0);
  float high = SupervisedInfoNce(a, misaligned, labels, 0.1f, false).at(0);
  EXPECT_LT(low, high);
}

TEST(SupervisedInfoNceTest, SharedLabelsArePositives) {
  // Three queries, two sharing a label: the shared pair's similarity lowers
  // the loss relative to identical geometry with distinct labels.
  Tensor a = UnitRows({1, 0, 1, 0, 0, 1}, 3, 2);
  Tensor b = UnitRows({1, 0, 1, 0, 0, 1}, 3, 2);
  float shared = SupervisedInfoNce(a, b, {5, 5, 7}, 0.1f, false).at(0);
  float distinct = SupervisedInfoNce(a, b, {5, 6, 7}, 0.1f, false).at(0);
  EXPECT_LE(shared, distinct + 1e-4f);
}

TEST(SupervisedInfoNceTest, ExcludeSelfSkipsSingletons) {
  // With self-exclusion and all-distinct labels nobody has a positive:
  // the loss is exactly zero.
  Tensor a = UnitRows({1, 0, 0, 1}, 2, 2);
  Tensor loss = SupervisedInfoNce(a, a, {0, 1}, 0.1f, true);
  EXPECT_EQ(loss.at(0), 0.0f);
}

TEST(SupervisedInfoNceTest, GradientsFlowToAnchors) {
  Rng rng(20);
  Tensor a = Tensor::RandomNormal(Shape{3, 4}, 1.0f, &rng, true);
  Tensor b = Tensor::RandomNormal(Shape{3, 4}, 1.0f, &rng, true);
  Tensor loss = SupervisedInfoNce(ops::RowL2Normalize(a), ops::RowL2Normalize(b),
                                  {0, 0, 1}, 0.5f, false);
  Backward(loss);
  bool nonzero = false;
  for (float g : a.grad()) {
    if (g != 0.0f) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(ContrastModuleTest, LossRespectsOptionSwitches) {
  Rng rng(21);
  ContrastOptions all;
  ContrastModule contrast(8, 4, all, &rng);
  Rng data_rng(22);
  Tensor local = contrast.Project(
      Tensor::RandomNormal(Shape{4, 8}, 1.0f, &data_rng));
  Tensor global = contrast.Project(
      Tensor::RandomNormal(Shape{4, 8}, 1.0f, &data_rng));
  std::vector<int64_t> labels = {0, 1, 0, 2};
  float full = contrast.Loss(local, global, labels).at(0);
  EXPECT_GT(full, 0.0f);

  ContrastOptions none;
  none.use_lg = none.use_gl = none.use_ll = none.use_gg = false;
  Rng rng2(21);
  ContrastModule disabled(8, 4, none, &rng2);
  EXPECT_EQ(disabled.Loss(local, global, labels).at(0), 0.0f);
}

TEST(ContrastModuleTest, TrainingPullsPositivePairsTogether) {
  // Optimize raw features through the projection head: the local/global
  // views of the same label must end up closer than mismatched views.
  Rng rng(23);
  ContrastOptions options;
  options.tau = 0.2f;
  ContrastModule contrast(4, 4, options, &rng);
  Rng data_rng(24);
  Tensor local_raw = Tensor::RandomNormal(Shape{4, 4}, 1.0f, &data_rng, true);
  Tensor global_raw = Tensor::RandomNormal(Shape{4, 4}, 1.0f, &data_rng, true);
  std::vector<int64_t> labels = {0, 1, 2, 3};
  std::vector<Tensor> params = contrast.Parameters();
  params.push_back(local_raw);
  params.push_back(global_raw);
  AdamOptions opts;
  opts.learning_rate = 0.05f;
  AdamOptimizer optimizer(params, opts);
  for (int step = 0; step < 100; ++step) {
    optimizer.ZeroGrad();
    Tensor z_l = contrast.Project(local_raw);
    Tensor z_g = contrast.Project(global_raw);
    Backward(contrast.Loss(z_l, z_g, labels));
    optimizer.Step();
  }
  NoGradGuard guard;
  Tensor z_l = contrast.Project(local_raw);
  Tensor z_g = contrast.Project(global_raw);
  Tensor sims = ops::MatMul(z_l, ops::Transpose(z_g));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (i != j) EXPECT_GT(sims.at(i, i), sims.at(i, j));
    }
  }
}

// --- Encoders ---------------------------------------------------------------

TkgDataset SmallData() {
  SynthConfig config;
  config.name = "core-test";
  config.seed = 404;
  config.num_entities = 25;
  config.num_relations = 5;
  config.num_timestamps = 30;
  config.recurring_pool = 25;
  config.recurring_prob = 0.35;
  config.alternating_pool = 12;
  config.num_cyclic = 8;
  config.chains_per_timestamp = 2.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

TEST(LocalEncoderTest, EncodeProducesPerSnapshotStates) {
  TkgDataset data = SmallData();
  Rng rng(30);
  LocalEncoderOptions options;
  options.history_length = 3;
  options.num_layers = 1;
  options.dropout = 0.0f;
  LocalEncoder encoder(8, data.num_relations_with_inverse(), options, &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{data.num_entities(), 8}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{data.num_relations_with_inverse(), 8}, &rng);
  LocalEncoderOutput out =
      encoder.Encode(data, 10, h0, r0, /*training=*/false, nullptr);
  EXPECT_EQ(out.aggregated.size(), 3u);
  EXPECT_EQ(out.evolved.size(), 3u);
  EXPECT_EQ(out.entities.shape(), Shape({data.num_entities(), 8}));
  EXPECT_EQ(out.relations.shape(),
            Shape({data.num_relations_with_inverse(), 8}));
}

TEST(LocalEncoderTest, HistoryClippedAtTimeZero) {
  TkgDataset data = SmallData();
  Rng rng(31);
  LocalEncoderOptions options;
  options.history_length = 5;
  LocalEncoder encoder(8, data.num_relations_with_inverse(), options, &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{data.num_entities(), 8}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{data.num_relations_with_inverse(), 8}, &rng);
  LocalEncoderOutput out = encoder.Encode(data, 2, h0, r0, false, nullptr);
  EXPECT_EQ(out.aggregated.size(), 2u);  // only snapshots 0 and 1 exist
}

TEST(LocalEncoderTest, AttentionChangesQueryRepresentation) {
  TkgDataset data = SmallData();
  Rng rng(32);
  LocalEncoderOptions options;
  options.history_length = 4;
  LocalEncoder encoder(8, data.num_relations_with_inverse(), options, &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{data.num_entities(), 8}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{data.num_relations_with_inverse(), 8}, &rng);
  LocalEncoderOutput out = encoder.Encode(data, 10, h0, r0, false, nullptr);
  std::vector<Quadruple> queries = {{0, 1, 2, 10}, {3, 0, 4, 10}};
  Tensor with = encoder.QueryRepresentations(out, queries, true);
  Tensor without = encoder.QueryRepresentations(out, queries, false);
  EXPECT_EQ(with.shape(), Shape({2, 8}));
  bool differs = false;
  for (int64_t i = 0; i < with.num_elements(); ++i) {
    if (std::abs(with.at(i) - without.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(GlobalEncoderTest, SubgraphOnlyUsesHistory) {
  TkgDataset data = SmallData();
  HistoryIndex history(data);
  Rng rng(33);
  GlobalEncoderOptions options;
  GlobalEncoder encoder(8, options, &rng);
  std::vector<Quadruple> queries;
  for (const Quadruple& q : data.FactsAt(12)) queries.push_back(q);
  ASSERT_FALSE(queries.empty());
  SnapshotGraph graph =
      encoder.BuildQuerySubgraph(history, queries, data.num_entities());
  EXPECT_GT(graph.num_edges(), 0);
  // Every sampled edge must exist somewhere in history before t=12.
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    bool found = false;
    for (const HistoryEdge& edge :
         history.FactsTouchingBefore(graph.src[static_cast<size_t>(e)], 12)) {
      if (edge.relation == graph.rel[static_cast<size_t>(e)] &&
          edge.neighbor == graph.dst[static_cast<size_t>(e)]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "edge " << e << " not in history";
  }
}

TEST(GlobalEncoderTest, FanOutCapBoundsEdges) {
  TkgDataset data = SmallData();
  HistoryIndex history(data);
  Rng rng(34);
  GlobalEncoderOptions capped;
  capped.max_edges_per_anchor = 2;
  capped.max_answers_per_query = 1;
  GlobalEncoder encoder(8, capped, &rng);
  std::vector<Quadruple> queries = {{0, 0, 1, 25}};
  SnapshotGraph graph =
      encoder.BuildQuerySubgraph(history, queries, data.num_entities());
  // <= (1 subject + 1 answer) anchors x 2 edges.
  EXPECT_LE(graph.num_edges(), 4);
}

TEST(GlobalEncoderTest, QueryGateShrinksNorm) {
  // beta is a sigmoid gate in (0, 1): the gated representation never has a
  // larger norm than the raw encoded subject row.
  TkgDataset data = SmallData();
  HistoryIndex history(data);
  Rng rng(35);
  GlobalEncoder encoder(8, {}, &rng);
  Tensor h0 = Tensor::XavierUniform(Shape{data.num_entities(), 8}, &rng);
  Tensor r0 = Tensor::XavierUniform(
      Shape{data.num_relations_with_inverse(), 8}, &rng);
  std::vector<Quadruple> queries = {{0, 0, 1, 20}, {2, 1, 3, 20}};
  SnapshotGraph graph =
      encoder.BuildQuerySubgraph(history, queries, data.num_entities());
  Tensor encoded = encoder.Encode(graph, h0, r0, false, nullptr);
  Tensor gated =
      encoder.QueryRepresentations(encoded, h0, queries, history, true);
  Tensor raw =
      encoder.QueryRepresentations(encoded, h0, queries, history, false);
  for (int64_t i = 0; i < 2; ++i) {
    double gated_sq = 0, raw_sq = 0;
    for (int64_t j = 0; j < 8; ++j) {
      gated_sq += gated.at(i, j) * gated.at(i, j);
      raw_sq += raw.at(i, j) * raw.at(i, j);
    }
    EXPECT_LE(gated_sq, raw_sq + 1e-6);
  }
}

// --- Full model --------------------------------------------------------------

LogClConfig FastConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 77;
  return config;
}

TEST(LogClModelTest, ScoreShapeAndDeterminismInEval) {
  TkgDataset data = SmallData();
  LogClModel model(&data, FastConfig());
  std::vector<Quadruple> queries = {{0, 0, 1, 25}, {2, 1, 3, 25}};
  auto s1 = model.ScoreQueries(queries);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0].size(), static_cast<size_t>(data.num_entities()));
  auto s2 = model.ScoreQueries(queries);
  EXPECT_EQ(s1, s2) << "eval scoring must be deterministic";
}

TEST(LogClModelTest, TrainingReducesLoss) {
  TkgDataset data = SmallData();
  LogClModel model(&data, FastConfig());
  AdamOptimizer optimizer(model.Parameters(), {});
  double first = model.TrainEpoch(&optimizer).loss;
  double last = first;
  for (int epoch = 0; epoch < 4; ++epoch) {
    last = model.TrainEpoch(&optimizer).loss;
  }
  EXPECT_LT(last, first);
}

TEST(LogClModelTest, TrainedModelBeatsRandomRanking) {
  TkgDataset data = SmallData();
  LogClModel model(&data, FastConfig());
  TimeAwareFilter filter(data);
  EvalResult result = TrainAndEvaluate(
      &model, &filter, {.epochs = 8, .learning_rate = 3e-3f});
  // Random ranking over 25 entities gives MRR ~ 15%; the planted patterns
  // should push a trained model well beyond that.
  EXPECT_GT(result.mrr, 25.0);
  EXPECT_GT(result.count, 0);
}

TEST(LogClModelTest, AblationSwitchesChangeParameterUsage) {
  TkgDataset data = SmallData();
  LogClConfig local_only = FastConfig();
  local_only.use_global = false;
  LogClConfig global_only = FastConfig();
  global_only.use_local = false;
  LogClModel a(&data, local_only);
  LogClModel b(&data, global_only);
  std::vector<Quadruple> queries = {{0, 0, 1, 25}};
  EXPECT_NE(a.ScoreQueries(queries)[0], b.ScoreQueries(queries)[0]);
}

TEST(LogClModelTest, RequiresAtLeastOneEncoder) {
  TkgDataset data = SmallData();
  LogClConfig bad = FastConfig();
  bad.use_local = false;
  bad.use_global = false;
  EXPECT_DEATH(LogClModel(&data, bad), "at least one encoder");
}

TEST(LogClModelTest, ContrastSwitchChangesTrainingLoss) {
  TkgDataset data = SmallData();
  LogClConfig with_cl = FastConfig();
  LogClConfig without_cl = FastConfig();
  without_cl.use_contrast = false;
  LogClModel a(&data, with_cl);
  LogClModel b(&data, without_cl);
  AdamOptimizer opt_a(a.Parameters(), {});
  AdamOptimizer opt_b(b.Parameters(), {});
  // Same seed/initialisation: the contrast term makes the loss strictly
  // larger on the very first step.
  double loss_a = a.TrainEpoch(&opt_a).loss;
  double loss_b = b.TrainEpoch(&opt_b).loss;
  EXPECT_GT(loss_a, loss_b);
}

TEST(LogClModelTest, NoiseInjectionPerturbsScores) {
  TkgDataset data = SmallData();
  LogClConfig clean = FastConfig();
  LogClConfig noisy = FastConfig();
  noisy.noise_stddev = 1.0f;
  LogClModel a(&data, clean);
  LogClModel b(&data, noisy);
  std::vector<Quadruple> queries = {{0, 0, 1, 25}};
  EXPECT_NE(a.ScoreQueries(queries)[0], b.ScoreQueries(queries)[0]);
}

TEST(LogClModelTest, PredictTopKReturnsProbabilities) {
  TkgDataset data = SmallData();
  LogClModel model(&data, FastConfig());
  auto top = model.PredictTopK({0, 0, 1, 25}, 5);
  ASSERT_EQ(top.size(), 5u);
  float previous = 1.1f;
  float sum = 0.0f;
  for (const auto& [entity, prob] : top) {
    EXPECT_GE(entity, 0);
    EXPECT_LT(entity, data.num_entities());
    EXPECT_LE(prob, previous);
    EXPECT_GE(prob, 0.0f);
    previous = prob;
    sum += prob;
  }
  EXPECT_LE(sum, 1.0f + 1e-4f);
}

TEST(LogClModelTest, TwoPhaseDirectionsScoreDifferentQuerySets) {
  TkgDataset data = SmallData();
  LogClModel model(&data, FastConfig());
  TimeAwareFilter filter(data);
  EvalResult both = model.Evaluate(Split::kTest, &filter,
                                   QueryDirection::kBoth);
  EvalResult forward = model.Evaluate(Split::kTest, &filter,
                                      QueryDirection::kForwardOnly);
  EvalResult inverse = model.Evaluate(Split::kTest, &filter,
                                      QueryDirection::kInverseOnly);
  EXPECT_EQ(both.count, forward.count + inverse.count);
}

TEST(TrainerTest, OnlineUpdatesImproveOverOffline) {
  // The online protocol may not always win on tiny data, but it must run
  // and produce the same query count.
  TkgDataset data = SmallData();
  LogClConfig config = FastConfig();
  LogClModel offline_model(&data, config);
  LogClModel online_model(&data, config);
  TimeAwareFilter filter(data);
  EvalResult offline = TrainAndEvaluate(&offline_model, &filter, {.epochs = 3});
  EvalResult online =
      TrainAndEvaluateOnline(&online_model, &filter, {.offline_epochs = 3});
  EXPECT_EQ(offline.count, online.count);
  EXPECT_GT(online.mrr, 0.0);
}

}  // namespace
}  // namespace logcl
