// Tests for the NN building blocks: Linear, MLP, GRU, time encoding,
// ConvTransE, and the module parameter registry.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "nn/convtranse.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/time_encoding.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace logcl {
namespace {

TEST(ModuleTest, ParametersCollectChildren) {
  Rng rng(1);
  Mlp mlp(4, 8, 3, &rng);
  // Two Linear children, each with weight + bias.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  EXPECT_EQ(mlp.NumParameterElements(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(LinearTest, KnownAffineMap) {
  Rng rng(2);
  Linear linear(2, 2, &rng);
  std::vector<Tensor> params = linear.Parameters();
  params[0].mutable_data() = {1, 2, 3, 4};  // W
  params[1].mutable_data() = {10, 20};      // b
  Tensor x = Tensor::FromVector(Shape{1, 2}, {1, 1});
  Tensor y = linear.Forward(x);
  EXPECT_NEAR(y.at(0, 0), 1 + 3 + 10, 1e-5f);
  EXPECT_NEAR(y.at(0, 1), 2 + 4 + 20, 1e-5f);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(3);
  Linear linear(3, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(linear.Parameters().size(), 1u);
  Tensor zero = Tensor::Zeros(Shape{1, 3});
  Tensor y = linear.Forward(zero);
  EXPECT_EQ(y.at(0, 0), 0.0f);
}

TEST(MlpTest, OutputIsUnitNormalised) {
  Rng rng(4);
  Mlp mlp(4, 6, 5, &rng);
  Rng data_rng(5);
  Tensor x = Tensor::RandomNormal(Shape{3, 4}, 1.0f, &data_rng);
  Tensor y = mlp.Forward(x, /*normalize=*/true);
  for (int64_t i = 0; i < 3; ++i) {
    double sq = 0;
    for (int64_t j = 0; j < 5; ++j) sq += y.at(i, j) * y.at(i, j);
    EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-4);
  }
}

TEST(GruCellTest, GateInterpolatesBetweenStateAndCandidate) {
  // With all weights zero, z = sigmoid(0) = 0.5 and n = tanh(0) = 0, so the
  // next state is exactly h/2.
  Rng rng(6);
  GruCell gru(3, &rng);
  for (Tensor& p : gru.Parameters()) {
    std::fill(p.mutable_data().begin(), p.mutable_data().end(), 0.0f);
  }
  Tensor h = Tensor::FromVector(Shape{2, 3}, {2, 4, 6, -2, 0, 8});
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 1, 1, 1, 1, 1});
  Tensor next = gru.Forward(h, x);
  for (int64_t i = 0; i < 6; ++i) EXPECT_NEAR(next.at(i), h.at(i) / 2, 1e-5f);
}

TEST(GruCellTest, GradientsFlowToAllParameters) {
  Rng rng(7);
  GruCell gru(2, &rng);
  Rng data_rng(8);
  Tensor h = Tensor::RandomNormal(Shape{3, 2}, 1.0f, &data_rng);
  Tensor x = Tensor::RandomNormal(Shape{3, 2}, 1.0f, &data_rng);
  Backward(ops::SumAll(gru.Forward(h, x)));
  for (Tensor& p : gru.Parameters()) {
    bool any_nonzero = false;
    for (float g : p.grad()) {
      if (g != 0.0f) any_nonzero = true;
    }
    EXPECT_TRUE(any_nonzero);
  }
}

TEST(GruCellTest, CanMemorizeSequenceTarget) {
  // Train the GRU (plus a readout) to map a 2-step input sequence to a
  // target state.
  Rng rng(9);
  GruCell gru(4, &rng);
  Tensor x1 = Tensor::FromVector(Shape{1, 4}, {1, 0, 0, 0});
  Tensor x2 = Tensor::FromVector(Shape{1, 4}, {0, 1, 0, 0});
  Tensor target = Tensor::FromVector(Shape{1, 4}, {0.5f, -0.5f, 0.25f, 0.0f});
  AdamOptions opts;
  opts.learning_rate = 0.02f;
  AdamOptimizer optimizer(gru.Parameters(), opts);
  auto loss_fn = [&]() {
    Tensor h = Tensor::Zeros(Shape{1, 4});
    h = gru.Forward(h, x1);
    h = gru.Forward(h, x2);
    Tensor diff = ops::Sub(h, target);
    return ops::SumAll(ops::Mul(diff, diff));
  };
  float initial = loss_fn().at(0);
  for (int step = 0; step < 150; ++step) {
    optimizer.ZeroGrad();
    Backward(loss_fn());
    optimizer.Step();
  }
  EXPECT_LT(loss_fn().at(0), initial * 0.1f);
}

TEST(TimeEncodingTest, OutputShapeAndDeltaSensitivity) {
  Rng rng(10);
  TimeEncoding enc(4, 3, &rng);
  Rng data_rng(11);
  Tensor h = Tensor::RandomNormal(Shape{5, 4}, 1.0f, &data_rng);
  Tensor y1 = enc.Forward(h, 1);
  Tensor y2 = enc.Forward(h, 2);
  EXPECT_EQ(y1.shape(), Shape({5, 4}));
  bool differs = false;
  for (int64_t i = 0; i < y1.num_elements(); ++i) {
    if (std::abs(y1.at(i) - y2.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs) << "time encoding ignores the interval";
}

TEST(TimeEncodingTest, GradientsReachFrequencyAndPhase) {
  Rng rng(12);
  TimeEncoding enc(3, 2, &rng);
  Rng data_rng(13);
  Tensor h = Tensor::RandomNormal(Shape{2, 3}, 1.0f, &data_rng);
  Backward(ops::SumAll(enc.Forward(h, 3)));
  // Parameters: w_t, b_t, then the projection's weight/bias.
  std::vector<Tensor> params = enc.Parameters();
  ASSERT_GE(params.size(), 2u);
  bool w_grad = false;
  for (float g : params[0].grad()) {
    if (g != 0.0f) w_grad = true;
  }
  EXPECT_TRUE(w_grad);
}

TEST(ConvTransETest, ScoreShape) {
  Rng rng(14);
  ConvTransEOptions options;
  options.num_kernels = 8;
  options.dropout = 0.0f;
  ConvTransE decoder(6, options, &rng);
  Rng data_rng(15);
  Tensor h = Tensor::RandomNormal(Shape{3, 6}, 1.0f, &data_rng);
  Tensor r = Tensor::RandomNormal(Shape{3, 6}, 1.0f, &data_rng);
  Tensor entities = Tensor::RandomNormal(Shape{10, 6}, 1.0f, &data_rng);
  Tensor scores = decoder.Score(h, r, entities, /*training=*/false, nullptr);
  EXPECT_EQ(scores.shape(), Shape({3, 10}));
}

TEST(ConvTransETest, CanFitLinkPrediction) {
  // Teach the decoder that (e0, r0) -> e1 and (e2, r0) -> e3 on fixed
  // embeddings.
  Rng rng(16);
  ConvTransEOptions options;
  options.num_kernels = 8;
  options.dropout = 0.0f;
  ConvTransE decoder(8, options, &rng);
  Rng data_rng(17);
  Tensor entities = Tensor::RandomNormal(Shape{6, 8}, 1.0f, &data_rng, true);
  Tensor relations = Tensor::RandomNormal(Shape{2, 8}, 1.0f, &data_rng, true);
  std::vector<Tensor> params = decoder.Parameters();
  params.push_back(entities);
  params.push_back(relations);
  AdamOptions opts;
  opts.learning_rate = 0.01f;
  AdamOptimizer optimizer(params, opts);
  auto loss_fn = [&]() {
    Tensor h = ops::IndexSelectRows(entities, {0, 2});
    Tensor r = ops::IndexSelectRows(relations, {0, 0});
    Tensor logits = decoder.Score(h, r, entities, false, nullptr);
    return ops::CrossEntropyWithLogits(logits, {1, 3});
  };
  float initial = loss_fn().at(0);
  for (int step = 0; step < 120; ++step) {
    optimizer.ZeroGrad();
    Backward(loss_fn());
    optimizer.Step();
  }
  EXPECT_LT(loss_fn().at(0), initial * 0.2f);
}

TEST(ConvTransETest, GradCheckThroughDecoder) {
  Rng rng(18);
  ConvTransEOptions options;
  options.num_kernels = 3;
  options.dropout = 0.0f;
  ConvTransE decoder(4, options, &rng);
  Rng data_rng(19);
  auto report = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor scores = decoder.Score(in[0], in[1], in[2], false, nullptr);
        return ops::CrossEntropyWithLogits(scores, {1, 0});
      },
      {Tensor::RandomNormal(Shape{2, 4}, 1.0f, &data_rng, true),
       Tensor::RandomNormal(Shape{2, 4}, 1.0f, &data_rng, true),
       Tensor::RandomNormal(Shape{5, 4}, 1.0f, &data_rng, true)});
  EXPECT_TRUE(report.passed) << report.detail;
}

}  // namespace
}  // namespace logcl
