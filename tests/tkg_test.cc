// Tests for the TKG data layer: quadruples, vocabulary, dataset container,
// time-aware filter and history index.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "tkg/dataset.h"
#include "tkg/filters.h"
#include "tkg/history_index.h"
#include "tkg/quadruple.h"
#include "tkg/vocabulary.h"

namespace logcl {
namespace {

TEST(QuadrupleTest, InverseRelationRoundTrip) {
  EXPECT_EQ(InverseRelation(0, 5), 5);
  EXPECT_EQ(InverseRelation(5, 5), 0);
  EXPECT_EQ(InverseRelation(3, 5), 8);
  EXPECT_EQ(InverseRelation(InverseRelation(3, 5), 5), 3);
}

TEST(QuadrupleTest, InverseOfSwapsSubjectObject) {
  Quadruple q{1, 2, 3, 7};
  Quadruple inv = InverseOf(q, 4);
  EXPECT_EQ(inv.subject, 3);
  EXPECT_EQ(inv.relation, 6);
  EXPECT_EQ(inv.object, 1);
  EXPECT_EQ(inv.time, 7);
  EXPECT_EQ(InverseOf(inv, 4), q);
}

TEST(QuadrupleTest, HashDistinguishesFields) {
  QuadrupleHash hash;
  EXPECT_NE(hash(Quadruple{1, 2, 3, 4}), hash(Quadruple{1, 2, 4, 3}));
  EXPECT_EQ(hash(Quadruple{1, 2, 3, 4}), hash(Quadruple{1, 2, 3, 4}));
}

TEST(VocabularyTest, GetOrAddAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("china"), 0);
  EXPECT_EQ(vocab.GetOrAdd("iran"), 1);
  EXPECT_EQ(vocab.GetOrAdd("china"), 0);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.Name(1), "iran");
}

TEST(VocabularyTest, GetMissingIsNotFound) {
  Vocabulary vocab;
  Result<int64_t> r = vocab.Get("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(vocab.Contains("nope"));
}

TkgDataset TinyDataset() {
  // 4 entities, 2 relations, timestamps 0..4 (train 0-2, valid 3, test 4).
  std::vector<Quadruple> train = {
      {0, 0, 1, 0}, {1, 1, 2, 0}, {0, 0, 1, 1}, {2, 0, 3, 1}, {0, 0, 2, 2},
  };
  std::vector<Quadruple> valid = {{0, 0, 1, 3}, {1, 1, 3, 3}};
  std::vector<Quadruple> test = {{0, 0, 1, 4}, {0, 0, 3, 4}, {2, 1, 0, 4}};
  return TkgDataset::FromQuadruples("tiny", 4, 2, train, valid, test);
}

TEST(TkgDatasetTest, BasicCounts) {
  TkgDataset d = TinyDataset();
  EXPECT_EQ(d.num_entities(), 4);
  EXPECT_EQ(d.num_base_relations(), 2);
  EXPECT_EQ(d.num_relations_with_inverse(), 4);
  EXPECT_EQ(d.num_timestamps(), 5);
  EXPECT_EQ(d.train().size(), 5u);
  EXPECT_EQ(d.valid().size(), 2u);
  EXPECT_EQ(d.test().size(), 3u);
}

TEST(TkgDatasetTest, FactsAtMergesSplits) {
  TkgDataset d = TinyDataset();
  EXPECT_EQ(d.FactsAt(0).size(), 2u);
  EXPECT_EQ(d.FactsAt(3).size(), 2u);  // valid facts
  EXPECT_EQ(d.FactsAt(4).size(), 3u);  // test facts
  EXPECT_TRUE(d.FactsAt(99).empty());
  EXPECT_TRUE(d.FactsAt(-1).empty());
}

TEST(TkgDatasetTest, SplitTimestampsAreSortedDistinct) {
  TkgDataset d = TinyDataset();
  EXPECT_EQ(d.SplitTimestamps(Split::kTrain), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(d.SplitTimestamps(Split::kValid), (std::vector<int64_t>{3}));
  EXPECT_EQ(d.SplitTimestamps(Split::kTest), (std::vector<int64_t>{4}));
}

TEST(TkgDatasetTest, WithInversesDoublesAndInverts) {
  TkgDataset d = TinyDataset();
  std::vector<Quadruple> facts = {{0, 0, 1, 0}};
  std::vector<Quadruple> augmented = d.WithInverses(facts);
  ASSERT_EQ(augmented.size(), 2u);
  EXPECT_EQ(augmented[1].subject, 1);
  EXPECT_EQ(augmented[1].relation, 2);  // 0 + num_base_relations
  EXPECT_EQ(augmented[1].object, 0);
}

TEST(TkgDatasetTest, SplitFactsAtFiltersByTime) {
  TkgDataset d = TinyDataset();
  EXPECT_EQ(d.SplitFactsAt(Split::kTrain, 1).size(), 2u);
  EXPECT_TRUE(d.SplitFactsAt(Split::kTrain, 4).empty());
}

TEST(TkgDatasetTest, StatsMatch) {
  DatasetStats stats = TinyDataset().Stats();
  EXPECT_EQ(stats.num_entities, 4);
  EXPECT_EQ(stats.num_relations, 2);
  EXPECT_EQ(stats.num_train, 5);
  EXPECT_EQ(stats.num_timestamps, 5);
  EXPECT_NE(stats.ToString().find("tiny"), std::string::npos);
}

TEST(TkgDatasetTest, TsvRoundTrip) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "logcl_tsv_test";
  fs::create_directories(dir);
  TkgDataset original = TinyDataset();
  ASSERT_TRUE(original.SaveTsv(dir.string()).ok());
  Result<TkgDataset> loaded = TkgDataset::LoadTsv(dir.string(), "tiny");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().train(), original.train());
  EXPECT_EQ(loaded.value().valid(), original.valid());
  EXPECT_EQ(loaded.value().test(), original.test());
  EXPECT_EQ(loaded.value().num_entities(), original.num_entities());
  fs::remove_all(dir);
}

TEST(TkgDatasetTest, LoadTsvMissingDirFails) {
  Result<TkgDataset> r = TkgDataset::LoadTsv("/nonexistent/dir", "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TimeAwareFilterTest, AnswersOnlySameTimestamp) {
  TkgDataset d = TinyDataset();
  TimeAwareFilter filter(d);
  // (0, 0, ?, 4) has answers {1, 3} at t=4 only.
  EXPECT_EQ(filter.Answers(0, 0, 4), (std::vector<int64_t>{1, 3}));
  // At t=0 the answer set is {1}; t=2 it is {2}.
  EXPECT_EQ(filter.Answers(0, 0, 0), (std::vector<int64_t>{1}));
  EXPECT_EQ(filter.Answers(0, 0, 2), (std::vector<int64_t>{2}));
  EXPECT_TRUE(filter.Answers(3, 1, 0).empty());
}

TEST(TimeAwareFilterTest, CoversInverseQueries) {
  TkgDataset d = TinyDataset();
  TimeAwareFilter filter(d);
  // Inverse of (0, 0, 1, 0): (1, 0+2, 0, 0).
  EXPECT_EQ(filter.Answers(1, 2, 0), (std::vector<int64_t>{0}));
}

TEST(HistoryIndexTest, ObjectsBeforeIsStrictAndDeduped) {
  TkgDataset d = TinyDataset();
  HistoryIndex history(d);
  // (0, 0, *) occurs at t=0 (o=1), t=1 (o=1), t=2 (o=2), t=3 (o=1), t=4.
  EXPECT_TRUE(history.ObjectsBefore(0, 0, 0).empty());
  EXPECT_EQ(history.ObjectsBefore(0, 0, 1), (std::vector<int64_t>{1}));
  EXPECT_EQ(history.ObjectsBefore(0, 0, 3), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(history.ObjectsBefore(0, 0, 5), (std::vector<int64_t>{1, 2, 3}));
}

TEST(HistoryIndexTest, SeenBeforeAndCount) {
  TkgDataset d = TinyDataset();
  HistoryIndex history(d);
  EXPECT_FALSE(history.SeenBefore(0, 0, 1, 0));
  EXPECT_TRUE(history.SeenBefore(0, 0, 1, 1));
  EXPECT_EQ(history.CountBefore(0, 0, 1, 5), 4);  // t=0,1,3,4
  EXPECT_EQ(history.CountBefore(0, 0, 1, 2), 2);  // t=0 and t=1
}

TEST(HistoryIndexTest, FactsTouchingIncludesInverseSide) {
  TkgDataset d = TinyDataset();
  HistoryIndex history(d);
  // Entity 1 appears as object of (0,0,1) and subject of (1,1,2) at t=0.
  std::vector<HistoryEdge> edges = history.FactsTouchingBefore(1, 1);
  ASSERT_EQ(edges.size(), 2u);
  bool has_inverse = false;
  for (const HistoryEdge& e : edges) {
    if (e.relation == 2 && e.neighbor == 0) has_inverse = true;
  }
  EXPECT_TRUE(has_inverse);
}

TEST(HistoryIndexTest, MaxEdgesKeepsMostRecent) {
  TkgDataset d = TinyDataset();
  HistoryIndex history(d);
  std::vector<HistoryEdge> capped = history.FactsTouchingBefore(0, 5, 2);
  ASSERT_EQ(capped.size(), 2u);
  // The most recent edges for entity 0 are at t=3 (valid) and t=4 (test x2,
  // capped to the last two of the time-sorted list).
  EXPECT_GE(capped.front().time, 3);
}

}  // namespace
}  // namespace logcl
