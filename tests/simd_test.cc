// Tests pinning the SIMD layer's bitwise-parity contract (tensor/simd.h):
// every fp32 kernel returns bit-identical outputs whether the scalar or the
// vectorized variant runs, over shapes that exercise vector bodies, scalar
// tails, and the register-panel remainders. The end-to-end half trains a
// full epoch under both kernel tables (and at 1 and 4 threads) and demands
// bitwise-equal scores.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/optimizer.h"
#include "tensor/simd.h"
#include "tkg/dataset.h"

namespace logcl {
namespace {

// Deterministic fill with awkward float values (mixed signs, magnitudes,
// exact and inexact fractions) — enough entropy that a rounding-order
// difference between kernel variants cannot cancel out.
std::vector<float> Fill(int64_t n, uint64_t seed) {
  std::vector<float> out(static_cast<size_t>(n));
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint32_t r = static_cast<uint32_t>(state >> 33);
    float v = static_cast<float>(static_cast<int32_t>(r % 2001) - 1000) /
              147.0f;
    out[static_cast<size_t>(i)] = v;
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " differs at " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

// Restores the kernel table on scope exit.
class SimdGuard {
 public:
  SimdGuard() : previous_(simd::SimdEnabled()) {}
  ~SimdGuard() { simd::SetSimdEnabled(previous_); }

 private:
  bool previous_;
};

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadCountGuard() { SetNumThreads(previous_); }

 private:
  int previous_;
};

// Runs `op` (writing `out_size` floats into its argument) under both kernel
// tables and asserts bitwise-equal results.
template <typename Op>
void ExpectVariantParity(int64_t out_size, const char* what, Op op) {
  SimdGuard guard;
  std::vector<float> scalar_out(static_cast<size_t>(out_size));
  std::vector<float> simd_out(static_cast<size_t>(out_size));
  simd::SetSimdEnabled(false);
  op(scalar_out.data());
  simd::SetSimdEnabled(true);
  op(simd_out.data());
  ExpectBitwiseEqual(scalar_out, simd_out, what);
}

// Sizes hitting: empty, below one vector, exactly one vector, vector + tail,
// several vectors, and a large run.
const int64_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 31, 64, 100, 1027};

TEST(SimdDispatchTest, ActiveIsaFollowsEnable) {
  SimdGuard guard;
  simd::SetSimdEnabled(false);
  EXPECT_EQ(simd::ActiveIsa(), simd::SimdIsa::kScalar);
  EXPECT_FALSE(simd::SimdEnabled());
  simd::SetSimdEnabled(true);
  EXPECT_EQ(simd::ActiveIsa(), simd::DetectedIsa());
  EXPECT_TRUE(simd::SimdEnabled());
  EXPECT_NE(simd::IsaName(simd::ActiveIsa()), nullptr);
}

TEST(SimdParityTest, ElementwiseBinary) {
  for (int64_t n : kSizes) {
    std::vector<float> a = Fill(n, 11), b = Fill(n, 22);
    ExpectVariantParity(n, "add", [&](float* out) {
      simd::Add(a.data(), b.data(), out, n);
    });
    ExpectVariantParity(n, "sub", [&](float* out) {
      simd::Sub(a.data(), b.data(), out, n);
    });
    ExpectVariantParity(n, "mul", [&](float* out) {
      simd::Mul(a.data(), b.data(), out, n);
    });
  }
}

TEST(SimdParityTest, AccumulatingKernels) {
  for (int64_t n : kSizes) {
    std::vector<float> a = Fill(n, 33), b = Fill(n, 44), init = Fill(n, 55);
    ExpectVariantParity(n, "accumulate", [&](float* out) {
      std::copy(init.begin(), init.end(), out);
      simd::Accumulate(a.data(), out, n);
    });
    ExpectVariantParity(n, "mul_accumulate", [&](float* out) {
      std::copy(init.begin(), init.end(), out);
      simd::MulAccumulate(a.data(), b.data(), out, n);
    });
    ExpectVariantParity(n, "axpy", [&](float* out) {
      std::copy(init.begin(), init.end(), out);
      simd::Axpy(-0.37f, a.data(), out, n);
    });
  }
}

TEST(SimdParityTest, ScaleAddScalarRelu) {
  for (int64_t n : kSizes) {
    std::vector<float> a = Fill(n, 66);
    if (n > 0) a[static_cast<size_t>(n / 2)] = -0.0f;  // relu(-0) corner
    ExpectVariantParity(n, "scale", [&](float* out) {
      simd::Scale(a.data(), 1.0f / 3.0f, out, n);
    });
    ExpectVariantParity(n, "add_scalar", [&](float* out) {
      simd::AddScalar(a.data(), -2.75f, out, n);
    });
    ExpectVariantParity(n, "relu", [&](float* out) {
      simd::Relu(a.data(), out, n);
    });
    std::vector<float> g = Fill(n, 77), init = Fill(n, 88);
    ExpectVariantParity(n, "relu_backward", [&](float* out) {
      std::copy(init.begin(), init.end(), out);
      simd::ReluBackward(a.data(), g.data(), out, n);
    });
  }
}

TEST(SimdParityTest, RowMax) {
  SimdGuard guard;
  for (int64_t n : kSizes) {
    if (n == 0) continue;
    std::vector<float> a = Fill(n, 99);
    simd::SetSimdEnabled(false);
    float scalar = simd::RowMax(a.data(), n);
    simd::SetSimdEnabled(true);
    float vectored = simd::RowMax(a.data(), n);
    EXPECT_EQ(scalar, vectored) << "n=" << n;
    // All-negative row: the max must not be polluted by a zero identity.
    for (float& v : a) v = -std::fabs(v) - 1.0f;
    simd::SetSimdEnabled(false);
    scalar = simd::RowMax(a.data(), n);
    simd::SetSimdEnabled(true);
    EXPECT_EQ(scalar, simd::RowMax(a.data(), n)) << "all-negative n=" << n;
  }
  EXPECT_EQ(simd::RowMax(nullptr, 0),
            -std::numeric_limits<float>::infinity());
}

// Shapes crossing every panel/vector boundary: rows hit the R=4 main loop
// plus 1/2/3-row remainders, columns hit full 8-lane vectors plus tails.
const struct {
  int64_t m, k, n;
} kMatShapes[] = {{1, 1, 1},   {3, 5, 7},    {4, 8, 8},  {5, 9, 17},
                  {7, 16, 24}, {13, 21, 33}, {8, 32, 9}, {2, 64, 70}};

TEST(SimdParityTest, MatMulDrivers) {
  for (const auto& s : kMatShapes) {
    std::vector<float> a = Fill(s.m * s.k, 1), b = Fill(s.k * s.n, 2);
    std::vector<float> c0 = Fill(s.m * s.n, 3);
    ExpectVariantParity(s.m * s.n, "matmul_nn", [&](float* out) {
      std::copy(c0.begin(), c0.end(), out);
      simd::MatMulAccumNN(a.data(), b.data(), out, s.m, s.k, s.n);
    });
    // NT: C(m x k) += A(m x n) * B(k x n)^T with A [m, n], B [k, n].
    std::vector<float> an = Fill(s.m * s.n, 4), bn = Fill(s.k * s.n, 5);
    std::vector<float> cnt = Fill(s.m * s.k, 6);
    ExpectVariantParity(s.m * s.k, "matmul_nt", [&](float* out) {
      std::copy(cnt.begin(), cnt.end(), out);
      simd::MatMulAccumNT(an.data(), bn.data(), out, s.m, s.n, s.k);
    });
    // TN: C(k x n) += A(m x k)^T * B(m x n).
    std::vector<float> bt = Fill(s.m * s.n, 7);
    std::vector<float> ctn = Fill(s.k * s.n, 8);
    ExpectVariantParity(s.k * s.n, "matmul_tn", [&](float* out) {
      std::copy(ctn.begin(), ctn.end(), out);
      simd::MatMulAccumTN(a.data(), bt.data(), out, s.m, s.k, s.n);
    });
  }
}

TEST(SimdParityTest, MatMulRowRangesComposeToWhole) {
  // Row-range kernels over disjoint ranges must equal one full-range call
  // (this is what ParallelFor sharding relies on for thread invariance).
  SimdGuard guard;
  simd::SetSimdEnabled(true);
  const int64_t m = 11, k = 13, n = 19;
  std::vector<float> a = Fill(m * k, 21), b = Fill(k * n, 22);
  std::vector<float> whole(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> pieces(static_cast<size_t>(m * n), 0.0f);
  simd::MatMulRowsNN(a.data(), b.data(), whole.data(), m, k, n, 0, m);
  for (int64_t r0 = 0; r0 < m; r0 += 3) {
    simd::MatMulRowsNN(a.data(), b.data(), pieces.data(), m, k, n, r0,
                       std::min<int64_t>(m, r0 + 3));
  }
  ExpectBitwiseEqual(whole, pieces, "row-range composition");
}

TEST(SimdParityTest, MatMulTile) {
  // The fused message-passing inner tile: rows x cols <= kTileRows x
  // kTileCols with arbitrary leading strides.
  const int64_t lda = 17, ldb = 23;
  std::vector<float> a = Fill(simd::kTileRows * lda, 31);
  std::vector<float> b = Fill(64 * ldb, 32);
  for (int64_t rows : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    for (int64_t cols : {int64_t{1}, int64_t{7}, int64_t{8}, int64_t{23},
                         simd::kTileCols}) {
      for (int64_t k : {int64_t{1}, int64_t{5}, int64_t{16}}) {
        ExpectVariantParity(rows * simd::kTileCols, "matmul_tile",
                            [&](float* out) {
                              simd::MatMulTile(a.data(), lda, b.data(), ldb,
                                               out, simd::kTileCols, rows, k,
                                               cols);
                            });
      }
    }
  }
}

TEST(SimdExactTest, DotI8MatchesIntegerReference) {
  SimdGuard guard;
  for (int64_t n : kSizes) {
    std::vector<int8_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    uint64_t state = 7;
    for (int64_t i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1;
      a[static_cast<size_t>(i)] = static_cast<int8_t>(state >> 40);
      state = state * 6364136223846793005ull + 1;
      b[static_cast<size_t>(i)] = static_cast<int8_t>(state >> 40);
    }
    int32_t expect = 0;
    for (int64_t i = 0; i < n; ++i) {
      expect += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
                static_cast<int32_t>(b[static_cast<size_t>(i)]);
    }
    simd::SetSimdEnabled(true);
    EXPECT_EQ(simd::DotI8(a.data(), b.data(), n), expect) << "simd n=" << n;
    simd::SetSimdEnabled(false);
    EXPECT_EQ(simd::DotI8(a.data(), b.data(), n), expect) << "scalar n=" << n;
  }
}

TEST(SimdExactTest, DotI8SaturatedRange) {
  // +/-127 everywhere: the widening path must not overflow int16 pairwise
  // products (127 * 127 * 2 < 32768 holds; pin it).
  const int64_t n = 96;
  std::vector<int8_t> a(static_cast<size_t>(n), 127);
  std::vector<int8_t> b(static_cast<size_t>(n), -127);
  EXPECT_EQ(simd::DotI8(a.data(), b.data(), n),
            static_cast<int32_t>(n) * 127 * -127);
}

TEST(SimdApproxTest, DotBf16CloseToFp32Reference) {
  // No bitwise contract across variants; both must sit within bf16's ~3
  // decimal digits of the fp32 dot.
  SimdGuard guard;
  for (int64_t n : {int64_t{1}, int64_t{9}, int64_t{64}, int64_t{127}}) {
    std::vector<float> a = Fill(n, 41), q = Fill(n, 42);
    std::vector<uint16_t> abf(static_cast<size_t>(n));
    double expect = 0.0, norm = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &a[static_cast<size_t>(i)], sizeof(bits));
      uint32_t rounded =
          (bits + 0x7fffu + ((bits >> 16) & 1u)) & 0xffff0000u;
      float av;
      std::memcpy(&av, &rounded, sizeof(av));
      abf[static_cast<size_t>(i)] = static_cast<uint16_t>(rounded >> 16);
      expect += static_cast<double>(av) * q[static_cast<size_t>(i)];
      norm += std::fabs(static_cast<double>(av) * q[static_cast<size_t>(i)]);
    }
    double tol = 1e-5 * (norm + 1.0);
    simd::SetSimdEnabled(true);
    EXPECT_NEAR(simd::DotBf16(abf.data(), q.data(), n), expect, tol);
    simd::SetSimdEnabled(false);
    EXPECT_NEAR(simd::DotBf16(abf.data(), q.data(), n), expect, tol);
  }
}

// --- end to end: a training epoch is bitwise invariant to the kernel table --

TkgDataset SimdData() {
  SynthConfig config;
  config.name = "simd-test";
  config.seed = 505;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 12;
  config.recurring_pool = 15;
  config.num_cyclic = 6;
  config.chains_per_timestamp = 1.5;
  return GenerateSyntheticTkg(config);
}

LogClConfig SimdModelConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 31;
  return config;
}

TEST(SimdEpochParityTest, TrainEpochBitwiseInvariantToKernelTable) {
  if (simd::DetectedIsa() == simd::SimdIsa::kScalar) {
    GTEST_SKIP() << "no vector ISA on this host; parity is trivial";
  }
  TkgDataset data = SimdData();
  auto train_and_score = [&](bool simd_on, int threads) {
    SimdGuard simd_guard;
    ThreadCountGuard thread_guard(threads);
    simd::SetSimdEnabled(simd_on);
    LogClModel model(&data, SimdModelConfig());
    AdamOptimizer optimizer(model.Parameters(), {});
    model.TrainEpoch(&optimizer);
    return model.ScoreQueries({{0, 0, 1, 10}, {3, 2, 5, 10}, {7, 1, 2, 10}});
  };
  std::vector<std::vector<float>> reference = train_and_score(false, 1);
  for (int threads : {1, 4}) {
    std::vector<std::vector<float>> scalar = train_and_score(false, threads);
    std::vector<std::vector<float>> vectored = train_and_score(true, threads);
    ASSERT_EQ(scalar.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectBitwiseEqual(reference[i], scalar[i], "scalar epoch scores");
      ExpectBitwiseEqual(reference[i], vectored[i], "simd epoch scores");
    }
  }
}

}  // namespace
}  // namespace logcl
