// Cross-check tests: the indexed data structures (history index, filters)
// against brute-force scans on randomized datasets, and end-to-end
// reproducibility of training under fixed seeds.

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tkg/filters.h"
#include "tkg/history_index.h"

namespace logcl {
namespace {

class RandomDatasetTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  TkgDataset MakeData() const {
    SynthConfig config;
    config.seed = GetParam();
    config.num_entities = 18;
    config.num_relations = 4;
    config.num_timestamps = 20;
    config.recurring_pool = 10;
    config.alternating_pool = 8;
    config.num_cyclic = 4;
    config.chains_per_timestamp = 1.5;
    config.noise_per_timestamp = 2.0;
    return GenerateSyntheticTkg(config);
  }

  // All facts with inverses, across every split.
  std::vector<Quadruple> AllFacts(const TkgDataset& d) const {
    std::vector<Quadruple> all;
    for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
      for (const Quadruple& q : d.split(s)) {
        all.push_back(q);
        all.push_back(InverseOf(q, d.num_base_relations()));
      }
    }
    return all;
  }
};

TEST_P(RandomDatasetTest, ObjectsBeforeMatchesBruteForce) {
  TkgDataset d = MakeData();
  HistoryIndex index(d);
  std::vector<Quadruple> all = AllFacts(d);
  // Spot-check a sample of (s, r, t) keys.
  for (const Quadruple& probe : d.test()) {
    std::vector<int64_t> indexed =
        index.ObjectsBefore(probe.subject, probe.relation, probe.time);
    std::unordered_set<int64_t> brute;
    for (const Quadruple& q : all) {
      if (q.subject == probe.subject && q.relation == probe.relation &&
          q.time < probe.time) {
        brute.insert(q.object);
      }
    }
    EXPECT_EQ(indexed.size(), brute.size());
    for (int64_t o : indexed) EXPECT_TRUE(brute.contains(o));
  }
}

TEST_P(RandomDatasetTest, CountBeforeMatchesBruteForce) {
  TkgDataset d = MakeData();
  HistoryIndex index(d);
  std::vector<Quadruple> all = AllFacts(d);
  int checked = 0;
  for (const Quadruple& probe : d.test()) {
    if (++checked > 20) break;
    int64_t brute = 0;
    for (const Quadruple& q : all) {
      if (q.subject == probe.subject && q.relation == probe.relation &&
          q.object == probe.object && q.time < probe.time) {
        ++brute;
      }
    }
    EXPECT_EQ(index.CountBefore(probe.subject, probe.relation, probe.object,
                                probe.time),
              brute);
  }
}

TEST_P(RandomDatasetTest, TimeAwareFilterMatchesBruteForce) {
  TkgDataset d = MakeData();
  TimeAwareFilter filter(d);
  std::vector<Quadruple> all = AllFacts(d);
  int checked = 0;
  for (const Quadruple& probe : d.test()) {
    if (++checked > 20) break;
    std::unordered_set<int64_t> brute;
    for (const Quadruple& q : all) {
      if (q.subject == probe.subject && q.relation == probe.relation &&
          q.time == probe.time) {
        brute.insert(q.object);
      }
    }
    const std::vector<int64_t>& indexed =
        filter.Answers(probe.subject, probe.relation, probe.time);
    EXPECT_EQ(indexed.size(), brute.size());
    for (int64_t o : indexed) EXPECT_TRUE(brute.contains(o));
    // The probe's own object is always among the answers.
    EXPECT_TRUE(std::find(indexed.begin(), indexed.end(), probe.object) !=
                indexed.end());
  }
}

TEST_P(RandomDatasetTest, ObjectCountsSumToPostings) {
  TkgDataset d = MakeData();
  HistoryIndex index(d);
  int checked = 0;
  for (const Quadruple& probe : d.test()) {
    if (++checked > 10) break;
    int64_t total = 0;
    for (const auto& [object, count] : index.ObjectCountsBefore(
             probe.subject, probe.relation, probe.time)) {
      EXPECT_GT(count, 0);
      EXPECT_EQ(index.CountBefore(probe.subject, probe.relation, object,
                                  probe.time),
                count);
      total += count;
    }
    (void)total;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDatasetTest,
                         ::testing::Values(301, 302, 303, 304));

TEST(ReproducibilityTest, IdenticalSeedsGiveIdenticalTraining) {
  SynthConfig config;
  config.seed = 88;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  TkgDataset d = GenerateSyntheticTkg(config);
  LogClConfig model_config;
  model_config.embedding_dim = 8;
  model_config.local.history_length = 2;
  model_config.local.num_layers = 1;
  model_config.global.num_layers = 1;
  model_config.decoder.num_kernels = 4;
  model_config.seed = 99;

  auto train_and_score = [&]() {
    LogClModel model(&d, model_config);
    AdamOptimizer optimizer(model.Parameters(), {});
    model.TrainEpoch(&optimizer);
    return model.ScoreQueries({{0, 0, 1, 13}, {2, 1, 3, 13}});
  };
  EXPECT_EQ(train_and_score(), train_and_score());
}

TEST(ReproducibilityTest, DifferentModelSeedsDiffer) {
  SynthConfig config;
  config.seed = 89;
  config.num_entities = 16;
  config.num_relations = 3;
  config.num_timestamps = 15;
  TkgDataset d = GenerateSyntheticTkg(config);
  LogClConfig a;
  a.embedding_dim = 8;
  a.local.history_length = 2;
  a.local.num_layers = 1;
  a.global.num_layers = 1;
  a.decoder.num_kernels = 4;
  a.seed = 1;
  LogClConfig b = a;
  b.seed = 2;
  LogClModel model_a(&d, a);
  LogClModel model_b(&d, b);
  EXPECT_NE(model_a.ScoreQueries({{0, 0, 1, 13}}),
            model_b.ScoreQueries({{0, 0, 1, 13}}));
}

}  // namespace
}  // namespace logcl
