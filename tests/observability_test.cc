// Tests for the unified observability layer (common/observability.h):
// counter/histogram correctness, the multi-thread shard merge (run under
// TSan via the *Observability* filter in ci.yml), tracer nesting and path
// interning, the disabled-mode zero-allocation contract, the exporters,
// and the structured EpochStats training API that replaced the scalar
// TrainEpoch return.

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/observability.h"
#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/buffer_pool.h"

namespace logcl {
namespace {

// Metric names are interned process-wide for the binary's lifetime, so every
// test uses its own obs_test.* names to stay independent of ordering.
//
// CI runs the whole suite under both LOGCL_OBSERVABILITY=0 and =1; the
// fixture pins recording on for the test body (restoring after) so the
// assertions hold either way — the disabled-mode test flips it back off
// itself.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = ObservabilityEnabled();
    SetObservabilityEnabled(true);
  }
  void TearDown() override { SetObservabilityEnabled(was_enabled_); }

 private:
  bool was_enabled_ = true;
};

TEST_F(ObservabilityTest, CounterAccumulatesAndSnapshots) {
  Counter* c = Metrics().GetCounter("obs_test.counter.basic");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(Metrics().Snapshot().CounterValue("obs_test.counter.basic"), 42u);
  // Interning the same name again returns the same handle.
  EXPECT_EQ(Metrics().GetCounter("obs_test.counter.basic"), c);
  c->Add(8);
  EXPECT_EQ(Metrics().Snapshot().CounterValue("obs_test.counter.basic"), 50u);
}

TEST_F(ObservabilityTest, GaugeIsLastValue) {
  Gauge* g = Metrics().GetGauge("obs_test.gauge.basic");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(Metrics().Snapshot().GaugeValue("obs_test.gauge.basic"), 4);
}

TEST_F(ObservabilityTest, MissingMetricsReadAsZero) {
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_EQ(snap.Find("obs_test.never_created"), nullptr);
  EXPECT_EQ(snap.CounterValue("obs_test.never_created"), 0u);
  EXPECT_EQ(snap.GaugeValue("obs_test.never_created"), 0);
  EXPECT_EQ(snap.HistogramValue("obs_test.never_created").count, 0u);
}

TEST_F(ObservabilityTest, HistogramCountSumMaxMean) {
  Histogram* h = Metrics().GetHistogram("obs_test.hist.moments");
  for (uint64_t v : {3u, 5u, 100u, 1000u}) h->Record(v);
  HistogramSnapshot snap =
      Metrics().Snapshot().HistogramValue("obs_test.hist.moments");
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1108u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 277.0);
}

TEST_F(ObservabilityTest, HistogramBucketLayoutIsMonotonicAndExactForSmall) {
  // Values 0..7 land in exact unit buckets.
  for (uint64_t v = 0; v < 8; ++v) {
    int index = HistogramBuckets::Index(v);
    EXPECT_EQ(HistogramBuckets::Lower(index), v);
    EXPECT_EQ(HistogramBuckets::Upper(index), v + 1);
  }
  // Index is monotonic and every value falls inside its bucket's bounds.
  int prev = -1;
  for (uint64_t v : {0ull, 7ull, 8ull, 9ull, 100ull, 4096ull, 1234567ull,
                     (1ull << 39) + 17ull}) {
    int index = HistogramBuckets::Index(v);
    EXPECT_GE(index, prev);
    prev = index;
    EXPECT_GE(v, HistogramBuckets::Lower(index));
    EXPECT_LT(v, HistogramBuckets::Upper(index));
  }
}

TEST_F(ObservabilityTest, HistogramPercentileWithinBucketResolution) {
  Histogram* h = Metrics().GetHistogram("obs_test.hist.percentile");
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  HistogramSnapshot snap =
      Metrics().Snapshot().HistogramValue("obs_test.hist.percentile");
  // Log buckets are 12.5% wide, so percentiles land within that of truth.
  EXPECT_NEAR(snap.Percentile(0.50), 500.0, 0.125 * 500.0);
  EXPECT_NEAR(snap.Percentile(0.99), 990.0, 0.125 * 990.0);
  // p100 is clamped by the exact max.
  EXPECT_LE(snap.Percentile(1.0), 1000.0);
}

// Shard-merge correctness under contention: hammered by several threads,
// the merged totals must be exact once the writers have joined. This test
// runs under TSan in CI to prove the lock-free write path is race-free.
TEST_F(ObservabilityTest, MultiThreadMergeIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter* c = Metrics().GetCounter("obs_test.counter.mt");
  Histogram* h = Metrics().GetHistogram("obs_test.hist.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("obs_test.counter.mt"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot hist = snap.HistogramValue("obs_test.hist.mt");
  EXPECT_EQ(hist.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.sum, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObservabilityTest, TracerNestingBuildsHierarchicalPaths) {
  ASSERT_TRUE(ObservabilityEnabled());
  int64_t base_depth = TraceDepthForTest();
  {
    LOGCL_TRACE_SCOPE("obs_outer");
    EXPECT_EQ(TraceDepthForTest(), base_depth + 1);
    {
      LOGCL_TRACE_SCOPE("obs_inner");
      EXPECT_EQ(TraceDepthForTest(), base_depth + 2);
    }
    EXPECT_EQ(TraceDepthForTest(), base_depth + 1);
  }
  EXPECT_EQ(TraceDepthForTest(), base_depth);
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_GE(snap.HistogramValue("logcl.trace.obs_outer").count, 1u);
  EXPECT_GE(snap.HistogramValue("logcl.trace.obs_outer/obs_inner").count, 1u);
}

TEST_F(ObservabilityTest, SameLeafUnderDifferentParentsIsDistinct) {
  {
    LOGCL_TRACE_SCOPE("obs_parent_a");
    LOGCL_TRACE_SCOPE("obs_leaf");
  }
  {
    LOGCL_TRACE_SCOPE("obs_parent_b");
    LOGCL_TRACE_SCOPE("obs_leaf");
  }
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_GE(snap.HistogramValue("logcl.trace.obs_parent_a/obs_leaf").count,
            1u);
  EXPECT_GE(snap.HistogramValue("logcl.trace.obs_parent_b/obs_leaf").count,
            1u);
}

TEST_F(ObservabilityTest, DisabledModeRecordsNothingAndAllocatesNothing) {
  Counter* c = Metrics().GetCounter("obs_test.counter.disabled");
  Histogram* h = Metrics().GetHistogram("obs_test.hist.disabled");
  c->Add(5);
  h->Record(5);
  SetObservabilityEnabled(false);
  uint64_t metrics_before = Metrics().MetricCountForTest();
  uint64_t interns_before = TraceInternCountForTest();
  for (int i = 0; i < 1000; ++i) {
    c->Add(1);
    h->Record(1);
    LOGCL_TRACE_SCOPE("obs_disabled_scope");  // must not intern a path
  }
  SetObservabilityEnabled(true);
  // No new metric or trace path came into existence while disabled, and the
  // pre-existing handles saw none of the writes.
  EXPECT_EQ(Metrics().MetricCountForTest(), metrics_before);
  EXPECT_EQ(TraceInternCountForTest(), interns_before);
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("obs_test.counter.disabled"), 5u);
  EXPECT_EQ(snap.HistogramValue("obs_test.hist.disabled").count, 1u);
}

TEST_F(ObservabilityTest, PoolSourcePublishesUnderRegistryNames) {
  // Drive some traffic through the pool, then check the registered source
  // surfaces the same numbers as PoolSnapshot() under the logcl.pool.*
  // schema (DESIGN.md §12).
  { Tensor scratch = Tensor::Zeros(Shape{64, 64}); }
  BufferPoolStats pool = PoolSnapshot();
  ASSERT_GT(pool.acquires, 0u);
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_GE(snap.CounterValue("logcl.pool.acquires"), pool.acquires);
  EXPECT_NE(snap.Find("logcl.pool.live_bytes"), nullptr);
}

TEST_F(ObservabilityTest, DumpMetricsTextAndJsonShapes) {
  Metrics().GetCounter("obs_test.counter.dump")->Add(3);
  Metrics().GetHistogram("obs_test.hist.dump")->Record(12);
  std::ostringstream text;
  DumpMetrics(text, MetricsFormat::kText);
  EXPECT_NE(text.str().find("obs_test.counter.dump"), std::string::npos);
  EXPECT_NE(text.str().find("obs_test.hist.dump"), std::string::npos);
  std::ostringstream json;
  DumpMetrics(json, MetricsFormat::kJson);
  const std::string s = json.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '\n');
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"obs_test.counter.dump\": 3"), std::string::npos);
}

// --- Structured training stats ----------------------------------------------

TkgDataset ObsData() {
  SynthConfig config;
  config.name = "obs-test";
  config.seed = 515;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 12;
  config.recurring_pool = 16;
  config.recurring_prob = 0.4;
  return GenerateSyntheticTkg(config);
}

LogClConfig ObsConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 99;
  return config;
}

TEST_F(ObservabilityTest, EpochStatsComponentsSumToLoss) {
  TkgDataset data = ObsData();
  LogClModel model(&data, ObsConfig());
  AdamOptimizer optimizer(model.Parameters(), {});
  EpochStats stats = model.TrainEpoch(&optimizer);
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.loss, 0.0);
  // The structured breakdown must reconstruct the scalar the old API
  // returned: total = task + contrast (+ aux, zero for LogCL).
  EXPECT_NEAR(stats.loss, stats.loss_task + stats.loss_contrast +
                              stats.loss_aux,
              1e-4 * std::max(1.0, stats.loss));
  EXPECT_GE(stats.loss_contrast, 0.0);
  EXPECT_GE(stats.seconds_total, 0.0);
  EXPECT_GE(stats.seconds_total,
            stats.seconds_forward + stats.seconds_backward);
  EXPECT_GT(stats.grad_norm, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(ObservabilityTest, TrainEpochLossShimMatchesStructuredLoss) {
  // Two identical models (same data, config, seed) step in lockstep: the
  // deprecated scalar shim must return exactly the structured total.
  TkgDataset data_a = ObsData();
  TkgDataset data_b = ObsData();
  LogClModel a(&data_a, ObsConfig());
  LogClModel b(&data_b, ObsConfig());
  AdamOptimizer opt_a(a.Parameters(), {});
  AdamOptimizer opt_b(b.Parameters(), {});
  double structured = a.TrainEpoch(&opt_a).loss;
  double shim = b.TrainEpochLoss(&opt_b);
  EXPECT_NEAR(structured, shim, 1e-9 * std::max(1.0, std::abs(structured)));
}

TEST_F(ObservabilityTest, TrainEpochFeedsTraceHistograms) {
  TkgDataset data = ObsData();
  LogClModel model(&data, ObsConfig());
  AdamOptimizer optimizer(model.Parameters(), {});
  HistogramSnapshot before =
      Metrics().Snapshot().HistogramValue("logcl.trace.train_epoch");
  model.TrainEpoch(&optimizer);
  MetricsSnapshot snap = Metrics().Snapshot();
  EXPECT_EQ(snap.HistogramValue("logcl.trace.train_epoch").count,
            before.count + 1);
  EXPECT_GT(snap.HistogramValue("logcl.trace.train_epoch/train_step").count,
            0u);
}

}  // namespace
}  // namespace logcl
