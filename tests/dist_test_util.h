// Shared fixtures for the distributed-tier tests and the multi-process rank
// binary (dist_rank_main.cc): one small synthetic TKG and one small LogCL
// configuration, regenerated identically from fixed seeds so every rank —
// in-process thread or forked process — builds bitwise-identical starting
// state without any file exchange.

#ifndef LOGCL_TESTS_DIST_TEST_UTIL_H_
#define LOGCL_TESTS_DIST_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/optimizer.h"
#include "tkg/dataset.h"

namespace logcl {
namespace dist_test {

/// Every caller gets its own dataset instance: TkgDataset's lazy snapshot
/// cache is not thread-safe, so concurrent in-process ranks must not share
/// one (process ranks naturally do not).
inline TkgDataset DistData() {
  SynthConfig config;
  config.name = "dist-test";
  config.seed = 505;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 14;
  config.recurring_pool = 20;
  config.recurring_prob = 0.35;
  config.alternating_pool = 10;
  config.num_cyclic = 6;
  config.chains_per_timestamp = 2.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

inline LogClConfig DistConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 77;
  return config;
}

/// Flattens a model's parameters for bitwise comparison.
inline std::vector<float> FlattenParameters(const LogClModel& model) {
  std::vector<float> flat;
  for (const Tensor& p : model.Parameters()) {
    const std::vector<float>& data = p.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

}  // namespace dist_test
}  // namespace logcl

#endif  // LOGCL_TESTS_DIST_TEST_UTIL_H_
