// Property-based sweeps over the op library: algebraic identities and
// finite-difference gradient checks across randomized shapes and seeds.
// These complement the hand-checked cases in tensor_test.cc.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace logcl {
namespace {

Tensor RandomTensor(const Shape& shape, uint64_t seed, bool grad = false) {
  Rng rng(seed);
  return Tensor::RandomNormal(shape, 1.0f, &rng, grad);
}

void ExpectAllNear(const Tensor& a, const Tensor& b, float tol = 1e-5f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), tol) << "element " << i;
  }
}

// ---------------------------------------------------------------------------
// Algebraic identities over randomized shapes.
// ---------------------------------------------------------------------------

class ShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  int64_t rows() const { return GetParam().first; }
  int64_t cols() const { return GetParam().second; }
};

TEST_P(ShapeSweep, AddCommutes) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 10);
  Tensor b = RandomTensor(Shape{rows(), cols()}, 11);
  ExpectAllNear(ops::Add(a, b), ops::Add(b, a));
}

TEST_P(ShapeSweep, SubIsAddOfNeg) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 12);
  Tensor b = RandomTensor(Shape{rows(), cols()}, 13);
  ExpectAllNear(ops::Sub(a, b), ops::Add(a, ops::Neg(b)));
}

TEST_P(ShapeSweep, DoubleTransposeIsIdentity) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 14);
  ExpectAllNear(ops::Transpose(ops::Transpose(a)), a);
}

TEST_P(ShapeSweep, ConcatThenSliceRecovers) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 15);
  Tensor b = RandomTensor(Shape{rows(), cols()}, 16);
  Tensor c = ops::ConcatCols({a, b});
  ExpectAllNear(ops::SliceCols(c, 0, cols()), a);
  ExpectAllNear(ops::SliceCols(c, cols(), cols()), b);
}

TEST_P(ShapeSweep, SoftmaxIsShiftInvariant) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 17);
  Tensor shifted = ops::AddScalar(a, 7.5f);
  ExpectAllNear(ops::Softmax(a), ops::Softmax(shifted), 1e-4f);
}

TEST_P(ShapeSweep, SumAllMatchesMeanTimesCount) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 18);
  float sum = ops::SumAll(a).at(0);
  float mean = ops::MeanAll(a).at(0);
  EXPECT_NEAR(sum, mean * static_cast<float>(a.num_elements()), 1e-3f);
}

TEST_P(ShapeSweep, MatMulIdentity) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 19);
  std::vector<float> eye(static_cast<size_t>(cols() * cols()), 0.0f);
  for (int64_t i = 0; i < cols(); ++i) eye[static_cast<size_t>(i * cols() + i)] = 1.0f;
  Tensor identity = Tensor::FromVector(Shape{cols(), cols()}, std::move(eye));
  ExpectAllNear(ops::MatMul(a, identity), a, 1e-4f);
}

TEST_P(ShapeSweep, IndexSelectAllRowsIsIdentity) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 20);
  std::vector<int64_t> all(static_cast<size_t>(rows()));
  for (int64_t i = 0; i < rows(); ++i) all[static_cast<size_t>(i)] = i;
  ExpectAllNear(ops::IndexSelectRows(a, all), a);
}

TEST_P(ShapeSweep, ScatterAddInvertsIndexSelectCounts) {
  // scatter_add(select(x, idx), idx) multiplies each row by its multiplicity.
  Tensor a = RandomTensor(Shape{rows(), cols()}, 21);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < rows(); ++i) {
    idx.push_back(i);
    idx.push_back(i);  // every row twice
  }
  Tensor twice = ops::ScatterAddRows(ops::IndexSelectRows(a, idx), idx, rows());
  ExpectAllNear(twice, ops::Scale(a, 2.0f), 1e-4f);
}

TEST_P(ShapeSweep, ScatterMeanOfDuplicatesIsIdentity) {
  Tensor a = RandomTensor(Shape{rows(), cols()}, 22);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < rows(); ++i) {
    idx.push_back(i);
    idx.push_back(i);
  }
  Tensor mean = ops::ScatterMeanRows(ops::IndexSelectRows(a, idx), idx, rows());
  ExpectAllNear(mean, a, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{1, 7},
                                           std::pair<int, int>{5, 1},
                                           std::pair<int, int>{3, 4},
                                           std::pair<int, int>{8, 8},
                                           std::pair<int, int>{13, 5}));

// ---------------------------------------------------------------------------
// Gradient checks across random seeds for composite expressions.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, CompositeAttentionExpression) {
  // The shape of the entity-aware attention computation (Eq.9-11).
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Tensor states = RandomTensor(Shape{4, 3}, seed, true);
  Tensor keys = RandomTensor(Shape{4, 3}, seed + 1, true);
  Tensor w = RandomTensor(Shape{3, 1}, seed + 2, true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor logits_a = ops::MatMul(ops::Add(in[1], in[0]), in[2]);
        Tensor logits_b = ops::MatMul(ops::Sub(in[1], in[0]), in[2]);
        Tensor alpha = ops::Softmax(ops::ConcatCols({logits_a, logits_b}));
        Tensor weighted =
            ops::MulColBroadcast(in[0], ops::SliceCols(alpha, 0, 1));
        return ops::SumAll(ops::Tanh(ops::Add(in[1], weighted)));
      },
      {states, keys, w});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST_P(SeedSweep, CompositeInfoNceExpression) {
  // The shape of the contrast loss: normalized projections + log-softmax.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Tensor a = RandomTensor(Shape{4, 5}, seed + 10, true);
  Tensor b = RandomTensor(Shape{4, 5}, seed + 11, true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor za = ops::RowL2Normalize(in[0]);
        Tensor zb = ops::RowL2Normalize(in[1]);
        Tensor logits = ops::Scale(ops::MatMul(za, ops::Transpose(zb)), 5.0f);
        return ops::CrossEntropyWithLogits(logits, {0, 1, 2, 3});
      },
      {a, b});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST_P(SeedSweep, CompositeGruExpression) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Tensor h = RandomTensor(Shape{3, 4}, seed + 20, true);
  Tensor x = RandomTensor(Shape{3, 4}, seed + 21, true);
  Tensor wz = RandomTensor(Shape{4, 4}, seed + 22, true);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor z = ops::Sigmoid(ops::MatMul(in[1], in[2]));
        Tensor keep = ops::AddScalar(ops::Neg(z), 1.0f);
        Tensor next = ops::Add(ops::Mul(z, in[0]),
                               ops::Mul(keep, ops::Tanh(in[1])));
        return ops::MeanAll(ops::Mul(next, next));
      },
      {h, x, wz});
  EXPECT_TRUE(report.passed) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(100, 108));

}  // namespace
}  // namespace logcl
