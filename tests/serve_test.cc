// Tests for the serving subsystem: EngineSnapshot parity with the offline
// scorer, copy-on-write Advance equivalence, eval-mode determinism under
// noise injection, partial top-k selection, the micro-batching
// InferenceEngine front-end, and the checkpoint deploy path.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/logcl_model.h"
#include "eval/ranking.h"
#include "serve/engine_snapshot.h"
#include "serve/inference_engine.h"
#include "synth/generator.h"
#include "tensor/optimizer.h"
#include "tensor/serialization.h"
#include "tkg/dataset.h"

namespace logcl {
namespace {

namespace fs = std::filesystem;

TkgDataset ServeData() {
  SynthConfig config;
  config.name = "serve-test";
  config.seed = 404;
  config.num_entities = 25;
  config.num_relations = 5;
  config.num_timestamps = 30;
  config.recurring_pool = 25;
  config.recurring_prob = 0.35;
  config.alternating_pool = 12;
  config.num_cyclic = 8;
  config.chains_per_timestamp = 2.0;
  config.noise_per_timestamp = 1.0;
  return GenerateSyntheticTkg(config);
}

LogClConfig ServeConfig() {
  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.local.num_layers = 1;
  config.local.time_dim = 4;
  config.global.num_layers = 1;
  config.decoder.num_kernels = 8;
  config.seed = 77;
  return config;
}

std::vector<Quadruple> ServeQueriesAt(int64_t t) {
  return {{0, 0, 1, t}, {2, 1, 3, t}, {7, 3, 0, t}, {11, 8, 4, t}};
}

std::vector<ServeQuery> AsServeQueries(const std::vector<Quadruple>& quads) {
  std::vector<ServeQuery> queries;
  for (const Quadruple& q : quads) queries.push_back({q.subject, q.relation});
  return queries;
}

// Bitwise row-by-row comparison of a [B, E] score tensor against the
// offline scorer's nested vectors.
void ExpectScoresBitwiseEqual(const Tensor& batch,
                              const std::vector<std::vector<float>>& oracle) {
  ASSERT_EQ(static_cast<size_t>(batch.shape().rows()), oracle.size());
  int64_t num_entities = batch.shape().cols();
  const std::vector<float>& data = batch.data();
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(oracle[i].size(), static_cast<size_t>(num_entities));
    for (int64_t e = 0; e < num_entities; ++e) {
      float got = data[static_cast<int64_t>(i) * num_entities + e];
      ASSERT_EQ(got, oracle[i][e])
          << "score mismatch at row " << i << " entity " << e;
    }
  }
}

// Restores the global thread count on scope exit so tests do not leak
// configuration into each other.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadCountGuard() { SetNumThreads(previous_); }

 private:
  int previous_;
};

// --- Snapshot parity --------------------------------------------------------

TEST(ServeSnapshotTest, ScoreBatchMatchesModelBitwise) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  std::vector<Quadruple> queries = ServeQueriesAt(25);
  for (int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    auto snapshot = EngineSnapshot::Build(&model, 25);
    ASSERT_EQ(snapshot->time(), 25);
    Tensor scores = snapshot->ScoreBatch(AsServeQueries(queries));
    ExpectScoresBitwiseEqual(scores, model.ScoreQueries(queries));
  }
}

TEST(ServeSnapshotTest, RepeatedScoreBatchIsBitwiseStable) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  auto snapshot = EngineSnapshot::Build(&model, 20);
  std::vector<ServeQuery> queries = AsServeQueries(ServeQueriesAt(20));
  Tensor a = snapshot->ScoreBatch(queries);
  Tensor b = snapshot->ScoreBatch(queries);
  EXPECT_EQ(a.data(), b.data());
}

// Advance must be bitwise equivalent to building against a dataset that
// already contains the new facts. The cut dataset drops the last two test
// timestamps; Advance folds them back in one day at a time.
TEST(ServeSnapshotTest, AdvanceMatchesModelWithExtendedDataset) {
  TkgDataset full = ServeData();
  int64_t horizon = full.num_timestamps() - 2;  // 28
  std::vector<Quadruple> cut_test;
  for (const Quadruple& q : full.test()) {
    if (q.time < horizon) cut_test.push_back(q);
  }
  TkgDataset cut = TkgDataset::FromQuadruples(
      "serve-test-cut", full.num_entities(), full.num_base_relations(),
      full.train(), full.valid(), cut_test);
  // Premise: the generator splits chronologically, so everything at or past
  // the horizon is test-only and the cut dataset genuinely ends there.
  ASSERT_TRUE(cut.FactsAt(horizon).empty());
  ASSERT_TRUE(cut.FactsAt(horizon + 1).empty());
  ASSERT_FALSE(full.FactsAt(horizon).empty());
  ASSERT_FALSE(full.FactsAt(horizon + 1).empty());

  // Same config + seed => bitwise identical parameters.
  LogClModel model_cut(&cut, ServeConfig());
  LogClModel model_full(&full, ServeConfig());

  auto snapshot = EngineSnapshot::Build(&model_cut, horizon);
  auto advanced = snapshot->Advance(full.FactsAt(horizon));
  ASSERT_EQ(advanced->time(), horizon + 1);
  std::vector<Quadruple> day1 = ServeQueriesAt(horizon + 1);
  ExpectScoresBitwiseEqual(advanced->ScoreBatch(AsServeQueries(day1)),
                           model_full.ScoreQueries(day1));

  // A second hop exercises the owned-graph window rotation.
  auto advanced2 = advanced->Advance(full.FactsAt(horizon + 1));
  ASSERT_EQ(advanced2->time(), horizon + 2);
  std::vector<Quadruple> day2 = ServeQueriesAt(horizon + 2);
  ExpectScoresBitwiseEqual(advanced2->ScoreBatch(AsServeQueries(day2)),
                           model_full.ScoreQueries(day2));
  // The original snapshot is untouched by either Advance.
  EXPECT_EQ(snapshot->time(), horizon);
}

// --- Eval-mode determinism --------------------------------------------------

TEST(ServeEvalModeTest, NoiseInjectionDoesNotPerturbEvalScores) {
  TkgDataset data = ServeData();
  LogClConfig config = ServeConfig();
  config.noise_stddev = 0.1f;
  LogClModel model(&data, config);
  std::vector<Quadruple> queries = ServeQueriesAt(25);

  // Default (paper protocol): eval inputs are contaminated per call.
  auto noisy1 = model.ScoreQueries(queries);
  auto noisy2 = model.ScoreQueries(queries);
  EXPECT_NE(noisy1, noisy2);

  // Eval mode pins the inputs: repeated calls are bitwise identical.
  model.SetEvalMode(true);
  auto pinned1 = model.ScoreQueries(queries);
  auto pinned2 = model.ScoreQueries(queries);
  EXPECT_EQ(pinned1, pinned2);

  // And snapshots built from the eval-mode model agree with it bitwise.
  auto snapshot = EngineSnapshot::Build(&model, 25);
  ExpectScoresBitwiseEqual(snapshot->ScoreBatch(AsServeQueries(queries)),
                           model.ScoreQueries(queries));
}

// --- Top-k ------------------------------------------------------------------

// The pre-serving implementation: full softmax over all logits, full sort.
std::vector<std::pair<int64_t, float>> FullSoftmaxTopK(
    const std::vector<float>& logits, int64_t k) {
  int64_t n = static_cast<int64_t>(logits.size());
  float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<float> exp(n);
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    exp[i] = std::exp(logits[i] - max_logit);
    sum += exp[i];
  }
  std::vector<std::pair<int64_t, float>> ranked;
  for (int64_t i = 0; i < n; ++i) {
    ranked.emplace_back(i, static_cast<float>(exp[i] / sum));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second != b.second ? a.second > b.second
                                                 : a.first < b.first;
                   });
  ranked.resize(std::min<int64_t>(k, n));
  return ranked;
}

TEST(ServeTopKTest, TopKSoftmaxMatchesFullSoftmaxOracle) {
  Rng rng(99);
  Tensor logits = Tensor::RandomNormal(Shape{1, 200}, 2.0f, &rng);
  const std::vector<float>& row = logits.data();
  for (int64_t k : {1, 5, 37, 200}) {
    auto fast = TopKSoftmax(row.data(), 200, k);
    auto oracle = FullSoftmaxTopK(row, k);
    ASSERT_EQ(fast.size(), oracle.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].first, oracle[i].first) << "rank " << i;
      EXPECT_EQ(fast[i].second, oracle[i].second) << "rank " << i;
    }
  }
}

TEST(ServeTopKTest, TopKSoftmaxBreaksTiesTowardLowerIndex) {
  std::vector<float> row = {1.0f, 3.0f, 3.0f, 0.5f, 3.0f};
  auto top = TopKSoftmax(row.data(), 5, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1);
  EXPECT_EQ(top[1].first, 2);
  EXPECT_EQ(top[2].first, 4);
  EXPECT_EQ(top[0].second, top[1].second);
}

TEST(ServeTopKTest, TopKPartialMatchesFullSort) {
  Rng rng(123);
  Tensor logits = Tensor::RandomNormal(Shape{1, 150}, 1.0f, &rng);
  const std::vector<float>& row = logits.data();
  std::vector<int64_t> full(150);
  for (int64_t i = 0; i < 150; ++i) full[i] = i;
  std::stable_sort(full.begin(), full.end(), [&](int64_t a, int64_t b) {
    return row[a] != row[b] ? row[a] > row[b] : a < b;
  });
  for (int64_t k : {1, 10, 150}) {
    auto partial = TopKPartial(row.data(), 150, k);
    ASSERT_EQ(partial.size(), static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) EXPECT_EQ(partial[i], full[i]);
  }
}

TEST(ServeTopKTest, PredictTopKMatchesOracleOverModelScores) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  Quadruple query{3, 2, 0, 24};
  std::vector<float> row = model.ScoreQueries({query})[0];
  auto fast = model.PredictTopK(query, 5);
  auto oracle = FullSoftmaxTopK(row, 5);
  ASSERT_EQ(fast.size(), oracle.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].first, oracle[i].first);
    EXPECT_EQ(fast[i].second, oracle[i].second);
  }
}

// --- InferenceEngine --------------------------------------------------------

// With max_batch_size=1 every request is its own batch, so engine answers
// must equal per-query ScoreQueries bitwise (the union subgraph of a
// singleton batch is the query's own subgraph).
TEST(ServeEngineTest, SingleQueryBatchesMatchScoreQueries) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  EngineOptions options;
  options.max_batch_size = 1;
  options.batch_deadline_us = 0;
  InferenceEngine engine(&model, 25, options);
  for (const Quadruple& q : ServeQueriesAt(25)) {
    std::vector<float> row = engine.Score({q.subject, q.relation});
    EXPECT_EQ(row, model.ScoreQueries({q})[0]);
  }
  EngineStats stats = engine.Snapshot();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.max_batch, 1u);
}

TEST(ServeEngineTest, TopKMatchesScoreRow) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  EngineOptions options;
  options.max_batch_size = 1;
  options.batch_deadline_us = 0;
  InferenceEngine engine(&model, 25, options);
  ServeQuery query{5, 3};
  std::vector<float> row = engine.Score(query);
  auto top = engine.TopK(query, 3);
  auto oracle = FullSoftmaxTopK(row, 3);
  ASSERT_EQ(top.size(), 3u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].first, oracle[i].first);
    EXPECT_EQ(top[i].second, oracle[i].second);
  }
}

TEST(ServeEngineTest, AdvancePublishesNewHorizon) {
  TkgDataset data = ServeData();
  int64_t horizon = data.num_timestamps() - 2;
  LogClModel model(&data, ServeConfig());
  InferenceEngine engine(&model, horizon);
  EXPECT_EQ(engine.time(), horizon);
  engine.Advance(data.FactsAt(horizon));
  EXPECT_EQ(engine.time(), horizon + 1);
  // Served answers after the swap match a snapshot built at the new horizon.
  std::vector<Quadruple> queries = {{0, 0, 1, horizon + 1}};
  std::vector<float> row = engine.Score({0, 0});
  auto fresh = engine.snapshot()->ScoreBatch({{0, 0}});
  ASSERT_EQ(row.size(), static_cast<size_t>(data.num_entities()));
  for (int64_t e = 0; e < data.num_entities(); ++e) {
    EXPECT_EQ(row[e], fresh.data()[e]);
  }
  EXPECT_EQ(engine.Snapshot().advances, 1u);
}

// TSan target: concurrent submitters racing one Advance. Correctness of the
// answers is covered by the parity tests; this asserts the bookkeeping and
// that every request is answered with a full row.
TEST(ServeEngineTest, ConcurrentSubmitAndAdvance) {
  TkgDataset data = ServeData();
  int64_t horizon = data.num_timestamps() - 2;
  LogClModel model(&data, ServeConfig());
  EngineOptions options;
  options.max_batch_size = 8;
  options.batch_deadline_us = 200;
  InferenceEngine engine(&model, horizon, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> full_rows{0};
  std::vector<std::thread> submitters;
  for (int thread_id = 0; thread_id < kThreads; ++thread_id) {
    submitters.emplace_back([&, thread_id] {
      for (int i = 0; i < kPerThread; ++i) {
        ServeQuery query{(thread_id * kPerThread + i) % data.num_entities(),
                         i % data.num_relations_with_inverse()};
        std::vector<float> row = engine.Score(query);
        if (row.size() == static_cast<size_t>(data.num_entities())) {
          full_rows.fetch_add(1);
        }
      }
    });
  }
  std::thread advancer([&] { engine.Advance(data.FactsAt(horizon)); });
  for (std::thread& t : submitters) t.join();
  advancer.join();

  EXPECT_EQ(full_rows.load(), kThreads * kPerThread);
  EXPECT_EQ(engine.time(), horizon + 1);
  EngineStats stats = engine.Snapshot();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_LE(stats.max_batch, 8u);
  EXPECT_EQ(stats.advances, 1u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
  EXPECT_FALSE(stats.ToString().empty());
}

// --- Checkpoint deploy path -------------------------------------------------

TEST(ServeCheckpointTest, LoadedModelServesIdenticalScores) {
  TkgDataset data = ServeData();
  LogClModel trained(&data, ServeConfig());
  AdamOptimizer optimizer(trained.Parameters(), {});
  trained.TrainEpoch(&optimizer);  // move weights off their init values
  std::string path =
      (fs::temp_directory_path() / "logcl_serve_ckpt.bin").string();
  ASSERT_TRUE(SaveParameters(trained.Parameters(), path).ok());

  LogClModel deployed(&data, ServeConfig());
  ASSERT_TRUE(LoadModelCheckpoint(&deployed, path).ok());
  fs::remove(path);

  std::vector<Quadruple> queries = ServeQueriesAt(25);
  auto snapshot = EngineSnapshot::Build(&deployed, 25);
  ExpectScoresBitwiseEqual(snapshot->ScoreBatch(AsServeQueries(queries)),
                           trained.ScoreQueries(queries));
}

TEST(ServeCheckpointTest, SaveModelCheckpointRoundTripsBitwise) {
  TkgDataset data = ServeData();
  LogClModel trained(&data, ServeConfig());
  AdamOptimizer optimizer(trained.Parameters(), {});
  trained.TrainEpoch(&optimizer);
  std::string path =
      (fs::temp_directory_path() / "logcl_serve_ckpt_roundtrip.bin").string();
  ASSERT_TRUE(SaveModelCheckpoint(trained, path).ok());

  LogClModel restored(&data, ServeConfig());
  ASSERT_TRUE(LoadModelCheckpoint(&restored, path).ok());
  fs::remove(path);

  std::vector<Tensor> want = trained.Parameters();
  std::vector<Tensor> got = restored.Parameters();
  ASSERT_EQ(got.size(), want.size());
  for (size_t p = 0; p < want.size(); ++p) {
    const std::vector<float>& a = want[p].data();
    const std::vector<float>& b = got[p].data();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      uint32_t ai, bi;
      std::memcpy(&ai, &a[i], 4);
      std::memcpy(&bi, &b[i], 4);
      ASSERT_EQ(ai, bi) << "parameter " << p << " element " << i;
    }
  }
}

TEST(ServeCheckpointTest, SaveToUnwritablePathIsStatusNotCrash) {
  TkgDataset data = ServeData();
  LogClModel model(&data, ServeConfig());
  Status status =
      SaveModelCheckpoint(model, "/nonexistent-dir/nested/ckpt.bin");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace logcl
