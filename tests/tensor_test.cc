// Unit and property tests for the tensor/autograd substrate. Every op's
// backward is checked against central finite differences.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

using ::testing::Test;

TEST(ShapeTest, BasicProperties) {
  Shape s{3, 4};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_EQ(s.dim(1), 4);
  EXPECT_EQ(s.num_elements(), 12);
  EXPECT_EQ(s.ToString(), "[3, 4]");
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ZeroDimension) {
  Shape s{0, 4};
  EXPECT_EQ(s.num_elements(), 0);
}

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros(Shape{2, 2});
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::Full(Shape{3}, 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_EQ(t.at(4), 5.0f);
}

TEST(TensorTest, CloneIsDetached) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2}, /*requires_grad=*/true);
  Tensor b = a.Clone();
  EXPECT_FALSE(b.requires_grad());
  b.mutable_data()[0] = 99.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, HandleAliasesStorage) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor b = a;
  b.mutable_data()[0] = 7.0f;
  EXPECT_EQ(a.at(0), 7.0f);
  EXPECT_TRUE(a.IsSameObject(b));
}

TEST(TensorTest, XavierUniformRespectsBound) {
  Rng rng(7);
  Tensor w = Tensor::XavierUniform(Shape{16, 16}, &rng);
  float bound = std::sqrt(6.0 / 32.0);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorTest, RandomNormalStatistics) {
  Rng rng(11);
  Tensor x = Tensor::RandomNormal(Shape{4000}, 2.0f, &rng);
  double mean = 0.0, var = 0.0;
  for (float v : x.data()) mean += v;
  mean /= x.num_elements();
  for (float v : x.data()) var += (v - mean) * (v - mean);
  var /= x.num_elements();
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.15);
}

TEST(NoGradTest, GuardDisablesTape) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2}, true);
  {
    NoGradGuard guard;
    Tensor y = ops::Scale(a, 3.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = ops::Scale(a, 3.0f);
  EXPECT_TRUE(y.requires_grad());
}

// ---------------------------------------------------------------------------
// Forward correctness.
// ---------------------------------------------------------------------------

TEST(OpsForwardTest, AddSameShape) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {10, 20, 30, 40});
  Tensor c = ops::Add(a, b);
  EXPECT_EQ(c.at(0), 11.0f);
  EXPECT_EQ(c.at(3), 44.0f);
}

TEST(OpsForwardTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3}, {10, 20, 30});
  Tensor c = ops::Add(a, b);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 2), 36.0f);
}

TEST(OpsForwardTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor s = Tensor::Scalar(5.0f);
  Tensor c = ops::Add(a, s);
  EXPECT_EQ(c.at(0), 6.0f);
  EXPECT_EQ(c.at(1), 7.0f);
}

TEST(OpsForwardTest, SubAndMul) {
  Tensor a = Tensor::FromVector(Shape{2}, {5, 8});
  Tensor b = Tensor::FromVector(Shape{2}, {2, 4});
  EXPECT_EQ(ops::Sub(a, b).at(0), 3.0f);
  EXPECT_EQ(ops::Mul(a, b).at(1), 32.0f);
}

TEST(OpsForwardTest, MatMulKnownResult) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsForwardTest, TransposeRoundTrip) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::Transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_EQ(t.at(0, 1), 4.0f);
  Tensor tt = ops::Transpose(t);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(tt.at(i), a.at(i));
}

TEST(OpsForwardTest, ConcatColsAndSlice) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2, 1}, {9, 8});
  Tensor c = ops::ConcatCols({a, b});
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_EQ(c.at(0, 2), 9.0f);
  EXPECT_EQ(c.at(1, 0), 3.0f);
  Tensor s = ops::SliceCols(c, 2, 1);
  EXPECT_EQ(s.at(0, 0), 9.0f);
  EXPECT_EQ(s.at(1, 0), 8.0f);
}

TEST(OpsForwardTest, ConcatRowsAndSlice) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {3, 4, 5, 6});
  Tensor c = ops::ConcatRows({a, b});
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_EQ(c.at(2, 1), 6.0f);
  Tensor s = ops::SliceRows(c, 1, 2);
  EXPECT_EQ(s.at(0, 0), 3.0f);
}

TEST(OpsForwardTest, IndexSelectRows) {
  Tensor x = Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = ops::IndexSelectRows(x, {2, 0, 2});
  EXPECT_EQ(y.shape(), Shape({3, 2}));
  EXPECT_EQ(y.at(0, 0), 5.0f);
  EXPECT_EQ(y.at(1, 1), 2.0f);
  EXPECT_EQ(y.at(2, 0), 5.0f);
}

TEST(OpsForwardTest, ScatterAddRows) {
  Tensor v = Tensor::FromVector(Shape{3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor out = ops::ScatterAddRows(v, {0, 0, 2}, 4);
  EXPECT_EQ(out.shape(), Shape({4, 2}));
  EXPECT_EQ(out.at(0, 0), 3.0f);  // 1 + 2
  EXPECT_EQ(out.at(1, 0), 0.0f);
  EXPECT_EQ(out.at(2, 1), 3.0f);
}

TEST(OpsForwardTest, ScatterMeanRows) {
  Tensor v = Tensor::FromVector(Shape{3, 1}, {2, 4, 6});
  Tensor out = ops::ScatterMeanRows(v, {1, 1, 0}, 3);
  EXPECT_EQ(out.at(0, 0), 6.0f);
  EXPECT_EQ(out.at(1, 0), 3.0f);  // mean(2, 4)
  EXPECT_EQ(out.at(2, 0), 0.0f);  // no receivers
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor y = ops::Softmax(x);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += y.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(y.at(0, 2), y.at(0, 0));
}

TEST(OpsForwardTest, SoftmaxNumericalStability) {
  Tensor x = Tensor::FromVector(Shape{1, 2}, {1000.0f, 1001.0f});
  Tensor y = ops::Softmax(x);
  EXPECT_FALSE(std::isnan(y.at(0)));
  // float32 ULP at logit magnitude 1000 dominates the error here.
  EXPECT_NEAR(y.at(0) + y.at(1), 1.0f, 1e-4f);
}

TEST(OpsForwardTest, SoftmaxFullyMaskedRowIsUniform) {
  // Regression: a row of -1e9 "mask" logits must give the uniform
  // distribution, not all-ones (float lse absorption).
  Tensor x = Tensor::Full(Shape{1, 8}, -1e9f);
  Tensor y = ops::Softmax(x);
  for (int64_t j = 0; j < 8; ++j) EXPECT_NEAR(y.at(0, j), 0.125f, 1e-5f);
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x = Tensor::FromVector(Shape{1, 3}, {0.5f, -0.2f, 1.5f});
  Tensor a = ops::LogSoftmax(x);
  Tensor b = ops::Softmax(x);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(a.at(0, j), std::log(b.at(0, j)), 1e-5f);
  }
}

TEST(OpsForwardTest, SegmentSoftmax) {
  Tensor logits = Tensor::FromVector(Shape{4, 1}, {0, 0, 1, 3});
  Tensor y = ops::SegmentSoftmax(logits, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(y.at(0), 0.5f, 1e-5f);
  EXPECT_NEAR(y.at(1), 0.5f, 1e-5f);
  EXPECT_NEAR(y.at(2) + y.at(3), 1.0f, 1e-5f);
  EXPECT_GT(y.at(3), y.at(2));
}

TEST(OpsForwardTest, SigmoidTanhReluValues) {
  Tensor x = Tensor::FromVector(Shape{3}, {-2, 0, 2});
  Tensor s = ops::Sigmoid(x);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(0) + s.at(2), 1.0f, 1e-5f);  // symmetry
  Tensor t = ops::Tanh(x);
  EXPECT_NEAR(t.at(1), 0.0f, 1e-6f);
  Tensor r = ops::Relu(x);
  EXPECT_EQ(r.at(0), 0.0f);
  EXPECT_EQ(r.at(2), 2.0f);
}

TEST(OpsForwardTest, RReluEvalUsesFixedSlope) {
  Tensor x = Tensor::FromVector(Shape{2}, {-1.0f, 1.0f});
  Tensor y = ops::RRelu(x, /*training=*/false, nullptr);
  EXPECT_NEAR(y.at(0), -(1.0f / 8.0f + 1.0f / 3.0f) / 2.0f, 1e-5f);
  EXPECT_EQ(y.at(1), 1.0f);
}

TEST(OpsForwardTest, RReluTrainingSlopeInRange) {
  Rng rng(3);
  Tensor x = Tensor::Full(Shape{100}, -1.0f);
  Tensor y = ops::RRelu(x, /*training=*/true, &rng);
  for (float v : y.data()) {
    EXPECT_LE(v, -1.0f / 8.0f + 1e-6f);
    EXPECT_GE(v, -1.0f / 3.0f - 1e-6f);
  }
}

TEST(OpsForwardTest, DropoutEvalIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor y = ops::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.IsSameObject(x));
}

TEST(OpsForwardTest, DropoutPreservesExpectation) {
  Rng rng(5);
  Tensor x = Tensor::Full(Shape{20000}, 1.0f);
  Tensor y = ops::Dropout(x, 0.3f, /*training=*/true, &rng);
  double mean = 0.0;
  for (float v : y.data()) mean += v;
  mean /= y.num_elements();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(OpsForwardTest, RowL2NormalizeUnitNorms) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {3, 4, 0.6f, 0.8f});
  Tensor y = ops::RowL2Normalize(x);
  for (int64_t i = 0; i < 2; ++i) {
    float norm = std::sqrt(y.at(i, 0) * y.at(i, 0) + y.at(i, 1) * y.at(i, 1));
    EXPECT_NEAR(norm, 1.0f, 1e-5f);
  }
  EXPECT_NEAR(y.at(0, 0), 0.6f, 1e-5f);
}

TEST(OpsForwardTest, Reductions) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ops::SumAll(x).at(0), 10.0f);
  EXPECT_EQ(ops::MeanAll(x).at(0), 2.5f);
  Tensor mr = ops::MeanRows(x);
  EXPECT_EQ(mr.shape(), Shape({1, 2}));
  EXPECT_EQ(mr.at(0, 0), 2.0f);
  EXPECT_EQ(mr.at(0, 1), 3.0f);
  Tensor rs = ops::RowSum(x);
  EXPECT_EQ(rs.shape(), Shape({2, 1}));
  EXPECT_EQ(rs.at(0, 0), 3.0f);
  EXPECT_EQ(rs.at(1, 0), 7.0f);
}

TEST(OpsForwardTest, MeanRowsEmptyInputIsZero) {
  Tensor x = Tensor::Zeros(Shape{0, 3});
  Tensor y = ops::MeanRows(x);
  EXPECT_EQ(y.shape(), Shape({1, 3}));
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(OpsForwardTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros(Shape{2, 4});
  Tensor loss = ops::CrossEntropyWithLogits(logits, {1, 3});
  EXPECT_NEAR(loss.at(0), std::log(4.0f), 1e-5f);
}

TEST(OpsForwardTest, CrossEntropyConfidentCorrect) {
  Tensor logits = Tensor::FromVector(Shape{1, 3}, {10.0f, -10.0f, -10.0f});
  Tensor loss = ops::CrossEntropyWithLogits(logits, {0});
  EXPECT_LT(loss.at(0), 1e-3f);
}

TEST(OpsForwardTest, Conv2x3MiddleTapOnly) {
  // A single kernel with only the centre h-tap set to 1 copies h.
  Tensor h = Tensor::FromVector(Shape{1, 4}, {1, 2, 3, 4});
  Tensor r = Tensor::Full(Shape{1, 4}, 9.0f);
  Tensor kernels = Tensor::FromVector(Shape{1, 6}, {0, 1, 0, 0, 0, 0});
  Tensor bias = Tensor::Zeros(Shape{1});
  Tensor y = ops::Conv2x3(h, r, kernels, bias);
  EXPECT_EQ(y.shape(), Shape({1, 4}));
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(y.at(0, j), h.at(0, j));
}

TEST(OpsForwardTest, Conv2x3ShiftTap) {
  // Left tap (w=0) reads in[j-1]; boundary is zero-padded.
  Tensor h = Tensor::FromVector(Shape{1, 3}, {1, 2, 3});
  Tensor r = Tensor::Zeros(Shape{1, 3});
  Tensor kernels = Tensor::FromVector(Shape{1, 6}, {1, 0, 0, 0, 0, 0});
  Tensor bias = Tensor::Zeros(Shape{1});
  Tensor y = ops::Conv2x3(h, r, kernels, bias);
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 1.0f);
  EXPECT_EQ(y.at(0, 2), 2.0f);
}

TEST(OpsForwardTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 copies the image.
  Tensor img = Tensor::FromVector(Shape{1, 6}, {1, 2, 3, 4, 5, 6});  // 1x2x3
  Tensor kern = Tensor::FromVector(Shape{1, 1}, {1.0f});
  Tensor bias = Tensor::Zeros(Shape{1});
  Tensor y = ops::Conv2d(img, 1, 2, 3, kern, 1, 1, 0, bias);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(y.at(i), img.at(i));
}

TEST(OpsForwardTest, Conv2dSumKernel) {
  // 3x3 all-ones kernel with pad 1 computes neighbourhood sums.
  Tensor img = Tensor::Full(Shape{1, 9}, 1.0f);  // 1x3x3 of ones
  Tensor kern = Tensor::Full(Shape{1, 9}, 1.0f);
  Tensor bias = Tensor::Zeros(Shape{1});
  Tensor y = ops::Conv2d(img, 1, 3, 3, kern, 3, 3, 1, bias);
  EXPECT_EQ(y.at(4), 9.0f);  // centre sees 9 neighbours
  EXPECT_EQ(y.at(0), 4.0f);  // corner sees 4
}

// ---------------------------------------------------------------------------
// Backward: hand-checked cases.
// ---------------------------------------------------------------------------

TEST(BackwardTest, AddAccumulatesIntoBothParents) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2}, true);
  Tensor b = Tensor::FromVector(Shape{2}, {3, 4}, true);
  Tensor loss = ops::SumAll(ops::Add(a, b));
  Backward(loss);
  EXPECT_EQ(a.grad()[0], 1.0f);
  EXPECT_EQ(b.grad()[1], 1.0f);
}

TEST(BackwardTest, ReusedTensorAccumulates) {
  Tensor a = Tensor::FromVector(Shape{1}, {3}, true);
  Tensor y = ops::Add(a, a);  // y = 2a
  Backward(ops::SumAll(y));
  EXPECT_EQ(a.grad()[0], 2.0f);
}

TEST(BackwardTest, ChainRuleThroughScale) {
  Tensor a = Tensor::FromVector(Shape{1}, {2}, true);
  Tensor y = ops::Scale(ops::Scale(a, 3.0f), 4.0f);
  Backward(ops::SumAll(y));
  EXPECT_EQ(a.grad()[0], 12.0f);
}

TEST(BackwardTest, MulProductRule) {
  Tensor a = Tensor::FromVector(Shape{1}, {5}, true);
  Tensor b = Tensor::FromVector(Shape{1}, {7}, true);
  Backward(ops::SumAll(ops::Mul(a, b)));
  EXPECT_EQ(a.grad()[0], 7.0f);
  EXPECT_EQ(b.grad()[0], 5.0f);
}

TEST(BackwardTest, RowBroadcastBiasGradSumsOverRows) {
  Tensor x = Tensor::Zeros(Shape{3, 2});
  Tensor bias = Tensor::Zeros(Shape{2});
  bias.set_requires_grad(true);
  Backward(ops::SumAll(ops::Add(x, bias)));
  EXPECT_EQ(bias.grad()[0], 3.0f);
  EXPECT_EQ(bias.grad()[1], 3.0f);
}

TEST(BackwardTest, CrossEntropyGradientIsSoftmaxMinusOneHot) {
  Tensor logits = Tensor::Zeros(Shape{1, 2});
  logits.set_requires_grad(true);
  Backward(ops::CrossEntropyWithLogits(logits, {0}));
  EXPECT_NEAR(logits.grad()[0], -0.5f, 1e-5f);
  EXPECT_NEAR(logits.grad()[1], 0.5f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Backward: finite-difference property tests over many ops and shapes.
// ---------------------------------------------------------------------------

Tensor RandomTensor(const Shape& shape, Rng* rng) {
  return Tensor::RandomNormal(shape, 1.0f, rng, /*requires_grad=*/true);
}

TEST(GradCheckTest, Add) {
  Rng rng(101);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Mul(ops::Add(in[0], in[1]), in[0]));
      },
      {RandomTensor(Shape{3, 4}, &rng), RandomTensor(Shape{3, 4}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, RowBroadcast) {
  Rng rng(102);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Mul(ops::Add(in[0], in[1]), in[0]));
      },
      {RandomTensor(Shape{4, 3}, &rng), RandomTensor(Shape{3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, MatMul) {
  Rng rng(103);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Tanh(ops::MatMul(in[0], in[1])));
      },
      {RandomTensor(Shape{3, 4}, &rng), RandomTensor(Shape{4, 2}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, TransposeAndReshape) {
  Rng rng(104);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor t = ops::Transpose(in[0]);
        Tensor r = ops::Reshape(t, Shape{2, 6});
        return ops::SumAll(ops::Mul(r, r));
      },
      {RandomTensor(Shape{3, 4}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, ConcatColsSlice) {
  Rng rng(105);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor c = ops::ConcatCols({in[0], in[1]});
        Tensor s = ops::SliceCols(c, 1, 3);
        return ops::SumAll(ops::Sigmoid(s));
      },
      {RandomTensor(Shape{2, 2}, &rng), RandomTensor(Shape{2, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, ConcatRowsSliceRows) {
  Rng rng(106);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor c = ops::ConcatRows({in[0], in[1]});
        Tensor s = ops::SliceRows(c, 1, 2);
        return ops::MeanAll(ops::Mul(s, s));
      },
      {RandomTensor(Shape{2, 3}, &rng), RandomTensor(Shape{1, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, IndexSelectScatterAdd) {
  Rng rng(107);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor sel = ops::IndexSelectRows(in[0], {0, 2, 2, 1});
        Tensor agg = ops::ScatterAddRows(sel, {1, 1, 0, 2}, 3);
        return ops::SumAll(ops::Tanh(agg));
      },
      {RandomTensor(Shape{3, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, ScatterMean) {
  Rng rng(108);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor agg = ops::ScatterMeanRows(in[0], {0, 0, 1, 1}, 3);
        return ops::SumAll(ops::Mul(agg, agg));
      },
      {RandomTensor(Shape{4, 2}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, SegmentSoftmax) {
  Rng rng(109);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor y = ops::SegmentSoftmax(in[0], {0, 0, 1, 1, 1}, 2);
        Tensor w = Tensor::FromVector(Shape{5, 1}, {1, 2, 3, 4, 5});
        return ops::SumAll(ops::Mul(y, w));
      },
      {RandomTensor(Shape{5, 1}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, SoftmaxAndLogSoftmax) {
  Rng rng(110);
  Tensor w = Tensor::FromVector(Shape{2, 3}, {1, -2, 3, 0.5f, 2, -1});
  auto report = CheckGradients(
      [&w](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Mul(ops::Softmax(in[0]), w));
      },
      {RandomTensor(Shape{2, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
  auto report2 = CheckGradients(
      [&w](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Mul(ops::LogSoftmax(in[0]), w));
      },
      {RandomTensor(Shape{2, 3}, &rng)});
  EXPECT_TRUE(report2.passed) << report2.detail;
}

TEST(GradCheckTest, Nonlinearities) {
  Rng rng(111);
  struct Case {
    const char* name;
    Tensor (*fn)(const Tensor&);
  };
  auto sigmoid = [](const Tensor& x) { return ops::Sigmoid(x); };
  auto tanh_fn = [](const Tensor& x) { return ops::Tanh(x); };
  auto cos_fn = [](const Tensor& x) { return ops::Cos(x); };
  auto exp_fn = [](const Tensor& x) { return ops::Exp(x); };
  std::vector<Case> cases = {{"sigmoid", sigmoid},
                             {"tanh", tanh_fn},
                             {"cos", cos_fn},
                             {"exp", exp_fn}};
  for (const Case& c : cases) {
    auto report = CheckGradients(
        [&c](const std::vector<Tensor>& in) {
          return ops::SumAll(c.fn(in[0]));
        },
        {RandomTensor(Shape{3, 3}, &rng)});
    EXPECT_TRUE(report.passed) << c.name << ": " << report.detail;
  }
}

TEST(GradCheckTest, LeakyReluAwayFromKink) {
  Rng rng(112);
  // Shift inputs away from 0 to avoid the non-differentiable kink.
  Tensor x = Tensor::RandomNormal(Shape{4, 4}, 1.0f, &rng, true);
  for (float& v : x.mutable_data()) {
    if (std::fabs(v) < 0.2f) v += v >= 0 ? 0.3f : -0.3f;
  }
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::LeakyRelu(in[0], 0.1f));
      },
      {x});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, LogPositiveInputs) {
  Rng rng(113);
  Tensor x = Tensor::RandomNormal(Shape{3, 3}, 1.0f, &rng, true);
  for (float& v : x.mutable_data()) v = std::fabs(v) + 0.5f;
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) { return ops::SumAll(ops::Log(in[0])); },
      {x});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, RowL2Normalize) {
  Rng rng(114);
  Tensor w = Tensor::FromVector(Shape{3, 4},
                                {1, 2, 3, 4, -1, 0.5f, 2, -2, 0.3f, 1, -1, 2});
  auto report = CheckGradients(
      [&w](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Mul(ops::RowL2Normalize(in[0]), w));
      },
      {RandomTensor(Shape{3, 4}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, Reductions) {
  Rng rng(115);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor m = ops::MeanRows(in[0]);
        Tensor rs = ops::RowSum(in[0]);
        return ops::Add(ops::SumAll(ops::Mul(m, m)), ops::MeanAll(rs));
      },
      {RandomTensor(Shape{3, 4}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, CrossEntropy) {
  Rng rng(116);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::CrossEntropyWithLogits(in[0], {2, 0, 1});
      },
      {RandomTensor(Shape{3, 4}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, MulColBroadcast) {
  Rng rng(117);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(ops::Tanh(ops::MulColBroadcast(in[0], in[1])));
      },
      {RandomTensor(Shape{3, 4}, &rng), RandomTensor(Shape{3, 1}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, Conv2x3) {
  Rng rng(118);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(
            ops::Tanh(ops::Conv2x3(in[0], in[1], in[2], in[3])));
      },
      {RandomTensor(Shape{2, 5}, &rng), RandomTensor(Shape{2, 5}, &rng),
       RandomTensor(Shape{3, 6}, &rng), RandomTensor(Shape{3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, Conv2d) {
  Rng rng(119);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return ops::SumAll(
            ops::Tanh(ops::Conv2d(in[0], 2, 3, 4, in[1], 3, 3, 1, in[2])));
      },
      {RandomTensor(Shape{2, 24}, &rng), RandomTensor(Shape{2, 18}, &rng),
       RandomTensor(Shape{2}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(GradCheckTest, DropoutFixedMask) {
  // Dropout draws a fresh mask per call, so wrap it to reuse one mask by
  // seeding identically: instead check the identity path p=0.
  Rng rng(120);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Rng local(42);
        return ops::SumAll(ops::Dropout(in[0], 0.0f, true, &local));
      },
      {RandomTensor(Shape{3, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

// Parameterized sweep: composite expression gradchecked over many shapes.
class CompositeGradCheck : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CompositeGradCheck, MatMulChain) {
  auto [m, k] = GetParam();
  Rng rng(200 + m * 10 + k);
  auto report = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor y = ops::MatMul(in[0], in[1]);
        Tensor z = ops::Sigmoid(y);
        return ops::MeanAll(ops::Mul(z, z));
      },
      {RandomTensor(Shape{m, k}, &rng), RandomTensor(Shape{k, 3}, &rng)});
  EXPECT_TRUE(report.passed) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositeGradCheck,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{1, 5},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{5, 7},
                                           std::pair<int, int>{8, 3}));

// ---------------------------------------------------------------------------
// Optimizer.
// ---------------------------------------------------------------------------

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise ||x - target||^2.
  Tensor x = Tensor::FromVector(Shape{3}, {5, -3, 2}, true);
  Tensor target = Tensor::FromVector(Shape{3}, {1, 2, -1});
  AdamOptions options;
  options.learning_rate = 0.05f;
  AdamOptimizer opt({x}, options);
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    Tensor diff = ops::Sub(x, target);
    Backward(ops::SumAll(ops::Mul(diff, diff)));
    opt.Step();
  }
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.at(i), target.at(i), 0.05f);
}

TEST(AdamTest, ZeroGradClearsGradients) {
  Tensor x = Tensor::FromVector(Shape{2}, {1, 1}, true);
  AdamOptimizer opt({x});
  Backward(ops::SumAll(ops::Mul(x, x)));
  EXPECT_NE(x.grad()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(AdamTest, ClipGradNormRescales) {
  Tensor x = Tensor::FromVector(Shape{2}, {0, 0}, true);
  AdamOptimizer opt({x});
  x.mutable_grad() = {3.0f, 4.0f};  // norm 5
  float norm = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-4f);
  float clipped = std::sqrt(x.grad()[0] * x.grad()[0] + x.grad()[1] * x.grad()[1]);
  EXPECT_NEAR(clipped, 1.0f, 1e-3f);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::FromVector(Shape{1}, {10.0f}, true);
  AdamOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 0.5f;
  AdamOptimizer opt({x}, options);
  opt.ZeroGrad();  // zero gradient: only decay acts
  opt.Step();
  EXPECT_LT(x.at(0), 10.0f);
}

TEST(BackwardTest, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::FromVector(Shape{1}, {1.0f}, true);
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = ops::AddScalar(y, 0.0f);
  Backward(ops::SumAll(y));
  EXPECT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
}  // namespace logcl
