// Transport-layer tests: framing round-trips over TCP and unix sockets,
// port-0 auto-assignment, connect-with-retry, deadlines instead of hangs,
// peer-drop detection, and corrupt-stream guards. Every listener binds port
// 0 (or a per-test unix path), so tests never race on a busy port.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/transport.h"
#include "dist/wire.h"

namespace logcl {
namespace dist {
namespace {

namespace fs = std::filesystem;

std::string TempUnixAddress(const std::string& tag) {
  static std::atomic<int> counter{0};
  fs::path path = fs::temp_directory_path() /
                  ("logcl_dist_" + tag + "_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter.fetch_add(1)) + ".sock");
  return "unix:" + path.string();
}

std::vector<uint8_t> Payload(size_t len, uint8_t seed) {
  std::vector<uint8_t> payload(len);
  for (size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return payload;
}

void RoundTripOver(const std::string& listen_address) {
  Result<Listener> listener = Listener::Open(listen_address);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  std::string address = listener.value().bound_address();

  // Large frame (5MB) forces multiple partial reads/writes through the
  // kernel buffers; small frames check framing boundaries.
  std::vector<std::vector<uint8_t>> frames = {
      Payload(0, 1), Payload(1, 2), Payload(4096, 3),
      Payload(5u << 20, 4)};

  std::thread client([&] {
    Result<Connection> conn = Connection::Connect(address);
    ASSERT_TRUE(conn.ok()) << conn.status().message();
    for (const auto& frame : frames) {
      ASSERT_TRUE(conn.value().SendFrame(frame).ok());
    }
    // Echo check: read everything back.
    std::vector<uint8_t> echoed;
    for (const auto& frame : frames) {
      ASSERT_TRUE(conn.value().RecvFrame(&echoed).ok());
      ASSERT_EQ(echoed, frame);
    }
  });

  Result<Connection> accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok()) << accepted.status().message();
  std::vector<uint8_t> received;
  for (size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(accepted.value().RecvFrame(&received).ok());
    ASSERT_EQ(received, frames[i]);
    ASSERT_TRUE(accepted.value().SendFrame(received).ok());
  }
  client.join();
}

TEST(TransportTest, TcpFrameRoundTripWithAutoAssignedPort) {
  Result<Listener> listener = Listener::Open("127.0.0.1:0");
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  // Port 0 must be replaced by the kernel-chosen port in the advertised
  // address.
  EXPECT_EQ(listener.value().bound_address().rfind("127.0.0.1:", 0), 0u);
  EXPECT_NE(listener.value().bound_address(), "127.0.0.1:0");
  RoundTripOver("127.0.0.1:0");
}

TEST(TransportTest, UnixFrameRoundTrip) {
  RoundTripOver(TempUnixAddress("roundtrip"));
}

TEST(TransportTest, ConnectRetriesUntilListenerAppears) {
  std::string address = TempUnixAddress("retry");
  std::thread late_listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Result<Listener> listener = Listener::Open(address);
    ASSERT_TRUE(listener.ok()) << listener.status().message();
    Result<Connection> accepted = listener.value().Accept();
    ASSERT_TRUE(accepted.ok()) << accepted.status().message();
    std::vector<uint8_t> frame;
    ASSERT_TRUE(accepted.value().RecvFrame(&frame).ok());
    EXPECT_EQ(frame.size(), 3u);
  });
  // The listener does not exist yet: Connect must retry through ENOENT /
  // ECONNREFUSED until it appears, well within the 5s budget.
  Result<Connection> conn = Connection::Connect(address, /*timeout_ms=*/5000);
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  ASSERT_TRUE(conn.value().SendFrame(Payload(3, 9)).ok());
  late_listener.join();
}

TEST(TransportTest, ConnectTimesOutWithStatusNotHang) {
  std::string address = TempUnixAddress("absent");
  Result<Connection> conn = Connection::Connect(address, /*timeout_ms=*/200);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kIoError);
}

TEST(TransportTest, RecvDeadlineExpiresAsTimeout) {
  Result<Listener> listener = Listener::Open("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  Result<Connection> client =
      Connection::Connect(listener.value().bound_address());
  ASSERT_TRUE(client.ok());
  Result<Connection> server = listener.value().Accept();
  ASSERT_TRUE(server.ok());
  server.value().set_io_timeout_ms(150);
  std::vector<uint8_t> frame;
  Status status = server.value().RecvFrame(&frame);  // nothing ever sent
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsTimeout(status)) << status.message();
}

TEST(TransportTest, AcceptDeadlineExpiresAsTimeout) {
  Result<Listener> listener = Listener::Open("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  Result<Connection> conn = listener.value().Accept(/*timeout_ms=*/120);
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(IsTimeout(conn.status())) << conn.status().message();
}

TEST(TransportTest, PeerDropSurfacesAsErrorNotHang) {
  Result<Listener> listener = Listener::Open("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  Result<Connection> client =
      Connection::Connect(listener.value().bound_address());
  ASSERT_TRUE(client.ok());
  Result<Connection> server = listener.value().Accept();
  ASSERT_TRUE(server.ok());
  client.value().Close();
  std::vector<uint8_t> frame;
  Status status = server.value().RecvFrame(&frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(IsTimeout(status));  // a drop, not a deadline
}

TEST(TransportTest, OversizedFrameHeaderIsRejected) {
  Result<Listener> listener = Listener::Open("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  Result<Connection> client =
      Connection::Connect(listener.value().bound_address());
  ASSERT_TRUE(client.ok());
  Result<Connection> server = listener.value().Accept();
  ASSERT_TRUE(server.ok());
  // A corrupt length prefix (greater than kMaxFrameBytes) must be rejected
  // before any allocation attempt.
  uint64_t bogus = kMaxFrameBytes + 1;
  ASSERT_TRUE(client.value().WriteAll(&bogus, sizeof(bogus)).ok());
  std::vector<uint8_t> frame;
  Status status = server.value().RecvFrame(&frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(TransportTest, MalformedAddressesAreRejected) {
  EXPECT_EQ(Listener::Open("unix:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Listener::Open("no-port-here").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Connection::Connect("not.a.numeric.host:123", 100).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportTest, ClosedConnectionRefusesIo) {
  Connection conn;  // default: never connected
  std::vector<uint8_t> frame;
  EXPECT_EQ(conn.RecvFrame(&frame).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(conn.SendFrame(frame).code(), StatusCode::kFailedPrecondition);
}

TEST(WireTest, ScalarAndArrayRoundTrip) {
  WireWriter writer;
  writer.PutU32(7);
  writer.PutI64(-42);
  writer.PutString("logcl");
  std::vector<float> floats = {1.5f, -0.0f, 3.25f};
  writer.PutF32Array(floats.data(), floats.size());
  std::vector<Quadruple> facts = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  writer.PutQuadruples(facts);

  WireReader reader(writer.buffer());
  uint32_t u = 0;
  int64_t i = 0;
  std::string s;
  std::vector<float> out_floats;
  std::vector<Quadruple> out_facts;
  ASSERT_TRUE(reader.GetU32(&u).ok());
  ASSERT_TRUE(reader.GetI64(&i).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  ASSERT_TRUE(reader.GetF32Array(&out_floats).ok());
  ASSERT_TRUE(reader.GetQuadruples(&out_facts).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(i, -42);
  EXPECT_EQ(s, "logcl");
  ASSERT_EQ(out_floats.size(), floats.size());
  // -0.0 must survive bitwise (the gradient wire path relies on it).
  for (size_t j = 0; j < floats.size(); ++j) {
    uint32_t a, b;
    std::memcpy(&a, &floats[j], 4);
    std::memcpy(&b, &out_floats[j], 4);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(out_facts.size(), 2u);
  EXPECT_EQ(out_facts[1].time, 8);
}

TEST(WireTest, TruncatedPayloadIsStatusNotCrash) {
  WireWriter writer;
  writer.PutU64(1000);  // claims a 1000-element array that is not there
  WireReader reader(writer.buffer());
  std::vector<float> out;
  EXPECT_EQ(reader.GetF32Array(&out).code(), StatusCode::kIoError);
  WireReader reader2(writer.buffer());
  std::vector<Quadruple> facts;
  EXPECT_EQ(reader2.GetQuadruples(&facts).code(), StatusCode::kIoError);
  WireReader reader3(writer.buffer());
  std::string s;
  EXPECT_EQ(reader3.GetString(&s).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dist
}  // namespace logcl
