// Tests for the offline/online training drivers and pattern-drift
// generation properties.

#include <gtest/gtest.h>

#include "baselines/distmult.h"
#include "core/trainer.h"
#include "synth/generator.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

TkgDataset DriftData() {
  SynthConfig config;
  config.seed = 71;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 24;
  config.pattern_lifetime = 8;
  return GenerateSyntheticTkg(config);
}

TEST(DriftTest, RecurringSpansBoundedByLifetime) {
  SynthConfig config;
  config.seed = 72;
  config.num_entities = 40;
  config.num_relations = 6;
  config.num_timestamps = 60;
  config.pattern_lifetime = 10;
  config.alternating_pool = 0;
  config.num_cyclic = 0;
  config.chains_per_timestamp = 0.0;
  config.noise_per_timestamp = 0.0;
  config.recurring_pool = 30;
  config.recurring_prob = 0.9;
  TkgDataset d = GenerateSyntheticTkg(config);
  // Each (s, r, o) triple comes from one recurring instance; its occurrence
  // span must fit within one lifetime window.
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> spans;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : d.split(s)) {
      uint64_t key = (static_cast<uint64_t>(q.subject) << 32) ^
                     (static_cast<uint64_t>(q.relation) << 16) ^
                     static_cast<uint64_t>(q.object);
      auto [it, inserted] = spans.try_emplace(key, q.time, q.time);
      if (!inserted) {
        it->second.first = std::min(it->second.first, q.time);
        it->second.second = std::max(it->second.second, q.time);
      }
    }
  }
  EXPECT_FALSE(spans.empty());
  for (const auto& [key, span] : spans) {
    EXPECT_LT(span.second - span.first, config.pattern_lifetime);
  }
}

TEST(DriftTest, ZeroLifetimeMeansImmortalPatterns) {
  SynthConfig config;
  config.seed = 73;
  config.num_entities = 30;
  config.num_relations = 5;
  config.num_timestamps = 40;
  config.pattern_lifetime = 0;  // legacy behaviour
  config.alternating_pool = 0;
  config.num_cyclic = 0;
  config.chains_per_timestamp = 0.0;
  config.noise_per_timestamp = 0.0;
  config.recurring_pool = 10;
  config.recurring_prob = 0.9;
  TkgDataset d = GenerateSyntheticTkg(config);
  // With prob 0.9 over 40 steps, at least one triple must span most of the
  // horizon.
  int64_t max_span = 0;
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> spans;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : d.split(s)) {
      uint64_t key = (static_cast<uint64_t>(q.subject) << 32) ^
                     (static_cast<uint64_t>(q.relation) << 16) ^
                     static_cast<uint64_t>(q.object);
      auto [it, inserted] = spans.try_emplace(key, q.time, q.time);
      if (!inserted) {
        it->second.first = std::min(it->second.first, q.time);
        it->second.second = std::max(it->second.second, q.time);
      }
    }
  }
  for (const auto& [key, span] : spans) {
    max_span = std::max(max_span, span.second - span.first);
  }
  EXPECT_GE(max_span, 30);
}

TEST(TrainerTest, ZeroEpochsSkipsTraining) {
  TkgDataset d = DriftData();
  TimeAwareFilter filter(d);
  DistMult a(&d, 8, /*seed=*/5);
  DistMult b(&d, 8, /*seed=*/5);
  EvalResult untouched = a.Evaluate(Split::kTest, &filter);
  EvalResult via_trainer = TrainAndEvaluate(&b, &filter, {.epochs = 0});
  EXPECT_DOUBLE_EQ(untouched.mrr, via_trainer.mrr);
}

TEST(TrainerTest, OnlineLearningRateOverrideIsApplied) {
  // With online_learning_rate ~ 0+ the online run must coincide with the
  // offline evaluation up to the tiny updates; with a huge rate it must
  // differ. This pins the plumbing, not the learning outcome.
  TkgDataset d = DriftData();
  TimeAwareFilter filter(d);
  DistMult frozen(&d, 8, /*seed=*/6);
  OnlineOptions tiny;
  tiny.offline_epochs = 2;
  tiny.online_learning_rate = 1e-12f;
  EvalResult tiny_result = TrainAndEvaluateOnline(&frozen, &filter, tiny);

  DistMult frozen2(&d, 8, /*seed=*/6);
  OfflineOptions offline;
  offline.epochs = 2;
  EvalResult offline_result = TrainAndEvaluate(&frozen2, &filter, offline);
  EXPECT_NEAR(tiny_result.mrr, offline_result.mrr, 0.5);

  DistMult wild(&d, 8, /*seed=*/6);
  OnlineOptions huge = tiny;
  huge.online_learning_rate = 1.0f;
  EvalResult huge_result = TrainAndEvaluateOnline(&wild, &filter, huge);
  EXPECT_NE(huge_result.mrr, tiny_result.mrr);
}

TEST(TrainerTest, VerboseFitDoesNotCrash) {
  TkgDataset d = DriftData();
  DistMult model(&d, 8);
  FitModel(&model, 1, 1e-3f, /*verbose=*/true);
}

}  // namespace
}  // namespace logcl
