// Tests for ranking and metric accumulation, including the time-aware
// filtered protocol semantics.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "tkg/dataset.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

TEST(RankingTest, RankOfBestIsOne) {
  EXPECT_EQ(RankOfTarget({0.1f, 0.9f, 0.3f}, 1), 1);
}

TEST(RankingTest, RankCountsStrictlyGreater) {
  EXPECT_EQ(RankOfTarget({0.9f, 0.5f, 0.7f}, 1), 3);
  EXPECT_EQ(RankOfTarget({0.9f, 0.5f, 0.7f}, 2), 2);
}

TEST(RankingTest, TiesRankOptimistically) {
  EXPECT_EQ(RankOfTarget({0.5f, 0.5f, 0.5f}, 1), 1);
}

TEST(RankingTest, FilterRemovesOtherAnswers) {
  // Entity 0 outranks the target 2, but is a known answer -> filtered out.
  EXPECT_EQ(RankOfTarget({0.9f, 0.1f, 0.5f}, 2, {0}), 1);
  // The target itself is never filtered.
  EXPECT_EQ(RankOfTarget({0.9f, 0.1f, 0.5f}, 2, {0, 2}), 1);
}

TEST(RankingTest, FilterKeepsNonAnswerCompetitors) {
  EXPECT_EQ(RankOfTarget({0.9f, 0.8f, 0.5f}, 2, {0}), 2);
}

TEST(RankingTest, TopKOrdersDescending) {
  std::vector<int64_t> top = TopK({0.2f, 0.9f, 0.5f, 0.7f}, 3);
  EXPECT_EQ(top, (std::vector<int64_t>{1, 3, 2}));
}

TEST(RankingTest, TopKClampsToSize) {
  EXPECT_EQ(TopK({1.0f, 2.0f}, 10).size(), 2u);
}

TEST(RankingTest, TopKPartialMatchesTopKExactly) {
  std::vector<float> scores = {0.2f, 0.9f, 0.5f, 0.7f, 0.1f, 0.9f};
  for (int64_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(TopKPartial(scores.data(), scores.size(), k), TopK(scores, k))
        << "k=" << k;
  }
}

TEST(RankingTest, TopKPartialKAtLeastN) {
  // k == n and k > n both return the full descending order.
  std::vector<float> scores = {0.3f, 0.1f, 0.8f};
  std::vector<int64_t> expect = {2, 0, 1};
  EXPECT_EQ(TopKPartial(scores.data(), 3, 3), expect);
  EXPECT_EQ(TopKPartial(scores.data(), 3, 100), expect);
}

TEST(RankingTest, TopKPartialTiesBreakTowardLowerIndex) {
  // All-equal scores: selection order must be index order, for every k
  // (including a partition boundary inside the tie run).
  std::vector<float> scores(7, 1.5f);
  for (int64_t k = 1; k <= 7; ++k) {
    std::vector<int64_t> top = TopKPartial(scores.data(), 7, k);
    ASSERT_EQ(top.size(), static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) EXPECT_EQ(top[i], i);
  }
  // Tie run not at the front: {9, 5, 5, 5, 2} with k splitting the 5s.
  std::vector<float> mixed = {9.0f, 5.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(TopKPartial(mixed.data(), 5, 2),
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(TopKPartial(mixed.data(), 5, 3),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(RankingTest, TopKPartialKOne) {
  std::vector<float> scores = {0.2f, 0.9f, 0.5f};
  EXPECT_EQ(TopKPartial(scores.data(), 3, 1),
            (std::vector<int64_t>{1}));
  // Single-element row.
  float one = 42.0f;
  EXPECT_EQ(TopKPartial(&one, 1, 1), (std::vector<int64_t>{0}));
}

TEST(RankingTest, TopKSoftmaxKAtLeastNSumsToOne) {
  std::vector<float> logits = {1.0f, -2.0f, 0.5f, 3.0f};
  for (int64_t k : {static_cast<int64_t>(4), static_cast<int64_t>(50)}) {
    auto top = TopKSoftmax(logits.data(), 4, k);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_EQ(top[0].first, 3);  // highest logit first
    double sum = 0.0;
    for (const auto& [id, p] : top) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(RankingTest, TopKSoftmaxTiedLogitsTieBreakAndEqualProbability) {
  std::vector<float> logits = {2.0f, 2.0f, 2.0f, 0.0f};
  auto top = TopKSoftmax(logits.data(), 4, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 0);
  EXPECT_EQ(top[1].first, 1);
  // Equal logits produce bitwise-equal probabilities.
  EXPECT_EQ(top[0].second, top[1].second);
}

TEST(RankingTest, TopKSoftmaxKOneMatchesFullSoftmax) {
  std::vector<float> logits = {0.1f, 1.2f, -3.0f};
  auto top = TopKSoftmax(logits.data(), 3, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 1);
  // Reference full softmax with the same max-shift, float exp terms, and
  // double normaliser (the bitwise contract documented in ranking.h).
  float mx = 1.2f;
  double z = 0.0;
  for (float l : logits) z += static_cast<float>(std::exp(l - mx));
  float e1 = static_cast<float>(std::exp(logits[1] - mx));
  EXPECT_EQ(top[0].second, static_cast<float>(e1 / z));
}

TEST(MetricsTest, SingleRankValues) {
  MetricsAccumulator acc;
  acc.AddRank(1);
  EvalResult r = acc.Result();
  EXPECT_DOUBLE_EQ(r.mrr, 100.0);
  EXPECT_DOUBLE_EQ(r.hits1, 100.0);
  EXPECT_DOUBLE_EQ(r.hits10, 100.0);
}

TEST(MetricsTest, MixedRanks) {
  MetricsAccumulator acc;
  acc.AddRank(1);   // rr = 1
  acc.AddRank(2);   // rr = 0.5
  acc.AddRank(4);   // rr = 0.25
  acc.AddRank(20);  // rr = 0.05
  EvalResult r = acc.Result();
  EXPECT_NEAR(r.mrr, 100.0 * (1.0 + 0.5 + 0.25 + 0.05) / 4.0, 1e-9);
  EXPECT_NEAR(r.hits1, 25.0, 1e-9);
  EXPECT_NEAR(r.hits3, 50.0, 1e-9);
  EXPECT_NEAR(r.hits10, 75.0, 1e-9);
  EXPECT_EQ(r.count, 4);
}

TEST(MetricsTest, MergeIsAdditive) {
  MetricsAccumulator a, b;
  a.AddRank(1);
  b.AddRank(4);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_NEAR(a.Result().mrr, 100.0 * (1.0 + 0.25) / 2.0, 1e-9);
}

TEST(MetricsTest, EmptyResultIsZero) {
  EvalResult r = MetricsAccumulator().Result();
  EXPECT_EQ(r.mrr, 0.0);
  EXPECT_EQ(r.count, 0);
}

TEST(MetricsTest, ToStringRendersPercentages) {
  MetricsAccumulator acc;
  acc.AddRank(2);
  EXPECT_NE(acc.Result().ToString().find("MRR=50.00"), std::string::npos);
}

TEST(AccumulateRanksTest, AppliesFilterPerQuery) {
  TkgDataset d = TkgDataset::FromQuadruples(
      "t", 3, 1, {{0, 0, 1, 0}, {0, 0, 2, 0}}, {{0, 0, 1, 1}}, {{0, 0, 2, 2}});
  TimeAwareFilter filter(d);
  // Query (0, 0, ?, 0) with target 2: entity 1 is a same-time answer, so a
  // higher score on 1 must not hurt the rank.
  std::vector<std::vector<float>> scores = {{0.1f, 0.9f, 0.5f}};
  std::vector<ScoredQuery> queries = {{0, 0, 0, 2}};
  MetricsAccumulator metrics;
  AccumulateRanks(scores, queries, &filter, &metrics);
  EXPECT_DOUBLE_EQ(metrics.Result().hits1, 100.0);
  // Without the filter the rank drops to 2.
  MetricsAccumulator raw;
  AccumulateRanks(scores, queries, nullptr, &raw);
  EXPECT_DOUBLE_EQ(raw.Result().hits1, 0.0);
}

}  // namespace
}  // namespace logcl
