// Tests for ranking and metric accumulation, including the time-aware
// filtered protocol semantics.

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "tkg/dataset.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

TEST(RankingTest, RankOfBestIsOne) {
  EXPECT_EQ(RankOfTarget({0.1f, 0.9f, 0.3f}, 1), 1);
}

TEST(RankingTest, RankCountsStrictlyGreater) {
  EXPECT_EQ(RankOfTarget({0.9f, 0.5f, 0.7f}, 1), 3);
  EXPECT_EQ(RankOfTarget({0.9f, 0.5f, 0.7f}, 2), 2);
}

TEST(RankingTest, TiesRankOptimistically) {
  EXPECT_EQ(RankOfTarget({0.5f, 0.5f, 0.5f}, 1), 1);
}

TEST(RankingTest, FilterRemovesOtherAnswers) {
  // Entity 0 outranks the target 2, but is a known answer -> filtered out.
  EXPECT_EQ(RankOfTarget({0.9f, 0.1f, 0.5f}, 2, {0}), 1);
  // The target itself is never filtered.
  EXPECT_EQ(RankOfTarget({0.9f, 0.1f, 0.5f}, 2, {0, 2}), 1);
}

TEST(RankingTest, FilterKeepsNonAnswerCompetitors) {
  EXPECT_EQ(RankOfTarget({0.9f, 0.8f, 0.5f}, 2, {0}), 2);
}

TEST(RankingTest, TopKOrdersDescending) {
  std::vector<int64_t> top = TopK({0.2f, 0.9f, 0.5f, 0.7f}, 3);
  EXPECT_EQ(top, (std::vector<int64_t>{1, 3, 2}));
}

TEST(RankingTest, TopKClampsToSize) {
  EXPECT_EQ(TopK({1.0f, 2.0f}, 10).size(), 2u);
}

TEST(MetricsTest, SingleRankValues) {
  MetricsAccumulator acc;
  acc.AddRank(1);
  EvalResult r = acc.Result();
  EXPECT_DOUBLE_EQ(r.mrr, 100.0);
  EXPECT_DOUBLE_EQ(r.hits1, 100.0);
  EXPECT_DOUBLE_EQ(r.hits10, 100.0);
}

TEST(MetricsTest, MixedRanks) {
  MetricsAccumulator acc;
  acc.AddRank(1);   // rr = 1
  acc.AddRank(2);   // rr = 0.5
  acc.AddRank(4);   // rr = 0.25
  acc.AddRank(20);  // rr = 0.05
  EvalResult r = acc.Result();
  EXPECT_NEAR(r.mrr, 100.0 * (1.0 + 0.5 + 0.25 + 0.05) / 4.0, 1e-9);
  EXPECT_NEAR(r.hits1, 25.0, 1e-9);
  EXPECT_NEAR(r.hits3, 50.0, 1e-9);
  EXPECT_NEAR(r.hits10, 75.0, 1e-9);
  EXPECT_EQ(r.count, 4);
}

TEST(MetricsTest, MergeIsAdditive) {
  MetricsAccumulator a, b;
  a.AddRank(1);
  b.AddRank(4);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_NEAR(a.Result().mrr, 100.0 * (1.0 + 0.25) / 2.0, 1e-9);
}

TEST(MetricsTest, EmptyResultIsZero) {
  EvalResult r = MetricsAccumulator().Result();
  EXPECT_EQ(r.mrr, 0.0);
  EXPECT_EQ(r.count, 0);
}

TEST(MetricsTest, ToStringRendersPercentages) {
  MetricsAccumulator acc;
  acc.AddRank(2);
  EXPECT_NE(acc.Result().ToString().find("MRR=50.00"), std::string::npos);
}

TEST(AccumulateRanksTest, AppliesFilterPerQuery) {
  TkgDataset d = TkgDataset::FromQuadruples(
      "t", 3, 1, {{0, 0, 1, 0}, {0, 0, 2, 0}}, {{0, 0, 1, 1}}, {{0, 0, 2, 2}});
  TimeAwareFilter filter(d);
  // Query (0, 0, ?, 0) with target 2: entity 1 is a same-time answer, so a
  // higher score on 1 must not hurt the rank.
  std::vector<std::vector<float>> scores = {{0.1f, 0.9f, 0.5f}};
  std::vector<ScoredQuery> queries = {{0, 0, 0, 2}};
  MetricsAccumulator metrics;
  AccumulateRanks(scores, queries, &filter, &metrics);
  EXPECT_DOUBLE_EQ(metrics.Result().hits1, 100.0);
  // Without the filter the rank drops to 2.
  MetricsAccumulator raw;
  AccumulateRanks(scores, queries, nullptr, &raw);
  EXPECT_DOUBLE_EQ(raw.Result().hits1, 0.0);
}

}  // namespace
}  // namespace logcl
