// Tests for checkpoint save/load and the static filter protocol.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/logcl_model.h"
#include "synth/generator.h"
#include "tensor/serialization.h"
#include "tkg/filters.h"

namespace logcl {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(SerializationTest, RoundTripPreservesValues) {
  Rng rng(1);
  std::vector<Tensor> params = {
      Tensor::RandomNormal(Shape{3, 4}, 1.0f, &rng, true),
      Tensor::RandomNormal(Shape{7}, 1.0f, &rng, true),
      Tensor::Scalar(2.5f, true),
  };
  std::string path = TempPath("logcl_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(params, path).ok());

  Rng rng2(99);
  std::vector<Tensor> restored = {
      Tensor::RandomNormal(Shape{3, 4}, 1.0f, &rng2, true),
      Tensor::RandomNormal(Shape{7}, 1.0f, &rng2, true),
      Tensor::Scalar(0.0f, true),
  };
  ASSERT_TRUE(LoadParameters(path, &restored).ok());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(restored[i].data(), params[i].data()) << "tensor " << i;
  }
  fs::remove(path);
}

TEST(SerializationTest, ShapeMismatchIsRejected) {
  Rng rng(2);
  std::vector<Tensor> params = {Tensor::RandomNormal(Shape{2, 2}, 1.0f, &rng,
                                                     true)};
  std::string path = TempPath("logcl_ckpt_shape.bin");
  ASSERT_TRUE(SaveParameters(params, path).ok());
  std::vector<Tensor> wrong = {Tensor::Zeros(Shape{2, 3}, true)};
  Status status = LoadParameters(path, &wrong);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  fs::remove(path);
}

TEST(SerializationTest, CountMismatchIsRejected) {
  Rng rng(3);
  std::vector<Tensor> params = {Tensor::RandomNormal(Shape{2}, 1.0f, &rng,
                                                     true)};
  std::string path = TempPath("logcl_ckpt_count.bin");
  ASSERT_TRUE(SaveParameters(params, path).ok());
  std::vector<Tensor> wrong = {Tensor::Zeros(Shape{2}, true),
                               Tensor::Zeros(Shape{2}, true)};
  EXPECT_FALSE(LoadParameters(path, &wrong).ok());
  fs::remove(path);
}

TEST(SerializationTest, GarbageFileIsRejected) {
  std::string path = TempPath("logcl_ckpt_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  std::vector<Tensor> params = {Tensor::Zeros(Shape{1}, true)};
  Status status = LoadParameters(path, &params);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  fs::remove(path);
}

TEST(SerializationTest, MissingFileIsIoError) {
  std::vector<Tensor> params = {Tensor::Zeros(Shape{1}, true)};
  EXPECT_EQ(LoadParameters("/nonexistent/ckpt.bin", &params).code(),
            StatusCode::kIoError);
}

TEST(SerializationTest, TrainedModelSurvivesRestart) {
  // Train a model, checkpoint it, restore into a fresh instance, and check
  // the two produce identical scores.
  SynthConfig config;
  config.seed = 61;
  config.num_entities = 20;
  config.num_relations = 4;
  config.num_timestamps = 20;
  TkgDataset data = GenerateSyntheticTkg(config);
  LogClConfig model_config;
  model_config.embedding_dim = 8;
  model_config.local.history_length = 2;
  model_config.local.num_layers = 1;
  model_config.global.num_layers = 1;
  model_config.decoder.num_kernels = 4;

  LogClModel trained(&data, model_config);
  AdamOptimizer optimizer(trained.Parameters(), {});
  trained.TrainEpoch(&optimizer);
  std::string path = TempPath("logcl_ckpt_model.bin");
  ASSERT_TRUE(SaveParameters(trained.Parameters(), path).ok());

  LogClModel restored(&data, model_config);
  std::vector<Tensor> params = restored.Parameters();
  ASSERT_TRUE(LoadParameters(path, &params).ok());

  std::vector<Quadruple> queries = {{0, 0, 1, 17}, {3, 2, 5, 17}};
  EXPECT_EQ(trained.ScoreQueries(queries), restored.ScoreQueries(queries));
  fs::remove(path);
}

TEST(StaticFilterTest, AnswersSpanAllTimes) {
  TkgDataset d = TkgDataset::FromQuadruples(
      "t", 4, 1, {{0, 0, 1, 0}, {0, 0, 2, 1}}, {{0, 0, 3, 2}}, {{0, 0, 1, 3}});
  StaticFilter filter(d);
  EXPECT_EQ(filter.Answers(0, 0), (std::vector<int64_t>{1, 2, 3}));
  // Inverse side is indexed too.
  EXPECT_EQ(filter.Answers(1, 1), (std::vector<int64_t>{0}));
  EXPECT_TRUE(filter.Answers(3, 0).empty());
}

TEST(StaticFilterTest, StaticFiltersAtLeastAsMuchAsTimeAware) {
  SynthConfig config;
  config.seed = 62;
  config.num_entities = 30;
  config.num_relations = 5;
  config.num_timestamps = 30;
  TkgDataset d = GenerateSyntheticTkg(config);
  StaticFilter static_filter(d);
  TimeAwareFilter time_filter(d);
  for (const Quadruple& q : d.test()) {
    const auto& static_answers = static_filter.Answers(q.subject, q.relation);
    for (int64_t o : time_filter.Answers(q.subject, q.relation, q.time)) {
      EXPECT_TRUE(std::find(static_answers.begin(), static_answers.end(), o) !=
                  static_answers.end())
          << "time-aware answer missing from static index";
    }
  }
}

}  // namespace
}  // namespace logcl
