// Replicated-serving tests: router top-k over entity-sharded workers vs the
// single-snapshot oracle (exact, bitwise probabilities), score stitching,
// replicated load-balancing, the coordinated two-phase Advance, and the
// no-mixed-horizon invariant under concurrent requests (TSan-exercised in
// the *Dist* sanitizer CI job).

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/protocol.h"
#include "dist/replica_worker.h"
#include "dist/serving_router.h"
#include "dist_test_util.h"
#include "eval/ranking.h"
#include "serve/engine_snapshot.h"

namespace logcl {
namespace dist {
namespace {

using dist_test::DistConfig;
using dist_test::DistData;

/// Everything a serving test needs, built once: model in eval mode, the
/// serving horizon, and oracle scores computed from a local snapshot BEFORE
/// any worker serves.
class ServingFixture {
 public:
  ServingFixture() : data_(DistData()), model_(&data_, DistConfig()) {
    model_.SetEvalMode(true);
    horizon_ = data_.num_timestamps() - 2;
    oracle_ = EngineSnapshot::Build(&model_, horizon_);
  }

  const TkgDataset& data() const { return data_; }
  const LogClModel* model() const { return &model_; }
  int64_t horizon() const { return horizon_; }
  const EngineSnapshot& oracle() const { return *oracle_; }

  std::vector<ServeQuery> Queries() const {
    return {{0, 0}, {3, 1}, {7, 2}, {11, 3}};
  }

  /// Oracle rows as nested vectors.
  std::vector<std::vector<float>> OracleRows(
      const EngineSnapshot& snapshot, const std::vector<ServeQuery>& queries) {
    Tensor scores = snapshot.ScoreBatch(queries);
    int64_t num_entities = scores.shape().cols();
    std::vector<std::vector<float>> rows;
    const std::vector<float>& flat = scores.data();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto begin = flat.begin() + static_cast<int64_t>(i) * num_entities;
      rows.emplace_back(begin, begin + num_entities);
    }
    return rows;
  }

 private:
  TkgDataset data_;
  LogClModel model_;
  int64_t horizon_ = 0;
  std::shared_ptr<const EngineSnapshot> oracle_;
};

void ExpectRowsBitwiseEqual(const std::vector<std::vector<float>>& got,
                            const std::vector<std::vector<float>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size());
    for (size_t j = 0; j < got[i].size(); ++j) {
      uint32_t g, w;
      std::memcpy(&g, &got[i][j], 4);
      std::memcpy(&w, &want[i][j], 4);
      ASSERT_EQ(g, w) << "row " << i << " entity " << j;
    }
  }
}

TEST(TopKSoftmaxRangeTest, ShardsMergeToExactFullRowTopK) {
  // A row with a duplicate logit that straddles the shard boundary: the
  // merge's (logit desc, id asc) order must reproduce TopKPartial's
  // lower-index tie-break across shards.
  std::vector<float> logits = {0.1f, 2.5f, -1.0f, 2.5f, 0.7f,
                               2.5f, 0.2f, 1.9f,  2.5f, -3.0f};
  const int64_t n = static_cast<int64_t>(logits.size());
  const int64_t k = 6;
  std::vector<std::pair<int64_t, float>> oracle =
      TopKSoftmax(logits.data(), n, k);

  std::vector<RankedEntity> merged;
  for (int64_t begin : {int64_t{0}, int64_t{4}}) {
    int64_t end = begin == 0 ? 4 : n;
    std::vector<RankedEntity> part =
        TopKSoftmaxRange(logits.data(), n, begin, end, k);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const RankedEntity& a, const RankedEntity& b) {
              if (a.logit != b.logit) return a.logit > b.logit;
              return a.index < b.index;
            });
  merged.resize(static_cast<size_t>(k));
  ASSERT_EQ(merged.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(merged[i].index, oracle[i].first) << "rank " << i;
    uint32_t g, w;
    std::memcpy(&g, &merged[i].prob, 4);
    std::memcpy(&w, &oracle[i].second, 4);
    EXPECT_EQ(g, w) << "probability at rank " << i;
  }
}

TEST(DistServingTest, ShardedRouterMatchesSingleSnapshotOracleExactly) {
  ServingFixture fixture;
  const int64_t num_entities = fixture.data().num_entities();
  const int64_t split = num_entities / 2;

  ReplicaWorkerOptions low;
  low.horizon = fixture.horizon();
  low.entity_begin = 0;
  low.entity_end = split;
  ReplicaWorkerOptions high;
  high.horizon = fixture.horizon();
  high.entity_begin = split;
  high.entity_end = num_entities;

  ReplicaWorker worker_low(fixture.model(), low);
  ReplicaWorker worker_high(fixture.model(), high);
  ASSERT_TRUE(worker_low.StartBackground().ok());
  ASSERT_TRUE(worker_high.StartBackground().ok());

  Result<std::unique_ptr<ServingRouter>> router = ServingRouter::Connect(
      {worker_low.address(), worker_high.address()});
  ASSERT_TRUE(router.ok()) << router.status().message();
  EXPECT_TRUE(router.value()->sharded());
  EXPECT_EQ(router.value()->num_workers(), 2);
  EXPECT_EQ(router.value()->horizon(), fixture.horizon());

  // Full score rows stitched from the shard slices are bitwise the oracle.
  std::vector<ServeQuery> queries = fixture.Queries();
  Result<std::vector<std::vector<float>>> rows =
      router.value()->ScoreQueries(queries);
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  ExpectRowsBitwiseEqual(rows.value(),
                         fixture.OracleRows(fixture.oracle(), queries));

  // Merged top-k equals the full-row oracle element-for-element. The
  // oracle batch is the single query alone — the global encoder mixes the
  // batch subgraph, so the worker must be queried the same way.
  for (const ServeQuery& query : queries) {
    Tensor row_tensor = fixture.oracle().ScoreBatch({query});
    std::vector<std::pair<int64_t, float>> expected =
        TopKSoftmax(row_tensor.data().data(), num_entities, 5);
    Result<std::vector<std::pair<int64_t, float>>> got =
        router.value()->PredictTopK(query, 5);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_EQ(got.value().size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got.value()[i].first, expected[i].first);
      uint32_t g, w;
      std::memcpy(&g, &got.value()[i].second, 4);
      std::memcpy(&w, &expected[i].second, 4);
      EXPECT_EQ(g, w) << "probability at rank " << i;
    }
  }

  ASSERT_TRUE(router.value()->Shutdown().ok());
  EXPECT_TRUE(worker_low.Stop().ok());
  EXPECT_TRUE(worker_high.Stop().ok());
}

TEST(DistServingTest, ReplicatedRouterLoadBalancesWithoutChangingAnswers) {
  ServingFixture fixture;
  ReplicaWorkerOptions options;
  options.horizon = fixture.horizon();
  ReplicaWorker replica_a(fixture.model(), options);
  ReplicaWorker replica_b(fixture.model(), options);
  ASSERT_TRUE(replica_a.StartBackground().ok());
  ASSERT_TRUE(replica_b.StartBackground().ok());

  Result<std::unique_ptr<ServingRouter>> router =
      ServingRouter::Connect({replica_a.address(), replica_b.address()});
  ASSERT_TRUE(router.ok()) << router.status().message();
  EXPECT_FALSE(router.value()->sharded());

  std::vector<ServeQuery> queries = fixture.Queries();
  std::vector<std::vector<float>> expected =
      fixture.OracleRows(fixture.oracle(), queries);
  // Round-robin sends consecutive requests to different replicas; replicas
  // are bitwise-identical snapshots, so answers never depend on placement.
  for (int round = 0; round < 4; ++round) {
    Result<std::vector<std::vector<float>>> rows =
        router.value()->ScoreQueries(queries);
    ASSERT_TRUE(rows.ok()) << rows.status().message();
    ExpectRowsBitwiseEqual(rows.value(), expected);
  }
  ASSERT_TRUE(router.value()->Shutdown().ok());
  EXPECT_TRUE(replica_a.Stop().ok());
  EXPECT_TRUE(replica_b.Stop().ok());
}

TEST(DistServingTest, CoordinatedAdvanceMovesTheWholeFleet) {
  ServingFixture fixture;
  const int64_t num_entities = fixture.data().num_entities();
  const int64_t split = num_entities / 2;
  ReplicaWorkerOptions low;
  low.horizon = fixture.horizon();
  low.entity_begin = 0;
  low.entity_end = split;
  ReplicaWorkerOptions high;
  high.horizon = fixture.horizon();
  high.entity_begin = split;
  high.entity_end = num_entities;
  ReplicaWorker worker_low(fixture.model(), low);
  ReplicaWorker worker_high(fixture.model(), high);
  ASSERT_TRUE(worker_low.StartBackground().ok());
  ASSERT_TRUE(worker_high.StartBackground().ok());
  Result<std::unique_ptr<ServingRouter>> router = ServingRouter::Connect(
      {worker_low.address(), worker_high.address()});
  ASSERT_TRUE(router.ok()) << router.status().message();

  // Facts completing the horizon; the post-advance oracle is the local
  // snapshot advanced with the same facts.
  std::vector<Quadruple> new_facts = fixture.data().FactsAt(fixture.horizon());
  ASSERT_FALSE(new_facts.empty());
  std::shared_ptr<const EngineSnapshot> advanced =
      fixture.oracle().Advance(new_facts);

  // Wrong-time facts are rejected before any worker is touched.
  std::vector<Quadruple> wrong = new_facts;
  wrong[0].time = fixture.horizon() + 3;
  EXPECT_EQ(router.value()->Advance(wrong).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(router.value()->Advance(new_facts).ok());
  EXPECT_EQ(router.value()->horizon(), fixture.horizon() + 1);

  std::vector<ServeQuery> queries = fixture.Queries();
  Result<std::vector<std::vector<float>>> rows =
      router.value()->ScoreQueries(queries);
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  ExpectRowsBitwiseEqual(rows.value(), fixture.OracleRows(*advanced, queries));

  ASSERT_TRUE(router.value()->Shutdown().ok());
  EXPECT_TRUE(worker_low.Stop().ok());
  EXPECT_TRUE(worker_high.Stop().ok());
}

TEST(DistServingTest, ConcurrentRequestsNeverObserveMixedHorizons) {
  ServingFixture fixture;
  const int64_t num_entities = fixture.data().num_entities();
  const int64_t split = num_entities / 2;
  ReplicaWorkerOptions low;
  low.horizon = fixture.horizon();
  low.entity_begin = 0;
  low.entity_end = split;
  ReplicaWorkerOptions high;
  high.horizon = fixture.horizon();
  high.entity_begin = split;
  high.entity_end = num_entities;
  ReplicaWorker worker_low(fixture.model(), low);
  ReplicaWorker worker_high(fixture.model(), high);
  ASSERT_TRUE(worker_low.StartBackground().ok());
  ASSERT_TRUE(worker_high.StartBackground().ok());
  Result<std::unique_ptr<ServingRouter>> router = ServingRouter::Connect(
      {worker_low.address(), worker_high.address()});
  ASSERT_TRUE(router.ok()) << router.status().message();

  // Pre- and post-advance oracle rows for one probe query, computed before
  // any concurrency starts.
  std::vector<ServeQuery> probe = {{2, 1}};
  std::vector<Quadruple> new_facts = fixture.data().FactsAt(fixture.horizon());
  std::shared_ptr<const EngineSnapshot> advanced =
      fixture.oracle().Advance(new_facts);
  std::vector<float> pre_row =
      fixture.OracleRows(fixture.oracle(), probe)[0];
  std::vector<float> post_row = fixture.OracleRows(*advanced, probe)[0];

  auto row_is = [](const std::vector<float>& got,
                   const std::vector<float>& want) {
    return std::memcmp(got.data(), want.data(),
                       got.size() * sizeof(float)) == 0;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};
  std::atomic<int> pre_seen{0};
  std::atomic<int> post_seen{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        Result<std::vector<std::vector<float>>> rows =
            router.value()->ScoreQueries(probe);
        if (!rows.ok()) {
          mixed.fetch_add(1);  // a failed fan-out also fails the invariant
          return;
        }
        if (row_is(rows.value()[0], pre_row)) {
          pre_seen.fetch_add(1);
        } else if (row_is(rows.value()[0], post_row)) {
          post_seen.fetch_add(1);
        } else {
          mixed.fetch_add(1);  // a stitched row mixing horizons
        }
      }
    });
  }
  // Let requests flow at the old horizon, then advance mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(router.value()->Advance(new_facts).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mixed.load(), 0) << "a response mixed horizons";
  EXPECT_GT(post_seen.load(), 0) << "no request observed the new horizon";
  // pre_seen > 0 almost always, but a slow scheduler could start clients
  // after the advance; only the invariant is asserted.

  ASSERT_TRUE(router.value()->Shutdown().ok());
  EXPECT_TRUE(worker_low.Stop().ok());
  EXPECT_TRUE(worker_high.Stop().ok());
}

TEST(DistServingTest, WorkerRejectsBadRequestsWithStatusNotCrash) {
  ServingFixture fixture;
  ReplicaWorkerOptions options;
  options.horizon = fixture.horizon();
  ReplicaWorker worker(fixture.model(), options);
  ASSERT_TRUE(worker.StartBackground().ok());
  Result<Connection> conn = Connection::Connect(worker.address());
  ASSERT_TRUE(conn.ok());

  // Commit without prepare.
  WireWriter commit;
  commit.PutU32(static_cast<uint32_t>(MsgType::kAdvanceCommit));
  ASSERT_TRUE(conn.value().SendFrame(commit.buffer()).ok());
  std::vector<uint8_t> response;
  ASSERT_TRUE(conn.value().RecvFrame(&response).ok());
  WireReader reader(response);
  uint32_t type = 0;
  ASSERT_TRUE(reader.GetU32(&type).ok());
  ASSERT_EQ(static_cast<MsgType>(type), MsgType::kError);
  EXPECT_EQ(DecodeError(&reader).code(), StatusCode::kFailedPrecondition);

  // Unknown message type.
  WireWriter unknown;
  unknown.PutU32(9999);
  ASSERT_TRUE(conn.value().SendFrame(unknown.buffer()).ok());
  ASSERT_TRUE(conn.value().RecvFrame(&response).ok());
  WireReader reader2(response);
  ASSERT_TRUE(reader2.GetU32(&type).ok());
  EXPECT_EQ(static_cast<MsgType>(type), MsgType::kError);

  // Truncated score request.
  WireWriter truncated;
  truncated.PutU32(static_cast<uint32_t>(MsgType::kScoreBatch));
  ASSERT_TRUE(conn.value().SendFrame(truncated.buffer()).ok());
  ASSERT_TRUE(conn.value().RecvFrame(&response).ok());
  WireReader reader3(response);
  ASSERT_TRUE(reader3.GetU32(&type).ok());
  EXPECT_EQ(static_cast<MsgType>(type), MsgType::kError);

  // The worker is still healthy after all that abuse.
  WireWriter hello;
  hello.PutU32(static_cast<uint32_t>(MsgType::kHello));
  ASSERT_TRUE(conn.value().SendFrame(hello.buffer()).ok());
  ASSERT_TRUE(conn.value().RecvFrame(&response).ok());
  WireReader reader4(response);
  ASSERT_TRUE(reader4.GetU32(&type).ok());
  EXPECT_EQ(static_cast<MsgType>(type), MsgType::kHelloAck);

  EXPECT_TRUE(worker.Stop().ok());
}

TEST(DistServingTest, RouterRejectsInconsistentFleets) {
  ServingFixture fixture;
  const int64_t num_entities = fixture.data().num_entities();
  // A gap: [0, 5) and [6, E) never partition the space.
  ReplicaWorkerOptions low;
  low.horizon = fixture.horizon();
  low.entity_begin = 0;
  low.entity_end = 5;
  ReplicaWorkerOptions high;
  high.horizon = fixture.horizon();
  high.entity_begin = 6;
  high.entity_end = num_entities;
  ReplicaWorker worker_low(fixture.model(), low);
  ReplicaWorker worker_high(fixture.model(), high);
  ASSERT_TRUE(worker_low.StartBackground().ok());
  ASSERT_TRUE(worker_high.StartBackground().ok());
  Result<std::unique_ptr<ServingRouter>> router = ServingRouter::Connect(
      {worker_low.address(), worker_high.address()});
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kFailedPrecondition);
  worker_low.Stop();
  worker_high.Stop();
}

}  // namespace
}  // namespace dist
}  // namespace logcl
