// Time-aware filtered evaluation support.
//
// The paper evaluates with the *time-aware filtered* protocol: when ranking
// the answer of (s, r, ?, t), only other true objects of (s, r, ·, t) at the
// SAME timestamp are removed from the candidate list (unlike the static
// filter, which removes true objects at any time).

#ifndef LOGCL_TKG_FILTERS_H_
#define LOGCL_TKG_FILTERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tkg/dataset.h"

namespace logcl {

/// Index over all facts (train+valid+test, plus inverses) answering
/// "which objects are known true for (s, r) at time t".
class TimeAwareFilter {
 public:
  /// Builds the index from every split of `dataset`, including inverse
  /// quadruples so subject-queries are covered.
  explicit TimeAwareFilter(const TkgDataset& dataset);

  /// Object ids o with (s, r, o, t) true; empty vector if none.
  const std::vector<int64_t>& Answers(int64_t subject, int64_t relation,
                                      int64_t time) const;

  int64_t num_keys() const { return static_cast<int64_t>(index_.size()); }

 private:
  static uint64_t Key(int64_t subject, int64_t relation, int64_t time);
  std::unordered_map<uint64_t, std::vector<int64_t>> index_;
};

/// Index for the traditional *static* filtered setting: known objects of
/// (s, r) at ANY timestamp are removed from the candidate list. The paper
/// argues (following TANGO/HisMatch) that this over-filters on TKGs — a
/// fact true in 2014 is not a valid answer in 2018 — and reports
/// time-aware numbers instead; this class exists so both protocols can be
/// compared (see the eval tests and EXPERIMENTS.md).
class StaticFilter {
 public:
  explicit StaticFilter(const TkgDataset& dataset);

  /// Objects o with (s, r, o, t') true for ANY t'.
  const std::vector<int64_t>& Answers(int64_t subject, int64_t relation) const;

  int64_t num_keys() const { return static_cast<int64_t>(index_.size()); }

 private:
  static uint64_t Key(int64_t subject, int64_t relation);
  std::unordered_map<uint64_t, std::vector<int64_t>> index_;
};

}  // namespace logcl

#endif  // LOGCL_TKG_FILTERS_H_
