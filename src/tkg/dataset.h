// TkgDataset: a temporal knowledge graph with train/valid/test splits,
// snapshot access and inverse-relation bookkeeping.
//
// Conventions (matching RE-GCN / LogCL preprocessing):
//  - Relations 0..num_base_relations-1 are the dataset's relations; ids
//    num_base_relations..2*num_base_relations-1 are their inverses.
//  - Stored facts only use base relations; inverse quadruples are derived on
//    demand (WithInverses) so splits stay canonical.
//  - Timestamps are dense 0..num_timestamps-1 across all splits, with the
//    splits ordered in time (train < valid < test), as produced by the
//    standard 80/10/10 chronological split.

#ifndef LOGCL_TKG_DATASET_H_
#define LOGCL_TKG_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/snapshot_graph.h"
#include "tkg/quadruple.h"
#include "tkg/vocabulary.h"

namespace logcl {

/// Which split a fact belongs to.
enum class Split { kTrain, kValid, kTest };

/// Summary statistics (Table II of the paper).
struct DatasetStats {
  std::string name;
  int64_t num_entities = 0;
  int64_t num_relations = 0;  // base relations (without inverses)
  int64_t num_train = 0;
  int64_t num_valid = 0;
  int64_t num_test = 0;
  int64_t num_timestamps = 0;

  std::string ToString() const;
};

/// Immutable TKG container. Construct via FromQuadruples (synthetic /
/// programmatic data) or LoadTsv (ICEWS-style id files).
class TkgDataset {
 public:
  /// Takes ownership of the split fact lists. All ids must be in range;
  /// facts are sorted by (time, subject, relation, object).
  static TkgDataset FromQuadruples(std::string name, int64_t num_entities,
                                   int64_t num_base_relations,
                                   std::vector<Quadruple> train,
                                   std::vector<Quadruple> valid,
                                   std::vector<Quadruple> test);

  /// Loads `<dir>/train.txt`, `valid.txt`, `test.txt` with whitespace-
  /// separated "s r o t" integer rows (the standard benchmark format).
  static Result<TkgDataset> LoadTsv(const std::string& dir, std::string name);

  /// Writes the three split files into `dir` (created by the caller).
  Status SaveTsv(const std::string& dir) const;

  const std::string& name() const { return name_; }
  int64_t num_entities() const { return num_entities_; }
  int64_t num_base_relations() const { return num_base_relations_; }
  /// Base + inverse relations; the id space models operate in.
  int64_t num_relations_with_inverse() const { return 2 * num_base_relations_; }
  int64_t num_timestamps() const { return num_timestamps_; }

  const std::vector<Quadruple>& train() const { return train_; }
  const std::vector<Quadruple>& valid() const { return valid_; }
  const std::vector<Quadruple>& test() const { return test_; }
  const std::vector<Quadruple>& split(Split s) const;

  /// All facts of all splits at timestamp `t` (base relations only). Models
  /// use this as the ground-truth snapshot sequence; during offline testing
  /// the snapshots before the query time are known history, as in RE-GCN.
  const std::vector<Quadruple>& FactsAt(int64_t t) const;

  /// Facts of one split grouped by timestamp (timestamps with no facts in
  /// that split yield empty vectors).
  std::vector<Quadruple> SplitFactsAt(Split s, int64_t t) const;

  /// Sorted distinct timestamps that have at least one fact in `s`.
  const std::vector<int64_t>& SplitTimestamps(Split s) const;

  /// `facts` plus their inverse quadruples (order: originals then inverses).
  std::vector<Quadruple> WithInverses(const std::vector<Quadruple>& facts) const;

  /// The inverse-augmented snapshot graph of FactsAt(t) over all entities —
  /// equivalent to SnapshotGraph::FromFacts(WithInverses(FactsAt(t)),
  /// num_entities()). Built lazily on first access and cached for the
  /// dataset's lifetime (the facts are immutable), so trainer, eval and
  /// benches share one structure per timestamp across epochs. Copies of the
  /// dataset share the cached graphs. Out-of-range t yields the edgeless
  /// graph. Lazy builds are not thread-safe (single training thread).
  const SnapshotGraph& SnapshotGraphAt(int64_t t) const;

  DatasetStats Stats() const;

 private:
  TkgDataset() = default;
  void BuildIndexes();

  std::string name_;
  int64_t num_entities_ = 0;
  int64_t num_base_relations_ = 0;
  int64_t num_timestamps_ = 0;
  std::vector<Quadruple> train_;
  std::vector<Quadruple> valid_;
  std::vector<Quadruple> test_;
  // facts_by_time_[t] = union of all splits' facts at t.
  std::vector<std::vector<Quadruple>> facts_by_time_;
  // Per-timestamp inverse-augmented graphs (see SnapshotGraphAt); index
  // num_timestamps_ holds the shared edgeless graph for out-of-range t.
  mutable std::vector<std::shared_ptr<SnapshotGraph>> snapshot_graphs_;
  std::vector<int64_t> train_times_;
  std::vector<int64_t> valid_times_;
  std::vector<int64_t> test_times_;
};

}  // namespace logcl

#endif  // LOGCL_TKG_DATASET_H_
