// Bidirectional string <-> dense-id mapping for entities and relations.

#ifndef LOGCL_TKG_VOCABULARY_H_
#define LOGCL_TKG_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace logcl {

/// Append-only symbol table; ids are assigned densely in insertion order.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `name`, inserting it if new.
  int64_t GetOrAdd(const std::string& name);

  /// Returns the id of `name` or NotFound.
  Result<int64_t> Get(const std::string& name) const;

  /// True if `name` is present.
  bool Contains(const std::string& name) const;

  /// Name of an existing id (CHECK on out-of-range).
  const std::string& Name(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace logcl

#endif  // LOGCL_TKG_VOCABULARY_H_
