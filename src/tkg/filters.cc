#include "tkg/filters.h"

#include <algorithm>

#include "common/logging.h"

namespace logcl {

uint64_t TimeAwareFilter::Key(int64_t subject, int64_t relation,
                              int64_t time) {
  // Bit-packed exact key: 24 bits subject, 20 bits relation, 20 bits time.
  LOGCL_CHECK_LT(subject, int64_t{1} << 24);
  LOGCL_CHECK_LT(relation, int64_t{1} << 20);
  LOGCL_CHECK_LT(time, int64_t{1} << 20);
  return (static_cast<uint64_t>(subject) << 40) |
         (static_cast<uint64_t>(relation) << 20) |
         static_cast<uint64_t>(time);
}

TimeAwareFilter::TimeAwareFilter(const TkgDataset& dataset) {
  auto add = [this](const Quadruple& q) {
    index_[Key(q.subject, q.relation, q.time)].push_back(q.object);
  };
  for (Split split : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : dataset.split(split)) {
      add(q);
      add(InverseOf(q, dataset.num_base_relations()));
    }
  }
  // Dedupe answer lists.
  for (auto& [key, answers] : index_) {
    std::sort(answers.begin(), answers.end());
    answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  }
}

const std::vector<int64_t>& TimeAwareFilter::Answers(int64_t subject,
                                                     int64_t relation,
                                                     int64_t time) const {
  static const std::vector<int64_t> kEmpty;
  auto it = index_.find(Key(subject, relation, time));
  return it == index_.end() ? kEmpty : it->second;
}

uint64_t StaticFilter::Key(int64_t subject, int64_t relation) {
  LOGCL_CHECK_LT(subject, int64_t{1} << 32);
  LOGCL_CHECK_LT(relation, int64_t{1} << 31);
  return (static_cast<uint64_t>(subject) << 31) |
         static_cast<uint64_t>(relation);
}

StaticFilter::StaticFilter(const TkgDataset& dataset) {
  auto add = [this](const Quadruple& q) {
    index_[Key(q.subject, q.relation)].push_back(q.object);
  };
  for (Split split : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : dataset.split(split)) {
      add(q);
      add(InverseOf(q, dataset.num_base_relations()));
    }
  }
  for (auto& [key, answers] : index_) {
    std::sort(answers.begin(), answers.end());
    answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  }
}

const std::vector<int64_t>& StaticFilter::Answers(int64_t subject,
                                                  int64_t relation) const {
  static const std::vector<int64_t> kEmpty;
  auto it = index_.find(Key(subject, relation));
  return it == index_.end() ? kEmpty : it->second;
}

}  // namespace logcl
