// The basic TKG fact: (subject, relation, object, time).

#ifndef LOGCL_TKG_QUADRUPLE_H_
#define LOGCL_TKG_QUADRUPLE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace logcl {

/// One temporal fact. All fields are dense ids; `time` indexes the snapshot
/// sequence (0-based, unit-stride).
struct Quadruple {
  int64_t subject = 0;
  int64_t relation = 0;
  int64_t object = 0;
  int64_t time = 0;

  bool operator==(const Quadruple& other) const = default;

  /// "(s, r, o, t)" rendering for logs and the case-study output.
  std::string ToString() const;
};

/// Returns the inverse-relation id for `relation` given the number of base
/// (non-inverse) relations: r -> r + num_base, r + num_base -> r.
int64_t InverseRelation(int64_t relation, int64_t num_base_relations);

/// Returns the quadruple with subject/object swapped and relation inverted.
Quadruple InverseOf(const Quadruple& fact, int64_t num_base_relations);

struct QuadrupleHash {
  size_t operator()(const Quadruple& q) const {
    // 64-bit mix of the four fields.
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<uint64_t>(q.subject));
    mix(static_cast<uint64_t>(q.relation));
    mix(static_cast<uint64_t>(q.object));
    mix(static_cast<uint64_t>(q.time));
    return static_cast<size_t>(h);
  }
};

}  // namespace logcl

#endif  // LOGCL_TKG_QUADRUPLE_H_
