#include "tkg/dataset.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/logging.h"
#include "common/stringpiece.h"

namespace logcl {

namespace {

void SortFacts(std::vector<Quadruple>* facts) {
  std::sort(facts->begin(), facts->end(),
            [](const Quadruple& a, const Quadruple& b) {
              return std::tie(a.time, a.subject, a.relation, a.object) <
                     std::tie(b.time, b.subject, b.relation, b.object);
            });
}

void ValidateFacts(const std::vector<Quadruple>& facts, int64_t num_entities,
                   int64_t num_base_relations) {
  for (const Quadruple& q : facts) {
    LOGCL_CHECK_GE(q.subject, 0);
    LOGCL_CHECK_LT(q.subject, num_entities);
    LOGCL_CHECK_GE(q.object, 0);
    LOGCL_CHECK_LT(q.object, num_entities);
    LOGCL_CHECK_GE(q.relation, 0);
    LOGCL_CHECK_LT(q.relation, num_base_relations)
        << "split files must contain base relations only";
    LOGCL_CHECK_GE(q.time, 0);
  }
}

Result<std::vector<Quadruple>> ReadSplitFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Quadruple> facts;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: expected >=4 fields", path.c_str(),
                    static_cast<long long>(line_number)));
    }
    Quadruple q;
    int64_t* slots[4] = {&q.subject, &q.relation, &q.object, &q.time};
    for (int i = 0; i < 4; ++i) {
      Result<int64_t> value = ParseInt64(fields[static_cast<size_t>(i)]);
      if (!value.ok()) return value.status();
      *slots[i] = value.value();
    }
    facts.push_back(q);
  }
  return facts;
}

}  // namespace

std::string DatasetStats::ToString() const {
  return StrFormat(
      "%s: |E|=%lld |R|=%lld train=%lld valid=%lld test=%lld snapshots=%lld",
      name.c_str(), static_cast<long long>(num_entities),
      static_cast<long long>(num_relations),
      static_cast<long long>(num_train), static_cast<long long>(num_valid),
      static_cast<long long>(num_test),
      static_cast<long long>(num_timestamps));
}

TkgDataset TkgDataset::FromQuadruples(std::string name, int64_t num_entities,
                                      int64_t num_base_relations,
                                      std::vector<Quadruple> train,
                                      std::vector<Quadruple> valid,
                                      std::vector<Quadruple> test) {
  LOGCL_CHECK_GT(num_entities, 0);
  LOGCL_CHECK_GT(num_base_relations, 0);
  ValidateFacts(train, num_entities, num_base_relations);
  ValidateFacts(valid, num_entities, num_base_relations);
  ValidateFacts(test, num_entities, num_base_relations);
  TkgDataset dataset;
  dataset.name_ = std::move(name);
  dataset.num_entities_ = num_entities;
  dataset.num_base_relations_ = num_base_relations;
  dataset.train_ = std::move(train);
  dataset.valid_ = std::move(valid);
  dataset.test_ = std::move(test);
  SortFacts(&dataset.train_);
  SortFacts(&dataset.valid_);
  SortFacts(&dataset.test_);
  dataset.BuildIndexes();
  return dataset;
}

void TkgDataset::BuildIndexes() {
  int64_t max_time = -1;
  for (const auto* split : {&train_, &valid_, &test_}) {
    for (const Quadruple& q : *split) max_time = std::max(max_time, q.time);
  }
  num_timestamps_ = max_time + 1;
  facts_by_time_.assign(static_cast<size_t>(num_timestamps_), {});
  for (const auto* split : {&train_, &valid_, &test_}) {
    for (const Quadruple& q : *split) {
      facts_by_time_[static_cast<size_t>(q.time)].push_back(q);
    }
  }
  auto collect_times = [](const std::vector<Quadruple>& facts) {
    std::vector<int64_t> times;
    for (const Quadruple& q : facts) {
      if (times.empty() || times.back() != q.time) times.push_back(q.time);
    }
    return times;  // facts are time-sorted, so times are sorted & distinct
  };
  train_times_ = collect_times(train_);
  valid_times_ = collect_times(valid_);
  test_times_ = collect_times(test_);
  snapshot_graphs_.assign(static_cast<size_t>(num_timestamps_) + 1, nullptr);
}

const SnapshotGraph& TkgDataset::SnapshotGraphAt(int64_t t) const {
  size_t slot = (t < 0 || t >= num_timestamps_)
                    ? static_cast<size_t>(num_timestamps_)  // edgeless
                    : static_cast<size_t>(t);
  std::shared_ptr<SnapshotGraph>& entry = snapshot_graphs_[slot];
  if (entry == nullptr) {
    entry = std::make_shared<SnapshotGraph>(SnapshotGraph::FromFactsWithInverses(
        FactsAt(slot == static_cast<size_t>(num_timestamps_)
                    ? int64_t{-1}
                    : t),
        num_entities_, num_base_relations_));
  }
  return *entry;
}

Result<TkgDataset> TkgDataset::LoadTsv(const std::string& dir,
                                       std::string name) {
  Result<std::vector<Quadruple>> train = ReadSplitFile(dir + "/train.txt");
  if (!train.ok()) return train.status();
  Result<std::vector<Quadruple>> valid = ReadSplitFile(dir + "/valid.txt");
  if (!valid.ok()) return valid.status();
  Result<std::vector<Quadruple>> test = ReadSplitFile(dir + "/test.txt");
  if (!test.ok()) return test.status();
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  for (const auto* split : {&train.value(), &valid.value(), &test.value()}) {
    for (const Quadruple& q : *split) {
      num_entities = std::max({num_entities, q.subject + 1, q.object + 1});
      num_relations = std::max(num_relations, q.relation + 1);
    }
  }
  if (num_entities == 0) {
    return Status::InvalidArgument("dataset in " + dir + " is empty");
  }
  return FromQuadruples(std::move(name), num_entities, num_relations,
                        std::move(train).value(), std::move(valid).value(),
                        std::move(test).value());
}

Status TkgDataset::SaveTsv(const std::string& dir) const {
  struct Entry {
    const char* file;
    const std::vector<Quadruple>* facts;
  };
  for (const Entry& entry : {Entry{"train.txt", &train_},
                             Entry{"valid.txt", &valid_},
                             Entry{"test.txt", &test_}}) {
    std::string path = dir + "/" + entry.file;
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot write " + path);
    for (const Quadruple& q : *entry.facts) {
      out << q.subject << '\t' << q.relation << '\t' << q.object << '\t'
          << q.time << '\n';
    }
    if (!out) return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

const std::vector<Quadruple>& TkgDataset::split(Split s) const {
  switch (s) {
    case Split::kTrain:
      return train_;
    case Split::kValid:
      return valid_;
    case Split::kTest:
      return test_;
  }
  LOGCL_CHECK(false) << "bad split";
  return train_;
}

const std::vector<Quadruple>& TkgDataset::FactsAt(int64_t t) const {
  static const std::vector<Quadruple> kEmpty;
  if (t < 0 || t >= num_timestamps_) return kEmpty;
  return facts_by_time_[static_cast<size_t>(t)];
}

std::vector<Quadruple> TkgDataset::SplitFactsAt(Split s, int64_t t) const {
  std::vector<Quadruple> out;
  for (const Quadruple& q : split(s)) {
    if (q.time == t) out.push_back(q);
  }
  return out;
}

const std::vector<int64_t>& TkgDataset::SplitTimestamps(Split s) const {
  switch (s) {
    case Split::kTrain:
      return train_times_;
    case Split::kValid:
      return valid_times_;
    case Split::kTest:
      return test_times_;
  }
  LOGCL_CHECK(false) << "bad split";
  return train_times_;
}

std::vector<Quadruple> TkgDataset::WithInverses(
    const std::vector<Quadruple>& facts) const {
  std::vector<Quadruple> out;
  out.reserve(facts.size() * 2);
  out.insert(out.end(), facts.begin(), facts.end());
  for (const Quadruple& q : facts) {
    out.push_back(InverseOf(q, num_base_relations_));
  }
  return out;
}

DatasetStats TkgDataset::Stats() const {
  DatasetStats stats;
  stats.name = name_;
  stats.num_entities = num_entities_;
  stats.num_relations = num_base_relations_;
  stats.num_train = static_cast<int64_t>(train_.size());
  stats.num_valid = static_cast<int64_t>(valid_.size());
  stats.num_test = static_cast<int64_t>(test_.size());
  stats.num_timestamps = num_timestamps_;
  return stats;
}

}  // namespace logcl
