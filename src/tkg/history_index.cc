#include "tkg/history_index.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace logcl {

uint64_t HistoryIndex::PairKey(int64_t subject, int64_t relation) {
  LOGCL_CHECK_LT(subject, int64_t{1} << 32);
  LOGCL_CHECK_LT(relation, int64_t{1} << 31);
  return (static_cast<uint64_t>(subject) << 31) |
         static_cast<uint64_t>(relation);
}

HistoryIndex::HistoryIndex(const TkgDataset& dataset)
    : HistoryIndex(dataset, std::numeric_limits<int64_t>::max()) {}

HistoryIndex::HistoryIndex(const TkgDataset& dataset,
                           int64_t max_time_exclusive)
    : num_base_relations_(dataset.num_base_relations()) {
  by_entity_.resize(static_cast<size_t>(dataset.num_entities()));
  auto add = [this](const Quadruple& q) {
    by_subject_relation_[PairKey(q.subject, q.relation)].push_back(
        Posting{q.time, q.object});
    by_entity_[static_cast<size_t>(q.subject)].push_back(
        HistoryEdge{q.relation, q.object, q.time});
  };
  for (Split split : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Quadruple& q : dataset.split(split)) {
      if (q.time >= max_time_exclusive) continue;
      add(q);
      add(InverseOf(q, num_base_relations_));
    }
  }
  auto by_time = [](const auto& a, const auto& b) { return a.time < b.time; };
  for (auto& [key, postings] : by_subject_relation_) {
    std::stable_sort(postings.begin(), postings.end(), by_time);
  }
  for (auto& edges : by_entity_) {
    std::stable_sort(edges.begin(), edges.end(), by_time);
  }
}

void HistoryIndex::AddFacts(const std::vector<Quadruple>& facts) {
  auto by_time = [](const auto& a, const auto& b) { return a.time < b.time; };
  auto add = [&](const Quadruple& q) {
    LOGCL_CHECK_GE(q.subject, 0);
    LOGCL_CHECK_LT(q.subject, static_cast<int64_t>(by_entity_.size()));
    std::vector<Posting>& postings =
        by_subject_relation_[PairKey(q.subject, q.relation)];
    postings.push_back(Posting{q.time, q.object});
    // Appends at/after the tail keep the list sorted for free; a stable
    // sort repairs the (rare) out-of-order insertion without reordering
    // equal-time postings already in place.
    if (postings.size() > 1 && postings[postings.size() - 2].time > q.time) {
      std::stable_sort(postings.begin(), postings.end(), by_time);
    }
    std::vector<HistoryEdge>& edges =
        by_entity_[static_cast<size_t>(q.subject)];
    edges.push_back(HistoryEdge{q.relation, q.object, q.time});
    if (edges.size() > 1 && edges[edges.size() - 2].time > q.time) {
      std::stable_sort(edges.begin(), edges.end(), by_time);
    }
  };
  for (const Quadruple& q : facts) {
    add(q);
    add(InverseOf(q, num_base_relations_));
  }
}

std::vector<int64_t> HistoryIndex::ObjectsBefore(int64_t subject,
                                                 int64_t relation,
                                                 int64_t time) const {
  auto it = by_subject_relation_.find(PairKey(subject, relation));
  if (it == by_subject_relation_.end()) return {};
  std::vector<int64_t> objects;
  std::unordered_set<int64_t> seen;
  for (const Posting& p : it->second) {
    if (p.time >= time) break;
    if (seen.insert(p.object).second) objects.push_back(p.object);
  }
  return objects;
}

bool HistoryIndex::SeenBefore(int64_t subject, int64_t relation,
                              int64_t object, int64_t time) const {
  return CountBefore(subject, relation, object, time) > 0;
}

int64_t HistoryIndex::CountBefore(int64_t subject, int64_t relation,
                                  int64_t object, int64_t time) const {
  auto it = by_subject_relation_.find(PairKey(subject, relation));
  if (it == by_subject_relation_.end()) return 0;
  int64_t count = 0;
  for (const Posting& p : it->second) {
    if (p.time >= time) break;
    if (p.object == object) ++count;
  }
  return count;
}

std::vector<std::pair<int64_t, int64_t>> HistoryIndex::ObjectCountsBefore(
    int64_t subject, int64_t relation, int64_t time) const {
  auto it = by_subject_relation_.find(PairKey(subject, relation));
  if (it == by_subject_relation_.end()) return {};
  std::unordered_map<int64_t, int64_t> counts;
  for (const Posting& p : it->second) {
    if (p.time >= time) break;
    ++counts[p.object];
  }
  return std::vector<std::pair<int64_t, int64_t>>(counts.begin(),
                                                  counts.end());
}

std::vector<HistoryEdge> HistoryIndex::FactsTouchingBefore(
    int64_t entity, int64_t time, int64_t max_edges) const {
  LOGCL_CHECK_GE(entity, 0);
  LOGCL_CHECK_LT(entity, static_cast<int64_t>(by_entity_.size()));
  const std::vector<HistoryEdge>& edges =
      by_entity_[static_cast<size_t>(entity)];
  // Binary search for the first edge at or after `time`.
  auto end = std::lower_bound(
      edges.begin(), edges.end(), time,
      [](const HistoryEdge& e, int64_t t) { return e.time < t; });
  auto begin = edges.begin();
  if (max_edges > 0 && end - begin > max_edges) {
    begin = end - max_edges;  // keep the most recent edges
  }
  return std::vector<HistoryEdge>(begin, end);
}

}  // namespace logcl
