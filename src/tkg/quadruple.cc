#include "tkg/quadruple.h"

#include "common/logging.h"
#include "common/stringpiece.h"

namespace logcl {

std::string Quadruple::ToString() const {
  return StrFormat("(%lld, %lld, %lld, %lld)",
                   static_cast<long long>(subject),
                   static_cast<long long>(relation),
                   static_cast<long long>(object),
                   static_cast<long long>(time));
}

int64_t InverseRelation(int64_t relation, int64_t num_base_relations) {
  LOGCL_CHECK_GE(relation, 0);
  LOGCL_CHECK_LT(relation, 2 * num_base_relations);
  return relation < num_base_relations ? relation + num_base_relations
                                       : relation - num_base_relations;
}

Quadruple InverseOf(const Quadruple& fact, int64_t num_base_relations) {
  return Quadruple{fact.object,
                   InverseRelation(fact.relation, num_base_relations),
                   fact.subject, fact.time};
}

}  // namespace logcl
