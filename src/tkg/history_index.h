// Global-history indexes used by the global encoders:
//  - HistoryIndex::ObjectsBefore(s, r, t): the repetition candidates of
//    CyGNet / CENET / TiRGN's global mode and LogCL's historical answer set.
//  - HistoryIndex::FactsTouchingBefore(e, t): one-hop historical facts
//    containing entity e, used to sample LogCL's historical query subgraph.
//
// Built once per dataset; queries are answered by binary search on
// time-sorted postings so "before t" scans never touch the future.

#ifndef LOGCL_TKG_HISTORY_INDEX_H_
#define LOGCL_TKG_HISTORY_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tkg/dataset.h"

namespace logcl {

/// A historical fact reference: relation/object/time seen from an anchor
/// subject (postings of the per-(s,r) and per-entity indexes).
struct HistoryEdge {
  int64_t relation = 0;
  int64_t neighbor = 0;  // object of (anchor, relation, neighbor, time)
  int64_t time = 0;
};

/// Immutable index over all facts (with inverses) of a dataset.
class HistoryIndex {
 public:
  /// `include_splits` controls which splits feed the index; the offline
  /// evaluation protocol indexes every split (history before the query time
  /// is always observable).
  explicit HistoryIndex(const TkgDataset& dataset);

  /// Indexes only facts with time < `max_time_exclusive`. The serving
  /// engine's snapshots never observe the horizon, so they drop the future
  /// up front; "before t" queries with t <= max_time_exclusive answer
  /// identically to the full index (same postings in the same order).
  HistoryIndex(const TkgDataset& dataset, int64_t max_time_exclusive);

  /// Extends the index with `facts` plus their inverses — the copy-on-write
  /// step behind the serving engine's Advance. Appending facts at or beyond
  /// the current maximum time (the only case Advance produces) yields an
  /// index identical to rebuilding from the union, including posting order;
  /// older facts are merged time-sorted but land after same-time postings
  /// already present.
  void AddFacts(const std::vector<Quadruple>& facts);

  /// Distinct objects o with (s, r, o, t') for some t' < t, in first-seen
  /// order. (The repetition candidate set.)
  std::vector<int64_t> ObjectsBefore(int64_t subject, int64_t relation,
                                     int64_t time) const;

  /// True if (s, r, o) occurred strictly before `time`.
  bool SeenBefore(int64_t subject, int64_t relation, int64_t object,
                  int64_t time) const;

  /// One-hop facts anchored at entity e (as subject, inverse-augmented, so
  /// object-side occurrences appear under the inverse relation) strictly
  /// before `time`. At most `max_edges` most-recent edges are returned
  /// (0 = no cap).
  std::vector<HistoryEdge> FactsTouchingBefore(int64_t entity, int64_t time,
                                               int64_t max_edges = 0) const;

  /// Number of (s, r, o) triples seen at least once before `time` whose
  /// subject is s — used by frequency-based copy modes. Returns the count of
  /// occurrences of the exact triple before `time`.
  int64_t CountBefore(int64_t subject, int64_t relation, int64_t object,
                      int64_t time) const;

  /// Occurrence count per object of (s, r, ., t' < t), for frequency-based
  /// scoring (CENET). Objects not listed have count 0.
  std::vector<std::pair<int64_t, int64_t>> ObjectCountsBefore(
      int64_t subject, int64_t relation, int64_t time) const;

 private:
  struct Posting {
    int64_t time;
    int64_t object;
  };
  static uint64_t PairKey(int64_t subject, int64_t relation);

  int64_t num_base_relations_;
  // (s, r) -> postings sorted by time.
  std::unordered_map<uint64_t, std::vector<Posting>> by_subject_relation_;
  // e -> edges sorted by time.
  std::vector<std::vector<HistoryEdge>> by_entity_;
};

}  // namespace logcl

#endif  // LOGCL_TKG_HISTORY_INDEX_H_
