#include "tkg/vocabulary.h"

#include "common/logging.h"

namespace logcl {

int64_t Vocabulary::GetOrAdd(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, size());
  if (inserted) names_.push_back(name);
  return it->second;
}

Result<int64_t> Vocabulary::Get(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("symbol not in vocabulary: '" + name + "'");
  }
  return it->second;
}

bool Vocabulary::Contains(const std::string& name) const {
  return ids_.contains(name);
}

const std::string& Vocabulary::Name(int64_t id) const {
  LOGCL_CHECK_GE(id, 0);
  LOGCL_CHECK_LT(id, size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace logcl
