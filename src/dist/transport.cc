#include "dist/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/observability.h"

namespace logcl {
namespace dist {
namespace {

// Registry handles, interned once (transport objects are created per
// connection; the counters are process-wide like every logcl.* metric).
Counter* BytesSentCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.bytes_sent");
  return c;
}
Counter* BytesReceivedCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.bytes_received");
  return c;
}
Counter* FramesSentCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.frames_sent");
  return c;
}
Counter* FramesReceivedCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.frames_received");
  return c;
}

int64_t NowMs() {
  return static_cast<int64_t>(MonotonicNowNs() / 1000000ull);
}

// PollUntil tags its deadline Status with this marker (see IsTimeout).
constexpr const char kDeadlineMarker[] = "deadline exceeded waiting on socket";

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Parsed form of a transport address.
struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;   // AF_UNIX
  std::string host;        // AF_INET (numeric or "localhost")
  uint16_t port = 0;
};

Status ParseAddress(const std::string& address, ParsedAddress* out) {
  if (address.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->unix_path = address.substr(5);
    if (out->unix_path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + address +
                                     "'");
    }
    if (out->unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     out->unix_path + "'");
    }
    return Status::Ok();
  }
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not 'host:port' or 'unix:<path>'");
  }
  out->is_unix = false;
  out->host = address.substr(0, colon);
  if (out->host == "localhost") out->host = "127.0.0.1";
  long port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    char c = address[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in address '" + address + "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + address + "'");
    }
  }
  out->port = static_cast<uint16_t>(port);
  return Status::Ok();
}

Status FillSockaddrIn(const ParsedAddress& addr, sockaddr_in* sin) {
  std::memset(sin, 0, sizeof(*sin));
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host '" + addr.host +
                                   "' (numeric addresses only)");
  }
  return Status::Ok();
}

void FillSockaddrUn(const ParsedAddress& addr, sockaddr_un* sun) {
  std::memset(sun, 0, sizeof(*sun));
  sun->sun_family = AF_UNIX;
  std::strncpy(sun->sun_path, addr.unix_path.c_str(),
               sizeof(sun->sun_path) - 1);
}

/// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the absolute
/// deadline passes. EINTR restarts with the remaining budget.
Status PollUntil(int fd, short events, int64_t deadline_ms, const char* what) {
  for (;;) {
    int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::IoError(std::string(what) + ": " + kDeadlineMarker);
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(
                                 remaining > 1000000 ? 1000000 : remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage(what));
    }
    if (rc == 0) continue;  // re-check deadline
    // Readable/writable OR error/hup: let the subsequent read/write surface
    // the precise errno (a closed peer reports POLLIN + read()==0).
    return Status::Ok();
  }
}

void SetCloexec(int fd) { (void)fd; /* O_CLOEXEC set at socket(); no-op */ }

int NewSocket(bool is_unix) {
  return ::socket(is_unix ? AF_UNIX : AF_INET,
                  SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

// --- Connection -------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {}

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_), io_timeout_ms_(other.io_timeout_ms_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Connection> Connection::Connect(const std::string& address,
                                       int64_t timeout_ms) {
  ParsedAddress parsed;
  LOGCL_RETURN_IF_ERROR(ParseAddress(address, &parsed));
  int64_t deadline = NowMs() + timeout_ms;
  Status last = Status::IoError("connect to '" + address + "' never attempted");
  // Retry refused / not-yet-bound attempts: rendezvous peers may start
  // before the master's listener exists.
  for (;;) {
    int fd = NewSocket(parsed.is_unix);
    if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
    SetCloexec(fd);
    int rc;
    if (parsed.is_unix) {
      sockaddr_un sun;
      FillSockaddrUn(parsed, &sun);
      do {
        rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun));
      } while (rc < 0 && errno == EINTR);
    } else {
      sockaddr_in sin;
      Status st = FillSockaddrIn(parsed, &sin);
      if (!st.ok()) {
        ::close(fd);
        return st;
      }
      do {
        rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
      } while (rc < 0 && errno == EINTR);
    }
    if (rc == 0) {
      if (!parsed.is_unix) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      Connection conn(fd);
      return conn;
    }
    int connect_errno = errno;
    ::close(fd);
    bool retryable = connect_errno == ECONNREFUSED ||
                     connect_errno == ENOENT || connect_errno == EAGAIN ||
                     connect_errno == ETIMEDOUT;
    last = Status::IoError("connect to '" + address +
                           "': " + std::strerror(connect_errno));
    if (!retryable || NowMs() >= deadline) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status Connection::WriteAll(const void* data, size_t len) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("write on a closed connection");
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  int64_t deadline = NowMs() + io_timeout_ms_;
  while (sent < len) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      LOGCL_RETURN_IF_ERROR(PollUntil(fd_, POLLOUT, deadline, "write"));
      continue;
    }
    return Status::IoError(ErrnoMessage("write"));
  }
  BytesSentCounter()->Add(len);
  return Status::Ok();
}

Status Connection::ReadAll(void* data, size_t len) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("read on a closed connection");
  }
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t received = 0;
  int64_t deadline = NowMs() + io_timeout_ms_;
  while (received < len) {
    // Wait for readability under the deadline first: a silent peer must
    // become a Status, not a hang (the sockets are blocking).
    LOGCL_RETURN_IF_ERROR(PollUntil(fd_, POLLIN, deadline, "read"));
    ssize_t n = ::recv(fd_, p + received, len - received, 0);
    if (n > 0) {
      received += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::IoError("peer closed the connection mid-message (" +
                             std::to_string(received) + "/" +
                             std::to_string(len) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(ErrnoMessage("read"));
  }
  BytesReceivedCounter()->Add(len);
  return Status::Ok();
}

Status Connection::SendFrame(const void* data, size_t len) {
  if (static_cast<uint64_t>(len) > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds kMaxFrameBytes");
  }
  uint64_t header = static_cast<uint64_t>(len);  // little-endian host assumed
  LOGCL_RETURN_IF_ERROR(WriteAll(&header, sizeof(header)));
  if (len > 0) LOGCL_RETURN_IF_ERROR(WriteAll(data, len));
  FramesSentCounter()->Increment();
  return Status::Ok();
}

Status Connection::RecvFrame(std::vector<uint8_t>* payload) {
  uint64_t header = 0;
  LOGCL_RETURN_IF_ERROR(ReadAll(&header, sizeof(header)));
  if (header > kMaxFrameBytes) {
    return Status::IoError("frame header advertises " +
                           std::to_string(header) +
                           " bytes; stream is corrupt");
  }
  payload->resize(static_cast<size_t>(header));
  if (header > 0) {
    LOGCL_RETURN_IF_ERROR(ReadAll(payload->data(), payload->size()));
  }
  FramesReceivedCounter()->Increment();
  return Status::Ok();
}

// --- Listener ---------------------------------------------------------------

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      bound_address_(std::move(other.bound_address_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    bound_address_ = std::move(other.bound_address_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Result<Listener> Listener::Open(const std::string& address) {
  ParsedAddress parsed;
  LOGCL_RETURN_IF_ERROR(ParseAddress(address, &parsed));
  int fd = NewSocket(parsed.is_unix);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  SetCloexec(fd);
  Listener listener;
  listener.fd_ = fd;
  if (parsed.is_unix) {
    // A stale socket file from a crashed predecessor would make bind fail;
    // the path is ours by contract, so reclaim it.
    ::unlink(parsed.unix_path.c_str());
    sockaddr_un sun;
    FillSockaddrUn(parsed, &sun);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      return Status::IoError(ErrnoMessage("bind"));
    }
    listener.unix_path_ = parsed.unix_path;
    listener.bound_address_ = address;
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin;
    LOGCL_RETURN_IF_ERROR(FillSockaddrIn(parsed, &sin));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
      return Status::IoError(ErrnoMessage("bind"));
    }
    // Port 0 auto-assignment: advertise what the kernel actually chose.
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
        0) {
      return Status::IoError(ErrnoMessage("getsockname"));
    }
    listener.bound_address_ =
        parsed.host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(fd, 64) < 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  return listener;
}

Result<Connection> Listener::Accept(int64_t timeout_ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("accept on a closed listener");
  }
  int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    LOGCL_RETURN_IF_ERROR(PollUntil(fd_, POLLIN, deadline, "accept"));
    int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(fd);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;
    }
    return Status::IoError(ErrnoMessage("accept"));
  }
}

bool IsTimeout(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message().find(kDeadlineMarker) != std::string::npos;
}

}  // namespace dist
}  // namespace logcl
