// Wire encoding helpers shared by the rendezvous, collectives and serving
// RPC protocols: a little-endian append-only writer and a bounds-checked
// reader. Scalars are fixed-width (u32/u64/i64/f32), strings and blobs are
// u64-length-prefixed. The reader never aborts on malformed input — every
// getter returns Status so a corrupt or truncated frame from a misbehaving
// peer degrades to an error, not UB.

#ifndef LOGCL_DIST_WIRE_H_
#define LOGCL_DIST_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "tkg/quadruple.h"

namespace logcl {
namespace dist {

/// Append-only little-endian buffer builder.
class WireWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }

  void PutString(const std::string& s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutF32Array(const float* data, size_t count) {
    PutU64(count);
    PutRaw(data, count * sizeof(float));
  }

  void PutQuadruples(const std::vector<Quadruple>& facts) {
    PutU64(facts.size());
    for (const Quadruple& q : facts) {
      PutI64(q.subject);
      PutI64(q.relation);
      PutI64(q.object);
      PutI64(q.time);
    }
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t>&& TakeBuffer() { return std::move(buffer_); }

 private:
  void PutRaw(const void* data, size_t len) {
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + len);
    std::memcpy(buffer_.data() + old_size, data, len);
  }

  std::vector<uint8_t> buffer_;
};

/// Bounds-checked sequential reader over a received payload. The payload
/// must outlive the reader.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetF32(float* v) { return GetRaw(v, sizeof(*v)); }

  Status GetString(std::string* s) {
    uint64_t len = 0;
    LOGCL_RETURN_IF_ERROR(GetU64(&len));
    if (len > Remaining()) return Truncated("string");
    s->assign(reinterpret_cast<const char*>(data_ + offset_),
              static_cast<size_t>(len));
    offset_ += static_cast<size_t>(len);
    return Status::Ok();
  }

  Status GetF32Array(std::vector<float>* out) {
    uint64_t count = 0;
    LOGCL_RETURN_IF_ERROR(GetU64(&count));
    if (count > Remaining() / sizeof(float)) return Truncated("f32 array");
    out->resize(static_cast<size_t>(count));
    std::memcpy(out->data(), data_ + offset_,
                static_cast<size_t>(count) * sizeof(float));
    offset_ += static_cast<size_t>(count) * sizeof(float);
    return Status::Ok();
  }

  Status GetQuadruples(std::vector<Quadruple>* facts) {
    uint64_t count = 0;
    LOGCL_RETURN_IF_ERROR(GetU64(&count));
    if (count > Remaining() / (4 * sizeof(int64_t))) {
      return Truncated("quadruple array");
    }
    facts->resize(static_cast<size_t>(count));
    for (Quadruple& q : *facts) {
      LOGCL_RETURN_IF_ERROR(GetI64(&q.subject));
      LOGCL_RETURN_IF_ERROR(GetI64(&q.relation));
      LOGCL_RETURN_IF_ERROR(GetI64(&q.object));
      LOGCL_RETURN_IF_ERROR(GetI64(&q.time));
    }
    return Status::Ok();
  }

  size_t Remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  Status GetRaw(void* out, size_t len) {
    if (len > Remaining()) return Truncated("scalar");
    std::memcpy(out, data_ + offset_, len);
    offset_ += len;
    return Status::Ok();
  }

  Status Truncated(const char* what) const {
    return Status::IoError(std::string("truncated wire payload reading ") +
                           what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_WIRE_H_
