// RPC message types for the replicated serving tier (ReplicaWorker <->
// ServingRouter). Every frame's payload is a u32 message type followed by a
// type-specific body (all little-endian, encoded with dist/wire.h):
//
//   kHello            -> (empty)
//   kHelloAck         <- i64 entity_begin, i64 entity_end, i64 horizon,
//                        i64 num_entities
//   kScoreBatch       -> u64 B, B x (i64 subject, i64 relation)
//   kScoreBatchAck    <- i64 horizon, i64 entity_begin, i64 entity_end,
//                        f32 array of B*(end-begin) logits, row-major
//   kTopK             -> u64 k, u64 B, B x (i64 subject, i64 relation)
//   kTopKAck          <- i64 horizon, u64 B, B x { u64 m,
//                        m x (i64 id, f32 logit, f32 prob) }
//   kAdvancePrepare   -> quadruple array (the completed horizon's facts)
//   kAdvancePrepareAck<- i64 staged_horizon
//   kAdvanceCommit    -> (empty)
//   kAdvanceCommitAck <- i64 horizon
//   kShutdown         -> (empty)
//   kShutdownAck      <- (empty)
//   kError            <- u32 StatusCode, string message (any request may be
//                        answered with this; the client rehydrates the
//                        Status)
//
// Acks echo the worker's horizon so the router can assert that one fan-out
// never mixes horizons (the coordinated-Advance invariant; see
// serving_router.h).

#ifndef LOGCL_DIST_PROTOCOL_H_
#define LOGCL_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dist/wire.h"

namespace logcl {
namespace dist {

enum class MsgType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kScoreBatch = 3,
  kScoreBatchAck = 4,
  kTopK = 5,
  kTopKAck = 6,
  kAdvancePrepare = 7,
  kAdvancePrepareAck = 8,
  kAdvanceCommit = 9,
  kAdvanceCommitAck = 10,
  kShutdown = 11,
  kShutdownAck = 12,
  kError = 100,
};

/// Encodes `status` as a kError payload.
inline std::vector<uint8_t> EncodeError(const Status& status) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kError));
  writer.PutU32(static_cast<uint32_t>(status.code()));
  writer.PutString(status.message());
  return writer.TakeBuffer();
}

/// Rehydrates the Status from a kError body (reader positioned after the
/// type word).
inline Status DecodeError(WireReader* reader) {
  uint32_t code = 0;
  std::string message;
  LOGCL_RETURN_IF_ERROR(reader->GetU32(&code));
  LOGCL_RETURN_IF_ERROR(reader->GetString(&message));
  // kUnavailable is the enum's tail; anything past it is a peer speaking a
  // newer protocol. Keeping the bound current preserves the serving
  // rejection taxonomy across the wire — a worker's admission-control shed
  // (kUnavailable) must reach the router's caller as kUnavailable, not be
  // flattened into kInternal.
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Internal("peer error with unknown code: " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_PROTOCOL_H_
