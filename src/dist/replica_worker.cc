#include "dist/replica_worker.h"

#include <algorithm>
#include <utility>

#include "common/observability.h"
#include "dist/protocol.h"
#include "eval/ranking.h"

namespace logcl {
namespace dist {
namespace {

/// Poll tick for accept/read so Stop() takes effect promptly.
constexpr int64_t kServeTickMs = 250;

Counter* RequestsCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.worker_requests");
  return c;
}
Histogram* RequestUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.worker_request_us");
  return h;
}
Counter* AdvancesCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.worker_advances");
  return c;
}

std::vector<uint8_t> AckHeader(MsgType type) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(type));
  return writer.TakeBuffer();
}

Status ReadQueries(WireReader* reader, std::vector<ServeQuery>* queries) {
  uint64_t batch = 0;
  LOGCL_RETURN_IF_ERROR(reader->GetU64(&batch));
  if (batch > (1u << 20)) {
    return Status::InvalidArgument("oversized score batch");
  }
  queries->resize(static_cast<size_t>(batch));
  for (ServeQuery& q : *queries) {
    LOGCL_RETURN_IF_ERROR(reader->GetI64(&q.subject));
    LOGCL_RETURN_IF_ERROR(reader->GetI64(&q.relation));
  }
  return Status::Ok();
}

}  // namespace

ReplicaWorker::ReplicaWorker(const LogClModel* model,
                             ReplicaWorkerOptions options)
    : model_(model), options_(std::move(options)) {}

ReplicaWorker::~ReplicaWorker() { Stop(); }

Status ReplicaWorker::Start() {
  const int64_t num_entities = model_->dataset().num_entities();
  entity_begin_ = options_.entity_begin;
  entity_end_ =
      options_.entity_end < 0 ? num_entities : options_.entity_end;
  if (entity_begin_ < 0 || entity_begin_ >= entity_end_ ||
      entity_end_ > num_entities) {
    return Status::InvalidArgument(
        "entity range [" + std::to_string(entity_begin_) + ", " +
        std::to_string(entity_end_) + ") invalid for " +
        std::to_string(num_entities) + " entities");
  }
  active_ = EngineSnapshot::Build(model_, options_.horizon,
                                  options_.precision);
  Result<Listener> listener = Listener::Open(options_.listen_address);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_.bound_address();
  return Status::Ok();
}

Status ReplicaWorker::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<Connection> accepted = listener_.Accept(kServeTickMs);
    if (!accepted.ok()) {
      if (IsTimeout(accepted.status())) continue;  // idle tick
      return accepted.status();
    }
    Status conn_status = HandleConnection(std::move(accepted).value());
    if (!conn_status.ok() && !IsTimeout(conn_status)) {
      // A dropped client recycles to accept; that is not a worker failure.
      continue;
    }
  }
  return Status::Ok();
}

Status ReplicaWorker::HandleConnection(Connection conn) {
  conn.set_io_timeout_ms(kServeTickMs);
  std::vector<uint8_t> request;
  while (!stop_.load(std::memory_order_relaxed)) {
    Status status = conn.RecvFrame(&request);
    if (!status.ok()) {
      if (IsTimeout(status)) continue;  // idle between requests
      return status;                    // peer closed or died
    }
    uint64_t start_ns = MonotonicNowNs();
    RequestsCounter()->Increment();
    WireReader peek(request);
    uint32_t raw_type = 0;
    if (!peek.GetU32(&raw_type).ok()) {
      LOGCL_RETURN_IF_ERROR(conn.SendFrame(
          EncodeError(Status::InvalidArgument("empty request frame"))));
      continue;
    }
    if (static_cast<MsgType>(raw_type) == MsgType::kShutdown) {
      stop_.store(true, std::memory_order_relaxed);
      return conn.SendFrame(AckHeader(MsgType::kShutdownAck));
    }
    std::vector<uint8_t> response = HandleRequest(request);
    LOGCL_RETURN_IF_ERROR(conn.SendFrame(response));
    RequestUsHist()->Record((MonotonicNowNs() - start_ns) / 1000);
  }
  return Status::Ok();
}

std::vector<uint8_t> ReplicaWorker::HandleRequest(
    const std::vector<uint8_t>& request) {
  WireReader reader(request);
  uint32_t raw_type = 0;
  Status status = reader.GetU32(&raw_type);
  if (!status.ok()) return EncodeError(status);
  switch (static_cast<MsgType>(raw_type)) {
    case MsgType::kHello: {
      WireWriter writer;
      writer.PutU32(static_cast<uint32_t>(MsgType::kHelloAck));
      writer.PutI64(entity_begin_);
      writer.PutI64(entity_end_);
      writer.PutI64(active_->time());
      writer.PutI64(model_->dataset().num_entities());
      return writer.TakeBuffer();
    }
    case MsgType::kScoreBatch:
      return HandleScoreBatch(&reader);
    case MsgType::kTopK:
      return HandleTopK(&reader);
    case MsgType::kAdvancePrepare:
      return HandleAdvancePrepare(&reader);
    case MsgType::kAdvanceCommit:
      return HandleAdvanceCommit();
    default:
      return EncodeError(Status::InvalidArgument(
          "unknown request type " + std::to_string(raw_type)));
  }
}

std::vector<uint8_t> ReplicaWorker::HandleScoreBatch(WireReader* reader) {
  std::vector<ServeQuery> queries;
  Status status = ReadQueries(reader, &queries);
  if (!status.ok()) return EncodeError(status);
  // Full-row scoring, response sliced to this worker's entity range (the
  // slicing is what keeps sharded results bitwise equal to unsharded).
  Tensor scores = active_->ScoreBatch(queries);
  const std::vector<float>& data = scores.data();
  const int64_t num_entities = model_->dataset().num_entities();
  const int64_t width = entity_end_ - entity_begin_;
  std::vector<float> sliced(queries.size() * static_cast<size_t>(width));
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* row =
        data.data() + static_cast<int64_t>(i) * num_entities + entity_begin_;
    std::copy(row, row + width,
              sliced.data() + static_cast<int64_t>(i) * width);
  }
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kScoreBatchAck));
  writer.PutI64(active_->time());
  writer.PutI64(entity_begin_);
  writer.PutI64(entity_end_);
  writer.PutF32Array(sliced.data(), sliced.size());
  return writer.TakeBuffer();
}

std::vector<uint8_t> ReplicaWorker::HandleTopK(WireReader* reader) {
  uint64_t k = 0;
  Status status = reader->GetU64(&k);
  if (!status.ok()) return EncodeError(status);
  std::vector<ServeQuery> queries;
  status = ReadQueries(reader, &queries);
  if (!status.ok()) return EncodeError(status);
  Tensor scores = active_->ScoreBatch(queries);
  const std::vector<float>& data = scores.data();
  const int64_t num_entities = model_->dataset().num_entities();
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kTopKAck));
  writer.PutI64(active_->time());
  writer.PutU64(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* row = data.data() + static_cast<int64_t>(i) * num_entities;
    std::vector<RankedEntity> top =
        TopKSoftmaxRange(row, num_entities, entity_begin_, entity_end_,
                         static_cast<int64_t>(k));
    writer.PutU64(top.size());
    for (const RankedEntity& e : top) {
      writer.PutI64(e.index);
      writer.PutF32(e.logit);
      writer.PutF32(e.prob);
    }
  }
  return writer.TakeBuffer();
}

std::vector<uint8_t> ReplicaWorker::HandleAdvancePrepare(WireReader* reader) {
  std::vector<Quadruple> facts;
  Status status = reader->GetQuadruples(&facts);
  if (!status.ok()) return EncodeError(status);
  for (const Quadruple& q : facts) {
    if (q.time != active_->time()) {
      return EncodeError(Status::InvalidArgument(
          "advance fact at t=" + std::to_string(q.time) +
          " does not match the active horizon t=" +
          std::to_string(active_->time())));
    }
  }
  staged_ = active_->Advance(std::move(facts));
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kAdvancePrepareAck));
  writer.PutI64(staged_->time());
  return writer.TakeBuffer();
}

std::vector<uint8_t> ReplicaWorker::HandleAdvanceCommit() {
  if (staged_ == nullptr) {
    return EncodeError(
        Status::FailedPrecondition("commit without a prepared snapshot"));
  }
  active_ = std::move(staged_);
  staged_.reset();
  AdvancesCounter()->Increment();
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kAdvanceCommitAck));
  writer.PutI64(active_->time());
  return writer.TakeBuffer();
}

Status ReplicaWorker::StartBackground() {
  LOGCL_RETURN_IF_ERROR(Start());
  serve_thread_ = std::thread([this] { serve_status_ = Serve(); });
  return Status::Ok();
}

Status ReplicaWorker::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_.Close();
  return serve_status_;
}

}  // namespace dist
}  // namespace logcl
