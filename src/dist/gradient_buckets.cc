#include "dist/gradient_buckets.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace logcl {
namespace dist {

GradientBuckets::GradientBuckets(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    total_elems_ += static_cast<int64_t>(p.data().size());
  }
  flat_.resize(static_cast<size_t>(total_elems_), 0.0f);
  num_buckets_ =
      static_cast<int>((total_elems_ + kBucketElems - 1) / kBucketElems);
}

float* GradientBuckets::bucket_data(int b) {
  LOGCL_CHECK_GE(b, 0);
  LOGCL_CHECK_LT(b, num_buckets_);
  return flat_.data() + static_cast<int64_t>(b) * kBucketElems;
}

int64_t GradientBuckets::bucket_elems(int b) const {
  LOGCL_CHECK_GE(b, 0);
  LOGCL_CHECK_LT(b, num_buckets_);
  int64_t begin = static_cast<int64_t>(b) * kBucketElems;
  return std::min<int64_t>(kBucketElems, total_elems_ - begin);
}

void GradientBuckets::GatherGrads() {
  float* out = flat_.data();
  for (Tensor& p : parameters_) {
    const std::vector<float>& g = p.grad();  // force-allocates zeroed grad
    std::memcpy(out, g.data(), g.size() * sizeof(float));
    out += g.size();
  }
}

void GradientBuckets::ScatterGrads(float scale) {
  const float* in = flat_.data();
  for (Tensor& p : parameters_) {
    std::vector<float>& g = p.mutable_grad();
    for (size_t i = 0; i < g.size(); ++i) g[i] = in[i] * scale;
    in += g.size();
  }
}

void GradientBuckets::GatherData() {
  float* out = flat_.data();
  for (Tensor& p : parameters_) {
    const std::vector<float>& d = p.data();
    std::memcpy(out, d.data(), d.size() * sizeof(float));
    out += d.size();
  }
}

void GradientBuckets::ScatterData() {
  const float* in = flat_.data();
  for (Tensor& p : parameters_) {
    std::vector<float>& d = p.mutable_data();
    std::memcpy(d.data(), in, d.size() * sizeof(float));
    in += d.size();
  }
}

void GradientBuckets::CopyFrom(const GradientBuckets& other) {
  LOGCL_CHECK_EQ(total_elems_, other.total_elems_);
  flat_ = other.flat_;
}

void GradientBuckets::AccumulateFrom(const GradientBuckets& other) {
  LOGCL_CHECK_EQ(total_elems_, other.total_elems_);
  const float* src = other.flat_.data();
  // incoming + own, matching ProcessGroup::RecvReduceChunked's operand
  // order (commutative bitwise either way).
  for (int64_t i = 0; i < total_elems_; ++i) {
    flat_[static_cast<size_t>(i)] =
        src[i] + flat_[static_cast<size_t>(i)];
  }
}

void GradientBuckets::Zero() {
  std::fill(flat_.begin(), flat_.end(), 0.0f);
}

}  // namespace dist
}  // namespace logcl
