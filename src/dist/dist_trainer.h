// Data-parallel training over a ProcessGroup, with a bitwise parity
// guarantee against single-process training.
//
// Per training timestamp t (the same walk LogClModel::TrainEpoch does):
//   1. shard the timestamp's facts round-robin across ranks (fact i goes to
//      rank i % world) — every rank computes the same shards, no
//      coordination needed;
//   2. optimizer->ZeroGrad(), then ForwardBackwardOnFacts on this rank's
//      shard (an empty shard contributes zero gradients but still
//      participates in the collective);
//   3. flatten gradients into ~1MB GradientBuckets, AllReduceSum each
//      bucket, scatter back scaled by 1/world;
//   4. one shared ClipGradNorm + Adam Step — identical gradients in, so
//      every rank's parameters stay bitwise identical forever (assuming
//      identical initial parameters; see broadcast_parameters).
//
// Why this is bitwise-reproducible by a single process: AllReduceSum
// accumulates in ascending rank order (see process_group.h), so the summed
// gradient equals a left-fold over the per-rank gradients. The only other
// cross-rank divergence is RNG consumption — dropout draws depend on the
// shard's batch size — so DataParallelSimulator replays the run with one
// virtual RNG stream per rank. A W-process epoch and a
// DataParallelSimulator(W) epoch on identically-initialised models produce
// bitwise-identical parameters, at any intra-op thread count (the tensor
// kernels are thread-count-invariant by repo-wide contract). This is the
// oracle tests/dist_trainer_test.cc and the multi-process launcher enforce.
//
// Epoch loss statistics are averaged across ranks at epoch end (one extra
// small allreduce) so every rank reports fleet-wide means; these are
// informational, not part of the bitwise contract.
//
// Observability: logcl.dist.train_epochs counter, logcl.dist.grad_sync_us
// histogram (time per timestamp spent in gather + allreduce + scatter).

#ifndef LOGCL_DIST_DIST_TRAINER_H_
#define LOGCL_DIST_DIST_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/logcl_model.h"
#include "dist/gradient_buckets.h"
#include "dist/process_group.h"
#include "tensor/optimizer.h"

namespace logcl {
namespace dist {

struct DistributedTrainerOptions {
  /// Broadcast rank 0's parameters to all ranks before the first epoch, so
  /// ranks need not rely on seed-identical initialisation.
  bool broadcast_parameters = true;
};

class DistributedTrainer {
 public:
  /// `group`, `model` and `optimizer` must outlive the trainer. The
  /// optimizer must hold exactly the model's trainable parameters (the
  /// usual AdamOptimizer(model->Parameters()) construction).
  DistributedTrainer(ProcessGroup* group, LogClModel* model,
                     AdamOptimizer* optimizer,
                     DistributedTrainerOptions options = {});

  /// One data-parallel pass over the training split. On success every
  /// rank's parameters are bitwise identical. A socket failure on any
  /// collective aborts the epoch with that Status (parameters may then
  /// differ across ranks; re-broadcast before resuming).
  Result<EpochStats> TrainEpoch();

  /// Round-robin shard of `facts` for `rank` (fact i -> rank i % world).
  static std::vector<Quadruple> ShardForRank(
      const std::vector<Quadruple>& facts, int rank, int world);

 private:
  Status BroadcastParameters();

  ProcessGroup* group_;
  LogClModel* model_;
  AdamOptimizer* optimizer_;
  DistributedTrainerOptions options_;
  GradientBuckets buckets_;
  bool broadcast_pending_;
};

/// Single-process bitwise replay of a W-rank DistributedTrainer run on one
/// model: maintains W virtual RNG streams (all cloned from the model's
/// stream at construction, exactly like W seed-identical processes),
/// computes each virtual rank's shard gradient with its own stream, folds
/// the per-rank gradient buckets together in ascending rank order, and
/// applies the same scaled clip + step. Used as the parity oracle in tests
/// and as the reference for EXPERIMENTS.md throughput comparisons.
class DataParallelSimulator {
 public:
  DataParallelSimulator(LogClModel* model, AdamOptimizer* optimizer,
                        int world);

  /// One simulated data-parallel epoch; parameters end bitwise identical to
  /// a real W-rank epoch from the same starting state.
  EpochStats TrainEpoch();

 private:
  LogClModel* model_;
  AdamOptimizer* optimizer_;
  int world_;
  std::vector<Rng> streams_;
  GradientBuckets acc_;      // running rank-order fold
  GradientBuckets partial_;  // current virtual rank's gradients
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_DIST_TRAINER_H_
