#include "dist/process_group.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/observability.h"
#include "dist/wire.h"

namespace logcl {
namespace dist {
namespace {

Counter* CollectivesCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.collectives");
  return c;
}
Histogram* AllReduceUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.allreduce_us");
  return h;
}
Histogram* BroadcastUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.broadcast_us");
  return h;
}
Histogram* AllGatherUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.allgather_us");
  return h;
}
Histogram* RendezvousUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.rendezvous_us");
  return h;
}

/// RAII microsecond recorder for collective latencies.
class ScopedUs {
 public:
  explicit ScopedUs(Histogram* hist) : hist_(hist), start_(MonotonicNowNs()) {}
  ~ScopedUs() { hist_->Record((MonotonicNowNs() - start_) / 1000); }

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// Mesh listener address for `rank`, derived from the master address so
/// unix-socket groups stay unix and TCP groups stay TCP (always port 0 —
/// the chosen port travels through the rendezvous address book).
std::string MeshListenAddress(const ProcessGroupOptions& options) {
  if (options.master.rfind("unix:", 0) == 0) {
    return options.master + ".r" + std::to_string(options.rank);
  }
  return options.advertise_host + ":0";
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

}  // namespace

ProcessGroupOptions ProcessGroupOptions::FromEnv() {
  ProcessGroupOptions options;
  options.rank = static_cast<int>(EnvInt("LOGCL_DIST_RANK", 0));
  options.world_size = static_cast<int>(EnvInt("LOGCL_DIST_WORLD", 1));
  const char* master = std::getenv("LOGCL_DIST_MASTER");
  if (master != nullptr) options.master = master;
  return options;
}

ProcessGroup::ProcessGroup(ProcessGroupOptions options)
    : options_(std::move(options)),
      connections_(static_cast<size_t>(options_.world_size)),
      scratch_(static_cast<size_t>(kChunkElems)) {}

Result<std::unique_ptr<ProcessGroup>> ProcessGroup::Rendezvous(
    ProcessGroupOptions options) {
  if (options.world_size < 1) {
    return Status::InvalidArgument("world_size must be >= 1");
  }
  if (options.rank < 0 || options.rank >= options.world_size) {
    return Status::InvalidArgument(
        "rank " + std::to_string(options.rank) + " outside world of " +
        std::to_string(options.world_size));
  }
  uint64_t start_ns = MonotonicNowNs();
  std::unique_ptr<ProcessGroup> group(new ProcessGroup(options));
  if (options.world_size == 1) return group;  // no sockets needed
  if (options.master.empty()) {
    return Status::InvalidArgument("world_size > 1 requires a master address");
  }
  const int rank = options.rank;
  const int world = options.world_size;

  // 1. Everyone opens their mesh listener first (port 0 / derived unix
  //    path), so by the time addresses circulate the listener exists.
  Result<Listener> mesh_listener = Listener::Open(MeshListenAddress(options));
  if (!mesh_listener.ok()) return mesh_listener.status();
  Listener mesh = std::move(mesh_listener).value();

  // 2. Rank 0 gathers {rank, mesh address} from every peer over the master
  //    listener and answers each with the full address book.
  std::vector<std::string> book(static_cast<size_t>(world));
  book[static_cast<size_t>(rank)] = mesh.bound_address();
  if (rank == 0) {
    Listener master;
    if (options.master_listener != nullptr &&
        options.master_listener->valid()) {
      master = std::move(*options.master_listener);
    } else {
      Result<Listener> opened = Listener::Open(options.master);
      if (!opened.ok()) return opened.status();
      master = std::move(opened).value();
    }
    std::vector<Connection> peers;
    std::vector<int> peer_ranks;
    for (int i = 1; i < world; ++i) {
      Result<Connection> accepted = master.Accept(options.connect_timeout_ms);
      if (!accepted.ok()) return accepted.status();
      Connection conn = std::move(accepted).value();
      conn.set_io_timeout_ms(options.io_timeout_ms);
      std::vector<uint8_t> hello;
      LOGCL_RETURN_IF_ERROR(conn.RecvFrame(&hello));
      WireReader reader(hello);
      uint32_t peer_rank = 0;
      std::string peer_addr;
      LOGCL_RETURN_IF_ERROR(reader.GetU32(&peer_rank));
      LOGCL_RETURN_IF_ERROR(reader.GetString(&peer_addr));
      if (peer_rank == 0 || peer_rank >= static_cast<uint32_t>(world) ||
          !book[peer_rank].empty()) {
        return Status::InvalidArgument("rendezvous: bad or duplicate rank " +
                                       std::to_string(peer_rank));
      }
      book[peer_rank] = peer_addr;
      peers.push_back(std::move(conn));
      peer_ranks.push_back(static_cast<int>(peer_rank));
    }
    WireWriter writer;
    writer.PutU32(static_cast<uint32_t>(world));
    for (const std::string& addr : book) writer.PutString(addr);
    for (Connection& peer : peers) {
      LOGCL_RETURN_IF_ERROR(peer.SendFrame(writer.buffer()));
    }
  } else {
    Result<Connection> master =
        Connection::Connect(options.master, options.connect_timeout_ms);
    if (!master.ok()) return master.status();
    Connection conn = std::move(master).value();
    conn.set_io_timeout_ms(options.connect_timeout_ms);
    WireWriter hello;
    hello.PutU32(static_cast<uint32_t>(rank));
    hello.PutString(mesh.bound_address());
    LOGCL_RETURN_IF_ERROR(conn.SendFrame(hello.buffer()));
    std::vector<uint8_t> reply;
    LOGCL_RETURN_IF_ERROR(conn.RecvFrame(&reply));
    WireReader reader(reply);
    uint32_t reply_world = 0;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&reply_world));
    if (reply_world != static_cast<uint32_t>(world)) {
      return Status::InvalidArgument(
          "rendezvous world mismatch: master says " +
          std::to_string(reply_world) + ", this rank was configured with " +
          std::to_string(world));
    }
    for (int r = 0; r < world; ++r) {
      LOGCL_RETURN_IF_ERROR(reader.GetString(&book[static_cast<size_t>(r)]));
    }
  }

  // 3. Full mesh: connect to every lower rank, accept from every higher
  //    one; a one-frame hello identifies the dialer.
  for (int p = 0; p < rank; ++p) {
    Result<Connection> dialed = Connection::Connect(
        book[static_cast<size_t>(p)], options.connect_timeout_ms);
    if (!dialed.ok()) return dialed.status();
    Connection conn = std::move(dialed).value();
    conn.set_io_timeout_ms(options.io_timeout_ms);
    WireWriter hello;
    hello.PutU32(static_cast<uint32_t>(rank));
    LOGCL_RETURN_IF_ERROR(conn.SendFrame(hello.buffer()));
    group->connections_[static_cast<size_t>(p)] = std::move(conn);
  }
  for (int i = rank + 1; i < world; ++i) {
    Result<Connection> accepted = mesh.Accept(options.connect_timeout_ms);
    if (!accepted.ok()) return accepted.status();
    Connection conn = std::move(accepted).value();
    conn.set_io_timeout_ms(options.io_timeout_ms);
    std::vector<uint8_t> hello;
    LOGCL_RETURN_IF_ERROR(conn.RecvFrame(&hello));
    WireReader reader(hello);
    uint32_t peer_rank = 0;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&peer_rank));
    if (peer_rank <= static_cast<uint32_t>(rank) ||
        peer_rank >= static_cast<uint32_t>(world) ||
        group->connections_[peer_rank].valid()) {
      return Status::InvalidArgument("mesh hello from unexpected rank " +
                                     std::to_string(peer_rank));
    }
    group->connections_[peer_rank] = std::move(conn);
  }
  RendezvousUsHist()->Record((MonotonicNowNs() - start_ns) / 1000);
  return group;
}

Connection& ProcessGroup::Peer(int peer_rank) {
  LOGCL_CHECK_GE(peer_rank, 0);
  LOGCL_CHECK_LT(peer_rank, options_.world_size);
  LOGCL_CHECK(peer_rank != options_.rank);
  Connection& conn = connections_[static_cast<size_t>(peer_rank)];
  LOGCL_CHECK(conn.valid()) << "no mesh connection to rank " << peer_rank;
  return conn;
}

Status ProcessGroup::SendChunked(Connection& conn, const float* data,
                                 int64_t count) {
  for (int64_t begin = 0; begin < count; begin += kChunkElems) {
    int64_t n = std::min<int64_t>(kChunkElems, count - begin);
    LOGCL_RETURN_IF_ERROR(conn.WriteAll(
        data + begin, static_cast<size_t>(n) * sizeof(float)));
  }
  return Status::Ok();
}

Status ProcessGroup::RecvChunked(Connection& conn, float* data,
                                 int64_t count) {
  for (int64_t begin = 0; begin < count; begin += kChunkElems) {
    int64_t n = std::min<int64_t>(kChunkElems, count - begin);
    LOGCL_RETURN_IF_ERROR(conn.ReadAll(
        data + begin, static_cast<size_t>(n) * sizeof(float)));
  }
  return Status::Ok();
}

Status ProcessGroup::RecvReduceChunked(Connection& conn, float* data,
                                       int64_t count) {
  for (int64_t begin = 0; begin < count; begin += kChunkElems) {
    int64_t n = std::min<int64_t>(kChunkElems, count - begin);
    LOGCL_RETURN_IF_ERROR(
        conn.ReadAll(scratch_.data(), static_cast<size_t>(n) * sizeof(float)));
    float* own = data + begin;
    const float* incoming = scratch_.data();
    // incoming holds the running sum of all lower ranks; adding own keeps
    // the global accumulation in ascending rank order (float addition is
    // commutative bitwise, so incoming + own == own + incoming).
    for (int64_t i = 0; i < n; ++i) own[i] = incoming[i] + own[i];
  }
  return Status::Ok();
}

Status ProcessGroup::AllReduceSum(float* data, int64_t count) {
  if (count < 0) return Status::InvalidArgument("negative element count");
  const int world = options_.world_size;
  const int rank = options_.rank;
  if (world == 1 || count == 0) return Status::Ok();
  ScopedUs timer(AllReduceUsHist());
  CollectivesCounter()->Increment();

  // Reduce pass: partial sums flow 0 -> 1 -> ... -> W-1 (rank-order
  // accumulation; see header).
  if (rank == 0) {
    LOGCL_RETURN_IF_ERROR(SendChunked(Peer(1), data, count));
  } else {
    LOGCL_RETURN_IF_ERROR(RecvReduceChunked(Peer(rank - 1), data, count));
    if (rank != world - 1) {
      LOGCL_RETURN_IF_ERROR(SendChunked(Peer(rank + 1), data, count));
    }
  }

  // Broadcast pass: the fully reduced buffer flows W-1 -> 0 -> ... -> W-2.
  if (rank == world - 1) {
    LOGCL_RETURN_IF_ERROR(SendChunked(Peer(0), data, count));
  } else {
    LOGCL_RETURN_IF_ERROR(RecvChunked(Peer((rank + world - 1) % world), data,
                                      count));
    if (rank != world - 2) {
      LOGCL_RETURN_IF_ERROR(SendChunked(Peer(rank + 1), data, count));
    }
  }
  return Status::Ok();
}

Status ProcessGroup::Broadcast(float* data, int64_t count, int root) {
  if (root < 0 || root >= options_.world_size) {
    return Status::InvalidArgument("broadcast root " + std::to_string(root) +
                                   " outside the world");
  }
  const int world = options_.world_size;
  if (world == 1 || count == 0) return Status::Ok();
  ScopedUs timer(BroadcastUsHist());
  CollectivesCounter()->Increment();
  if (options_.rank == root) {
    for (int p = 0; p < world; ++p) {
      if (p == root) continue;
      LOGCL_RETURN_IF_ERROR(SendChunked(Peer(p), data, count));
    }
    return Status::Ok();
  }
  return RecvChunked(Peer(root), data, count);
}

Status ProcessGroup::AllGather(const float* input, int64_t count,
                               float* output) {
  const int world = options_.world_size;
  const int rank = options_.rank;
  if (count < 0) return Status::InvalidArgument("negative element count");
  std::copy(input, input + count,
            output + static_cast<int64_t>(rank) * count);
  if (world == 1 || count == 0) return Status::Ok();
  ScopedUs timer(AllGatherUsHist());
  CollectivesCounter()->Increment();
  // Classic ring allgather: at step s every rank forwards the block it
  // received at step s-1 (its own at s=0). Even ranks send first, odd ranks
  // receive first — on a ring of blocking sockets this parity break makes
  // every transfer's completion chain terminate at a receive-first rank, so
  // no buffer-size assumption is needed for deadlock freedom.
  Connection& next = Peer((rank + 1) % world);
  Connection& prev = Peer((rank + world - 1) % world);
  for (int s = 0; s < world - 1; ++s) {
    int64_t send_block = (rank - s + world) % world;
    int64_t recv_block = (rank - s - 1 + world) % world;
    float* send_ptr = output + send_block * count;
    float* recv_ptr = output + recv_block * count;
    if (rank % 2 == 0) {
      LOGCL_RETURN_IF_ERROR(SendChunked(next, send_ptr, count));
      LOGCL_RETURN_IF_ERROR(RecvChunked(prev, recv_ptr, count));
    } else {
      LOGCL_RETURN_IF_ERROR(RecvChunked(prev, recv_ptr, count));
      LOGCL_RETURN_IF_ERROR(SendChunked(next, send_ptr, count));
    }
  }
  return Status::Ok();
}

Status ProcessGroup::Barrier() {
  const int world = options_.world_size;
  const int rank = options_.rank;
  if (world == 1) return Status::Ok();
  CollectivesCounter()->Increment();
  uint8_t token = 0xB7;
  if (rank == 0) {
    // Gather one token from every rank (ascending), then release everyone.
    for (int p = 1; p < world; ++p) {
      uint8_t t = 0;
      LOGCL_RETURN_IF_ERROR(Peer(p).ReadAll(&t, 1));
    }
    for (int p = 1; p < world; ++p) {
      LOGCL_RETURN_IF_ERROR(Peer(p).WriteAll(&token, 1));
    }
    return Status::Ok();
  }
  LOGCL_RETURN_IF_ERROR(Peer(0).WriteAll(&token, 1));
  uint8_t release = 0;
  return Peer(0).ReadAll(&release, 1);
}

}  // namespace dist
}  // namespace logcl
