// ProcessGroup: a fixed set of `world_size` ranks connected over the socket
// transport, with deterministic collectives for data-parallel training.
//
// Rendezvous (rank-0 bootstrap):
//   1. every rank opens its own mesh listener (TCP port 0 or a unix path
//      derived from the master path), so nothing ever races on a busy port;
//   2. ranks 1..W-1 connect to rank 0's master address and send
//      {rank, mesh_address}; rank 0 gathers all W entries and replies with
//      the full address book;
//   3. each rank connects to every lower rank's mesh listener and accepts
//      one connection from every higher rank, yielding a full mesh of
//      W*(W-1)/2 connections identified by a hello frame.
//
// Collectives and the determinism contract:
//   - AllReduceSum uses a chunk-pipelined ring: chunks of kChunkElems floats
//     flow rank 0 -> 1 -> ... -> W-1, each hop adding its own contribution,
//     then the fully reduced chunks flow back W-1 -> 0 -> ... -> W-2. Every
//     element is therefore accumulated in ASCENDING RANK ORDER
//     (((x0 + x1) + x2) + ...), independent of chunking and timing — the
//     result is bitwise identical run-to-run, across thread counts, and to
//     a single process that sums the same per-rank buffers in rank order
//     (DistributedTrainer's parity oracle relies on exactly this).
//   - Broadcast sends root's buffer to every peer directly (chunked).
//   - AllGather runs the classic W-1-step ring; neighbours alternate
//     send-first/recv-first by rank parity so the ring of blocking sockets
//     can never deadlock, whatever the kernel buffer sizes.
//   - Barrier is a star over rank 0 (gather tokens, broadcast release).
//
// Every blocking operation inherits the transport deadline, so a dropped or
// wedged peer surfaces as a Status within io_timeout_ms instead of hanging
// the fleet. ProcessGroup is not thread-safe: one collective at a time.
//
// Observability: logcl.dist.allreduce_us / broadcast_us / allgather_us
// histograms, logcl.dist.collectives counter, logcl.dist.rendezvous_us
// histogram (DESIGN.md §16).

#ifndef LOGCL_DIST_PROCESS_GROUP_H_
#define LOGCL_DIST_PROCESS_GROUP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"

namespace logcl {
namespace dist {

struct ProcessGroupOptions {
  int rank = 0;
  int world_size = 1;
  /// Rank 0's rendezvous address ("host:port" or "unix:<path>"); ignored
  /// for world_size == 1.
  std::string master;
  /// Host peers use to reach this rank's TCP mesh listener (loopback by
  /// default; set to the rank's reachable address on multi-host setups).
  std::string advertise_host = "127.0.0.1";
  /// Budget for the whole rendezvous (listen + connect-with-retry + mesh).
  int64_t connect_timeout_ms = 10000;
  /// Deadline applied to every blocking collective send/recv.
  int64_t io_timeout_ms = kDefaultIoTimeoutMs;
  /// Rank 0 only: a pre-opened master listener (moved from), so tests can
  /// bind port 0 first and distribute the chosen port. When absent, rank 0
  /// opens `master` itself.
  Listener* master_listener = nullptr;

  /// Reads LOGCL_DIST_RANK, LOGCL_DIST_WORLD and LOGCL_DIST_MASTER (the
  /// launcher contract; see README "Distributed").
  static ProcessGroupOptions FromEnv();
};

class ProcessGroup {
 public:
  /// Fixed chunk size (floats) for all chunked collectives. Part of the
  /// determinism contract: never derived from world size or data length.
  static constexpr int64_t kChunkElems = 64 * 1024;

  /// Forms the group; blocks until all ranks are connected or the timeout
  /// expires. world_size == 1 needs no master and opens no sockets.
  static Result<std::unique_ptr<ProcessGroup>> Rendezvous(
      ProcessGroupOptions options);

  int rank() const { return options_.rank; }
  int world_size() const { return options_.world_size; }

  /// In-place elementwise sum over all ranks, accumulated in ascending rank
  /// order (see file comment); every rank ends with identical bytes.
  Status AllReduceSum(float* data, int64_t count);

  /// Copies `data` on `root` into every rank's buffer.
  Status Broadcast(float* data, int64_t count, int root);

  /// Concatenates every rank's `input` (count floats each) into `output`
  /// (world_size * count floats, rank-major).
  Status AllGather(const float* input, int64_t count, float* output);

  /// Blocks until every rank has arrived.
  Status Barrier();

 private:
  explicit ProcessGroup(ProcessGroupOptions options);

  Connection& Peer(int peer_rank);
  Status SendChunked(Connection& conn, const float* data, int64_t count);
  Status RecvChunked(Connection& conn, float* data, int64_t count);
  /// Receives `count` floats and adds them elementwise into `data`
  /// (incoming + own per element, chunk-by-chunk).
  Status RecvReduceChunked(Connection& conn, float* data, int64_t count);

  ProcessGroupOptions options_;
  // connections_[r] is the mesh connection to rank r (invalid at r == rank).
  std::vector<Connection> connections_;
  std::vector<float> scratch_;  // chunk reduction buffer
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_PROCESS_GROUP_H_
