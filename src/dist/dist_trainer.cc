#include "dist/dist_trainer.h"

#include <utility>

#include "common/observability.h"

namespace logcl {
namespace dist {
namespace {

Counter* TrainEpochsCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.train_epochs");
  return c;
}
Histogram* GradSyncUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.grad_sync_us");
  return h;
}

/// The informational per-epoch means that get averaged across ranks.
constexpr int kStatsFloats = 9;

void PackStats(const EpochStats& epoch, float* out) {
  out[0] = static_cast<float>(epoch.loss);
  out[1] = static_cast<float>(epoch.loss_task);
  out[2] = static_cast<float>(epoch.loss_contrast);
  out[3] = static_cast<float>(epoch.loss_lg);
  out[4] = static_cast<float>(epoch.loss_gl);
  out[5] = static_cast<float>(epoch.loss_ll);
  out[6] = static_cast<float>(epoch.loss_gg);
  out[7] = static_cast<float>(epoch.loss_aux);
  out[8] = static_cast<float>(epoch.grad_norm);
}

void UnpackStats(const float* in, double inv_world, EpochStats* epoch) {
  epoch->loss = in[0] * inv_world;
  epoch->loss_task = in[1] * inv_world;
  epoch->loss_contrast = in[2] * inv_world;
  epoch->loss_lg = in[3] * inv_world;
  epoch->loss_gl = in[4] * inv_world;
  epoch->loss_ll = in[5] * inv_world;
  epoch->loss_gg = in[6] * inv_world;
  epoch->loss_aux = in[7] * inv_world;
  epoch->grad_norm = in[8] * inv_world;
}

}  // namespace

DistributedTrainer::DistributedTrainer(ProcessGroup* group, LogClModel* model,
                                       AdamOptimizer* optimizer,
                                       DistributedTrainerOptions options)
    : group_(group),
      model_(model),
      optimizer_(optimizer),
      options_(options),
      buckets_(optimizer->parameters()),
      broadcast_pending_(options.broadcast_parameters) {}

std::vector<Quadruple> DistributedTrainer::ShardForRank(
    const std::vector<Quadruple>& facts, int rank, int world) {
  std::vector<Quadruple> shard;
  shard.reserve((facts.size() + static_cast<size_t>(world) - 1) /
                static_cast<size_t>(world));
  for (size_t i = static_cast<size_t>(rank); i < facts.size();
       i += static_cast<size_t>(world)) {
    shard.push_back(facts[i]);
  }
  return shard;
}

Status DistributedTrainer::BroadcastParameters() {
  buckets_.GatherData();
  for (int b = 0; b < buckets_.num_buckets(); ++b) {
    LOGCL_RETURN_IF_ERROR(group_->Broadcast(buckets_.bucket_data(b),
                                            buckets_.bucket_elems(b),
                                            /*root=*/0));
  }
  buckets_.ScatterData();
  return Status::Ok();
}

Result<EpochStats> DistributedTrainer::TrainEpoch() {
  if (broadcast_pending_) {
    LOGCL_RETURN_IF_ERROR(BroadcastParameters());
    broadcast_pending_ = false;
  }
  uint64_t epoch_start = MonotonicNowNs();
  const int world = group_->world_size();
  const float inv_world = 1.0f / static_cast<float>(world);
  EpochStats epoch;
  for (int64_t t : model_->dataset().SplitTimestamps(Split::kTrain)) {
    if (t == 0) continue;  // no history yet (same skip as TrainEpoch)
    const std::vector<Quadruple>& facts = model_->dataset().FactsAt(t);
    EpochStats step;
    step.steps = 1;
    if (facts.empty()) {  // no collective: single-process skips the step too
      epoch.AccumulateStep(step);
      continue;
    }
    std::vector<Quadruple> shard =
        ShardForRank(facts, group_->rank(), world);
    optimizer_->ZeroGrad();
    if (!shard.empty()) {
      step = model_->ForwardBackwardOnFacts(shard, t);
    }
    uint64_t sync_start = MonotonicNowNs();
    buckets_.GatherGrads();
    for (int b = 0; b < buckets_.num_buckets(); ++b) {
      LOGCL_RETURN_IF_ERROR(group_->AllReduceSum(buckets_.bucket_data(b),
                                                 buckets_.bucket_elems(b)));
    }
    buckets_.ScatterGrads(inv_world);
    GradSyncUsHist()->Record((MonotonicNowNs() - sync_start) / 1000);
    step.grad_norm =
        optimizer_->ClipGradNorm(model_->config().grad_clip_norm);
    optimizer_->Step();
    epoch.AccumulateStep(step);
  }
  epoch.FinalizeMeans();
  epoch.seconds_total =
      static_cast<double>(MonotonicNowNs() - epoch_start) * 1e-9;
  if (world > 1) {
    // Fleet-wide means for reporting; parameters are already identical.
    float stats[kStatsFloats];
    PackStats(epoch, stats);
    LOGCL_RETURN_IF_ERROR(group_->AllReduceSum(stats, kStatsFloats));
    UnpackStats(stats, 1.0 / world, &epoch);
  }
  TrainEpochsCounter()->Increment();
  return epoch;
}

DataParallelSimulator::DataParallelSimulator(LogClModel* model,
                                             AdamOptimizer* optimizer,
                                             int world)
    : model_(model),
      optimizer_(optimizer),
      world_(world),
      streams_(static_cast<size_t>(world), model->rng_state()),
      acc_(optimizer->parameters()),
      partial_(optimizer->parameters()) {}

EpochStats DataParallelSimulator::TrainEpoch() {
  uint64_t epoch_start = MonotonicNowNs();
  const double inv_world = 1.0 / static_cast<double>(world_);
  EpochStats epoch;
  for (int64_t t : model_->dataset().SplitTimestamps(Split::kTrain)) {
    if (t == 0) continue;
    const std::vector<Quadruple>& facts = model_->dataset().FactsAt(t);
    EpochStats step;
    step.steps = 1;
    if (facts.empty()) {
      epoch.AccumulateStep(step);
      continue;
    }
    for (int r = 0; r < world_; ++r) {
      std::vector<Quadruple> shard =
          DistributedTrainer::ShardForRank(facts, r, world_);
      model_->set_rng_state(streams_[static_cast<size_t>(r)]);
      optimizer_->ZeroGrad();
      EpochStats rank_step;
      if (!shard.empty()) {
        rank_step = model_->ForwardBackwardOnFacts(shard, t);
      }
      streams_[static_cast<size_t>(r)] = model_->rng_state();
      partial_.GatherGrads();
      if (r == 0) {
        acc_.CopyFrom(partial_);
      } else {
        acc_.AccumulateFrom(partial_);
      }
      step.loss += rank_step.loss * inv_world;
      step.loss_task += rank_step.loss_task * inv_world;
      step.loss_contrast += rank_step.loss_contrast * inv_world;
      step.loss_lg += rank_step.loss_lg * inv_world;
      step.loss_gl += rank_step.loss_gl * inv_world;
      step.loss_ll += rank_step.loss_ll * inv_world;
      step.loss_gg += rank_step.loss_gg * inv_world;
      step.loss_aux += rank_step.loss_aux * inv_world;
    }
    acc_.ScatterGrads(1.0f / static_cast<float>(world_));
    step.grad_norm =
        optimizer_->ClipGradNorm(model_->config().grad_clip_norm);
    optimizer_->Step();
    epoch.AccumulateStep(step);
  }
  epoch.FinalizeMeans();
  epoch.seconds_total =
      static_cast<double>(MonotonicNowNs() - epoch_start) * 1e-9;
  return epoch;
}

}  // namespace dist
}  // namespace logcl
