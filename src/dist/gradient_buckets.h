// GradientBuckets: a flat, bucketed staging buffer between a parameter set
// and the collectives. Parameters are flattened in optimizer order into one
// contiguous float buffer, then carved into fixed ~1MB buckets so each
// AllReduceSum call pipelines well over the socket transport without ever
// framing the whole model at once.
//
// The flat layout is part of the distributed determinism story: every rank
// (and the single-process simulator) flattens the same parameter list in the
// same order, so elementwise bucket sums correspond exactly to elementwise
// per-parameter gradient sums.

#ifndef LOGCL_DIST_GRADIENT_BUCKETS_H_
#define LOGCL_DIST_GRADIENT_BUCKETS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace logcl {
namespace dist {

class GradientBuckets {
 public:
  /// Fixed bucket size: 256k floats = 1MB. Like ProcessGroup::kChunkElems
  /// this is never derived from runtime state — bucket boundaries are
  /// identical on every rank.
  static constexpr int64_t kBucketElems = 256 * 1024;

  /// `parameters` are held as handles (shared storage with the optimizer);
  /// sizes are fixed at construction.
  explicit GradientBuckets(std::vector<Tensor> parameters);

  int num_buckets() const { return num_buckets_; }
  int64_t total_elems() const { return total_elems_; }

  /// Bucket `b` as a span of the flat buffer.
  float* bucket_data(int b);
  int64_t bucket_elems(int b) const;

  /// Copies every parameter's gradient into the flat buffer.
  void GatherGrads();
  /// Writes the flat buffer back into every parameter's gradient,
  /// multiplying each element by `scale` (1/world for gradient averaging).
  void ScatterGrads(float scale);

  /// Same transfers for parameter *values* — the startup Broadcast that
  /// aligns every rank with rank 0's initialisation.
  void GatherData();
  void ScatterData();

  /// flat = other.flat, byte-exact (a fold seeded with zeros would turn
  /// -0.0 gradients into +0.0; the ring never adds a synthetic zero, so the
  /// simulator's fold must start from a copy of rank 0's buckets).
  void CopyFrom(const GradientBuckets& other);
  /// flat[i] += other.flat[i] — the simulator's rank-order accumulation
  /// (bitwise the operand order ProcessGroup::AllReduceSum uses, because
  /// float addition is commutative bitwise).
  void AccumulateFrom(const GradientBuckets& other);
  void Zero();

  const std::vector<float>& flat() const { return flat_; }

 private:
  std::vector<Tensor> parameters_;
  std::vector<float> flat_;
  int64_t total_elems_ = 0;
  int num_buckets_ = 0;
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_GRADIENT_BUCKETS_H_
