// ServingRouter: the client-facing front of a ReplicaWorker fleet.
//
// Connect() performs a kHello handshake with every worker and classifies
// the fleet:
//   - replicated: every worker serves the full entity space. Requests are
//     load-balanced round-robin across workers (all replicas are
//     bitwise-identical snapshots, so placement never changes answers).
//   - entity-sharded: the workers' [entity_begin, entity_end) ranges
//     exactly partition [0, num_entities). Every request fans out to every
//     worker; score rows are stitched from the column slices and top-k
//     lists are merged by (logit desc, id asc) — precisely TopKPartial's
//     order, so the merged top-k equals a single-snapshot PredictTopK
//     oracle element-for-element (see eval/ranking.h TopKSoftmaxRange).
// Mixed fleets (some full, some partial) are rejected, as are horizon or
// entity-count disagreements.
//
// Coordinated Advance (the no-mixed-horizon invariant): Advance() first
// sends kAdvancePrepare to every worker — active snapshots keep serving the
// old horizon while successors build — then takes the horizon gate
// exclusively and commits every worker before releasing it. Requests hold
// the gate shared for their whole fan-out, so any concurrent request
// completes entirely before the first commit or starts entirely after the
// last one: a response never mixes horizons, and the per-ack horizon echo
// is asserted to prove it. Requests running during the PREPARE phase simply
// serve the old horizon — prepare never blocks reads.
//
// Thread-safety: all public methods are safe to call concurrently; each
// worker connection is serialised by its own mutex, so concurrent requests
// to a sharded fleet pipeline across workers rather than in parallel to the
// same worker.

#ifndef LOGCL_DIST_SERVING_ROUTER_H_
#define LOGCL_DIST_SERVING_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "eval/ranking.h"
#include "serve/engine_snapshot.h"
#include "tkg/quadruple.h"

namespace logcl {
namespace dist {

/// A writer-preferring reader/writer gate (std::shared_mutex on glibc maps
/// to a reader-preferring pthread rwlock, which starves Advance's commit
/// phase forever under a steady stream of request fan-outs). A waiting
/// writer blocks NEW readers, drains the in-flight ones, commits, then
/// releases everyone — exactly the no-mixed-horizon gate semantics. Usable
/// with std::shared_lock / std::unique_lock.
class HorizonGate {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }
  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    cv_.wait(lock, [&] { return readers_ == 0 && !writer_active_; });
    --writers_waiting_;
    writer_active_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> lock(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

class ServingRouter {
 public:
  /// Handshakes with every worker address and validates fleet consistency
  /// (see file comment). `io_timeout_ms` bounds every per-request socket
  /// operation.
  static Result<std::unique_ptr<ServingRouter>> Connect(
      const std::vector<std::string>& addresses,
      int64_t io_timeout_ms = kDefaultIoTimeoutMs);

  /// Scores each query against every entity at the fleet horizon; row i is
  /// bitwise identical to EngineSnapshot::ScoreBatch row i on one replica
  /// (sharded fleets stitch the full row from the shard slices).
  Result<std::vector<std::vector<float>>> ScoreQueries(
      const std::vector<ServeQuery>& queries);

  /// Top-k (entity, softmax probability) for one query, element-for-element
  /// equal to TopKSoftmax over the full score row.
  Result<std::vector<std::pair<int64_t, float>>> PredictTopK(
      const ServeQuery& query, int64_t k);

  /// Two-phase coordinated horizon move: prepare all, then commit all under
  /// the exclusive horizon gate. `new_facts` must all carry the current
  /// horizon time. On success horizon() advances by one everywhere; a
  /// failure between commits leaves the fleet mixed — the Status says so
  /// and the router refuses further requests.
  Status Advance(std::vector<Quadruple> new_facts);

  /// Sends kShutdown to every worker (their serve loops exit).
  Status Shutdown();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  bool sharded() const { return sharded_; }
  int64_t num_entities() const { return num_entities_; }
  int64_t horizon() const { return horizon_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    Connection conn;
    std::mutex mu;  // serialises frames on this connection
    std::string address;
    int64_t entity_begin = 0;
    int64_t entity_end = 0;
  };

  ServingRouter() = default;

  /// One locked request/response exchange with a worker; kError responses
  /// come back as the decoded Status. On success `response` holds the
  /// payload and `reader_offset` positions past the type word.
  Status Call(Worker* worker, const std::vector<uint8_t>& request,
              uint32_t expected_type, std::vector<uint8_t>* response);

  std::vector<std::unique_ptr<Worker>> workers_;
  bool sharded_ = false;
  int64_t num_entities_ = 0;
  std::atomic<int64_t> horizon_{0};
  std::atomic<uint64_t> round_robin_{0};
  // The no-mixed-horizon gate: shared for request fan-outs, exclusive
  // across the commit phase of Advance.
  HorizonGate horizon_mu_;
  // Serialises whole Advance calls (prepare must not interleave).
  std::mutex advance_mu_;
  // Set when a partial commit may have left workers on different horizons.
  std::atomic<bool> poisoned_{false};
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_SERVING_ROUTER_H_
