// Socket transport for the distributed tier: a thin, Status-based wrapper
// over TCP and Unix-domain stream sockets with length-prefixed framing.
//
// Design notes:
//  - Addresses are strings: "unix:<path>" selects an AF_UNIX stream socket,
//    anything else is parsed as "<host>:<port>" over TCP (numeric IPv4
//    addresses plus the literal "localhost"; the distributed tier targets
//    loopback and rack-local deployments, not DNS).
//  - Port 0 requests kernel auto-assignment; Listener::bound_address()
//    advertises the chosen port so tests and rendezvous never race on a
//    fixed port (and never flake on a busy one).
//  - Every blocking operation (connect, accept, read, write) runs under a
//    poll(2) deadline and returns Status instead of hanging: a dropped peer
//    surfaces as kIoError within io_timeout_ms. Reads and writes restart on
//    EINTR and resume after partial transfers; writes use MSG_NOSIGNAL so a
//    closed peer is an error, not a SIGPIPE.
//  - Framing: SendFrame prefixes the payload with a little-endian u64
//    length; RecvFrame reads exactly one frame. Frames above kMaxFrameBytes
//    are rejected (corrupt-stream guard). Raw ReadAll/WriteAll are exposed
//    for bulk float payloads (collectives) that manage their own headers.
//  - Observability: bytes and frames in/out feed the process-wide registry
//    as logcl.dist.bytes_{sent,received} / logcl.dist.frames_{sent,received}
//    (DESIGN.md §16).
//
// Connection and Listener are move-only owners of their file descriptor.
// Neither is thread-safe: callers serialise access per object (the router
// guards each replica connection with its own mutex; ProcessGroup uses each
// mesh connection from one collective at a time).

#ifndef LOGCL_DIST_TRANSPORT_H_
#define LOGCL_DIST_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace logcl {
namespace dist {

/// Upper bound on a single frame's payload (guards against a corrupted or
/// misaligned length prefix); bulk tensors are chunked well below this.
inline constexpr uint64_t kMaxFrameBytes = 1ull << 31;

/// Default deadline for blocking socket operations (overridable per object).
inline constexpr int64_t kDefaultIoTimeoutMs = 30000;

/// True when `status` is a blocking operation's deadline expiring (as
/// opposed to a peer drop or protocol error). Serve loops use this to treat
/// a short read/accept timeout as an idle poll tick rather than a failure.
bool IsTimeout(const Status& status);

/// One endpoint of an established stream connection (move-only fd owner).
class Connection {
 public:
  Connection() = default;
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connects to "unix:<path>" or "<host>:<port>", retrying refused /
  /// not-yet-bound attempts until `timeout_ms` elapses (rendezvous peers may
  /// start before the master listens).
  static Result<Connection> Connect(const std::string& address,
                                    int64_t timeout_ms = kDefaultIoTimeoutMs);

  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor; subsequent I/O returns kFailedPrecondition.
  void Close();

  /// Deadline applied to each subsequent blocking read/write.
  void set_io_timeout_ms(int64_t ms) { io_timeout_ms_ = ms; }
  int64_t io_timeout_ms() const { return io_timeout_ms_; }

  /// Writes exactly `len` bytes (EINTR/partial-write aware, poll deadline).
  Status WriteAll(const void* data, size_t len);
  /// Reads exactly `len` bytes; a peer close mid-message is kIoError.
  Status ReadAll(void* data, size_t len);

  /// Writes one length-prefixed frame.
  Status SendFrame(const void* data, size_t len);
  Status SendFrame(const std::vector<uint8_t>& payload) {
    return SendFrame(payload.data(), payload.size());
  }
  /// Reads one frame into `payload` (resized to the frame length).
  Status RecvFrame(std::vector<uint8_t>* payload);

 private:
  friend class Listener;
  explicit Connection(int fd);

  int fd_ = -1;
  int64_t io_timeout_ms_ = kDefaultIoTimeoutMs;
};

/// A bound, listening server socket (move-only fd owner).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on "unix:<path>" (any existing socket file at that
  /// path is unlinked first) or "<host>:<port>" (port 0 = auto-assign).
  static Result<Listener> Open(const std::string& address);

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// The address peers should connect to; for TCP with port 0 this carries
  /// the kernel-chosen port.
  const std::string& bound_address() const { return bound_address_; }

  /// Accepts one connection within `timeout_ms`.
  Result<Connection> Accept(int64_t timeout_ms = kDefaultIoTimeoutMs);

 private:
  int fd_ = -1;
  std::string bound_address_;
  // Unix-socket path owned by this listener, unlinked on Close.
  std::string unix_path_;
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_TRANSPORT_H_
