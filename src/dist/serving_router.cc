#include "dist/serving_router.h"

#include <algorithm>

#include "common/observability.h"
#include "dist/protocol.h"
#include "dist/wire.h"

namespace logcl {
namespace dist {
namespace {

Counter* RouterRequestsCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.router_requests");
  return c;
}
Histogram* RouterRequestUsHist() {
  static Histogram* h = Metrics().GetHistogram("logcl.dist.router_request_us");
  return h;
}
Counter* RouterAdvancesCounter() {
  static Counter* c = Metrics().GetCounter("logcl.dist.router_advances");
  return c;
}

std::vector<uint8_t> EncodeScoreBatch(const std::vector<ServeQuery>& queries) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kScoreBatch));
  writer.PutU64(queries.size());
  for (const ServeQuery& q : queries) {
    writer.PutI64(q.subject);
    writer.PutI64(q.relation);
  }
  return writer.TakeBuffer();
}

std::vector<uint8_t> EncodeTopK(const ServeQuery& query, int64_t k) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kTopK));
  writer.PutU64(static_cast<uint64_t>(k));
  writer.PutU64(1);
  writer.PutI64(query.subject);
  writer.PutI64(query.relation);
  return writer.TakeBuffer();
}

std::vector<uint8_t> EncodeEmpty(MsgType type) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(type));
  return writer.TakeBuffer();
}

/// Parses one kTopKAck body (reader past the type word) into `entries`.
Status ParseTopKAck(WireReader* reader, int64_t* horizon,
                    std::vector<RankedEntity>* entries) {
  LOGCL_RETURN_IF_ERROR(reader->GetI64(horizon));
  uint64_t batch = 0;
  LOGCL_RETURN_IF_ERROR(reader->GetU64(&batch));
  if (batch != 1) {
    return Status::Internal("top-k ack batch " + std::to_string(batch) +
                            ", expected 1");
  }
  uint64_t count = 0;
  LOGCL_RETURN_IF_ERROR(reader->GetU64(&count));
  if (count > (1u << 24)) return Status::Internal("oversized top-k ack");
  for (uint64_t i = 0; i < count; ++i) {
    RankedEntity e;
    LOGCL_RETURN_IF_ERROR(reader->GetI64(&e.index));
    LOGCL_RETURN_IF_ERROR(reader->GetF32(&e.logit));
    LOGCL_RETURN_IF_ERROR(reader->GetF32(&e.prob));
    entries->push_back(e);
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<ServingRouter>> ServingRouter::Connect(
    const std::vector<std::string>& addresses, int64_t io_timeout_ms) {
  if (addresses.empty()) {
    return Status::InvalidArgument("router needs at least one worker");
  }
  std::unique_ptr<ServingRouter> router(new ServingRouter());
  int64_t horizon = 0;
  for (const std::string& address : addresses) {
    Result<Connection> connected =
        Connection::Connect(address, io_timeout_ms);
    if (!connected.ok()) return connected.status();
    auto worker = std::make_unique<Worker>();
    worker->conn = std::move(connected).value();
    worker->conn.set_io_timeout_ms(io_timeout_ms);
    worker->address = address;
    std::vector<uint8_t> response;
    LOGCL_RETURN_IF_ERROR(router->Call(
        worker.get(), EncodeEmpty(MsgType::kHello),
        static_cast<uint32_t>(MsgType::kHelloAck), &response));
    WireReader reader(response);
    uint32_t type = 0;
    int64_t worker_horizon = 0, worker_entities = 0;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&type));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&worker->entity_begin));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&worker->entity_end));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&worker_horizon));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&worker_entities));
    if (router->workers_.empty()) {
      horizon = worker_horizon;
      router->num_entities_ = worker_entities;
    } else if (worker_horizon != horizon) {
      return Status::FailedPrecondition(
          "worker " + address + " serves horizon " +
          std::to_string(worker_horizon) + ", fleet is at " +
          std::to_string(horizon));
    } else if (worker_entities != router->num_entities_) {
      return Status::FailedPrecondition("worker " + address +
                                        " disagrees on entity count");
    }
    router->workers_.push_back(std::move(worker));
  }
  router->horizon_.store(horizon, std::memory_order_relaxed);

  // Classify the fleet: all-full (replicated) or an exact partition
  // (entity-sharded). Fan-out iterates in entity order, so sort shards.
  bool all_full = true;
  for (const auto& w : router->workers_) {
    all_full = all_full &&
               (w->entity_begin == 0 && w->entity_end == router->num_entities_);
  }
  router->sharded_ = !all_full;
  if (router->sharded_) {
    std::sort(router->workers_.begin(), router->workers_.end(),
              [](const std::unique_ptr<Worker>& a,
                 const std::unique_ptr<Worker>& b) {
                return a->entity_begin < b->entity_begin;
              });
    int64_t expected = 0;
    for (const auto& w : router->workers_) {
      if (w->entity_begin != expected) {
        return Status::FailedPrecondition(
            "worker entity ranges do not partition the entity space: gap or "
            "overlap at id " +
            std::to_string(expected));
      }
      expected = w->entity_end;
    }
    if (expected != router->num_entities_) {
      return Status::FailedPrecondition(
          "worker entity ranges stop at " + std::to_string(expected) +
          " of " + std::to_string(router->num_entities_) + " entities");
    }
  }
  return router;
}

Status ServingRouter::Call(Worker* worker,
                           const std::vector<uint8_t>& request,
                           uint32_t expected_type,
                           std::vector<uint8_t>* response) {
  std::lock_guard<std::mutex> lock(worker->mu);
  LOGCL_RETURN_IF_ERROR(worker->conn.SendFrame(request));
  LOGCL_RETURN_IF_ERROR(worker->conn.RecvFrame(response));
  WireReader reader(*response);
  uint32_t type = 0;
  LOGCL_RETURN_IF_ERROR(reader.GetU32(&type));
  if (static_cast<MsgType>(type) == MsgType::kError) {
    Status decoded = DecodeError(&reader);
    return Status(decoded.code(),
                  "worker " + worker->address + ": " + decoded.message());
  }
  if (type != expected_type) {
    return Status::Internal("worker " + worker->address +
                            " answered type " + std::to_string(type) +
                            ", expected " + std::to_string(expected_type));
  }
  return Status::Ok();
}

Result<std::vector<std::vector<float>>> ServingRouter::ScoreQueries(
    const std::vector<ServeQuery>& queries) {
  if (poisoned_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "fleet horizons may be mixed after a failed Advance");
  }
  std::vector<std::vector<float>> rows(
      queries.size(), std::vector<float>(static_cast<size_t>(num_entities_)));
  if (queries.empty()) return rows;
  uint64_t start_ns = MonotonicNowNs();
  RouterRequestsCounter()->Increment();
  std::vector<uint8_t> request = EncodeScoreBatch(queries);
  std::shared_lock<HorizonGate> gate(horizon_mu_);
  const int64_t fleet_horizon = horizon_.load(std::memory_order_relaxed);
  auto fetch = [&](Worker* worker) -> Status {
    std::vector<uint8_t> response;
    LOGCL_RETURN_IF_ERROR(
        Call(worker, request,
             static_cast<uint32_t>(MsgType::kScoreBatchAck), &response));
    WireReader reader(response);
    uint32_t type = 0;
    int64_t horizon = 0, begin = 0, end = 0;
    std::vector<float> slice;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&type));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&horizon));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&begin));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&end));
    LOGCL_RETURN_IF_ERROR(reader.GetF32Array(&slice));
    if (horizon != fleet_horizon) {
      return Status::Internal(
          "worker " + worker->address + " answered at horizon " +
          std::to_string(horizon) + " inside a fan-out at " +
          std::to_string(fleet_horizon) + " (mixed-horizon invariant broken)");
    }
    const int64_t width = end - begin;
    if (begin != worker->entity_begin || end != worker->entity_end ||
        slice.size() != queries.size() * static_cast<size_t>(width)) {
      return Status::Internal("worker " + worker->address +
                              " answered a malformed score slice");
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      std::copy(slice.data() + static_cast<int64_t>(i) * width,
                slice.data() + static_cast<int64_t>(i + 1) * width,
                rows[i].data() + begin);
    }
    return Status::Ok();
  };
  if (sharded_) {
    for (const auto& worker : workers_) {
      LOGCL_RETURN_IF_ERROR(fetch(worker.get()));
    }
  } else {
    size_t pick = round_robin_.fetch_add(1, std::memory_order_relaxed) %
                  workers_.size();
    LOGCL_RETURN_IF_ERROR(fetch(workers_[pick].get()));
  }
  RouterRequestUsHist()->Record((MonotonicNowNs() - start_ns) / 1000);
  return rows;
}

Result<std::vector<std::pair<int64_t, float>>> ServingRouter::PredictTopK(
    const ServeQuery& query, int64_t k) {
  if (poisoned_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "fleet horizons may be mixed after a failed Advance");
  }
  if (k <= 0) return std::vector<std::pair<int64_t, float>>{};
  uint64_t start_ns = MonotonicNowNs();
  RouterRequestsCounter()->Increment();
  std::vector<uint8_t> request = EncodeTopK(query, k);
  std::shared_lock<HorizonGate> gate(horizon_mu_);
  const int64_t fleet_horizon = horizon_.load(std::memory_order_relaxed);
  std::vector<RankedEntity> merged;
  auto fetch = [&](Worker* worker) -> Status {
    std::vector<uint8_t> response;
    LOGCL_RETURN_IF_ERROR(Call(worker, request,
                               static_cast<uint32_t>(MsgType::kTopKAck),
                               &response));
    WireReader reader(response);
    uint32_t type = 0;
    int64_t horizon = 0;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&type));
    LOGCL_RETURN_IF_ERROR(ParseTopKAck(&reader, &horizon, &merged));
    if (horizon != fleet_horizon) {
      return Status::Internal(
          "worker " + worker->address + " answered at horizon " +
          std::to_string(horizon) + " inside a fan-out at " +
          std::to_string(fleet_horizon) + " (mixed-horizon invariant broken)");
    }
    return Status::Ok();
  };
  if (sharded_) {
    for (const auto& worker : workers_) {
      LOGCL_RETURN_IF_ERROR(fetch(worker.get()));
    }
    // Merge shard candidates exactly as TopKPartial orders a full row:
    // logit descending, id ascending on ties.
    std::sort(merged.begin(), merged.end(),
              [](const RankedEntity& a, const RankedEntity& b) {
                if (a.logit != b.logit) return a.logit > b.logit;
                return a.index < b.index;
              });
  } else {
    size_t pick = round_robin_.fetch_add(1, std::memory_order_relaxed) %
                  workers_.size();
    LOGCL_RETURN_IF_ERROR(fetch(workers_[pick].get()));
  }
  if (static_cast<int64_t>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  std::vector<std::pair<int64_t, float>> result;
  result.reserve(merged.size());
  for (const RankedEntity& e : merged) result.emplace_back(e.index, e.prob);
  RouterRequestUsHist()->Record((MonotonicNowNs() - start_ns) / 1000);
  return result;
}

Status ServingRouter::Advance(std::vector<Quadruple> new_facts) {
  std::lock_guard<std::mutex> advance_lock(advance_mu_);
  if (poisoned_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "fleet horizons may be mixed after a failed Advance");
  }
  const int64_t fleet_horizon = horizon_.load(std::memory_order_relaxed);
  for (const Quadruple& q : new_facts) {
    if (q.time != fleet_horizon) {
      return Status::InvalidArgument(
          "advance fact at t=" + std::to_string(q.time) +
          " does not match the fleet horizon t=" +
          std::to_string(fleet_horizon));
    }
  }
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(MsgType::kAdvancePrepare));
  writer.PutQuadruples(new_facts);
  std::vector<uint8_t> prepare = writer.TakeBuffer();

  // Phase 1 — prepare everywhere. Reads keep flowing at the old horizon;
  // no gate is held, so a slow snapshot build never blocks serving.
  for (const auto& worker : workers_) {
    std::vector<uint8_t> response;
    LOGCL_RETURN_IF_ERROR(
        Call(worker.get(), prepare,
             static_cast<uint32_t>(MsgType::kAdvancePrepareAck), &response));
    WireReader reader(response);
    uint32_t type = 0;
    int64_t staged = 0;
    LOGCL_RETURN_IF_ERROR(reader.GetU32(&type));
    LOGCL_RETURN_IF_ERROR(reader.GetI64(&staged));
    if (staged != fleet_horizon + 1) {
      return Status::Internal("worker " + worker->address + " staged t=" +
                              std::to_string(staged) + ", expected t=" +
                              std::to_string(fleet_horizon + 1));
    }
  }

  // Phase 2 — commit everywhere under the exclusive gate: no request can
  // fan out between the first and last swap.
  std::unique_lock<HorizonGate> gate(horizon_mu_);
  std::vector<uint8_t> commit = EncodeEmpty(MsgType::kAdvanceCommit);
  for (size_t i = 0; i < workers_.size(); ++i) {
    std::vector<uint8_t> response;
    Status status =
        Call(workers_[i].get(), commit,
             static_cast<uint32_t>(MsgType::kAdvanceCommitAck), &response);
    if (!status.ok()) {
      if (i > 0) poisoned_.store(true, std::memory_order_relaxed);
      return Status(status.code(),
                    "commit phase failed after " + std::to_string(i) + "/" +
                        std::to_string(workers_.size()) + " workers: " +
                        status.message());
    }
  }
  horizon_.store(fleet_horizon + 1, std::memory_order_relaxed);
  RouterAdvancesCounter()->Increment();
  return Status::Ok();
}

Status ServingRouter::Shutdown() {
  Status first_error = Status::Ok();
  std::vector<uint8_t> request = EncodeEmpty(MsgType::kShutdown);
  for (const auto& worker : workers_) {
    std::vector<uint8_t> response;
    Status status = Call(worker.get(), request,
                         static_cast<uint32_t>(MsgType::kShutdownAck),
                         &response);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

}  // namespace dist
}  // namespace logcl
