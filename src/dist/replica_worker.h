// ReplicaWorker: hosts one EngineSnapshot behind the socket transport and
// answers the serving RPCs of dist/protocol.h.
//
// Each worker freezes the full model at the configured horizon (replicas
// are bitwise-identical by the snapshot determinism contract) and serves
// either the whole entity space or a configured id range [entity_begin,
// entity_end) — entity sharding slices the RESPONSE, not the computation:
// scores come from the full [B, E] batch row, so sharded probabilities and
// logits are bitwise identical to the unsharded ones and a router can merge
// shard top-ks exactly (eval/ranking.h TopKSoftmaxRange).
//
// Advance is two-phase so a fleet can move horizons atomically:
// kAdvancePrepare builds the successor snapshot off to the side (requests
// keep answering on the active one), kAdvanceCommit swaps it in. The
// ServingRouter drives prepare on every replica before committing any,
// holding its horizon gate exclusively across the commits — clients never
// observe a mixed-horizon fan-out (serving_router.h).
//
// The serve loop is single-threaded: one connection at a time, one frame at
// a time (the router serialises its frames per connection anyway). A frame
// handler failure answers kError and keeps serving; a dropped client falls
// back to accept. Stop() (or a kShutdown frame) ends the loop within one
// ~250ms poll tick.

#ifndef LOGCL_DIST_REPLICA_WORKER_H_
#define LOGCL_DIST_REPLICA_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "serve/engine_snapshot.h"

namespace logcl {
namespace dist {

struct ReplicaWorkerOptions {
  /// "host:port" (port 0 auto-assigns; see address()) or "unix:<path>".
  std::string listen_address = "127.0.0.1:0";
  /// Serving horizon the snapshot freezes at.
  int64_t horizon = 0;
  /// Entity id range this worker answers for; entity_end == -1 means the
  /// whole entity space (pure replication).
  int64_t entity_begin = 0;
  int64_t entity_end = -1;
  /// Scoring precision forwarded to EngineSnapshot::Build.
  ScorePrecision precision = ScorePrecision::kFp32;
};

class ReplicaWorker {
 public:
  /// `model` must outlive the worker, be in eval mode when configured with
  /// noise injection, and not train while the worker serves.
  ReplicaWorker(const LogClModel* model, ReplicaWorkerOptions options);
  ~ReplicaWorker();

  /// Builds the snapshot and opens the listener (single-threaded; do all
  /// Start()s before concurrent serving begins — snapshot builds may touch
  /// lazy dataset caches).
  Status Start();

  /// The bound listen address (with the kernel-chosen port when port 0 was
  /// requested). Valid after Start().
  const std::string& address() const { return address_; }

  int64_t entity_begin() const { return entity_begin_; }
  int64_t entity_end() const { return entity_end_; }

  /// Serves until Stop() or a kShutdown frame. Returns Ok on a clean
  /// shutdown; transport failures on the LISTENER surface as the error
  /// (per-connection failures just recycle the connection).
  Status Serve();

  /// Start() + a background thread running Serve().
  Status StartBackground();
  /// Ends a background Serve() and joins it; returns its Status.
  Status Stop();

 private:
  Status HandleConnection(Connection conn);
  /// Dispatches one request; returns the response payload (kError payloads
  /// included — only transport failures propagate as Status).
  std::vector<uint8_t> HandleRequest(const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandleScoreBatch(WireReader* reader);
  std::vector<uint8_t> HandleTopK(WireReader* reader);
  std::vector<uint8_t> HandleAdvancePrepare(WireReader* reader);
  std::vector<uint8_t> HandleAdvanceCommit();

  const LogClModel* model_;
  ReplicaWorkerOptions options_;
  int64_t entity_begin_ = 0;
  int64_t entity_end_ = 0;
  std::shared_ptr<const EngineSnapshot> active_;
  std::shared_ptr<const EngineSnapshot> staged_;
  Listener listener_;
  std::string address_;
  std::atomic<bool> stop_{false};
  std::thread serve_thread_;
  Status serve_status_;  // read after join only
};

}  // namespace dist
}  // namespace logcl

#endif  // LOGCL_DIST_REPLICA_WORKER_H_
