// Rank computation with the time-aware filtered protocol.

#ifndef LOGCL_EVAL_RANKING_H_
#define LOGCL_EVAL_RANKING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "eval/metrics.h"
#include "tkg/filters.h"

namespace logcl {

/// 1-based rank of `target` in `scores` (higher score = better). Entities in
/// `filter_out` other than the target are ignored (treated as removed from
/// the candidate list). `filter_out` must be sorted ascending (duplicates
/// allowed), as produced by TimeAwareFilter::Answers — this lets the hot
/// eval loop run without per-query hash-set allocations. Ties with the
/// target's score rank optimistically (only strictly greater scores count),
/// matching the reference implementations' sort-based ranking.
int64_t RankOfTarget(const std::vector<float>& scores, int64_t target,
                     const std::vector<int64_t>& filter_out);

/// Convenience: rank without any filtering (raw protocol).
int64_t RankOfTarget(const std::vector<float>& scores, int64_t target);

/// Indices of the top-k scores, descending (for the case study output).
std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k);

/// TopK over a raw score row via partial selection: an std::nth_element
/// partition followed by a sort of the selected block — O(n + k log k)
/// instead of partial_sort's O(n log k), and no per-element comparator churn
/// past the partition point. Ties break toward the lower index, exactly as
/// TopK, so the two agree element-for-element.
std::vector<int64_t> TopKPartial(const float* scores, int64_t n, int64_t k);

/// One (entity, softmax probability) pair per top-k logit WITHOUT
/// materialising the full softmax: one pass finds the max, one pass folds
/// the normaliser, and probabilities are evaluated only for the k selected
/// ids. The returned probabilities are bitwise identical to indexing a full
/// softmax over `logits` (same max-shift, same float exp, same accumulation
/// order of the double normaliser). Selection happens on the raw logits;
/// exp() is strictly increasing, so the selected set matches a full-softmax
/// TopK whenever probabilities that round to equal floats come from equal
/// logits (always true in practice).
std::vector<std::pair<int64_t, float>> TopKSoftmax(const float* logits,
                                                   int64_t n, int64_t k);

/// One shard's contribution to a distributed top-k: entity id, raw logit
/// and exact softmax probability.
struct RankedEntity {
  int64_t index = 0;
  float logit = 0.0f;
  float prob = 0.0f;
};

/// TopKSoftmax restricted to candidate ids in [begin, end), with the
/// normaliser still folded over the FULL row: probabilities are bitwise
/// identical to the same ids' entries in TopKSoftmax(logits, n, k). Used by
/// entity-sharded serving replicas (src/dist/serving_router.h): each worker
/// scores the full row, answers for its id range, and the router merges
/// shard lists by (logit desc, id asc) — the exact TopKPartial order — so
/// the merged top-k equals the single-row oracle element-for-element. At
/// most min(k, end - begin) entries are returned, ordered logit-descending.
std::vector<RankedEntity> TopKSoftmaxRange(const float* logits, int64_t n,
                                           int64_t begin, int64_t end,
                                           int64_t k);

/// Scores one batch of queries: for query i, the row `scores[i]` ranks all
/// entities; applies the time-aware filter and accumulates into `metrics`.
/// `queries` supplies (subject, relation, time, target-object).
struct ScoredQuery {
  int64_t subject = 0;
  int64_t relation = 0;
  int64_t time = 0;
  int64_t target = 0;
};

void AccumulateRanks(const std::vector<std::vector<float>>& scores,
                     const std::vector<ScoredQuery>& queries,
                     const TimeAwareFilter* filter,
                     MetricsAccumulator* metrics);

}  // namespace logcl

#endif  // LOGCL_EVAL_RANKING_H_
