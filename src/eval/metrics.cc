#include "eval/metrics.h"

#include "common/logging.h"
#include "common/stringpiece.h"

namespace logcl {

std::string EvalResult::ToString() const {
  return StrFormat("MRR=%.2f H@1=%.2f H@3=%.2f H@10=%.2f (n=%lld)", mrr, hits1,
                   hits3, hits10, static_cast<long long>(count));
}

void MetricsAccumulator::AddRank(int64_t rank) {
  LOGCL_CHECK_GE(rank, 1);
  reciprocal_sum_ += 1.0 / static_cast<double>(rank);
  if (rank <= 1) ++hits1_;
  if (rank <= 3) ++hits3_;
  if (rank <= 10) ++hits10_;
  ++count_;
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  reciprocal_sum_ += other.reciprocal_sum_;
  hits1_ += other.hits1_;
  hits3_ += other.hits3_;
  hits10_ += other.hits10_;
  count_ += other.count_;
}

EvalResult MetricsAccumulator::Result() const {
  EvalResult result;
  result.count = count_;
  if (count_ == 0) return result;
  double inv = 100.0 / static_cast<double>(count_);
  result.mrr = reciprocal_sum_ * inv;
  result.hits1 = static_cast<double>(hits1_) * inv;
  result.hits3 = static_cast<double>(hits3_) * inv;
  result.hits10 = static_cast<double>(hits10_) * inv;
  return result;
}

}  // namespace logcl
