// Drift / staleness evaluation for the streaming continual-learning tier.
//
// When facts for timestamp t arrive, a serving snapshot frozen at horizon t
// answers queries about t WITHOUT having seen t's facts — that gap is model
// staleness. After the session advances (history extended, weights
// fine-tuned, evolution window rotated), the same queries re-score against
// the fresh snapshot. The per-advance pair (stale MRR, fresh MRR) and its
// rolling window quantify how much accuracy the continual-learning loop buys
// back, and whether the model is drifting (both curves sagging together) or
// merely stale (fresh recovering what stale loses).

#ifndef LOGCL_EVAL_DRIFT_H_
#define LOGCL_EVAL_DRIFT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "tkg/quadruple.h"

namespace logcl {

/// Metrics of `facts` treated as object-prediction queries: row i of
/// `score_rows` ranks every entity for (facts[i].subject, facts[i].relation)
/// and the target is facts[i].object. Raw (unfiltered) protocol — drift
/// tracking compares the same batch against itself across horizons, so the
/// filter would cancel out.
EvalResult EvalScoredFacts(const std::vector<std::vector<float>>& score_rows,
                           const std::vector<Quadruple>& facts);

/// One advance's staleness measurement.
struct DriftPoint {
  int64_t time = 0;        // the horizon the facts arrived at
  double mrr_stale = 0.0;  // MRR (percent) before history/weights saw `time`
  double mrr_fresh = 0.0;  // MRR (percent) after advance + fine-tune
  int64_t count = 0;       // queries evaluated
};

/// Rolling window over per-advance DriftPoints. Means are query-weighted
/// (an advance contributing 3 queries should not outvote one with 300).
class DriftTracker {
 public:
  /// `window` = number of trailing advances the rolling means cover.
  explicit DriftTracker(int64_t window = 8);

  void Add(DriftPoint point);

  /// Rolling query-weighted means over the trailing window (percent).
  double rolling_stale_mrr() const;
  double rolling_fresh_mrr() const;
  /// fresh - stale: what the continual-learning advance recovered.
  double rolling_gap() const { return rolling_fresh_mrr() - rolling_stale_mrr(); }

  int64_t advances() const { return advances_; }
  const std::deque<DriftPoint>& window() const { return window_; }

  /// One-line rendering, e.g. for per-advance streaming logs.
  std::string ToString() const;

 private:
  int64_t capacity_;
  int64_t advances_ = 0;
  std::deque<DriftPoint> window_;
};

}  // namespace logcl

#endif  // LOGCL_EVAL_DRIFT_H_
