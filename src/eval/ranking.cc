#include "eval/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace logcl {

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target,
                     const std::vector<int64_t>& filter_out) {
  int64_t n = static_cast<int64_t>(scores.size());
  LOGCL_CHECK_GE(target, 0);
  LOGCL_CHECK_LT(target, n);
  float target_score = scores[static_cast<size_t>(target)];
  // Count strictly-greater scores over the full candidate list (the target
  // itself never compares greater), then walk the sorted filter list and
  // discount filtered entities that out-scored the target. This avoids the
  // per-query hash-set allocation of the naive version: O(V + F) time with
  // zero heap traffic.
  int64_t rank = 1;
  for (int64_t i = 0; i < n; ++i) {
    if (scores[static_cast<size_t>(i)] > target_score) ++rank;
  }
  int64_t prev = -1;
  for (int64_t f : filter_out) {
    if (f == target || f == prev) continue;  // skip target + adjacent dups
    prev = f;
    if (f < 0 || f >= n) continue;
    if (scores[static_cast<size_t>(f)] > target_score) --rank;
  }
  return rank;
}

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target) {
  return RankOfTarget(scores, target, {});
}

std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k) {
  std::vector<int64_t> indices(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) indices[i] = static_cast<int64_t>(i);
  k = std::min<int64_t>(k, static_cast<int64_t>(scores.size()));
  std::partial_sort(indices.begin(), indices.begin() + k, indices.end(),
                    [&scores](int64_t a, int64_t b) {
                      float sa = scores[static_cast<size_t>(a)];
                      float sb = scores[static_cast<size_t>(b)];
                      return sa != sb ? sa > sb : a < b;
                    });
  indices.resize(static_cast<size_t>(k));
  return indices;
}

std::vector<int64_t> TopKPartial(const float* scores, int64_t n, int64_t k) {
  LOGCL_CHECK(scores != nullptr || n == 0);
  k = std::min<int64_t>(k, n);
  if (k <= 0) return {};
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  auto better = [scores](int64_t a, int64_t b) {
    float sa = scores[a];
    float sb = scores[b];
    return sa != sb ? sa > sb : a < b;
  };
  std::nth_element(indices.begin(), indices.begin() + (k - 1), indices.end(),
                   better);
  indices.resize(static_cast<size_t>(k));
  std::sort(indices.begin(), indices.end(), better);
  return indices;
}

std::vector<std::pair<int64_t, float>> TopKSoftmax(const float* logits,
                                                   int64_t n, int64_t k) {
  std::vector<int64_t> top = TopKPartial(logits, n, k);
  if (top.empty()) return {};
  float max_logit = logits[top.front()];  // top-1 is the row max
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    // The float cast before accumulating matches what a materialised
    // softmax row would sum, keeping probabilities bitwise identical.
    float e = std::exp(logits[i] - max_logit);
    sum += e;
  }
  std::vector<std::pair<int64_t, float>> result;
  result.reserve(top.size());
  for (int64_t id : top) {
    float e = std::exp(logits[id] - max_logit);
    result.emplace_back(id, static_cast<float>(e / sum));
  }
  return result;
}

std::vector<RankedEntity> TopKSoftmaxRange(const float* logits, int64_t n,
                                           int64_t begin, int64_t end,
                                           int64_t k) {
  LOGCL_CHECK_GE(begin, 0);
  LOGCL_CHECK_LE(begin, end);
  LOGCL_CHECK_LE(end, n);
  if (begin == end || k <= 0 || n == 0) return {};
  // Select within the range (TopKPartial's lower-index tie-break carries
  // over: subtracting `begin` preserves index order).
  std::vector<int64_t> top = TopKPartial(logits + begin, end - begin, k);
  // Normalise against the FULL row, exactly as TopKSoftmax would: same row
  // max (a value, so any argmax agrees), same float exp, same
  // index-ordered double accumulation.
  float max_logit = logits[0];
  for (int64_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float e = std::exp(logits[i] - max_logit);
    sum += e;
  }
  std::vector<RankedEntity> result;
  result.reserve(top.size());
  for (int64_t local : top) {
    int64_t id = begin + local;
    float e = std::exp(logits[id] - max_logit);
    result.push_back(
        {id, logits[id], static_cast<float>(e / sum)});
  }
  return result;
}

void AccumulateRanks(const std::vector<std::vector<float>>& scores,
                     const std::vector<ScoredQuery>& queries,
                     const TimeAwareFilter* filter,
                     MetricsAccumulator* metrics) {
  LOGCL_CHECK_EQ(scores.size(), queries.size());
  LOGCL_CHECK(metrics != nullptr);
  int64_t n = static_cast<int64_t>(queries.size());
  // Query-parallel: each chunk ranks its queries into a private accumulator;
  // chunk accumulators merge in chunk order (thread-count invariant). The
  // filter index is immutable, so concurrent Answers() lookups are safe.
  MetricsAccumulator merged = ParallelReduce<MetricsAccumulator>(
      0, n, /*grain=*/8, MetricsAccumulator{},
      [&](int64_t q0, int64_t q1) {
        MetricsAccumulator local;
        for (int64_t i = q0; i < q1; ++i) {
          const ScoredQuery& q = queries[static_cast<size_t>(i)];
          if (filter != nullptr) {
            local.AddRank(RankOfTarget(
                scores[static_cast<size_t>(i)], q.target,
                filter->Answers(q.subject, q.relation, q.time)));
          } else {
            local.AddRank(RankOfTarget(scores[static_cast<size_t>(i)], q.target));
          }
        }
        return local;
      },
      [](MetricsAccumulator acc, MetricsAccumulator partial) {
        acc.Merge(partial);
        return acc;
      });
  metrics->Merge(merged);
}

}  // namespace logcl
