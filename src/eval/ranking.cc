#include "eval/ranking.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace logcl {

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target,
                     const std::vector<int64_t>& filter_out) {
  LOGCL_CHECK_GE(target, 0);
  LOGCL_CHECK_LT(target, static_cast<int64_t>(scores.size()));
  std::unordered_set<int64_t> removed(filter_out.begin(), filter_out.end());
  removed.erase(target);
  float target_score = scores[static_cast<size_t>(target)];
  int64_t rank = 1;
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    if (i == target) continue;
    if (removed.contains(i)) continue;
    if (scores[static_cast<size_t>(i)] > target_score) ++rank;
  }
  return rank;
}

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target) {
  return RankOfTarget(scores, target, {});
}

std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k) {
  std::vector<int64_t> indices(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) indices[i] = static_cast<int64_t>(i);
  k = std::min<int64_t>(k, static_cast<int64_t>(scores.size()));
  std::partial_sort(indices.begin(), indices.begin() + k, indices.end(),
                    [&scores](int64_t a, int64_t b) {
                      float sa = scores[static_cast<size_t>(a)];
                      float sb = scores[static_cast<size_t>(b)];
                      return sa != sb ? sa > sb : a < b;
                    });
  indices.resize(static_cast<size_t>(k));
  return indices;
}

void AccumulateRanks(const std::vector<std::vector<float>>& scores,
                     const std::vector<ScoredQuery>& queries,
                     const TimeAwareFilter* filter,
                     MetricsAccumulator* metrics) {
  LOGCL_CHECK_EQ(scores.size(), queries.size());
  LOGCL_CHECK(metrics != nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    const ScoredQuery& q = queries[i];
    if (filter != nullptr) {
      metrics->AddRank(RankOfTarget(
          scores[i], q.target, filter->Answers(q.subject, q.relation, q.time)));
    } else {
      metrics->AddRank(RankOfTarget(scores[i], q.target));
    }
  }
}

}  // namespace logcl
