#include "eval/drift.h"

#include <sstream>

#include "common/logging.h"
#include "eval/ranking.h"

namespace logcl {

EvalResult EvalScoredFacts(const std::vector<std::vector<float>>& score_rows,
                           const std::vector<Quadruple>& facts) {
  LOGCL_CHECK_EQ(score_rows.size(), facts.size());
  MetricsAccumulator metrics;
  for (size_t i = 0; i < facts.size(); ++i) {
    metrics.AddRank(RankOfTarget(score_rows[i], facts[i].object));
  }
  return metrics.Result();
}

DriftTracker::DriftTracker(int64_t window) : capacity_(window) {
  LOGCL_CHECK_GT(window, 0);
}

void DriftTracker::Add(DriftPoint point) {
  ++advances_;
  window_.push_back(point);
  while (static_cast<int64_t>(window_.size()) > capacity_) {
    window_.pop_front();
  }
}

namespace {
double WeightedMean(const std::deque<DriftPoint>& window,
                    double DriftPoint::*field) {
  double sum = 0.0;
  int64_t count = 0;
  for (const DriftPoint& p : window) {
    sum += p.*field * static_cast<double>(p.count);
    count += p.count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}
}  // namespace

double DriftTracker::rolling_stale_mrr() const {
  return WeightedMean(window_, &DriftPoint::mrr_stale);
}

double DriftTracker::rolling_fresh_mrr() const {
  return WeightedMean(window_, &DriftPoint::mrr_fresh);
}

std::string DriftTracker::ToString() const {
  std::ostringstream os;
  os << "drift[window=" << window_.size() << "] stale_mrr="
     << rolling_stale_mrr() << " fresh_mrr=" << rolling_fresh_mrr()
     << " gap=" << rolling_gap();
  return os.str();
}

}  // namespace logcl
