// Rank-based evaluation metrics: MRR and Hits@k.

#ifndef LOGCL_EVAL_METRICS_H_
#define LOGCL_EVAL_METRICS_H_

#include <cstdint>
#include <string>

namespace logcl {

/// Final metric values (percentages, as reported in the paper's tables).
struct EvalResult {
  double mrr = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
  int64_t count = 0;

  /// "MRR=48.87 H@1=37.76 H@3=54.71 H@10=70.26 (n=7371)"
  std::string ToString() const;
};

/// Streaming accumulator over 1-based ranks.
class MetricsAccumulator {
 public:
  /// Records one query's rank (1 = best).
  void AddRank(int64_t rank);

  /// Merges another accumulator (e.g. the two propagation phases).
  void Merge(const MetricsAccumulator& other);

  int64_t count() const { return count_; }

  /// Metric values in percent.
  EvalResult Result() const;

 private:
  double reciprocal_sum_ = 0.0;
  int64_t hits1_ = 0;
  int64_t hits3_ = 0;
  int64_t hits10_ = 0;
  int64_t count_ = 0;
};

}  // namespace logcl

#endif  // LOGCL_EVAL_METRICS_H_
