// Offline / online training-evaluation drivers shared by the experiment
// binaries.

#ifndef LOGCL_CORE_TRAINER_H_
#define LOGCL_CORE_TRAINER_H_

#include "core/tkg_model.h"

namespace logcl {

/// Offline protocol: train on the train split, report test metrics.
struct OfflineOptions {
  int64_t epochs = 8;
  float learning_rate = 1e-3f;
  bool verbose = false;
};

EvalResult TrainAndEvaluate(TkgModel* model, const TimeAwareFilter* filter,
                            OfflineOptions options = {},
                            QueryDirection direction = QueryDirection::kBoth);

/// Online protocol (Section IV.H, Fig.10): after the offline phase, each
/// test timestamp is scored first and then used to fine-tune the model, so
/// later timestamps benefit from emerging facts.
struct OnlineOptions {
  int64_t offline_epochs = 8;
  float learning_rate = 1e-3f;
  /// Learning rate for the per-timestamp online updates; fine-tuning on a
  /// single emerging snapshot wants a gentler step than offline training.
  /// 0 = reuse `learning_rate`.
  float online_learning_rate = 0.0f;
  int64_t updates_per_timestamp = 1;
  bool verbose = false;
};

EvalResult TrainAndEvaluateOnline(TkgModel* model,
                                  const TimeAwareFilter* filter,
                                  OnlineOptions options = {});

}  // namespace logcl

#endif  // LOGCL_CORE_TRAINER_H_
