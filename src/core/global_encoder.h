// Global entity-aware attention encoder (Section III.D).
//
// For a batch of queries at t_q it builds the *historical query subgraph*:
// the union of (1) one-hop historical facts containing each query subject
// and (2) one-hop historical facts containing each historical answer object
// of the query's (s, r) pair — a static multi-relational graph spanning all
// history before t_q. A second (stacked) R-GCN encodes it from the base
// embeddings (the subgraph carries no time information), and a
// query-conditioned gate selects the relevant part (Eq.13-14).

#ifndef LOGCL_CORE_GLOBAL_ENCODER_H_
#define LOGCL_CORE_GLOBAL_ENCODER_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/rel_graph_encoder.h"
#include "graph/snapshot_graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tkg/history_index.h"

namespace logcl {

struct GlobalEncoderOptions {
  GcnKind gcn_kind = GcnKind::kRgcn;
  int64_t num_layers = 2;
  float dropout = 0.2f;
  /// Fan-out cap per anchor entity when sampling the subgraph (most recent
  /// edges are kept); 0 disables the cap.
  int64_t max_edges_per_anchor = 16;
  /// Cap on historical answers expanded per query (first-seen order).
  int64_t max_answers_per_query = 6;
  /// Reuse QuerySubgraph results across epochs (the subgraph is a pure
  /// function of the immutable HistoryIndex and the query set, so training
  /// and eval rebuild identical graphs every epoch without it).
  bool cache_query_subgraphs = true;
};

class GlobalEncoder : public Module {
 public:
  GlobalEncoder(int64_t dim, GlobalEncoderOptions options, Rng* rng);

  /// Samples the historical query subgraph for `queries` at their time
  /// (all queries must share one timestamp). Edges are deduplicated
  /// (sort+unique on packed (s, r, o) keys; edge order is sorted, hence
  /// deterministic).
  SnapshotGraph BuildQuerySubgraph(const HistoryIndex& history,
                                   const std::vector<Quadruple>& queries,
                                   int64_t num_entities) const;

  /// BuildQuerySubgraph behind the cross-epoch cache (see
  /// options.cache_query_subgraphs). Results are keyed by the query
  /// timestamp and the distinct (subject, relation) pairs — the only inputs
  /// the subgraph depends on besides the HistoryIndex. The cache is cleared
  /// whenever a different HistoryIndex instance is presented, so entries
  /// never outlive their dataset.
  std::shared_ptr<const SnapshotGraph> QuerySubgraph(
      const HistoryIndex& history, const std::vector<Quadruple>& queries,
      int64_t num_entities) const;

  /// Message passing over the subgraph from the base embeddings; returns
  /// H_g^Agg [E, d].
  Tensor Encode(const SnapshotGraph& graph, const Tensor& base_entities,
                const Tensor& base_relations, bool training, Rng* rng) const;

  /// Eq.13-14: per-query gated global representation [B, d]. The paper's
  /// sigma_2 is a per-query scalar gate here (the softmax reading of Eq.13
  /// would normalise over nothing for a single static subgraph).
  ///
  /// The paper encodes one subgraph *per query*; this implementation
  /// encodes the batched union for tractability, so the per-query view is
  /// restored by pooling each query's own G'_g2 anchors (its historical
  /// answers) into the representation:
  ///   h_g = beta * (H^Agg[s] + mean_{o in answers(s, r, <t)} H^Agg[o]).
  /// With `use_attention` false, the gate is dropped (ablation -w/o-eatt).
  Tensor QueryRepresentations(const Tensor& encoded,
                              const Tensor& base_entities,
                              const std::vector<Quadruple>& queries,
                              const HistoryIndex& history,
                              bool use_attention) const;

  const GlobalEncoderOptions& options() const { return options_; }

  /// Drops the cross-epoch subgraph cache. Required after the presented
  /// HistoryIndex is mutated IN PLACE (e.g. LogClModel::ExtendHistory):
  /// the cache only self-invalidates when a different index instance
  /// appears, so in-place extension would otherwise serve stale subgraphs.
  void InvalidateSubgraphCache() const {
    subgraph_cache_.clear();
    cached_history_ = nullptr;
  }

 private:
  GlobalEncoderOptions options_;
  RelGraphEncoder aggregator_;
  Linear w_attention_;  // W6 of Eq.13 (d -> 1)

  // Cross-epoch subgraph cache (see QuerySubgraph). Key: query time plus
  // the sorted distinct (subject, relation) pairs. Mutable lazily built
  // state; not thread-safe (single training thread).
  using SubgraphKey =
      std::pair<int64_t, std::vector<std::pair<int64_t, int64_t>>>;
  mutable std::map<SubgraphKey, std::shared_ptr<const SnapshotGraph>>
      subgraph_cache_;
  mutable const HistoryIndex* cached_history_ = nullptr;
};

}  // namespace logcl

#endif  // LOGCL_CORE_GLOBAL_ENCODER_H_
