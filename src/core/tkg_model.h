// TkgModel: the interface every model in the zoo (LogCL + 14 baselines)
// implements, plus the shared evaluation protocol (per-timestamp batches,
// object prediction over original and inverse query sets, time-aware
// filtered ranking).

#ifndef LOGCL_CORE_TKG_MODEL_H_
#define LOGCL_CORE_TKG_MODEL_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "nn/module.h"
#include "tensor/optimizer.h"
#include "tensor/sparse_adam.h"
#include "tkg/dataset.h"
#include "tkg/filters.h"

namespace logcl {

/// Structured result of one training epoch (or one accumulated step).
/// `loss` is the scalar the old `double TrainEpoch` returned; the remaining
/// fields break it down by component and phase. Models fill what applies to
/// them (baselines leave the contrast terms zero); for every model
/// loss ≈ loss_task + loss_contrast + loss_aux within fp tolerance.
struct EpochStats {
  int64_t steps = 0;  // optimizer steps taken (timestamps visited)

  // Mean per-step loss components.
  double loss = 0.0;           // total objective (the old scalar)
  double loss_task = 0.0;      // cross-entropy L_tkg (Eq.20)
  double loss_contrast = 0.0;  // combined L_cl (Eq.17/21), mean of active
  double loss_aux = 0.0;       // model-specific extras (e.g. CENET term)
  // Raw (undivided) contrast terms of Eq.17: L_lg, L_gl, L_ll, L_gg.
  // loss_contrast is their mean over the *active* terms.
  double loss_lg = 0.0;
  double loss_gl = 0.0;
  double loss_ll = 0.0;
  double loss_gg = 0.0;

  /// Mean pre-clip global gradient norm (AdamOptimizer::ClipGradNorm).
  double grad_norm = 0.0;

  // Wall-time totals for the epoch, by phase. seconds_total covers the whole
  // epoch; the phase entries only the instrumented spans inside it.
  double seconds_total = 0.0;
  double seconds_local = 0.0;      // local evolution (Eq.2-11)
  double seconds_forward = 0.0;    // scoring + loss forward phases
  double seconds_backward = 0.0;   // autograd tape walk
  double seconds_optimizer = 0.0;  // clip + Adam step

  /// Adds one step's stats (losses accumulate as sums until FinalizeMeans).
  void AccumulateStep(const EpochStats& step);
  /// Divides the accumulated loss/grad-norm sums by `steps`.
  void FinalizeMeans();
  /// One-line human-readable summary (used by FitModel's verbose logging).
  std::string ToString() const;
};

/// Which query sets the evaluation (and two-phase training) covers.
enum class QueryDirection {
  kBoth,         // original + inverse query sets (standard protocol)
  kForwardOnly,  // Table VII "LogCL-FP"
  kInverseOnly,  // Table VII "LogCL-SP"
};

class TkgModel : public Module {
 public:
  explicit TkgModel(const TkgDataset* dataset);
  ~TkgModel() override = default;

  /// Short display name used in result tables.
  virtual std::string name() const = 0;

  /// Scores one batch of queries (all sharing one timestamp) against every
  /// entity. Rows align with `queries`; runs in eval mode (no grad).
  virtual std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) = 0;

  /// One pass over the training split; returns per-component losses,
  /// grad-norm and per-phase timings. `EpochStats::loss` is the mean total
  /// loss the pre-redesign `double TrainEpoch` returned.
  virtual EpochStats TrainEpoch(AdamOptimizer* optimizer) = 0;

  /// Deprecation shim for callers that only want the scalar mean loss.
  double TrainEpochLoss(AdamOptimizer* optimizer) {
    return TrainEpoch(optimizer).loss;
  }

  /// Online-learning hook (Section IV.H): one gradient update on the facts
  /// of timestamp `t` after it has been evaluated. Models that do not
  /// support online updates keep the default no-op.
  virtual double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
    (void)t;
    (void)optimizer;
    return 0.0;
  }

  /// Sparse-update variant of the online-learning hook: the same gradient
  /// update, but stepping only the parameter rows the batch's gradients
  /// touch (tensor/sparse_adam.h) — the streaming continual-learning entry.
  /// No gradient clipping runs on this path. Models that do not support
  /// sparse online updates keep the default no-op.
  virtual double TrainOnTimestampSparse(int64_t t,
                                        SparseAdamOptimizer* optimizer) {
    (void)t;
    (void)optimizer;
    return 0.0;
  }

  /// Standard evaluation: per timestamp of `split`, rank the object of each
  /// fact and (for kBoth) of each inverse fact. `filter` enables the
  /// time-aware filtered setting (nullptr = raw).
  EvalResult Evaluate(Split split, const TimeAwareFilter* filter,
                      QueryDirection direction = QueryDirection::kBoth);

  const TkgDataset& dataset() const { return *dataset_; }

 protected:
  const TkgDataset* dataset_;
};

/// Trains `model` for `epochs` epochs with Adam(learning_rate) and gradient
/// clipping, logging per-epoch loss when `verbose`.
void FitModel(TkgModel* model, int64_t epochs, float learning_rate,
              bool verbose = false);

}  // namespace logcl

#endif  // LOGCL_CORE_TKG_MODEL_H_
