// TkgModel: the interface every model in the zoo (LogCL + 14 baselines)
// implements, plus the shared evaluation protocol (per-timestamp batches,
// object prediction over original and inverse query sets, time-aware
// filtered ranking).

#ifndef LOGCL_CORE_TKG_MODEL_H_
#define LOGCL_CORE_TKG_MODEL_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "nn/module.h"
#include "tensor/optimizer.h"
#include "tkg/dataset.h"
#include "tkg/filters.h"

namespace logcl {

/// Which query sets the evaluation (and two-phase training) covers.
enum class QueryDirection {
  kBoth,         // original + inverse query sets (standard protocol)
  kForwardOnly,  // Table VII "LogCL-FP"
  kInverseOnly,  // Table VII "LogCL-SP"
};

class TkgModel : public Module {
 public:
  explicit TkgModel(const TkgDataset* dataset);
  ~TkgModel() override = default;

  /// Short display name used in result tables.
  virtual std::string name() const = 0;

  /// Scores one batch of queries (all sharing one timestamp) against every
  /// entity. Rows align with `queries`; runs in eval mode (no grad).
  virtual std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) = 0;

  /// One pass over the training split; returns the mean loss.
  virtual double TrainEpoch(AdamOptimizer* optimizer) = 0;

  /// Online-learning hook (Section IV.H): one gradient update on the facts
  /// of timestamp `t` after it has been evaluated. Models that do not
  /// support online updates keep the default no-op.
  virtual double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
    (void)t;
    (void)optimizer;
    return 0.0;
  }

  /// Standard evaluation: per timestamp of `split`, rank the object of each
  /// fact and (for kBoth) of each inverse fact. `filter` enables the
  /// time-aware filtered setting (nullptr = raw).
  EvalResult Evaluate(Split split, const TimeAwareFilter* filter,
                      QueryDirection direction = QueryDirection::kBoth);

  const TkgDataset& dataset() const { return *dataset_; }

 protected:
  const TkgDataset* dataset_;
};

/// Trains `model` for `epochs` epochs with Adam(learning_rate) and gradient
/// clipping, logging per-epoch loss when `verbose`.
void FitModel(TkgModel* model, int64_t epochs, float learning_rate,
              bool verbose = false);

}  // namespace logcl

#endif  // LOGCL_CORE_TKG_MODEL_H_
