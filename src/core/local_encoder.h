// Local entity-aware attention recurrent encoder (Section III.C).
//
// Pipeline per query time t_q with history length m:
//   for each snapshot s in [t_q - m, t_q):
//     H_dyn   = W0 [H || cos((t_q - s) w_t + b_t)]          (Eq.2-3)
//     H_agg_s = RGCN_Local(snapshot graph, H_dyn, R)        (Eq.4)
//     H       = GRU_Ent(H, H_agg_s)                         (Eq.5)
//     R'      = mean(entities touching r at s) + R          (Eq.6)
//     U       = sigmoid(W3 R' + b);  R = U*R' + (1-U)*R     (Eq.7-8)
// followed by the per-query entity-aware attention over the snapshot states
// (Eq.9-11).

#ifndef LOGCL_CORE_LOCAL_ENCODER_H_
#define LOGCL_CORE_LOCAL_ENCODER_H_

#include <vector>

#include "common/rng.h"
#include "graph/rel_graph_encoder.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/time_encoding.h"
#include "tensor/jit.h"
#include "tkg/dataset.h"

namespace logcl {

/// Everything downstream consumers need from one local encoding pass.
struct LocalEncoderOutput {
  /// Final evolved entity matrix H_{t_q} [E, d] (candidate embeddings).
  Tensor entities;
  /// Final evolved relation matrix R_{t_q} [2R, d].
  Tensor relations;
  /// Per-snapshot aggregated states H^Agg (attention keys, Eq.10).
  std::vector<Tensor> aggregated;
  /// Per-snapshot evolved states (attention values, Eq.11).
  std::vector<Tensor> evolved;
};

struct LocalEncoderOptions {
  int64_t history_length = 5;  // m
  GcnKind gcn_kind = GcnKind::kRgcn;
  int64_t num_layers = 2;
  float dropout = 0.2f;
  int64_t time_dim = 16;
  /// Eq.2-3 periodic time encoding; RE-GCN-style baselines disable it.
  bool use_time_encoding = true;
};

class LocalEncoder : public Module {
 public:
  LocalEncoder(int64_t dim, int64_t num_relations_with_inverse,
               LocalEncoderOptions options, Rng* rng);

  /// Runs snapshot aggregation + sequence evolution over the m snapshots
  /// preceding `t` (clipped at time 0). Base embeddings are the model's
  /// H_0 / R_0 leaves (optionally noise-perturbed by the caller).
  /// `history_length_override` > 0 replaces options().history_length for
  /// this pass (CEN's length-diversified ensemble).
  LocalEncoderOutput Encode(const TkgDataset& dataset, int64_t t,
                            const Tensor& base_entities,
                            const Tensor& base_relations, bool training,
                            Rng* rng,
                            int64_t history_length_override = 0) const;

  /// Evolution over an explicit snapshot-graph window: `graphs[i]` is the
  /// snapshot at `times[i]` (ascending, all < t). This is the entry point of
  /// the serving engine's Advance, whose newest snapshots are not part of
  /// any TkgDataset; Encode delegates here, so both paths are bitwise
  /// identical given identical graphs.
  LocalEncoderOutput EncodeSequence(
      const std::vector<const SnapshotGraph*>& graphs,
      const std::vector<int64_t>& times, int64_t t,
      const Tensor& base_entities, const Tensor& base_relations,
      bool training, Rng* rng) const;

  /// Entity-aware attention (Eq.9-11): per-query local representation.
  /// Queries supply (subject, relation); rows of the result align with
  /// `queries`. With `use_attention` false the final evolved state is
  /// returned directly (ablation "-w/o-eatt").
  Tensor QueryRepresentations(const LocalEncoderOutput& output,
                              const std::vector<Quadruple>& queries,
                              bool use_attention) const;

  const LocalEncoderOptions& options() const { return options_; }

 private:
  LocalEncoderOptions options_;
  RelGraphEncoder aggregator_;
  TimeEncoding time_encoding_;
  GruCell entity_gru_;
  Tensor w_time_gate_;   // W3 of Eq.8
  Tensor b_time_gate_;
  // Capture cache for the Eq.7-8 elementwise gate chain (tensor/jit.h).
  mutable jit::ChainCache time_gate_cache_;
  Linear w_query_;       // W4 of Eq.9 ([r || h] -> d)
  Linear w_attention_;   // W5 of Eq.10 (d -> 1)
};

}  // namespace logcl

#endif  // LOGCL_CORE_LOCAL_ENCODER_H_
