#include "core/trainer.h"

#include "common/logging.h"
#include "eval/ranking.h"

namespace logcl {

EvalResult TrainAndEvaluate(TkgModel* model, const TimeAwareFilter* filter,
                            OfflineOptions options, QueryDirection direction) {
  LOGCL_CHECK(model != nullptr);
  FitModel(model, options.epochs, options.learning_rate, options.verbose);
  return model->Evaluate(Split::kTest, filter, direction);
}

EvalResult TrainAndEvaluateOnline(TkgModel* model,
                                  const TimeAwareFilter* filter,
                                  OnlineOptions options) {
  LOGCL_CHECK(model != nullptr);
  FitModel(model, options.offline_epochs, options.learning_rate,
           options.verbose);

  AdamOptions adam;
  adam.learning_rate = options.online_learning_rate > 0.0f
                           ? options.online_learning_rate
                           : options.learning_rate;
  AdamOptimizer optimizer(model->Parameters(), adam);

  const TkgDataset& dataset = model->dataset();
  MetricsAccumulator metrics;
  for (int64_t t : dataset.SplitTimestamps(Split::kTest)) {
    std::vector<Quadruple> facts = dataset.SplitFactsAt(Split::kTest, t);
    if (facts.empty()) continue;

    // Score first (the timestamp is still "future" at this point)...
    auto score_batch = [&](const std::vector<Quadruple>& queries) {
      std::vector<std::vector<float>> scores = model->ScoreQueries(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        const Quadruple& q = queries[i];
        if (filter != nullptr) {
          metrics.AddRank(RankOfTarget(
              scores[i], q.object, filter->Answers(q.subject, q.relation, t)));
        } else {
          metrics.AddRank(RankOfTarget(scores[i], q.object));
        }
      }
    };
    score_batch(facts);
    std::vector<Quadruple> inverse;
    inverse.reserve(facts.size());
    for (const Quadruple& q : facts) {
      inverse.push_back(InverseOf(q, dataset.num_base_relations()));
    }
    score_batch(inverse);

    // ... then absorb the emerging facts.
    for (int64_t u = 0; u < options.updates_per_timestamp; ++u) {
      model->TrainOnTimestamp(t, &optimizer);
    }
  }
  return metrics.Result();
}

}  // namespace logcl
