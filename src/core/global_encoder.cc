#include "core/global_encoder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/observability.h"
#include "tensor/ops.h"

namespace logcl {

GlobalEncoder::GlobalEncoder(int64_t dim, GlobalEncoderOptions options,
                             Rng* rng)
    : options_(options),
      aggregator_(options.gcn_kind, options.num_layers, dim, options.dropout,
                  rng),
      w_attention_(dim, 1, rng) {
  AddChild(&aggregator_);
  AddChild(&w_attention_);
}

namespace {

// Packed (s, r, o) edge key for sort+unique dedup: 40 bits per field is
// far beyond any benchmark's id range and collision-free by construction
// (unlike a hash). Using sorted keys also makes the edge order
// deterministic and avoids the per-insert rehash churn of a hash set on
// large anchor unions.
using PackedEdge = unsigned __int128;

inline PackedEdge PackEdge(int64_t s, int64_t r, int64_t o) {
  return (static_cast<PackedEdge>(static_cast<uint64_t>(s)) << 80) |
         (static_cast<PackedEdge>(static_cast<uint64_t>(r)) << 40) |
         static_cast<PackedEdge>(static_cast<uint64_t>(o));
}

constexpr uint64_t kPackMask = (uint64_t{1} << 40) - 1;

}  // namespace

SnapshotGraph GlobalEncoder::BuildQuerySubgraph(
    const HistoryIndex& history, const std::vector<Quadruple>& queries,
    int64_t num_entities) const {
  LOGCL_TRACE_SCOPE("global_subgraph_build");
  LOGCL_CHECK(!queries.empty());
  SnapshotGraph graph;
  graph.num_nodes = num_entities;
  std::vector<int64_t> anchors;
  anchors.reserve(queries.size() *
                  static_cast<size_t>(1 + std::max<int64_t>(
                                              0, options_.max_answers_per_query)));
  for (const Quadruple& q : queries) {
    // G'_g1: the query subject.
    anchors.push_back(q.subject);
    // G'_g2: historical answer objects of (s, r).
    std::vector<int64_t> answers =
        history.ObjectsBefore(q.subject, q.relation, q.time);
    int64_t kept = 0;
    for (int64_t object : answers) {
      if (options_.max_answers_per_query > 0 &&
          kept >= options_.max_answers_per_query) {
        break;
      }
      anchors.push_back(object);
      ++kept;
    }
  }
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());

  // Expand anchors by their one-hop historical facts; dedup on packed
  // (s, r, o) keys via sort+unique.
  int64_t time = queries.front().time;
  std::vector<PackedEdge> edges;
  if (options_.max_edges_per_anchor > 0) {
    edges.reserve(anchors.size() *
                  static_cast<size_t>(options_.max_edges_per_anchor));
  }
  for (int64_t anchor : anchors) {
    LOGCL_CHECK_LT(anchor, num_entities);
    for (const HistoryEdge& edge : history.FactsTouchingBefore(
             anchor, time, options_.max_edges_per_anchor)) {
      edges.push_back(PackEdge(anchor, edge.relation, edge.neighbor));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  graph.src.reserve(edges.size());
  graph.rel.reserve(edges.size());
  graph.dst.reserve(edges.size());
  for (PackedEdge key : edges) {
    graph.AddEdge(static_cast<int64_t>(static_cast<uint64_t>(key >> 80)),
                  static_cast<int64_t>(static_cast<uint64_t>(key >> 40) &
                                       kPackMask),
                  static_cast<int64_t>(static_cast<uint64_t>(key) &
                                       kPackMask));
  }
  return graph;
}

std::shared_ptr<const SnapshotGraph> GlobalEncoder::QuerySubgraph(
    const HistoryIndex& history, const std::vector<Quadruple>& queries,
    int64_t num_entities) const {
  if (!options_.cache_query_subgraphs) {
    return std::make_shared<const SnapshotGraph>(
        BuildQuerySubgraph(history, queries, num_entities));
  }
  // Entries are valid only against one HistoryIndex (hence one dataset);
  // drop everything if the encoder is pointed at a different one.
  if (cached_history_ != &history) {
    subgraph_cache_.clear();
    cached_history_ = &history;
  }
  LOGCL_CHECK(!queries.empty());
  SubgraphKey key;
  key.first = queries.front().time;
  key.second.reserve(queries.size());
  for (const Quadruple& q : queries) {
    key.second.emplace_back(q.subject, q.relation);
  }
  std::sort(key.second.begin(), key.second.end());
  key.second.erase(std::unique(key.second.begin(), key.second.end()),
                   key.second.end());
  auto it = subgraph_cache_.find(key);
  if (it == subgraph_cache_.end()) {
    it = subgraph_cache_
             .emplace(std::move(key),
                      std::make_shared<const SnapshotGraph>(BuildQuerySubgraph(
                          history, queries, num_entities)))
             .first;
  }
  return it->second;
}

Tensor GlobalEncoder::Encode(const SnapshotGraph& graph,
                             const Tensor& base_entities,
                             const Tensor& base_relations, bool training,
                             Rng* rng) const {
  LOGCL_TRACE_SCOPE("global_encoder");
  return aggregator_.Forward(graph, base_entities, base_relations, training,
                             rng);
}

Tensor GlobalEncoder::QueryRepresentations(
    const Tensor& encoded, const Tensor& base_entities,
    const std::vector<Quadruple>& queries, const HistoryIndex& history,
    bool use_attention) const {
  LOGCL_TRACE_SCOPE("global_attention");
  LOGCL_CHECK(!queries.empty());
  int64_t batch = static_cast<int64_t>(queries.size());
  std::vector<int64_t> subjects;
  subjects.reserve(queries.size());
  for (const Quadruple& q : queries) subjects.push_back(q.subject);
  Tensor subject_encoded = ops::IndexSelectRows(encoded, subjects);

  // Per-query G'_g2 pooling: mean of the encoded historical answers of
  // (s, r) (see header comment). Gathered flat, then scatter-meaned back to
  // one row per query; answer-less queries keep a zero contribution.
  std::vector<int64_t> flat_answers;
  std::vector<int64_t> owning_query;
  for (int64_t i = 0; i < batch; ++i) {
    const Quadruple& q = queries[static_cast<size_t>(i)];
    std::vector<int64_t> answers =
        history.ObjectsBefore(q.subject, q.relation, q.time);
    int64_t kept = 0;
    for (int64_t object : answers) {
      if (options_.max_answers_per_query > 0 &&
          kept >= options_.max_answers_per_query) {
        break;
      }
      flat_answers.push_back(object);
      owning_query.push_back(i);
      ++kept;
    }
  }
  Tensor query_state = subject_encoded;
  if (!flat_answers.empty()) {
    Tensor answer_rows = ops::IndexSelectRows(encoded, flat_answers);
    Tensor answer_means = ops::ScatterMeanRows(answer_rows, owning_query,
                                               batch);
    query_state = ops::Add(query_state, answer_means);
  }
  if (!use_attention) return query_state;
  // Eq.13-14: beta = sigma(W6 (h_g^Agg + h)), h_g = beta * h_g^Agg.
  Tensor subject_base = ops::IndexSelectRows(base_entities, subjects);
  Tensor beta = ops::Sigmoid(
      w_attention_.Forward(ops::Add(subject_encoded, subject_base)));
  return ops::MulColBroadcast(query_state, beta);
}

}  // namespace logcl
