#include "core/global_encoder.h"

#include <unordered_set>

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

GlobalEncoder::GlobalEncoder(int64_t dim, GlobalEncoderOptions options,
                             Rng* rng)
    : options_(options),
      aggregator_(options.gcn_kind, options.num_layers, dim, options.dropout,
                  rng),
      w_attention_(dim, 1, rng) {
  AddChild(&aggregator_);
  AddChild(&w_attention_);
}

SnapshotGraph GlobalEncoder::BuildQuerySubgraph(
    const HistoryIndex& history, const std::vector<Quadruple>& queries,
    int64_t num_entities) const {
  SnapshotGraph graph;
  graph.num_nodes = num_entities;
  std::unordered_set<int64_t> anchors;
  for (const Quadruple& q : queries) {
    // G'_g1: the query subject.
    anchors.insert(q.subject);
    // G'_g2: historical answer objects of (s, r).
    std::vector<int64_t> answers =
        history.ObjectsBefore(q.subject, q.relation, q.time);
    int64_t kept = 0;
    for (int64_t object : answers) {
      if (options_.max_answers_per_query > 0 &&
          kept >= options_.max_answers_per_query) {
        break;
      }
      anchors.insert(object);
      ++kept;
    }
  }
  // Expand anchors by their one-hop historical facts (dedup on (s, r, o)).
  LOGCL_CHECK(!queries.empty());
  int64_t time = queries.front().time;
  std::unordered_set<uint64_t> edge_seen;
  for (int64_t anchor : anchors) {
    for (const HistoryEdge& edge : history.FactsTouchingBefore(
             anchor, time, options_.max_edges_per_anchor)) {
      uint64_t key = (static_cast<uint64_t>(anchor) << 40) ^
                     (static_cast<uint64_t>(edge.relation) << 24) ^
                     static_cast<uint64_t>(edge.neighbor);
      if (!edge_seen.insert(key).second) continue;
      graph.AddEdge(anchor, edge.relation, edge.neighbor);
    }
  }
  return graph;
}

Tensor GlobalEncoder::Encode(const SnapshotGraph& graph,
                             const Tensor& base_entities,
                             const Tensor& base_relations, bool training,
                             Rng* rng) const {
  return aggregator_.Forward(graph, base_entities, base_relations, training,
                             rng);
}

Tensor GlobalEncoder::QueryRepresentations(
    const Tensor& encoded, const Tensor& base_entities,
    const std::vector<Quadruple>& queries, const HistoryIndex& history,
    bool use_attention) const {
  LOGCL_CHECK(!queries.empty());
  int64_t batch = static_cast<int64_t>(queries.size());
  std::vector<int64_t> subjects;
  subjects.reserve(queries.size());
  for (const Quadruple& q : queries) subjects.push_back(q.subject);
  Tensor subject_encoded = ops::IndexSelectRows(encoded, subjects);

  // Per-query G'_g2 pooling: mean of the encoded historical answers of
  // (s, r) (see header comment). Gathered flat, then scatter-meaned back to
  // one row per query; answer-less queries keep a zero contribution.
  std::vector<int64_t> flat_answers;
  std::vector<int64_t> owning_query;
  for (int64_t i = 0; i < batch; ++i) {
    const Quadruple& q = queries[static_cast<size_t>(i)];
    std::vector<int64_t> answers =
        history.ObjectsBefore(q.subject, q.relation, q.time);
    int64_t kept = 0;
    for (int64_t object : answers) {
      if (options_.max_answers_per_query > 0 &&
          kept >= options_.max_answers_per_query) {
        break;
      }
      flat_answers.push_back(object);
      owning_query.push_back(i);
      ++kept;
    }
  }
  Tensor query_state = subject_encoded;
  if (!flat_answers.empty()) {
    Tensor answer_rows = ops::IndexSelectRows(encoded, flat_answers);
    Tensor answer_means = ops::ScatterMeanRows(answer_rows, owning_query,
                                               batch);
    query_state = ops::Add(query_state, answer_means);
  }
  if (!use_attention) return query_state;
  // Eq.13-14: beta = sigma(W6 (h_g^Agg + h)), h_g = beta * h_g^Agg.
  Tensor subject_base = ops::IndexSelectRows(base_entities, subjects);
  Tensor beta = ops::Sigmoid(
      w_attention_.Forward(ops::Add(subject_encoded, subject_base)));
  return ops::MulColBroadcast(query_state, beta);
}

}  // namespace logcl
