#include "core/contrast.h"

#include "common/logging.h"
#include "common/observability.h"
#include "tensor/ops.h"

namespace logcl {

Tensor SupervisedInfoNce(const Tensor& anchors, const Tensor& contrasts,
                         const std::vector<int64_t>& labels, float tau,
                         bool exclude_self) {
  LOGCL_CHECK(anchors.shape() == contrasts.shape());
  int64_t n = anchors.shape().rows();
  LOGCL_CHECK_EQ(n, static_cast<int64_t>(labels.size()));
  LOGCL_CHECK_GT(tau, 0.0f);

  // Positive-pair weights: W[i, j] = 1/|P(i)| for j in P(i), scaled by the
  // number of anchors that have positives. Constant (no grad).
  std::vector<float> weights(static_cast<size_t>(n * n), 0.0f);
  int64_t active_anchors = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t num_positives = 0;
    for (int64_t j = 0; j < n; ++j) {
      if (exclude_self && i == j) continue;
      if (labels[static_cast<size_t>(j)] == labels[static_cast<size_t>(i)]) {
        ++num_positives;
      }
    }
    if (num_positives == 0) continue;
    ++active_anchors;
    float w = 1.0f / static_cast<float>(num_positives);
    for (int64_t j = 0; j < n; ++j) {
      if (exclude_self && i == j) continue;
      if (labels[static_cast<size_t>(j)] == labels[static_cast<size_t>(i)]) {
        weights[static_cast<size_t>(i * n + j)] = w;
      }
    }
  }
  if (active_anchors == 0) return Tensor::Scalar(0.0f);
  float norm = 1.0f / static_cast<float>(active_anchors);
  for (float& w : weights) w *= norm;

  Tensor logits =
      ops::Scale(ops::MatMul(anchors, ops::Transpose(contrasts)), 1.0f / tau);
  if (exclude_self) {
    // Mask the degenerate self-similarity out of the softmax denominator.
    std::vector<float> mask(static_cast<size_t>(n * n), 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      mask[static_cast<size_t>(i * n + i)] = -1e9f;
    }
    logits = ops::Add(logits, Tensor::FromVector(Shape{n, n}, std::move(mask)));
  }
  Tensor log_prob = ops::LogSoftmax(logits);
  Tensor weight_tensor = Tensor::FromVector(Shape{n, n}, std::move(weights));
  return ops::Neg(ops::SumAll(ops::Mul(log_prob, weight_tensor)));
}

ContrastModule::ContrastModule(int64_t feature_dim, int64_t projection_dim,
                               ContrastOptions options, Rng* rng)
    : options_(options),
      projection_(feature_dim, projection_dim, projection_dim, rng) {
  AddChild(&projection_);
}

Tensor ContrastModule::Project(const Tensor& features) const {
  return projection_.Forward(features, /*normalize=*/true);
}

ContrastTerms ContrastModule::LossTerms(
    const Tensor& local_projected, const Tensor& global_projected,
    const std::vector<int64_t>& labels) const {
  LOGCL_TRACE_SCOPE("contrast_loss");
  ContrastTerms terms;
  Tensor total = Tensor::Scalar(0.0f);
  int active = 0;
  if (options_.use_lg) {
    terms.lg = SupervisedInfoNce(local_projected, global_projected, labels,
                                 options_.tau, /*exclude_self=*/false);
    total = ops::Add(total, terms.lg);
    ++active;
  }
  if (options_.use_gl) {
    terms.gl = SupervisedInfoNce(global_projected, local_projected, labels,
                                 options_.tau, /*exclude_self=*/false);
    total = ops::Add(total, terms.gl);
    ++active;
  }
  if (options_.use_ll) {
    terms.ll = SupervisedInfoNce(local_projected, local_projected, labels,
                                 options_.tau, /*exclude_self=*/true);
    total = ops::Add(total, terms.ll);
    ++active;
  }
  if (options_.use_gg) {
    terms.gg = SupervisedInfoNce(global_projected, global_projected, labels,
                                 options_.tau, /*exclude_self=*/true);
    total = ops::Add(total, terms.gg);
    ++active;
  }
  terms.total = active == 0
                    ? Tensor::Scalar(0.0f)
                    : ops::Scale(total, 1.0f / static_cast<float>(active));
  return terms;
}

Tensor ContrastModule::Loss(const Tensor& local_projected,
                            const Tensor& global_projected,
                            const std::vector<int64_t>& labels) const {
  return LossTerms(local_projected, global_projected, labels).total;
}

}  // namespace logcl
