// LogCL (Chen et al., ICDE 2024): local-global history-aware contrastive
// learning for TKG extrapolation.
//
// Composition (Fig.3):
//   - base entity / relation embeddings H_0, R_0 (optionally perturbed by
//     Gaussian noise to study robustness, Fig.2/5),
//   - LocalEncoder  (Section III.C, Eq.2-11),
//   - GlobalEncoder (Section III.D, Eq.12-14),
//   - ContrastModule (Section III.E, Eq.15-17),
//   - ConvTransE decoder with the lambda-fusion of Eq.18-19,
//   - two-phase forward propagation (Section III.F) over original and
//     inverse query sets.
//
// Every ablation of Tables IV/V/VII and Figs.6-9 is a configuration switch.

#ifndef LOGCL_CORE_LOGCL_MODEL_H_
#define LOGCL_CORE_LOGCL_MODEL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/contrast.h"
#include "core/global_encoder.h"
#include "core/local_encoder.h"
#include "core/tkg_model.h"
#include "nn/convtranse.h"
#include "tensor/jit.h"
#include "tkg/history_index.h"

namespace logcl {

struct LogClConfig {
  int64_t embedding_dim = 32;
  LocalEncoderOptions local;
  GlobalEncoderOptions global;
  ContrastOptions contrast;
  ConvTransEOptions decoder;

  /// Eq.19 trade-off. Following the paper's reading of Fig.8 ("a larger
  /// lambda indicates a higher proportion of the local encoder"), `lambda`
  /// weights the LOCAL representation; (1 - lambda) weights the global one.
  /// The paper's optimum is 0.9 on all datasets.
  float lambda = 0.9f;

  // Ablation switches (Table IV).
  bool use_local = true;              // off => "LogCL-G"
  bool use_global = true;             // off => "LogCL-L"
  bool use_entity_attention = true;   // off => "-w/o-eatt"
  bool use_contrast = true;           // off => "-w/o-cl"

  /// Two-phase propagation control (Table VII).
  QueryDirection propagation = QueryDirection::kBoth;

  /// Stddev of N(0, s^2) noise added to the base entity embeddings on every
  /// forward pass (train and eval), simulating contaminated inputs.
  float noise_stddev = 0.0f;

  float grad_clip_norm = 1.0f;
  uint64_t seed = 7;
};

class LogClModel : public TkgModel {
 public:
  /// `dataset` must outlive the model.
  LogClModel(const TkgDataset* dataset, LogClConfig config);

  std::string name() const override { return "LogCL"; }

  std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) override;

  EpochStats TrainEpoch(AdamOptimizer* optimizer) override;

  double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) override;

  /// Top-k (entity, probability) predictions for one query (case study,
  /// Table VI). Probabilities equal softmax over all entities but are
  /// computed via partial selection (eval/ranking.h TopKSoftmax): the full
  /// softmax row is never materialised.
  std::vector<std::pair<int64_t, float>> PredictTopK(const Quadruple& query,
                                                     int64_t k);

  /// Eval-mode switch. When set, evaluation-path forwards (ScoreQueries and
  /// the serving entry points below) skip the configured noise injection so
  /// repeated identical calls are bitwise equal; training forwards still
  /// perturb. Off by default: the Fig.2/5 noise-robustness experiments rely
  /// on contaminated *evaluation* inputs. The serving engine always sets it.
  void SetEvalMode(bool eval_mode) { eval_mode_ = eval_mode; }
  bool eval_mode() const { return eval_mode_; }

  /// The query-independent half of a forward pass, frozen for serving: the
  /// base entity matrix plus the local evolution at time `time` (Eq.2-8 and
  /// the per-snapshot attention inputs of Eq.9-11). Const and deterministic;
  /// requires eval mode when noise injection is configured.
  struct EvolutionState {
    int64_t time = -1;
    Tensor base_entities;      // H_0 [E, d]
    LocalEncoderOutput local;  // empty when the local branch is disabled
  };

  /// Runs the evolution over the dataset's snapshots preceding `t` (exactly
  /// what ScoreQueries does internally for a batch at `t`).
  EvolutionState PrecomputeEvolution(int64_t t) const;

  /// Same over an explicit snapshot window (`graphs[i]` at `times[i]`, all
  /// < t) — the serving engine's Advance path, whose newest snapshots are
  /// not part of the model's dataset.
  EvolutionState PrecomputeEvolution(
      const std::vector<const SnapshotGraph*>& graphs,
      const std::vector<int64_t>& times, int64_t t) const;

  /// Scores one batch of same-timestamp queries against every entity given a
  /// precomputed evolution and a history index; returns logits [B, E],
  /// bitwise identical to ScoreQueries on the same state. Const and safe to
  /// call from concurrent threads (it bypasses the global encoder's subgraph
  /// cache); `history` substitutes for the model's own index so serving can
  /// extend history online.
  Tensor ScoreWithEvolution(const std::vector<Quadruple>& queries,
                            const EvolutionState& evolution,
                            const HistoryIndex& history) const;

  /// The decode-only prefix of ScoreWithEvolution: the [B, d] decoded query
  /// representations that Score dot-products against the candidate entity
  /// matrix (ConvTransE::Decode output). Bitwise identical to the decode
  /// stage inside ScoreWithEvolution — eval-mode ConvTransE is
  /// deterministic — so reduced-precision serving (serve/quant.h) can score
  /// these against quantized candidates while fp32 keeps the fused path.
  Tensor DecodeWithEvolution(const std::vector<Quadruple>& queries,
                             const EvolutionState& evolution,
                             const HistoryIndex& history) const;

  const LogClConfig& config() const { return config_; }

  /// The forward/backward portion of one training step on an explicit fact
  /// batch at timestamp `t` (two-phase propagation + Backward), WITHOUT the
  /// optimizer interaction: gradients accumulate into whatever the
  /// parameters' grads already hold, and no clip/step runs. This is the
  /// data-parallel entry point (src/dist/dist_trainer.h): each rank calls it
  /// on its shard after ZeroGrad, then the shards' gradients are summed by
  /// AllReduceSum before one shared clip+step. Returns the step's loss
  /// components (steps == 1; empty `facts` contributes nothing and runs no
  /// backward). Consumes the model RNG exactly as TrainEpoch would for the
  /// same batch — see rng_state()/set_rng_state for replaying shards.
  EpochStats ForwardBackwardOnFacts(const std::vector<Quadruple>& facts,
                                    int64_t t);

  /// Same, but with the local evolution computed over an explicit snapshot
  /// window (`graphs[i]` at `times[i]`, ascending, all < t) instead of the
  /// dataset's own snapshots — the streaming fine-tune entry, whose newest
  /// snapshots are not part of any TkgDataset. Bitwise-identical to the
  /// dataset overload when the window equals the dataset's trailing
  /// snapshots (LocalEncoder::Encode delegates to EncodeSequence).
  EpochStats ForwardBackwardOnFacts(
      const std::vector<Quadruple>& facts,
      const std::vector<const SnapshotGraph*>& graphs,
      const std::vector<int64_t>& times, int64_t t);

  /// Extends the model's own history index with `facts` plus inverses (all
  /// at or beyond the index's maximum time) — the continual-learning step
  /// behind StreamSession::Advance. Invalidates the global encoder's
  /// subgraph cache, which is keyed against the (now mutated-in-place)
  /// index.
  void ExtendHistory(const std::vector<Quadruple>& facts);

  double TrainOnTimestampSparse(int64_t t,
                                SparseAdamOptimizer* optimizer) override;

  /// One sparse-update fine-tune step on streamed facts at timestamp `t`
  /// over an explicit snapshot window: zero grads, two-phase
  /// forward/backward, then a SparseAdam step on the rows the batch's
  /// gradients actually touched (NonZeroGradRows scan — LogCL's softmax
  /// makes entity grads dense, so sparsity is measured, not assumed). No
  /// gradient clipping runs on this path. Returns the step's mean loss.
  double TrainOnStreamFacts(const std::vector<Quadruple>& facts,
                            const std::vector<const SnapshotGraph*>& graphs,
                            const std::vector<int64_t>& times, int64_t t,
                            SparseAdamOptimizer* optimizer);

  /// The training RNG stream, exposed so a single process can replay the
  /// per-rank streams of a distributed run (dropout consumption depends on
  /// batch size, so virtual ranks need independent streams). Rng is a small
  /// copyable value.
  Rng rng_state() const { return rng_; }
  void set_rng_state(const Rng& rng) { rng_ = rng; }

 private:
  struct BatchOutput {
    Tensor scores;  // [B, E] logits
    Tensor loss;    // scalar: L_tkg + L_cl
    // Component values of `loss` for EpochStats (read off the graph nodes;
    // filled only by training forwards).
    double task = 0.0;      // L_tkg (Eq.20)
    double contrast = 0.0;  // combined L_cl
    double lg = 0.0, gl = 0.0, ll = 0.0, gg = 0.0;  // raw Eq.17 terms
  };

  /// Everything ScorePhase produces: the logits plus the intermediate query
  /// representations the contrastive loss consumes during training.
  struct ScoreParts {
    Tensor scores;           // [B, E] logits (unset when decode_only)
    Tensor decoded;          // [B, d] decoder output (decode_only runs)
    Tensor local_query;      // [B, d] when use_local
    Tensor global_query;     // [B, d] when use_global
    Tensor query_relations;  // [B, d] rows of the fused relation matrix
  };

  /// The shared scoring pipeline (Eq.9-19) for one batch of same-timestamp
  /// queries: query representations, lambda-fusion, ConvTransE decode.
  /// Const — every mutable interaction is parameterised: `history` supplies
  /// the historical answer sets, `use_subgraph_cache` selects the cached vs
  /// thread-safe subgraph path, and `rng` is only consumed when training.
  /// `decode_only` stops after ConvTransE::Decode (fills `decoded`, leaves
  /// `scores` unset) — the reduced-precision serving path's entry.
  ScoreParts ScorePhase(const std::vector<Quadruple>& queries,
                        const Tensor& base_entities,
                        const LocalEncoderOutput& local,
                        const HistoryIndex& history, bool training,
                        bool use_subgraph_cache, Rng* rng,
                        bool decode_only = false) const;

  /// One propagation phase for a batch of same-timestamp queries. The
  /// (query-independent) local evolution is computed by the caller and
  /// shared across phases; `local` may be empty when the local branch is
  /// disabled.
  BatchOutput ForwardPhase(const std::vector<Quadruple>& queries,
                           const Tensor& base_entities,
                           const LocalEncoderOutput& local, bool training);

  /// Full forward pass for one batch (base embeddings + evolution + one
  /// phase); used by scoring.
  BatchOutput ForwardBatch(const std::vector<Quadruple>& queries,
                           bool training);

  /// One optimizer step on the facts of timestamp `t`, with per-component
  /// losses, grad-norm and phase timings. `steps` is 1 even when the
  /// timestamp is empty (TrainEpoch's historical mean denominator counts
  /// every visited timestamp).
  EpochStats TrainStep(int64_t t, AdamOptimizer* optimizer);

  /// The two-phase forward + backward shared by both ForwardBackwardOnFacts
  /// overloads, given an already-computed local evolution. `step` carries
  /// the local-phase timing accumulated by the caller.
  EpochStats RunTrainingPhases(const std::vector<Quadruple>& facts,
                               const Tensor& base_entities,
                               const LocalEncoderOutput& local,
                               EpochStats step);

  /// ZeroGrad + forward/backward + touched-row scan + sparse step; the
  /// shared tail of the two sparse training entries.
  double SparseStepOnGradients(const EpochStats& step,
                               SparseAdamOptimizer* optimizer);

  /// Base entity matrix, noise-injected when configured (skipped for
  /// non-training forwards in eval mode).
  Tensor BaseEntities(bool training);

  LogClConfig config_;
  bool eval_mode_ = false;
  Rng rng_;
  HistoryIndex history_;
  Tensor base_entities_;   // H_0 [E, d]
  Tensor base_relations_;  // R_0 [2R, d]
  LocalEncoder local_encoder_;
  GlobalEncoder global_encoder_;
  ContrastModule contrast_;
  ConvTransE decoder_;
  // Capture cache for the Eq.19 lambda-fusion chain (tensor/jit.h);
  // mutable because ScorePhase is const on both train and serve paths.
  mutable jit::ChainCache fusion_cache_;
};

}  // namespace logcl

#endif  // LOGCL_CORE_LOGCL_MODEL_H_
