// LogCL (Chen et al., ICDE 2024): local-global history-aware contrastive
// learning for TKG extrapolation.
//
// Composition (Fig.3):
//   - base entity / relation embeddings H_0, R_0 (optionally perturbed by
//     Gaussian noise to study robustness, Fig.2/5),
//   - LocalEncoder  (Section III.C, Eq.2-11),
//   - GlobalEncoder (Section III.D, Eq.12-14),
//   - ContrastModule (Section III.E, Eq.15-17),
//   - ConvTransE decoder with the lambda-fusion of Eq.18-19,
//   - two-phase forward propagation (Section III.F) over original and
//     inverse query sets.
//
// Every ablation of Tables IV/V/VII and Figs.6-9 is a configuration switch.

#ifndef LOGCL_CORE_LOGCL_MODEL_H_
#define LOGCL_CORE_LOGCL_MODEL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/contrast.h"
#include "core/global_encoder.h"
#include "core/local_encoder.h"
#include "core/tkg_model.h"
#include "nn/convtranse.h"
#include "tkg/history_index.h"

namespace logcl {

struct LogClConfig {
  int64_t embedding_dim = 32;
  LocalEncoderOptions local;
  GlobalEncoderOptions global;
  ContrastOptions contrast;
  ConvTransEOptions decoder;

  /// Eq.19 trade-off. Following the paper's reading of Fig.8 ("a larger
  /// lambda indicates a higher proportion of the local encoder"), `lambda`
  /// weights the LOCAL representation; (1 - lambda) weights the global one.
  /// The paper's optimum is 0.9 on all datasets.
  float lambda = 0.9f;

  // Ablation switches (Table IV).
  bool use_local = true;              // off => "LogCL-G"
  bool use_global = true;             // off => "LogCL-L"
  bool use_entity_attention = true;   // off => "-w/o-eatt"
  bool use_contrast = true;           // off => "-w/o-cl"

  /// Two-phase propagation control (Table VII).
  QueryDirection propagation = QueryDirection::kBoth;

  /// Stddev of N(0, s^2) noise added to the base entity embeddings on every
  /// forward pass (train and eval), simulating contaminated inputs.
  float noise_stddev = 0.0f;

  float grad_clip_norm = 1.0f;
  uint64_t seed = 7;
};

class LogClModel : public TkgModel {
 public:
  /// `dataset` must outlive the model.
  LogClModel(const TkgDataset* dataset, LogClConfig config);

  std::string name() const override { return "LogCL"; }

  std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) override;

  double TrainEpoch(AdamOptimizer* optimizer) override;

  double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) override;

  /// Top-k (entity, probability) predictions for one query (case study,
  /// Table VI). Probabilities are softmax over all entities.
  std::vector<std::pair<int64_t, float>> PredictTopK(const Quadruple& query,
                                                     int64_t k);

  const LogClConfig& config() const { return config_; }

 private:
  struct BatchOutput {
    Tensor scores;  // [B, E] logits
    Tensor loss;    // scalar: L_tkg + L_cl
  };

  /// One propagation phase for a batch of same-timestamp queries. The
  /// (query-independent) local evolution is computed by the caller and
  /// shared across phases; `local` may be empty when the local branch is
  /// disabled.
  BatchOutput ForwardPhase(const std::vector<Quadruple>& queries,
                           const Tensor& base_entities,
                           const LocalEncoderOutput& local, bool training);

  /// Full forward pass for one batch (base embeddings + evolution + one
  /// phase); used by scoring.
  BatchOutput ForwardBatch(const std::vector<Quadruple>& queries,
                           bool training);

  /// Base entity matrix, noise-injected when configured.
  Tensor BaseEntities();

  LogClConfig config_;
  Rng rng_;
  HistoryIndex history_;
  Tensor base_entities_;   // H_0 [E, d]
  Tensor base_relations_;  // R_0 [2R, d]
  LocalEncoder local_encoder_;
  GlobalEncoder global_encoder_;
  ContrastModule contrast_;
  ConvTransE decoder_;
};

}  // namespace logcl

#endif  // LOGCL_CORE_LOGCL_MODEL_H_
