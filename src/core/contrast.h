// Local-global query contrast module (Section III.E, Eq.15-17).
//
// Local and global query features are projected onto the unit sphere by a
// shared MLP head (Eq.15-16). Four supervised-contrastive losses are then
// combined (Eq.17 and the L_gl / L_ll / L_gg variants): queries at the same
// timestamp whose ground-truth object matches are positives (supervised
// contrastive learning, Khosla et al. 2020); in particular each query's
// local and global views of itself are positive pairs for the cross-view
// losses.

#ifndef LOGCL_CORE_CONTRAST_H_
#define LOGCL_CORE_CONTRAST_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace logcl {

/// Which of the four contrast terms are active and their shared temperature.
struct ContrastOptions {
  float tau = 0.2f;
  bool use_lg = true;  // local anchors vs global contrasts
  bool use_gl = true;  // global anchors vs local contrasts
  bool use_ll = true;  // local vs local (self-pairs excluded)
  bool use_gg = true;  // global vs global (self-pairs excluded)
};

/// Generic supervised InfoNCE:
///   L = -mean_i (1/|P(i)|) sum_{p in P(i)} log softmax_j(a_i . b_j / tau)[p]
/// P(i) = {j : labels[j] == labels[i]}, minus {i} when `exclude_self` (the
/// same-view losses, where (i, i) is a degenerate pair). Anchors with an
/// empty positive set are skipped. Rows of `anchors`/`contrasts` must be
/// L2-normalised. Returns a scalar (zero tensor if no anchor has positives).
Tensor SupervisedInfoNce(const Tensor& anchors, const Tensor& contrasts,
                         const std::vector<int64_t>& labels, float tau,
                         bool exclude_self);

/// The combined contrastive loss plus its four raw components. `total` is
/// the graph node to backpropagate (mean of the active terms); the per-term
/// tensors are defined only for active terms and exist for reporting
/// (EpochStats) — they share subgraphs with `total`.
struct ContrastTerms {
  Tensor total;  // L_cl
  Tensor lg;     // L_lg (Eq.17)
  Tensor gl;     // L_gl
  Tensor ll;     // L_ll
  Tensor gg;     // L_gg
};

class ContrastModule : public Module {
 public:
  /// `feature_dim` is the size of the raw query feature [h || r] (2d);
  /// `projection_dim` the sphere dimension.
  ContrastModule(int64_t feature_dim, int64_t projection_dim,
                 ContrastOptions options, Rng* rng);

  /// Projects raw features (Eq.15-16). Rows are unit-normalised.
  Tensor Project(const Tensor& features) const;

  /// Combined loss L_cl = mean of the active terms over projected views,
  /// with the raw per-term values alongside. `labels` are the queries'
  /// ground-truth object ids.
  ContrastTerms LossTerms(const Tensor& local_projected,
                          const Tensor& global_projected,
                          const std::vector<int64_t>& labels) const;

  /// Just the combined loss (LossTerms().total).
  Tensor Loss(const Tensor& local_projected, const Tensor& global_projected,
              const std::vector<int64_t>& labels) const;

  const ContrastOptions& options() const { return options_; }

 private:
  ContrastOptions options_;
  Mlp projection_;
};

}  // namespace logcl

#endif  // LOGCL_CORE_CONTRAST_H_
