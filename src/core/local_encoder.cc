#include "core/local_encoder.h"

#include "common/logging.h"
#include "common/observability.h"
#include "graph/snapshot_graph.h"
#include "tensor/ops.h"

namespace logcl {
namespace {

// Eq.7-8 over in = {R' W3, b, R', R}: U = sigmoid(in0 + in1);
// R = U*in2 + (1-U)*in3. Pure elementwise, so JIT-capturable.
Tensor TimeGateChain(const std::vector<Tensor>& in) {
  Tensor gate = ops::Sigmoid(ops::Add(in[0], in[1]));
  Tensor keep = ops::AddScalar(ops::Neg(gate), 1.0f);
  return ops::Add(ops::Mul(gate, in[2]), ops::Mul(keep, in[3]));
}

}  // namespace

LocalEncoder::LocalEncoder(int64_t dim, int64_t num_relations_with_inverse,
                           LocalEncoderOptions options, Rng* rng)
    : options_(options),
      aggregator_(options.gcn_kind, options.num_layers, dim, options.dropout,
                  rng),
      time_encoding_(dim, options.time_dim, rng),
      entity_gru_(dim, rng),
      w_query_(2 * dim, dim, rng),
      w_attention_(dim, 1, rng) {
  (void)num_relations_with_inverse;
  w_time_gate_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  b_time_gate_ =
      AddParameter(Tensor::Zeros(Shape{1, dim}, /*requires_grad=*/true));
  AddChild(&aggregator_);
  AddChild(&time_encoding_);
  AddChild(&entity_gru_);
  AddChild(&w_query_);
  AddChild(&w_attention_);
}

LocalEncoderOutput LocalEncoder::Encode(const TkgDataset& dataset, int64_t t,
                                        const Tensor& base_entities,
                                        const Tensor& base_relations,
                                        bool training, Rng* rng,
                                        int64_t history_length_override) const {
  LOGCL_CHECK_GE(t, 0);
  int64_t history_length = history_length_override > 0
                               ? history_length_override
                               : options_.history_length;
  int64_t start = std::max<int64_t>(0, t - history_length);
  // Structure cache: the inverse-augmented snapshot graph (and its CSR
  // layouts) is built once per timestamp for the dataset's lifetime.
  std::vector<const SnapshotGraph*> graphs;
  std::vector<int64_t> times;
  graphs.reserve(static_cast<size_t>(t - start));
  times.reserve(static_cast<size_t>(t - start));
  for (int64_t s = start; s < t; ++s) {
    graphs.push_back(&dataset.SnapshotGraphAt(s));
    times.push_back(s);
  }
  return EncodeSequence(graphs, times, t, base_entities, base_relations,
                        training, rng);
}

LocalEncoderOutput LocalEncoder::EncodeSequence(
    const std::vector<const SnapshotGraph*>& graphs,
    const std::vector<int64_t>& times, int64_t t,
    const Tensor& base_entities, const Tensor& base_relations, bool training,
    Rng* rng) const {
  LOGCL_TRACE_SCOPE("local_encoder");
  LOGCL_CHECK_EQ(graphs.size(), times.size());
  LocalEncoderOutput out;
  Tensor entities = base_entities;
  Tensor relations = base_relations;
  int64_t num_entities = base_entities.shape().rows();
  int64_t num_relations = base_relations.shape().rows();

  for (size_t i = 0; i < graphs.size(); ++i) {
    int64_t s = times[i];
    LOGCL_CHECK_LT(s, t);
    const SnapshotGraph& graph = *graphs[i];
    LOGCL_CHECK_EQ(graph.num_nodes, num_entities);

    // Eq.2-3: fold the time interval into the entity features.
    Tensor dynamic = options_.use_time_encoding
                         ? time_encoding_.Forward(entities, t - s)
                         : entities;
    // Eq.4: snapshot aggregation.
    Tensor aggregated =
        aggregator_.Forward(graph, dynamic, relations, training, rng);
    // Eq.5: entity evolution.
    entities = entity_gru_.Forward(entities, aggregated);

    // Eq.6: r' = mean(entities connected to r at s) + r.
    Tensor relation_input;
    if (graph.empty()) {
      relation_input = relations;
    } else {
      Tensor subject_states = ops::IndexSelectRows(entities, graph.src);
      Tensor per_relation_mean =
          ops::ScatterMeanRows(subject_states, graph.RelCsr(num_relations));
      relation_input = ops::Add(per_relation_mean, relations);
    }
    // Eq.7-8: time-gated relation update. The chain between the matmul and
    // the output is a fixed elementwise segment, so it runs through a JIT
    // capture cache (eager pass-through under LOGCL_JIT=0).
    relations = time_gate_cache_.Run(
        {ops::MatMul(relation_input, w_time_gate_), b_time_gate_,
         relation_input, relations},
        TimeGateChain);

    out.aggregated.push_back(aggregated);
    out.evolved.push_back(entities);
  }
  out.entities = entities;
  out.relations = relations;
  return out;
}

Tensor LocalEncoder::QueryRepresentations(const LocalEncoderOutput& output,
                                          const std::vector<Quadruple>& queries,
                                          bool use_attention) const {
  LOGCL_CHECK(!queries.empty());
  std::vector<int64_t> subjects;
  std::vector<int64_t> relations;
  subjects.reserve(queries.size());
  relations.reserve(queries.size());
  for (const Quadruple& q : queries) {
    subjects.push_back(q.subject);
    relations.push_back(q.relation);
  }
  Tensor subject_final = ops::IndexSelectRows(output.entities, subjects);
  int64_t num_steps = static_cast<int64_t>(output.aggregated.size());
  if (!use_attention || num_steps <= 1) {
    // Ablation "-w/o-eatt" (or degenerate 0/1-snapshot history): the final
    // evolved state is the local query representation.
    return subject_final;
  }

  // Eq.9: query vector from the query relation and the subject state.
  Tensor query_relations = ops::IndexSelectRows(output.relations, relations);
  Tensor query_vec =
      w_query_.Forward(ops::ConcatCols({query_relations, subject_final}));

  // Eq.10: one attention logit per intermediate snapshot (the final state
  // enters Eq.11 unweighted), softmax across snapshots per query.
  std::vector<Tensor> logit_columns;
  for (int64_t i = 0; i < num_steps - 1; ++i) {
    Tensor keys = ops::IndexSelectRows(output.aggregated[static_cast<size_t>(i)],
                                       subjects);
    logit_columns.push_back(
        w_attention_.Forward(ops::Add(keys, query_vec)));
  }
  Tensor alpha = logit_columns.size() == 1
                     ? Tensor()  // softmax over one column is all-ones
                     : ops::Softmax(ops::ConcatCols(logit_columns));

  // Eq.11: h = h_{t_q} + sum_i alpha_i * evolved_i.
  Tensor result = subject_final;
  for (int64_t i = 0; i < num_steps - 1; ++i) {
    Tensor values = ops::IndexSelectRows(output.evolved[static_cast<size_t>(i)],
                                         subjects);
    if (alpha.defined()) {
      Tensor column = ops::SliceCols(alpha, i, 1);
      values = ops::MulColBroadcast(values, column);
    }
    result = ops::Add(result, values);
  }
  return result;
}

}  // namespace logcl
