#include "core/logcl_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "eval/ranking.h"
#include "tensor/ops.h"

namespace logcl {

namespace {

// All queries in a batch must share one timestamp (the paper's batch is
// "the number of quadruples in each timestamp").
int64_t BatchTime(const std::vector<Quadruple>& queries) {
  LOGCL_CHECK(!queries.empty());
  int64_t t = queries.front().time;
  for (const Quadruple& q : queries) LOGCL_CHECK_EQ(q.time, t);
  return t;
}

}  // namespace

LogClModel::LogClModel(const TkgDataset* dataset, LogClConfig config)
    : TkgModel(dataset),
      config_(config),
      rng_(config.seed),
      history_(*dataset),
      local_encoder_(config.embedding_dim,
                     dataset->num_relations_with_inverse(), config.local,
                     &rng_),
      global_encoder_(config.embedding_dim, config.global, &rng_),
      contrast_(2 * config.embedding_dim, config.embedding_dim,
                config.contrast, &rng_),
      decoder_(config.embedding_dim, config.decoder, &rng_) {
  LOGCL_CHECK(config.use_local || config.use_global)
      << "at least one encoder must be enabled";
  base_entities_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_entities(), config.embedding_dim}, &rng_));
  base_relations_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), config.embedding_dim},
      &rng_));
  AddChild(&local_encoder_);
  AddChild(&global_encoder_);
  AddChild(&contrast_);
  AddChild(&decoder_);
}

Tensor LogClModel::BaseEntities() {
  if (config_.noise_stddev <= 0.0f) return base_entities_;
  Tensor noise = Tensor::RandomNormal(base_entities_.shape(),
                                      config_.noise_stddev, &rng_);
  return ops::Add(base_entities_, noise);
}

LogClModel::BatchOutput LogClModel::ForwardBatch(
    const std::vector<Quadruple>& queries, bool training) {
  int64_t t = BatchTime(queries);
  Tensor h0 = BaseEntities();
  LocalEncoderOutput local;
  if (config_.use_local) {
    local = local_encoder_.Encode(dataset(), t, h0, base_relations_, training,
                                  &rng_);
  }
  return ForwardPhase(queries, h0, local, training);
}

LogClModel::BatchOutput LogClModel::ForwardPhase(
    const std::vector<Quadruple>& queries, const Tensor& h0,
    const LocalEncoderOutput& local, bool training) {
  std::vector<int64_t> relation_ids;
  std::vector<int64_t> targets;
  relation_ids.reserve(queries.size());
  targets.reserve(queries.size());
  for (const Quadruple& q : queries) {
    relation_ids.push_back(q.relation);
    targets.push_back(q.object);
  }

  // --- Local branch (Eq.9-11; evolution shared across phases). ---
  Tensor local_query;
  if (config_.use_local) {
    local_query = local_encoder_.QueryRepresentations(
        local, queries, config_.use_entity_attention);
  }

  // --- Global branch (Eq.12-14). ---
  Tensor global_encoded;
  Tensor global_query;
  if (config_.use_global) {
    std::shared_ptr<const SnapshotGraph> subgraph =
        global_encoder_.QuerySubgraph(history_, queries,
                                      dataset().num_entities());
    global_encoded = global_encoder_.Encode(*subgraph, h0, base_relations_,
                                            training, &rng_);
    global_query = global_encoder_.QueryRepresentations(
        global_encoded, h0, queries, history_, config_.use_entity_attention);
  }

  // --- Fusion (Eq.19). The lambda trade-off applies to the *query* vector
  // fed into ConvTransE; candidates are scored against the local evolved
  // entity matrix (Eq.18's h_tq term carries no hat — it is the local-side
  // representation). ---
  Tensor fused_query;
  Tensor candidates;
  Tensor relation_matrix;
  if (config_.use_local && config_.use_global) {
    float lambda = config_.lambda;
    fused_query = ops::Add(ops::Scale(local_query, lambda),
                           ops::Scale(global_query, 1.0f - lambda));
    candidates = local.entities;
    relation_matrix = local.relations;
  } else if (config_.use_local) {
    fused_query = local_query;
    candidates = local.entities;
    relation_matrix = local.relations;
  } else {
    fused_query = global_query;
    candidates = global_encoded;
    relation_matrix = base_relations_;  // LogCL-G: static relation embedding
  }
  Tensor query_relations =
      ops::IndexSelectRows(relation_matrix, relation_ids);

  // --- Decoding (Eq.18) + entity-prediction loss (Eq.20). ---
  BatchOutput out;
  out.scores = decoder_.Score(fused_query, query_relations, candidates,
                              training, &rng_);
  out.loss = ops::CrossEntropyWithLogits(out.scores, targets);

  // --- Local-global query contrast (Eq.15-17, Eq.21). ---
  if (training && config_.use_contrast && config_.use_local &&
      config_.use_global) {
    Tensor local_features = ops::ConcatCols({local_query, query_relations});
    Tensor global_features = ops::ConcatCols(
        {global_query, ops::IndexSelectRows(base_relations_, relation_ids)});
    Tensor z_local = contrast_.Project(local_features);
    Tensor z_global = contrast_.Project(global_features);
    out.loss = ops::Add(out.loss, contrast_.Loss(z_local, z_global, targets));
  }
  return out;
}

std::vector<std::vector<float>> LogClModel::ScoreQueries(
    const std::vector<Quadruple>& queries) {
  NoGradGuard no_grad;
  BatchOutput out = ForwardBatch(queries, /*training=*/false);
  std::vector<std::vector<float>> scores;
  scores.reserve(queries.size());
  int64_t num_entities = dataset().num_entities();
  const std::vector<float>& data = out.scores.data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto begin = data.begin() + static_cast<int64_t>(i) * num_entities;
    scores.emplace_back(begin, begin + num_entities);
  }
  return scores;
}

double LogClModel::TrainEpoch(AdamOptimizer* optimizer) {
  double total_loss = 0.0;
  int64_t steps = 0;
  for (int64_t t : dataset().SplitTimestamps(Split::kTrain)) {
    if (t == 0) continue;  // no history yet
    total_loss += TrainOnTimestamp(t, optimizer);
    ++steps;
  }
  return steps > 0 ? total_loss / static_cast<double>(steps) : 0.0;
}

double LogClModel::TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
  const std::vector<Quadruple>& facts = dataset().FactsAt(t);
  if (facts.empty()) return 0.0;
  optimizer->ZeroGrad();

  // Two-phase propagation (Section III.F): the original query set and the
  // inverse query set are scored in separate forward phases, so the
  // entity-aware attention of one phase never observes the answer side of
  // the other. The query-independent snapshot evolution is shared between
  // the phases; both phase losses feed one optimization step.
  Tensor h0 = BaseEntities();
  LocalEncoderOutput local;
  if (config_.use_local) {
    local = local_encoder_.Encode(dataset(), t, h0, base_relations_,
                                  /*training=*/true, &rng_);
  }
  Tensor loss;
  int phases = 0;
  if (config_.propagation != QueryDirection::kInverseOnly) {
    BatchOutput out = ForwardPhase(facts, h0, local, /*training=*/true);
    loss = out.loss;
    ++phases;
  }
  if (config_.propagation != QueryDirection::kForwardOnly) {
    std::vector<Quadruple> inverse;
    inverse.reserve(facts.size());
    for (const Quadruple& q : facts) {
      inverse.push_back(InverseOf(q, dataset().num_base_relations()));
    }
    BatchOutput out = ForwardPhase(inverse, h0, local, /*training=*/true);
    loss = loss.defined() ? ops::Add(loss, out.loss) : out.loss;
    ++phases;
  }
  if (phases == 0) return 0.0;
  double value = loss.at(0) / phases;
  Backward(loss);
  optimizer->ClipGradNorm(config_.grad_clip_norm);
  optimizer->Step();
  return value;
}

std::vector<std::pair<int64_t, float>> LogClModel::PredictTopK(
    const Quadruple& query, int64_t k) {
  std::vector<std::vector<float>> scores = ScoreQueries({query});
  // Softmax to probabilities for the case-study rendering.
  std::vector<float>& row = scores[0];
  float max_logit = *std::max_element(row.begin(), row.end());
  double sum = 0.0;
  for (float& v : row) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (float& v : row) v = static_cast<float>(v / sum);
  std::vector<std::pair<int64_t, float>> result;
  for (int64_t id : TopK(row, k)) {
    result.emplace_back(id, row[static_cast<size_t>(id)]);
  }
  return result;
}

}  // namespace logcl
