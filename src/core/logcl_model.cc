#include "core/logcl_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/observability.h"
#include "eval/ranking.h"
#include "tensor/ops.h"

namespace logcl {

namespace {

// All queries in a batch must share one timestamp (the paper's batch is
// "the number of quadruples in each timestamp").
int64_t BatchTime(const std::vector<Quadruple>& queries) {
  LOGCL_CHECK(!queries.empty());
  int64_t t = queries.front().time;
  for (const Quadruple& q : queries) LOGCL_CHECK_EQ(q.time, t);
  return t;
}

}  // namespace

LogClModel::LogClModel(const TkgDataset* dataset, LogClConfig config)
    : TkgModel(dataset),
      config_(config),
      rng_(config.seed),
      history_(*dataset),
      local_encoder_(config.embedding_dim,
                     dataset->num_relations_with_inverse(), config.local,
                     &rng_),
      global_encoder_(config.embedding_dim, config.global, &rng_),
      contrast_(2 * config.embedding_dim, config.embedding_dim,
                config.contrast, &rng_),
      decoder_(config.embedding_dim, config.decoder, &rng_) {
  LOGCL_CHECK(config.use_local || config.use_global)
      << "at least one encoder must be enabled";
  base_entities_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_entities(), config.embedding_dim}, &rng_));
  base_relations_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), config.embedding_dim},
      &rng_));
  AddChild(&local_encoder_);
  AddChild(&global_encoder_);
  AddChild(&contrast_);
  AddChild(&decoder_);
}

Tensor LogClModel::BaseEntities(bool training) {
  if (config_.noise_stddev <= 0.0f) return base_entities_;
  // Eval mode pins the evaluation inputs: noise contamination only applies
  // to training forwards, so repeated identical eval calls are bitwise
  // equal (and never advance the RNG stream).
  if (eval_mode_ && !training) return base_entities_;
  Tensor noise = Tensor::RandomNormal(base_entities_.shape(),
                                      config_.noise_stddev, &rng_);
  return ops::Add(base_entities_, noise);
}

LogClModel::BatchOutput LogClModel::ForwardBatch(
    const std::vector<Quadruple>& queries, bool training) {
  int64_t t = BatchTime(queries);
  Tensor h0 = BaseEntities(training);
  LocalEncoderOutput local;
  if (config_.use_local) {
    local = local_encoder_.Encode(dataset(), t, h0, base_relations_, training,
                                  &rng_);
  }
  return ForwardPhase(queries, h0, local, training);
}

LogClModel::ScoreParts LogClModel::ScorePhase(
    const std::vector<Quadruple>& queries, const Tensor& h0,
    const LocalEncoderOutput& local, const HistoryIndex& history,
    bool training, bool use_subgraph_cache, Rng* rng,
    bool decode_only) const {
  BatchTime(queries);  // all queries must share one timestamp
  std::vector<int64_t> relation_ids;
  relation_ids.reserve(queries.size());
  for (const Quadruple& q : queries) relation_ids.push_back(q.relation);

  ScoreParts parts;

  // --- Local branch (Eq.9-11; evolution shared across phases). ---
  if (config_.use_local) {
    parts.local_query = local_encoder_.QueryRepresentations(
        local, queries, config_.use_entity_attention);
  }

  // --- Global branch (Eq.12-14). ---
  Tensor global_encoded;
  if (config_.use_global) {
    // The cross-epoch subgraph cache is single-threaded training state; the
    // concurrent serving path builds the (identical) subgraph fresh.
    std::shared_ptr<const SnapshotGraph> subgraph =
        use_subgraph_cache
            ? global_encoder_.QuerySubgraph(history, queries,
                                            dataset().num_entities())
            : std::make_shared<const SnapshotGraph>(
                  global_encoder_.BuildQuerySubgraph(
                      history, queries, dataset().num_entities()));
    global_encoded = global_encoder_.Encode(*subgraph, h0, base_relations_,
                                            training, rng);
    parts.global_query = global_encoder_.QueryRepresentations(
        global_encoded, h0, queries, history, config_.use_entity_attention);
  }

  // --- Fusion (Eq.19). The lambda trade-off applies to the *query* vector
  // fed into ConvTransE; candidates are scored against the local evolved
  // entity matrix (Eq.18's h_tq term carries no hat — it is the local-side
  // representation). ---
  Tensor fused_query;
  Tensor candidates;
  Tensor relation_matrix;
  if (config_.use_local && config_.use_global) {
    float lambda = config_.lambda;
    fused_query = fusion_cache_.Run(
        {parts.local_query, parts.global_query},
        [lambda](const std::vector<Tensor>& in) {
          return ops::Add(ops::Scale(in[0], lambda),
                          ops::Scale(in[1], 1.0f - lambda));
        });
    candidates = local.entities;
    relation_matrix = local.relations;
  } else if (config_.use_local) {
    fused_query = parts.local_query;
    candidates = local.entities;
    relation_matrix = local.relations;
  } else {
    fused_query = parts.global_query;
    candidates = global_encoded;
    relation_matrix = base_relations_;  // LogCL-G: static relation embedding
  }
  parts.query_relations = ops::IndexSelectRows(relation_matrix, relation_ids);

  // --- Decoding (Eq.18). ---
  if (decode_only) {
    // ConvTransE::Score is exactly Decode + candidate dot products, so the
    // decoded vectors here match the ones inside a full Score bitwise.
    parts.decoded =
        decoder_.Decode(fused_query, parts.query_relations, training, rng);
    return parts;
  }
  parts.scores = decoder_.Score(fused_query, parts.query_relations,
                                candidates, training, rng);
  return parts;
}

LogClModel::BatchOutput LogClModel::ForwardPhase(
    const std::vector<Quadruple>& queries, const Tensor& h0,
    const LocalEncoderOutput& local, bool training) {
  ScoreParts parts = ScorePhase(queries, h0, local, history_, training,
                                /*use_subgraph_cache=*/true, &rng_);
  std::vector<int64_t> targets;
  targets.reserve(queries.size());
  for (const Quadruple& q : queries) targets.push_back(q.object);

  // --- Entity-prediction loss (Eq.20). ---
  BatchOutput out;
  out.scores = parts.scores;
  out.loss = ops::CrossEntropyWithLogits(out.scores, targets);
  if (training) out.task = out.loss.at(0);

  // --- Local-global query contrast (Eq.15-17, Eq.21). ---
  if (training && config_.use_contrast && config_.use_local &&
      config_.use_global) {
    std::vector<int64_t> relation_ids;
    relation_ids.reserve(queries.size());
    for (const Quadruple& q : queries) relation_ids.push_back(q.relation);
    Tensor local_features =
        ops::ConcatCols({parts.local_query, parts.query_relations});
    Tensor global_features = ops::ConcatCols(
        {parts.global_query,
         ops::IndexSelectRows(base_relations_, relation_ids)});
    Tensor z_local = contrast_.Project(local_features);
    Tensor z_global = contrast_.Project(global_features);
    ContrastTerms terms = contrast_.LossTerms(z_local, z_global, targets);
    out.loss = ops::Add(out.loss, terms.total);
    out.contrast = terms.total.at(0);
    if (terms.lg.defined()) out.lg = terms.lg.at(0);
    if (terms.gl.defined()) out.gl = terms.gl.at(0);
    if (terms.ll.defined()) out.ll = terms.ll.at(0);
    if (terms.gg.defined()) out.gg = terms.gg.at(0);
  }
  return out;
}

LogClModel::EvolutionState LogClModel::PrecomputeEvolution(int64_t t) const {
  LOGCL_CHECK(eval_mode_ || config_.noise_stddev <= 0.0f)
      << "evolution precompute requires deterministic eval inputs; call "
         "SetEvalMode(true) on models configured with noise injection";
  NoGradGuard no_grad;
  EvolutionState state;
  state.time = t;
  state.base_entities = base_entities_;
  if (config_.use_local) {
    state.local = local_encoder_.Encode(dataset(), t, base_entities_,
                                        base_relations_, /*training=*/false,
                                        /*rng=*/nullptr);
  }
  return state;
}

LogClModel::EvolutionState LogClModel::PrecomputeEvolution(
    const std::vector<const SnapshotGraph*>& graphs,
    const std::vector<int64_t>& times, int64_t t) const {
  LOGCL_CHECK(eval_mode_ || config_.noise_stddev <= 0.0f)
      << "evolution precompute requires deterministic eval inputs; call "
         "SetEvalMode(true) on models configured with noise injection";
  NoGradGuard no_grad;
  EvolutionState state;
  state.time = t;
  state.base_entities = base_entities_;
  if (config_.use_local) {
    state.local = local_encoder_.EncodeSequence(
        graphs, times, t, base_entities_, base_relations_,
        /*training=*/false, /*rng=*/nullptr);
  }
  return state;
}

Tensor LogClModel::ScoreWithEvolution(const std::vector<Quadruple>& queries,
                                      const EvolutionState& evolution,
                                      const HistoryIndex& history) const {
  NoGradGuard no_grad;
  ScoreParts parts =
      ScorePhase(queries, evolution.base_entities, evolution.local, history,
                 /*training=*/false, /*use_subgraph_cache=*/false,
                 /*rng=*/nullptr);
  return parts.scores;
}

Tensor LogClModel::DecodeWithEvolution(const std::vector<Quadruple>& queries,
                                       const EvolutionState& evolution,
                                       const HistoryIndex& history) const {
  NoGradGuard no_grad;
  ScoreParts parts =
      ScorePhase(queries, evolution.base_entities, evolution.local, history,
                 /*training=*/false, /*use_subgraph_cache=*/false,
                 /*rng=*/nullptr, /*decode_only=*/true);
  return parts.decoded;
}

std::vector<std::vector<float>> LogClModel::ScoreQueries(
    const std::vector<Quadruple>& queries) {
  NoGradGuard no_grad;
  BatchOutput out = ForwardBatch(queries, /*training=*/false);
  std::vector<std::vector<float>> scores;
  scores.reserve(queries.size());
  int64_t num_entities = dataset().num_entities();
  const std::vector<float>& data = out.scores.data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto begin = data.begin() + static_cast<int64_t>(i) * num_entities;
    scores.emplace_back(begin, begin + num_entities);
  }
  return scores;
}

EpochStats LogClModel::TrainEpoch(AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_epoch");
  uint64_t epoch_start = MonotonicNowNs();
  EpochStats epoch;
  for (int64_t t : dataset().SplitTimestamps(Split::kTrain)) {
    if (t == 0) continue;  // no history yet
    epoch.AccumulateStep(TrainStep(t, optimizer));
  }
  epoch.FinalizeMeans();
  epoch.seconds_total =
      static_cast<double>(MonotonicNowNs() - epoch_start) * 1e-9;
  return epoch;
}

double LogClModel::TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
  return TrainStep(t, optimizer).loss;
}

EpochStats LogClModel::TrainStep(int64_t t, AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_step");
  EpochStats step;
  step.steps = 1;  // every visited timestamp counts toward the epoch mean
  const std::vector<Quadruple>& facts = dataset().FactsAt(t);
  if (facts.empty()) return step;
  uint64_t step_start = MonotonicNowNs();
  optimizer->ZeroGrad();
  step = ForwardBackwardOnFacts(facts, t);
  {
    LOGCL_TRACE_SCOPE("optimizer");
    uint64_t optimizer_start = MonotonicNowNs();
    step.grad_norm = optimizer->ClipGradNorm(config_.grad_clip_norm);
    optimizer->Step();
    step.seconds_optimizer =
        static_cast<double>(MonotonicNowNs() - optimizer_start) * 1e-9;
  }
  step.seconds_total =
      static_cast<double>(MonotonicNowNs() - step_start) * 1e-9;
  return step;
}

EpochStats LogClModel::ForwardBackwardOnFacts(
    const std::vector<Quadruple>& facts, int64_t t) {
  EpochStats step;
  step.steps = 1;  // every visited timestamp counts toward the epoch mean
  if (facts.empty()) return step;

  Tensor h0 = BaseEntities(/*training=*/true);
  LocalEncoderOutput local;
  if (config_.use_local) {
    LOGCL_TRACE_SCOPE("local_evolution");
    uint64_t local_start = MonotonicNowNs();
    local = local_encoder_.Encode(dataset(), t, h0, base_relations_,
                                  /*training=*/true, &rng_);
    step.seconds_local =
        static_cast<double>(MonotonicNowNs() - local_start) * 1e-9;
  }
  return RunTrainingPhases(facts, h0, local, std::move(step));
}

EpochStats LogClModel::ForwardBackwardOnFacts(
    const std::vector<Quadruple>& facts,
    const std::vector<const SnapshotGraph*>& graphs,
    const std::vector<int64_t>& times, int64_t t) {
  EpochStats step;
  step.steps = 1;
  if (facts.empty()) return step;

  Tensor h0 = BaseEntities(/*training=*/true);
  LocalEncoderOutput local;
  if (config_.use_local) {
    LOGCL_TRACE_SCOPE("local_evolution");
    uint64_t local_start = MonotonicNowNs();
    local = local_encoder_.EncodeSequence(graphs, times, t, h0,
                                          base_relations_,
                                          /*training=*/true, &rng_);
    step.seconds_local =
        static_cast<double>(MonotonicNowNs() - local_start) * 1e-9;
  }
  return RunTrainingPhases(facts, h0, local, std::move(step));
}

EpochStats LogClModel::RunTrainingPhases(const std::vector<Quadruple>& facts,
                                         const Tensor& h0,
                                         const LocalEncoderOutput& local,
                                         EpochStats step) {
  // Two-phase propagation (Section III.F): the original query set and the
  // inverse query set are scored in separate forward phases, so the
  // entity-aware attention of one phase never observes the answer side of
  // the other. The query-independent snapshot evolution is shared between
  // the phases; both phase losses feed one optimization step.
  Tensor loss;
  int phases = 0;
  double task = 0.0, contrast = 0.0, lg = 0.0, gl = 0.0, ll = 0.0, gg = 0.0;
  uint64_t forward_start = MonotonicNowNs();
  if (config_.propagation != QueryDirection::kInverseOnly) {
    LOGCL_TRACE_SCOPE("forward_phase");
    BatchOutput out = ForwardPhase(facts, h0, local, /*training=*/true);
    loss = out.loss;
    task += out.task;
    contrast += out.contrast;
    lg += out.lg;
    gl += out.gl;
    ll += out.ll;
    gg += out.gg;
    ++phases;
  }
  if (config_.propagation != QueryDirection::kForwardOnly) {
    LOGCL_TRACE_SCOPE("forward_phase");
    std::vector<Quadruple> inverse;
    inverse.reserve(facts.size());
    for (const Quadruple& q : facts) {
      inverse.push_back(InverseOf(q, dataset().num_base_relations()));
    }
    BatchOutput out = ForwardPhase(inverse, h0, local, /*training=*/true);
    loss = loss.defined() ? ops::Add(loss, out.loss) : out.loss;
    task += out.task;
    contrast += out.contrast;
    lg += out.lg;
    gl += out.gl;
    ll += out.ll;
    gg += out.gg;
    ++phases;
  }
  if (phases == 0) return step;
  step.seconds_forward =
      static_cast<double>(MonotonicNowNs() - forward_start) * 1e-9;
  double inv_phases = 1.0 / static_cast<double>(phases);
  step.loss = loss.at(0) * inv_phases;
  step.loss_task = task * inv_phases;
  step.loss_contrast = contrast * inv_phases;
  step.loss_lg = lg * inv_phases;
  step.loss_gl = gl * inv_phases;
  step.loss_ll = ll * inv_phases;
  step.loss_gg = gg * inv_phases;
  {
    LOGCL_TRACE_SCOPE("backward");
    uint64_t backward_start = MonotonicNowNs();
    Backward(loss);
    step.seconds_backward =
        static_cast<double>(MonotonicNowNs() - backward_start) * 1e-9;
  }
  return step;
}

void LogClModel::ExtendHistory(const std::vector<Quadruple>& facts) {
  if (facts.empty()) return;
  history_.AddFacts(facts);
  // The subgraph cache keys against the index contents; it only
  // self-invalidates when a *different* index instance shows up, so an
  // in-place extension must drop it explicitly.
  global_encoder_.InvalidateSubgraphCache();
}

double LogClModel::SparseStepOnGradients(const EpochStats& step,
                                         SparseAdamOptimizer* optimizer) {
  std::vector<std::vector<int64_t>> touched;
  touched.reserve(optimizer->parameters().size());
  for (const Tensor& p : optimizer->parameters()) {
    touched.push_back(SparseAdamOptimizer::NonZeroGradRows(p));
  }
  optimizer->Step(touched);
  return step.loss;
}

double LogClModel::TrainOnTimestampSparse(int64_t t,
                                          SparseAdamOptimizer* optimizer) {
  const std::vector<Quadruple>& facts = dataset().FactsAt(t);
  if (facts.empty()) return 0.0;
  optimizer->ZeroGrad();
  EpochStats step = ForwardBackwardOnFacts(facts, t);
  return SparseStepOnGradients(step, optimizer);
}

double LogClModel::TrainOnStreamFacts(
    const std::vector<Quadruple>& facts,
    const std::vector<const SnapshotGraph*>& graphs,
    const std::vector<int64_t>& times, int64_t t,
    SparseAdamOptimizer* optimizer) {
  if (facts.empty()) return 0.0;
  optimizer->ZeroGrad();
  EpochStats step = ForwardBackwardOnFacts(facts, graphs, times, t);
  return SparseStepOnGradients(step, optimizer);
}

std::vector<std::pair<int64_t, float>> LogClModel::PredictTopK(
    const Quadruple& query, int64_t k) {
  std::vector<std::vector<float>> scores = ScoreQueries({query});
  // Partial selection over the logits; probabilities match a full softmax
  // bitwise for the selected k (see TopKSoftmax).
  const std::vector<float>& row = scores[0];
  return TopKSoftmax(row.data(), static_cast<int64_t>(row.size()), k);
}

}  // namespace logcl
