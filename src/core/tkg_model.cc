#include "core/tkg_model.h"

#include "common/logging.h"
#include "common/observability.h"
#include "common/stringpiece.h"
#include "eval/ranking.h"

namespace logcl {

void EpochStats::AccumulateStep(const EpochStats& step) {
  steps += step.steps;
  loss += step.loss;
  loss_task += step.loss_task;
  loss_contrast += step.loss_contrast;
  loss_aux += step.loss_aux;
  loss_lg += step.loss_lg;
  loss_gl += step.loss_gl;
  loss_ll += step.loss_ll;
  loss_gg += step.loss_gg;
  grad_norm += step.grad_norm;
  seconds_total += step.seconds_total;
  seconds_local += step.seconds_local;
  seconds_forward += step.seconds_forward;
  seconds_backward += step.seconds_backward;
  seconds_optimizer += step.seconds_optimizer;
}

void EpochStats::FinalizeMeans() {
  if (steps == 0) return;
  double inv = 1.0 / static_cast<double>(steps);
  loss *= inv;
  loss_task *= inv;
  loss_contrast *= inv;
  loss_aux *= inv;
  loss_lg *= inv;
  loss_gl *= inv;
  loss_ll *= inv;
  loss_gg *= inv;
  grad_norm *= inv;
}

std::string EpochStats::ToString() const {
  std::string out = StrFormat(
      "loss=%.4f (task=%.4f contrast=%.4f", loss, loss_task, loss_contrast);
  if (loss_aux != 0.0) out += StrFormat(" aux=%.4f", loss_aux);
  out += StrFormat(") |g|=%.3f %.2fs", grad_norm, seconds_total);
  if (seconds_local > 0.0 || seconds_backward > 0.0) {
    out += StrFormat(" [local=%.2fs fwd=%.2fs bwd=%.2fs opt=%.2fs]",
                     seconds_local, seconds_forward, seconds_backward,
                     seconds_optimizer);
  }
  return out;
}

TkgModel::TkgModel(const TkgDataset* dataset) : dataset_(dataset) {
  LOGCL_CHECK(dataset != nullptr);
}

EvalResult TkgModel::Evaluate(Split split, const TimeAwareFilter* filter,
                              QueryDirection direction) {
  LOGCL_TRACE_SCOPE("evaluate");
  MetricsAccumulator metrics;
  for (int64_t t : dataset_->SplitTimestamps(split)) {
    std::vector<Quadruple> facts = dataset_->SplitFactsAt(split, t);
    if (facts.empty()) continue;

    auto score_batch = [&](const std::vector<Quadruple>& queries) {
      std::vector<std::vector<float>> scores = ScoreQueries(queries);
      LOGCL_CHECK_EQ(scores.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const Quadruple& q = queries[i];
        if (filter != nullptr) {
          metrics.AddRank(RankOfTarget(
              scores[i], q.object, filter->Answers(q.subject, q.relation, t)));
        } else {
          metrics.AddRank(RankOfTarget(scores[i], q.object));
        }
      }
    };

    if (direction != QueryDirection::kInverseOnly) {
      score_batch(facts);
    }
    if (direction != QueryDirection::kForwardOnly) {
      std::vector<Quadruple> inverse;
      inverse.reserve(facts.size());
      for (const Quadruple& q : facts) {
        inverse.push_back(InverseOf(q, dataset_->num_base_relations()));
      }
      score_batch(inverse);
    }
  }
  return metrics.Result();
}

void FitModel(TkgModel* model, int64_t epochs, float learning_rate,
              bool verbose) {
  LOGCL_CHECK(model != nullptr);
  AdamOptions options;
  options.learning_rate = learning_rate;
  AdamOptimizer optimizer(model->Parameters(), options);
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    EpochStats stats = model->TrainEpoch(&optimizer);
    if (verbose) {
      LOGCL_LOG(Info) << model->name() << " epoch " << epoch + 1 << "/"
                      << epochs << " " << stats.ToString();
    }
  }
}

}  // namespace logcl
