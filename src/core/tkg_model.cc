#include "core/tkg_model.h"

#include "common/logging.h"
#include "eval/ranking.h"

namespace logcl {

TkgModel::TkgModel(const TkgDataset* dataset) : dataset_(dataset) {
  LOGCL_CHECK(dataset != nullptr);
}

EvalResult TkgModel::Evaluate(Split split, const TimeAwareFilter* filter,
                              QueryDirection direction) {
  MetricsAccumulator metrics;
  for (int64_t t : dataset_->SplitTimestamps(split)) {
    std::vector<Quadruple> facts = dataset_->SplitFactsAt(split, t);
    if (facts.empty()) continue;

    auto score_batch = [&](const std::vector<Quadruple>& queries) {
      std::vector<std::vector<float>> scores = ScoreQueries(queries);
      LOGCL_CHECK_EQ(scores.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const Quadruple& q = queries[i];
        if (filter != nullptr) {
          metrics.AddRank(RankOfTarget(
              scores[i], q.object, filter->Answers(q.subject, q.relation, t)));
        } else {
          metrics.AddRank(RankOfTarget(scores[i], q.object));
        }
      }
    };

    if (direction != QueryDirection::kInverseOnly) {
      score_batch(facts);
    }
    if (direction != QueryDirection::kForwardOnly) {
      std::vector<Quadruple> inverse;
      inverse.reserve(facts.size());
      for (const Quadruple& q : facts) {
        inverse.push_back(InverseOf(q, dataset_->num_base_relations()));
      }
      score_batch(inverse);
    }
  }
  return metrics.Result();
}

void FitModel(TkgModel* model, int64_t epochs, float learning_rate,
              bool verbose) {
  LOGCL_CHECK(model != nullptr);
  AdamOptions options;
  options.learning_rate = learning_rate;
  AdamOptimizer optimizer(model->Parameters(), options);
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    double loss = model->TrainEpoch(&optimizer);
    if (verbose) {
      LOGCL_LOG(Info) << model->name() << " epoch " << epoch + 1 << "/"
                      << epochs << " loss=" << loss;
    }
  }
}

}  // namespace logcl
