// Lightweight logging and invariant-checking macros for the logcl library.
//
// Programmer errors (shape mismatches, out-of-range ids, broken invariants)
// abort via CHECK-style macros; recoverable conditions (I/O, parsing) are
// reported through logcl::Status instead.

#ifndef LOGCL_COMMON_LOGGING_H_
#define LOGCL_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace logcl {

/// Severity levels for LOG(...).
enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal_logging {

/// Stream-style message collector; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Sink used by CHECK failures: always fatal.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  // Destruction prints the message and aborts (via the fatal LogMessage).
  ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return message_.stream(); }

 private:
  LogMessage message_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is printed (default: kInfo).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace logcl

#define LOGCL_LOG(severity)                                               \
  ::logcl::internal_logging::LogMessage(::logcl::LogSeverity::k##severity, \
                                        __FILE__, __LINE__)               \
      .stream()

#define LOGCL_CHECK(condition)                                           \
  if (condition) {                                                       \
  } else /* NOLINT */                                                    \
    ::logcl::internal_logging::CheckFailure(#condition, __FILE__, __LINE__) \
        .stream()

#define LOGCL_CHECK_EQ(a, b) LOGCL_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define LOGCL_CHECK_NE(a, b) LOGCL_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define LOGCL_CHECK_LT(a, b) LOGCL_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define LOGCL_CHECK_LE(a, b) LOGCL_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define LOGCL_CHECK_GT(a, b) LOGCL_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define LOGCL_CHECK_GE(a, b) LOGCL_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // LOGCL_COMMON_LOGGING_H_
