// Deterministic pseudo-random number generation used across the library.
//
// All stochastic components (parameter init, dropout, synthetic data,
// Gaussian noise injection) draw from logcl::Rng so that every experiment is
// reproducible from a single seed.

#ifndef LOGCL_COMMON_RNG_H_
#define LOGCL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace logcl {

/// SplitMix64-based PRNG. Small, fast, seedable, and with a Split() operation
/// that derives independent child streams (used to give each module its own
/// stream so adding randomness in one place never perturbs another).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Derives an independent child generator.
  Rng Split();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

 private:
  uint64_t state_;
  // Box-Muller produces pairs; cache the second value.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace logcl

#endif  // LOGCL_COMMON_RNG_H_
