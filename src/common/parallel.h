// Parallel execution runtime: a lazily-initialised persistent worker pool
// shared by every compute kernel in the repo.
//
// Design notes:
//  - Pool size comes from SetNumThreads(), else the LOGCL_NUM_THREADS env
//    var, else std::thread::hardware_concurrency(). The count includes the
//    calling thread, so SetNumThreads(1) means "no workers, run inline".
//  - ParallelFor uses *static* range partitioning: [begin, end) is split
//    into at most GetNumThreads() contiguous sub-ranges of near-equal size
//    (each at least `grain` indices, except possibly the last), so the
//    split is deterministic for a given thread count. Callers must write
//    only to locations owned by the indices of their sub-range; under that
//    contract the result is bitwise-identical at any thread count.
//  - ParallelReduce uses *fixed* chunking instead: chunk boundaries depend
//    only on (range, grain), never on the thread count, and per-chunk
//    partials are combined in ascending chunk order. This makes reductions
//    bitwise reproducible run-to-run AND across thread counts, which is
//    what the 1-vs-N determinism tests assert.
//  - Nested parallel calls (from inside a ParallelFor body) run inline on
//    the calling thread; the decomposition contracts above are unaffected.
//  - Per-thread fast path for memory: worker threads recycle kernel scratch
//    through the tensor buffer pool's thread-local caches (see
//    tensor/buffer_pool.h), so per-shard PooledBuffer scratch inside
//    ParallelFor bodies is allocation- and lock-free in steady state. The
//    ParallelFor bounds array itself is stack-allocated for pools <= 64
//    threads for the same reason.

#ifndef LOGCL_COMMON_PARALLEL_H_
#define LOGCL_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace logcl {

/// Threads the pool targets for top-level parallel regions (>= 1, includes
/// the calling thread).
int GetNumThreads();

/// Resizes the pool; n <= 0 restores the default (LOGCL_NUM_THREADS env var
/// or hardware concurrency). Joins existing workers, so it must not be
/// called while a parallel region is running.
void SetNumThreads(int n);

/// True while the calling thread is executing inside a parallel region (a
/// pool-dispatched ParallelFor/RunChunks body). Nested parallel calls run
/// inline in that state; the autograd engine checks it so a Backward()
/// issued from inside a kernel never tries to start a pooled phase.
bool InParallelRegion();

namespace internal_parallel {

/// Executes chunk_fn(c) for c in [0, num_chunks), distributing chunks over
/// the pool (in order when run serially).
void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn);

/// Type-erased ParallelFor body for ranges that may dispatch to the pool.
void ParallelForErased(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t)>& fn);

}  // namespace internal_parallel

/// Runs fn(sub_begin, sub_end) over a static partition of [begin, end); see
/// the file comment for the determinism contract. fn runs on the calling
/// thread when the range is empty, shorter than `grain`, the pool has one
/// thread, or the call is nested inside another parallel region. Ranges no
/// longer than `grain` always produce one part, so they run inline here
/// without ever type-erasing `fn` — small ops on the autograd hot path pay
/// no std::function construction or pool bookkeeping.
template <typename Fn>
inline void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (end - begin <= std::max<int64_t>(1, grain)) {
    fn(begin, end);
    return;
  }
  internal_parallel::ParallelForErased(begin, end, grain, fn);
}

/// Chunked reduction with a thread-count-invariant result. [begin, end) is
/// cut into ceil(range / grain) fixed chunks; `map(chunk_begin, chunk_end)`
/// produces one partial per chunk (possibly concurrently), and partials are
/// folded left-to-right with `combine(acc, partial)` in chunk order.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  if (begin >= end) return identity;
  grain = std::max<int64_t>(1, grain);
  int64_t range = end - begin;
  int64_t num_chunks = (range + grain - 1) / grain;
  std::vector<T> partials(static_cast<size_t>(num_chunks), identity);
  internal_parallel::RunChunks(num_chunks, [&](int64_t c) {
    int64_t cb = begin + c * grain;
    int64_t ce = std::min(end, cb + grain);
    partials[static_cast<size_t>(c)] = map(cb, ce);
  });
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace logcl

#endif  // LOGCL_COMMON_PARALLEL_H_
