#include "common/stringpiece.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace logcl {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty integer literal");
  }
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("bad integer literal: '" + trimmed + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty float literal");
  }
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("bad float literal: '" + trimmed + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace logcl
