// Unified observability layer: a process-wide metrics registry (counters,
// gauges, log-bucketed histograms) plus a scoped hierarchical tracer, shared
// by every subsystem (tensor pool, parallel runtime, encoders, decoder,
// trainer, eval, serving engine) and by the exporters benches/tests use.
//
// Design notes:
//  - Counters and histograms follow the single-writer stat-block pattern of
//    tensor/buffer_pool.h: each thread owns a shard of plain-store atomic
//    cells (no RMW, no lock on the hot path); Snapshot()/DumpMetrics() merge
//    all shards on read. Totals are exact once writers are quiescent, which
//    is when tests and benchmarks read them. Gauges are process-global
//    atomics (set semantics do not shard).
//  - Histograms use fixed log-spaced buckets: 8 sub-buckets per power of
//    two (12.5% resolution), values 0..7 exact, covering up to 2^40. Count,
//    sum and max ride along, so Mean()/Percentile() need no raw samples.
//  - The tracer (LOGCL_TRACE_SCOPE("name")) records wall time in
//    nanoseconds into a histogram named `logcl.trace.<path>`, where <path>
//    is the '/'-joined chain of enclosing scopes on the calling thread —
//    nesting builds the hierarchy, so the same leaf name under different
//    parents yields distinct metrics. Path resolution is cached per thread
//    keyed by (parent, name-literal), so steady state is one hash lookup
//    and two clock reads per scope.
//  - LOGCL_OBSERVABILITY=0 disables recording: every handle write and scope
//    entry reduces to one relaxed load + branch, with zero allocation (the
//    disabled-mode tests assert this via the intern counters).
//  - Subsystems whose counters predate the registry (buffer pool, inference
//    engine) publish through registered *sources*: callbacks invoked at
//    snapshot time that append their exact counters under the registry
//    naming convention (logcl.pool.*, logcl.serve.*). See DESIGN.md §12 for
//    the full metric name schema.
//  - Exporters: DumpMetrics(ostream, kText|kJson). LOGCL_METRICS_DUMP=text
//    (or =json) plus EnableMetricsDumpAtExit() arranges an atexit dump to
//    stderr or to LOGCL_METRICS_DUMP_FILE.

#ifndef LOGCL_COMMON_OBSERVABILITY_H_
#define LOGCL_COMMON_OBSERVABILITY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace logcl {

/// True when metric recording and tracing are active (default; the
/// LOGCL_OBSERVABILITY=0 env var or SetObservabilityEnabled(false) disable).
bool ObservabilityEnabled();
void SetObservabilityEnabled(bool enabled);

enum class MetricKind { kCounter, kGauge, kHistogram };
enum class MetricsFormat { kText, kJson };

struct MetricsInternal;  // implementation access to handle internals

/// Fixed log-bucket layout shared by every histogram: values 0..7 land in
/// exact unit buckets; beyond that each power of two is split into 8
/// sub-buckets (12.5% resolution) up to 2^40, the last bucket absorbing
/// anything larger.
struct HistogramBuckets {
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;         // 8
  static constexpr int kFirstExact = kSubBuckets;           // values 0..7
  static constexpr int kMaxOctave = 40;
  static constexpr int kNumBuckets =
      kFirstExact + (kMaxOctave - kSubBits) * kSubBuckets;  // 304

  /// Bucket index for a recorded value (monotonic in `value`).
  static int Index(uint64_t value);
  /// Inclusive lower / exclusive upper bound of bucket `index`.
  static uint64_t Lower(int index);
  static uint64_t Upper(int index);
};

/// Merged view of one histogram (all shards summed).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // HistogramBuckets::kNumBuckets entries

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Linear interpolation inside the target log bucket; `p` in [0, 1].
  /// Within 12.5% of the true sample percentile by construction.
  double Percentile(double p) const;

  void Merge(const HistogramSnapshot& other);
};

/// One metric in a snapshot. `value` carries counters, `gauge` gauges,
/// `histogram` histograms (per `kind`).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;
  int64_t gauge = 0;
  HistogramSnapshot histogram;
};

/// Point-in-time merge of every registered metric and source, sorted by
/// name with duplicates (e.g. two engine instances) combined.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(std::string_view name) const;
  /// 0 / empty when the metric is absent.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  HistogramSnapshot HistogramValue(std::string_view name) const;
};

/// Monotonic counter handle. Obtained once from the registry (pointers are
/// stable for the process lifetime) and bumped lock-free thereafter.
class Counter {
 public:
  void Add(uint64_t n);
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  friend struct MetricsInternal;
  Counter() = default;
  uint32_t offset_ = 0;
};

/// Last-value gauge (process-global; concurrent Set is last-writer-wins).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  friend struct MetricsInternal;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Log-bucket histogram handle; Record is lock-free (single-writer shard).
class Histogram {
 public:
  void Record(uint64_t value);

 private:
  friend class MetricsRegistry;
  friend struct MetricsInternal;
  Histogram() = default;
  uint32_t offset_ = 0;
};

/// The process-wide registry. Handle getters intern by name (same name ->
/// same handle) and are cheap enough for function-local-static caching at
/// instrumentation sites; recording through a handle never locks.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Interns `name` (creating the metric on first use) and returns a stable
  /// handle. Asking for an existing name with a different kind aborts.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Registers a callback appending externally-maintained metrics (exact
  /// subsystem counters like the buffer pool's) to every snapshot. Returns
  /// an id for UnregisterSource (instance-lifetime sources, e.g. engines).
  using SourceFn = std::function<void(std::vector<MetricValue>*)>;
  int64_t RegisterSource(SourceFn fn);
  void UnregisterSource(int64_t id);

  /// Merges every shard and source into a sorted snapshot. Exact for
  /// quiescent writers; concurrent writers may donate or withhold a tick.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all counter/histogram cells (writers must be quiescent).
  /// Gauges and sources are live views and are left untouched.
  void ResetForTest();

  /// Number of metrics interned so far (test hook for the disabled-mode
  /// zero-allocation contract).
  uint64_t MetricCountForTest() const;

 private:
  MetricsRegistry() = default;
};

/// The registry singleton, short form.
inline MetricsRegistry& Metrics() { return MetricsRegistry::Get(); }

/// Writes a snapshot of every metric to `os`. kText: one aligned line per
/// metric. kJson: {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// with count/sum/mean/p50/p99/max plus non-empty [lower, count] buckets.
void DumpMetrics(std::ostream& os, MetricsFormat format);

/// When LOGCL_METRICS_DUMP=text|json|1 (1 = text), registers an atexit hook
/// dumping all metrics to LOGCL_METRICS_DUMP_FILE (or stderr). Idempotent;
/// returns true when a dump was armed. Binaries call this once near the top
/// of main() — benches do via bench::InitObservability().
bool EnableMetricsDumpAtExit();

/// RAII wall-time scope; see the file comment. `name` must be a string
/// literal (or otherwise outlive the process) — path caching keys on the
/// pointer. Near-zero cost when observability is disabled.
class TraceScope {
 public:
  explicit TraceScope(const char* name);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Histogram* histogram_ = nullptr;  // null when disabled at entry
  uint64_t start_ns_ = 0;
};

#define LOGCL_TRACE_CONCAT_(a, b) a##b
#define LOGCL_TRACE_CONCAT(a, b) LOGCL_TRACE_CONCAT_(a, b)
/// Opens a trace scope for the rest of the enclosing block.
#define LOGCL_TRACE_SCOPE(name) \
  ::logcl::TraceScope LOGCL_TRACE_CONCAT(logcl_trace_scope_, __LINE__)(name)

/// RAII timer recording elapsed microseconds into `histogram` on scope exit
/// (serving latencies, bench phases). No-op when observability is disabled
/// or `histogram` is null.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* histogram);
  ~ScopedTimerUs();

  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  uint64_t start_ns_ = 0;
};

/// Test hooks: trace-stack depth of the calling thread, and the number of
/// distinct trace paths interned process-wide (each interning allocates, so
/// a constant count across disabled-mode scopes proves zero allocation).
int64_t TraceDepthForTest();
uint64_t TraceInternCountForTest();

/// Monotonic nanosecond clock shared by the tracer and timers.
uint64_t MonotonicNowNs();

}  // namespace logcl

#endif  // LOGCL_COMMON_OBSERVABILITY_H_
