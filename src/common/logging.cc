#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace logcl {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity()) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
                 line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

CheckFailure::CheckFailure(const char* condition, const char* file, int line)
    : message_(LogSeverity::kFatal, file, line) {
  message_.stream() << "Check failed: " << condition << " ";
}

CheckFailure::~CheckFailure() {
  // The fatal LogMessage member is destroyed after this body runs; its
  // destructor prints the collected message and aborts, so this destructor
  // never returns.
}

}  // namespace internal_logging
}  // namespace logcl
