#include "common/observability.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/runtime_config.h"
#include "common/stringpiece.h"

namespace logcl {

// Descriptors live here (not the anonymous namespace) so their by-value
// handle members can reach the handles' private constructors and offsets.
struct MetricsInternal {
  struct Descriptor {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    uint32_t offset = 0;  // first cell (counters/histograms)
    uint32_t cells = 0;   // 1 for counters, kHistCells for histograms
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  static void BindOffsets(Descriptor* d) {
    d->counter.offset_ = d->offset;
    d->histogram.offset_ = d->offset;
  }
};

namespace {

using Descriptor = MetricsInternal::Descriptor;

// Cells per histogram: count, sum, max, then the buckets.
constexpr uint32_t kHistHeaderCells = 3;
constexpr uint32_t kHistCells =
    kHistHeaderCells + static_cast<uint32_t>(HistogramBuckets::kNumBuckets);

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag(RuntimeConfig::Get().observability);
  return flag;
}

// Single-writer plain-store bump (see tensor/buffer_pool.cc StatBlock): the
// owning thread is the only writer of its shard cells, so no RMW is needed.
inline void Bump(std::atomic<uint64_t>& cell, uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline void StoreMax(std::atomic<uint64_t>& cell, uint64_t value) {
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

// Per-thread cell storage: fixed-capacity chunk table so readers can walk a
// shard while its owner lazily allocates new chunks (the pointer slots are
// atomics; cells inside a published chunk never move).
struct Shard {
  static constexpr uint32_t kChunkCells = 4096;
  static constexpr uint32_t kMaxChunks = 64;  // 256k cells ~ 850 histograms

  std::atomic<std::atomic<uint64_t>*> chunks[kMaxChunks] = {};

  ~Shard() {
    for (auto& slot : chunks) delete[] slot.load(std::memory_order_relaxed);
  }

  // Owner-side access: allocates the chunk on first touch.
  std::atomic<uint64_t>* Cell(uint32_t offset) {
    uint32_t chunk = offset / kChunkCells;
    LOGCL_CHECK_LT(chunk, kMaxChunks) << "metrics cell space exhausted";
    std::atomic<uint64_t>* base = chunks[chunk].load(std::memory_order_acquire);
    if (base == nullptr) {
      base = new std::atomic<uint64_t>[kChunkCells]();  // zeroed
      chunks[chunk].store(base, std::memory_order_release);
    }
    return base + offset % kChunkCells;
  }

  // Reader-side access: null when the owner never touched the chunk.
  const std::atomic<uint64_t>* CellIfPresent(uint32_t offset) const {
    uint32_t chunk = offset / kChunkCells;
    if (chunk >= kMaxChunks) return nullptr;
    const std::atomic<uint64_t>* base =
        chunks[chunk].load(std::memory_order_acquire);
    return base == nullptr ? nullptr : base + offset % kChunkCells;
  }
};

// All mutable registry state behind one mutex; handle writes never take it.
struct RegistryState {
  std::mutex mu;
  // Descriptors are pointer-stable (deque) — handles point into them.
  std::deque<Descriptor> descriptors;
  std::unordered_map<std::string, Descriptor*> by_name;
  uint32_t next_cell = 0;
  std::vector<std::shared_ptr<Shard>> shards;  // kept alive past thread exit
  int64_t next_source_id = 1;
  std::vector<std::pair<int64_t, MetricsRegistry::SourceFn>> sources;
};

RegistryState& State() {
  // Leaky: worker threads may record during process teardown.
  static RegistryState* state = new RegistryState;
  return *state;
}

Shard& LocalShard() {
  struct Registered {
    std::shared_ptr<Shard> shard = std::make_shared<Shard>();
    Registered() {
      RegistryState& state = State();
      std::lock_guard<std::mutex> lock(state.mu);
      state.shards.push_back(shard);
    }
  };
  thread_local Registered registered;
  return *registered.shard;
}

std::atomic<uint64_t>& TraceInternCounter() {
  static std::atomic<uint64_t>* counter = new std::atomic<uint64_t>(0);
  return *counter;
}

// Per-thread tracer state. `paths` remembers each trace histogram's path so
// children can extend it; `cache` short-circuits (parent, leaf-literal) to
// the resolved histogram after the first entry.
struct TraceTls {
  std::vector<Histogram*> stack;
  std::unordered_map<uint64_t, Histogram*> cache;
  std::unordered_map<Histogram*, std::string> paths;
};

TraceTls& Trace() {
  thread_local TraceTls tls;
  return tls;
}

uint64_t TraceCacheKey(const Histogram* parent, const char* name) {
  uint64_t a = reinterpret_cast<uint64_t>(parent);
  uint64_t b = reinterpret_cast<uint64_t>(name);
  return (a * 0x9E3779B97F4A7C15ull) ^ b;
}

Histogram* EnterTraceScope(const char* name) {
  TraceTls& tls = Trace();
  Histogram* parent = tls.stack.empty() ? nullptr : tls.stack.back();
  uint64_t key = TraceCacheKey(parent, name);
  Histogram* histogram;
  auto it = tls.cache.find(key);
  if (it != tls.cache.end()) {
    histogram = it->second;
  } else {
    std::string path;
    if (parent != nullptr) {
      path = tls.paths[parent];
      path += '/';
    }
    path += name;
    histogram = Metrics().GetHistogram("logcl.trace." + path);
    tls.paths.emplace(histogram, std::move(path));
    tls.cache.emplace(key, histogram);
    TraceInternCounter().fetch_add(1, std::memory_order_relaxed);
  }
  tls.stack.push_back(histogram);
  return histogram;
}

void ExitTraceScope(Histogram* histogram, uint64_t start_ns) {
  histogram->Record(MonotonicNowNs() - start_ns);
  TraceTls& tls = Trace();
  if (!tls.stack.empty() && tls.stack.back() == histogram) {
    tls.stack.pop_back();
  }
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool ObservabilityEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetObservabilityEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Buckets ---------------------------------------------------------------

int HistogramBuckets::Index(uint64_t value) {
  if (value < kFirstExact) return static_cast<int>(value);
  int octave = 63 - std::countl_zero(value);  // >= kSubBits
  if (octave >= kMaxOctave) return kNumBuckets - 1;
  int sub = static_cast<int>((value >> (octave - kSubBits)) &
                             (kSubBuckets - 1));
  return kFirstExact + (octave - kSubBits) * kSubBuckets + sub;
}

uint64_t HistogramBuckets::Lower(int index) {
  if (index < kFirstExact) return static_cast<uint64_t>(index);
  int octave = kSubBits + (index - kFirstExact) / kSubBuckets;
  int sub = (index - kFirstExact) % kSubBuckets;
  return (uint64_t{1} << octave) +
         (static_cast<uint64_t>(sub) << (octave - kSubBits));
}

uint64_t HistogramBuckets::Upper(int index) {
  if (index < kFirstExact) return static_cast<uint64_t>(index) + 1;
  int octave = kSubBits + (index - kFirstExact) / kSubBuckets;
  return Lower(index) + (uint64_t{1} << (octave - kSubBits));
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      double lower =
          static_cast<double>(HistogramBuckets::Lower(static_cast<int>(i)));
      double upper = static_cast<double>(
          std::min<uint64_t>(HistogramBuckets::Upper(static_cast<int>(i)),
                             std::max<uint64_t>(max, 1)));
      upper = std::max(upper, lower);
      double fraction = (target - static_cast<double>(cumulative)) /
                        static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

// --- Snapshot --------------------------------------------------------------

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m == nullptr ? 0 : m->value;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m == nullptr ? 0 : m->gauge;
}

HistogramSnapshot MetricsSnapshot::HistogramValue(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m == nullptr ? HistogramSnapshot{} : m->histogram;
}

// --- Handles ---------------------------------------------------------------

void Counter::Add(uint64_t n) {
  if (!ObservabilityEnabled()) return;
  Bump(*LocalShard().Cell(offset_), n);
}

void Histogram::Record(uint64_t value) {
  if (!ObservabilityEnabled()) return;
  Shard& shard = LocalShard();
  // One histogram's cells sit inside one chunk (kHistCells < kChunkCells and
  // allocation is contiguous), so resolve the base cell once.
  std::atomic<uint64_t>* base = shard.Cell(offset_);
  Bump(base[0], 1);       // count
  Bump(base[1], value);   // sum
  StoreMax(base[2], value);
  Bump(base[kHistHeaderCells + HistogramBuckets::Index(value)], 1);
}

// --- Registry --------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

namespace {

Descriptor* Intern(std::string_view name, MetricKind kind, uint32_t cells) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_name.find(std::string(name));
  if (it != state.by_name.end()) {
    LOGCL_CHECK(it->second->kind == kind)
        << "metric '" << std::string(name) << "' re-registered as a different kind";
    return it->second;
  }
  // Histogram cells must not straddle a chunk boundary (Histogram::Record
  // resolves the base cell once); pad to the next chunk when they would.
  if (cells > 1) {
    uint32_t room = Shard::kChunkCells - state.next_cell % Shard::kChunkCells;
    if (room < cells) state.next_cell += room;
  }
  state.descriptors.emplace_back();
  Descriptor* d = &state.descriptors.back();
  d->name = std::string(name);
  d->kind = kind;
  d->offset = state.next_cell;
  d->cells = cells;
  state.next_cell += cells;
  MetricsInternal::BindOffsets(d);
  state.by_name.emplace(d->name, d);
  return d;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return &Intern(name, MetricKind::kCounter, 1)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return &Intern(name, MetricKind::kGauge, 0)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return &Intern(name, MetricKind::kHistogram, kHistCells)->histogram;
}

int64_t MetricsRegistry::RegisterSource(SourceFn fn) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t id = state.next_source_id++;
  state.sources.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::UnregisterSource(int64_t id) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& sources = state.sources;
  sources.erase(std::remove_if(sources.begin(), sources.end(),
                               [id](const auto& s) { return s.first == id; }),
                sources.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::vector<SourceFn> sources;
  {
    RegistryState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    snapshot.metrics.reserve(state.descriptors.size());
    for (const Descriptor& d : state.descriptors) {
      MetricValue m;
      m.name = d.name;
      m.kind = d.kind;
      switch (d.kind) {
        case MetricKind::kCounter:
          for (const auto& shard : state.shards) {
            const auto* cell = shard->CellIfPresent(d.offset);
            if (cell != nullptr) {
              m.value += cell->load(std::memory_order_relaxed);
            }
          }
          break;
        case MetricKind::kGauge:
          m.gauge = d.gauge.Value();
          break;
        case MetricKind::kHistogram: {
          m.histogram.buckets.assign(HistogramBuckets::kNumBuckets, 0);
          for (const auto& shard : state.shards) {
            const auto* base = shard->CellIfPresent(d.offset);
            if (base == nullptr) continue;
            m.histogram.count += base[0].load(std::memory_order_relaxed);
            m.histogram.sum += base[1].load(std::memory_order_relaxed);
            m.histogram.max = std::max(
                m.histogram.max, base[2].load(std::memory_order_relaxed));
            for (int b = 0; b < HistogramBuckets::kNumBuckets; ++b) {
              m.histogram.buckets[static_cast<size_t>(b)] +=
                  base[kHistHeaderCells + b].load(std::memory_order_relaxed);
            }
          }
          break;
        }
      }
      snapshot.metrics.push_back(std::move(m));
    }
    sources.reserve(state.sources.size());
    for (const auto& [id, fn] : state.sources) sources.push_back(fn);
  }
  // Sources run outside the lock: they read their own subsystem state and
  // may not re-enter the registry mutex safely from within it.
  for (const SourceFn& fn : sources) fn(&snapshot.metrics);

  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  // Merge duplicates (several sources may publish the same name, e.g. two
  // live engines): counters/gauges add, histograms merge bucket-wise.
  std::vector<MetricValue> merged;
  merged.reserve(snapshot.metrics.size());
  for (MetricValue& m : snapshot.metrics) {
    if (!merged.empty() && merged.back().name == m.name) {
      MetricValue& into = merged.back();
      into.value += m.value;
      into.gauge += m.gauge;
      into.histogram.Merge(m.histogram);
    } else {
      merged.push_back(std::move(m));
    }
  }
  snapshot.metrics = std::move(merged);
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const Descriptor& d : state.descriptors) {
    for (const auto& shard : state.shards) {
      for (uint32_t c = 0; c < d.cells; ++c) {
        const auto* cell = shard->CellIfPresent(d.offset + c);
        if (cell != nullptr) {
          const_cast<std::atomic<uint64_t>*>(cell)->store(
              0, std::memory_order_relaxed);
        }
      }
    }
  }
}

uint64_t MetricsRegistry::MetricCountForTest() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.descriptors.size();
}

// --- Exporters -------------------------------------------------------------

namespace {

void AppendHistogramJson(std::string* out, const HistogramSnapshot& h) {
  *out += StrFormat(
      "{\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, \"p50\": %.1f, "
      "\"p99\": %.1f, \"max\": %llu, \"buckets\": [",
      static_cast<unsigned long long>(h.count),
      static_cast<unsigned long long>(h.sum), h.Mean(), h.Percentile(0.50),
      h.Percentile(0.99), static_cast<unsigned long long>(h.max));
  bool first = true;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    *out += StrFormat(
        "[%llu, %llu]",
        static_cast<unsigned long long>(
            HistogramBuckets::Lower(static_cast<int>(i))),
        static_cast<unsigned long long>(h.buckets[i]));
  }
  *out += "]}";
}

}  // namespace

void DumpMetrics(std::ostream& os, MetricsFormat format) {
  MetricsSnapshot snapshot = Metrics().Snapshot();
  if (format == MetricsFormat::kText) {
    for (const MetricValue& m : snapshot.metrics) {
      switch (m.kind) {
        case MetricKind::kCounter:
          os << StrFormat("counter %-48s %llu\n", m.name.c_str(),
                          static_cast<unsigned long long>(m.value));
          break;
        case MetricKind::kGauge:
          os << StrFormat("gauge   %-48s %lld\n", m.name.c_str(),
                          static_cast<long long>(m.gauge));
          break;
        case MetricKind::kHistogram:
          os << StrFormat(
              "hist    %-48s count=%llu mean=%.1f p50=%.1f p99=%.1f "
              "max=%llu\n",
              m.name.c_str(),
              static_cast<unsigned long long>(m.histogram.count),
              m.histogram.Mean(), m.histogram.Percentile(0.50),
              m.histogram.Percentile(0.99),
              static_cast<unsigned long long>(m.histogram.max));
          break;
      }
    }
    os << "config\n";
    DumpEffectiveConfig(os);
    return;
  }
  std::string out = "{\n  \"counters\": {";
  auto append_section = [&](MetricKind kind) {
    bool first = true;
    for (const MetricValue& m : snapshot.metrics) {
      if (m.kind != kind) continue;
      if (!first) out += ",";
      first = false;
      out += "\n    \"";
      AppendJsonEscaped(&out, m.name);
      out += "\": ";
      switch (kind) {
        case MetricKind::kCounter:
          out += StrFormat("%llu", static_cast<unsigned long long>(m.value));
          break;
        case MetricKind::kGauge:
          out += StrFormat("%lld", static_cast<long long>(m.gauge));
          break;
        case MetricKind::kHistogram:
          AppendHistogramJson(&out, m.histogram);
          break;
      }
    }
  };
  append_section(MetricKind::kCounter);
  out += "\n  },\n  \"gauges\": {";
  append_section(MetricKind::kGauge);
  out += "\n  },\n  \"histograms\": {";
  append_section(MetricKind::kHistogram);
  out += "\n  },\n  \"config\": {";
  {
    bool first = true;
    for (const RuntimeConfigEntry& entry : EffectiveConfig()) {
      if (!first) out += ",";
      first = false;
      out += "\n    \"";
      AppendJsonEscaped(&out, entry.env);
      out += "\": \"";
      AppendJsonEscaped(&out, entry.value);
      out += "\"";
    }
  }
  out += "\n  }\n}\n";
  os << out;
}

bool EnableMetricsDumpAtExit() {
  const std::string& mode = RuntimeConfig::Get().metrics_dump;
  if (mode.empty() || mode == "0" || mode == "off") return false;
  static bool registered = false;
  if (registered) return true;
  registered = true;
  std::atexit([] {
    const RuntimeConfig& config = RuntimeConfig::Get();
    MetricsFormat format = config.metrics_dump == "json"
                               ? MetricsFormat::kJson
                               : MetricsFormat::kText;
    if (!config.metrics_dump_file.empty()) {
      std::ofstream file(config.metrics_dump_file);
      if (file) {
        DumpMetrics(file, format);
        return;
      }
    }
    DumpMetrics(std::cerr, format);
  });
  return true;
}

// --- Tracer ----------------------------------------------------------------

TraceScope::TraceScope(const char* name) {
  if (!ObservabilityEnabled()) return;
  histogram_ = EnterTraceScope(name);
  start_ns_ = MonotonicNowNs();
}

TraceScope::~TraceScope() {
  if (histogram_ != nullptr) ExitTraceScope(histogram_, start_ns_);
}

ScopedTimerUs::ScopedTimerUs(Histogram* histogram) {
  if (histogram == nullptr || !ObservabilityEnabled()) return;
  histogram_ = histogram;
  start_ns_ = MonotonicNowNs();
}

ScopedTimerUs::~ScopedTimerUs() {
  if (histogram_ != nullptr) {
    histogram_->Record((MonotonicNowNs() - start_ns_) / 1000);
  }
}

int64_t TraceDepthForTest() {
  return static_cast<int64_t>(Trace().stack.size());
}

uint64_t TraceInternCountForTest() {
  return TraceInternCounter().load(std::memory_order_relaxed);
}

}  // namespace logcl
