// Small string utilities shared across the library (splitting, trimming,
// number parsing and printf-style formatting).

#ifndef LOGCL_COMMON_STRINGPIECE_H_
#define LOGCL_COMMON_STRINGPIECE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace logcl {

/// Splits `text` on `delimiter`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Splits on any run of whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading/trailing whitespace.
std::string StrTrim(std::string_view text);

/// Parses a base-10 integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a floating-point value; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace logcl

#endif  // LOGCL_COMMON_STRINGPIECE_H_
