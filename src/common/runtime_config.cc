#include "common/runtime_config.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>

namespace logcl {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string EnvString(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

int EnvInt(const char* name, int default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return default_value;
  int n = std::atoi(v);
  return n > 0 ? n : default_value;
}

// Like EnvInt but 0 is a meaningful value (e.g. "unbounded"); only unset or
// negative/unparsable keeps the default.
int64_t EnvInt64NonNegative(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return default_value;
  int64_t n = std::atoll(v);
  return n >= 0 ? n : default_value;
}

RuntimeConfig Parse() {
  RuntimeConfig config;
  config.num_threads = EnvInt("LOGCL_NUM_THREADS", 0);
  config.tensor_pool =
      ParseBoolFlag(std::getenv("LOGCL_TENSOR_POOL"), config.tensor_pool);
  config.poison_uninit =
      ParseBoolFlag(std::getenv("LOGCL_POISON_UNINIT"), config.poison_uninit);
  config.pool_max_mb =
      EnvInt64NonNegative("LOGCL_POOL_MAX_MB", config.pool_max_mb);
  config.simd = ParseBoolFlag(std::getenv("LOGCL_SIMD"), config.simd);
  config.jit = ParseBoolFlag(std::getenv("LOGCL_JIT"), config.jit);
  config.interop = ParseBoolFlag(std::getenv("LOGCL_INTEROP"), config.interop);
  config.fused_mp =
      ParseBoolFlag(std::getenv("LOGCL_FUSED_MP"), config.fused_mp);
  std::string quant = Lower(EnvString("LOGCL_QUANT"));
  if (quant == "bf16" || quant == "int8") {
    config.quant = quant;
  }
  config.mmap_checkpoint = ParseBoolFlag(std::getenv("LOGCL_MMAP_CKPT"),
                                         config.mmap_checkpoint);
  config.observability =
      ParseBoolFlag(std::getenv("LOGCL_OBSERVABILITY"), config.observability);
  config.metrics_dump = EnvString("LOGCL_METRICS_DUMP");
  config.metrics_dump_file = EnvString("LOGCL_METRICS_DUMP_FILE");
  return config;
}

const char* OnOff(bool v) { return v ? "on" : "off"; }

}  // namespace

bool ParseBoolFlag(const char* value, bool default_value) {
  if (value == nullptr) return default_value;
  std::string v = Lower(value);
  if (v == "0" || v == "false" || v == "off") return false;
  if (v == "1" || v == "true" || v == "on") return true;
  return default_value;
}

const RuntimeConfig& RuntimeConfig::Get() {
  static const RuntimeConfig* config = new RuntimeConfig(Parse());
  return *config;
}

std::vector<RuntimeConfigEntry> EffectiveConfig() {
  const RuntimeConfig& c = RuntimeConfig::Get();
  std::vector<RuntimeConfigEntry> entries;
  entries.push_back({"LOGCL_NUM_THREADS",
                     c.num_threads == 0 ? "auto" : std::to_string(c.num_threads),
                     "auto", "worker count of the shared thread pool"});
  entries.push_back({"LOGCL_TENSOR_POOL", OnOff(c.tensor_pool), "on",
                     "size-bucketed pooled tensor allocator"});
  entries.push_back({"LOGCL_POISON_UNINIT", OnOff(c.poison_uninit), "off",
                     "sNaN-poison recycled uninitialised buffers"});
  entries.push_back({"LOGCL_POOL_MAX_MB",
                     c.pool_max_mb == 0 ? "unbounded"
                                        : std::to_string(c.pool_max_mb),
                     "1024", "MiB cap on the global pooled free lists"});
  entries.push_back({"LOGCL_SIMD", OnOff(c.simd), "on",
                     "runtime-dispatched AVX2/NEON kernel tables"});
  entries.push_back({"LOGCL_JIT", OnOff(c.jit), "off",
                     "graph-capture JIT executor with fused chains"});
  entries.push_back({"LOGCL_INTEROP", OnOff(c.interop), "on",
                     "multi-threaded ready-queue autograd engine"});
  entries.push_back({"LOGCL_FUSED_MP", OnOff(c.fused_mp), "on",
                     "fused CSR message-passing autograd op"});
  entries.push_back({"LOGCL_QUANT", c.quant, "fp32",
                     "default snapshot scoring precision"});
  entries.push_back({"LOGCL_MMAP_CKPT", OnOff(c.mmap_checkpoint), "off",
                     "memory-mapped checkpoint loads"});
  entries.push_back({"LOGCL_OBSERVABILITY", OnOff(c.observability), "on",
                     "metric recording and tracing"});
  entries.push_back({"LOGCL_METRICS_DUMP",
                     c.metrics_dump.empty() ? "off" : c.metrics_dump, "off",
                     "atexit metrics dump format (text|json)"});
  entries.push_back({"LOGCL_METRICS_DUMP_FILE",
                     c.metrics_dump_file.empty() ? "stderr"
                                                 : c.metrics_dump_file,
                     "stderr", "metrics dump destination"});
  return entries;
}

void DumpEffectiveConfig(std::ostream& os) {
  for (const RuntimeConfigEntry& e : EffectiveConfig()) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-26s = %-10s (default %-6s) %s\n",
                  e.env, e.value.c_str(), e.fallback, e.doc);
    os << line;
  }
}

}  // namespace logcl
