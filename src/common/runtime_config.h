// RuntimeConfig: one typed snapshot of every LOGCL_* environment knob.
//
// Before this header existed each subsystem parsed its own env var with its
// own lazily-initialised static (pool, SIMD, JIT, inter-op, fused message
// passing, quantization, observability, ...), each with slightly different
// accepted spellings. RuntimeConfig::Get() reads the whole environment ONCE
// (on first access from any subsystem) into an immutable snapshot with one
// shared boolean grammar, and every subsystem initialises its own runtime
// flag from that snapshot. The per-subsystem Set*Enabled() functions remain
// the programmatic override layer on top — they mutate the subsystem's live
// flag, never this snapshot, exactly as before.
//
// Boolean grammar (shared by every on/off knob): "0", "false", "off" (any
// case) disable; "1", "true", "on" enable; anything else keeps the knob's
// documented default. Unset keeps the default.
//
// DumpEffectiveConfig() renders the snapshot — every knob, its effective
// value and its default — and is wired into DumpMetrics (text: a trailing
// "config" section; JSON: a "config" object), so every metrics dump records
// the configuration that produced it.

#ifndef LOGCL_COMMON_RUNTIME_CONFIG_H_
#define LOGCL_COMMON_RUNTIME_CONFIG_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace logcl {

struct RuntimeConfig {
  // --- Parallel runtime (common/parallel.h) -------------------------------
  /// LOGCL_NUM_THREADS: worker count of the shared pool. 0 = auto (hardware
  /// concurrency). Default 0.
  int num_threads = 0;

  // --- Tensor memory (tensor/buffer_pool.h) -------------------------------
  /// LOGCL_TENSOR_POOL: route tensor/grad storage through the size-bucketed
  /// pooled allocator. Default on.
  bool tensor_pool = true;
  /// LOGCL_POISON_UNINIT: fill pool-recycled uninitialised buffers with
  /// signalling NaNs so read-before-write bugs fail loudly. Default off.
  bool poison_uninit = false;
  /// LOGCL_POOL_MAX_MB: byte cap (in MiB) on the global free-list tier of
  /// the pooled allocator; exceeding it drops the pooled buffers and lets
  /// the working set re-pool. 0 = unbounded (pre-cap behaviour). Bounds
  /// long-running workloads whose allocation sizes drift (streaming ingest
  /// grows history-dependent tensor shapes every snapshot, so releases land
  /// in ever-new size buckets). Default 1024.
  int64_t pool_max_mb = 1024;

  // --- Kernels and executors (tensor/) ------------------------------------
  /// LOGCL_SIMD: runtime-dispatched AVX2/NEON kernel tables (bitwise-equal
  /// to scalar). Default on.
  bool simd = true;
  /// LOGCL_JIT: graph-capture JIT executor with fused elementwise chains.
  /// Default off.
  bool jit = false;
  /// LOGCL_INTEROP: multi-threaded ready-queue autograd engine. Default on.
  bool interop = true;
  /// LOGCL_FUSED_MP: fused CSR message-passing autograd op. Default on.
  bool fused_mp = true;

  // --- Serving (serve/) ---------------------------------------------------
  /// LOGCL_QUANT: default snapshot scoring precision ("fp32" | "bf16" |
  /// "int8"). Default "fp32".
  std::string quant = "fp32";

  // --- Checkpoints (tensor/checkpoint.h) ----------------------------------
  /// LOGCL_MMAP_CKPT: route checkpoint::Load through the memory-mapped read
  /// view instead of streamed file reads. Default off.
  bool mmap_checkpoint = false;

  // --- Observability (common/observability.h) -----------------------------
  /// LOGCL_OBSERVABILITY: metric recording + tracing. Default on.
  bool observability = true;
  /// LOGCL_METRICS_DUMP: "text" / "json" ("1" = text) arms an atexit metrics
  /// dump; "", "0", "off" disable. Default "".
  std::string metrics_dump;
  /// LOGCL_METRICS_DUMP_FILE: dump destination path ("" = stderr).
  std::string metrics_dump_file;

  /// The process-wide snapshot, parsed from the environment on first call
  /// and immutable afterwards. Cheap to call from subsystem initialisers.
  static const RuntimeConfig& Get();
};

/// The shared boolean grammar (see file comment). Exposed for knobs parsed
/// outside the snapshot (e.g. bench-only flags).
bool ParseBoolFlag(const char* value, bool default_value);

/// One knob of the effective configuration, for exporters.
struct RuntimeConfigEntry {
  const char* env;      // environment variable name
  std::string value;    // effective value ("on"/"off" for booleans)
  const char* fallback; // documented default, same rendering
  const char* doc;      // one-line description
};

/// Every knob with its effective value (from RuntimeConfig::Get()).
std::vector<RuntimeConfigEntry> EffectiveConfig();

/// Writes one aligned "env = value (default ...)  doc" line per knob —
/// DumpMetrics' text config section, also usable standalone.
void DumpEffectiveConfig(std::ostream& os);

}  // namespace logcl

#endif  // LOGCL_COMMON_RUNTIME_CONFIG_H_
