#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/observability.h"
#include "common/runtime_config.h"

namespace logcl {
namespace {

// True while the current thread is executing inside a parallel region;
// nested calls then run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

// One job dispatched to the pool. Workers keep a shared_ptr, so a worker
// that wakes up late (after all chunks are claimed) still fetches from its
// own job's counters and can never claim a chunk of a newer job.
struct Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
};

int DefaultNumThreads() {
  int configured = RuntimeConfig::Get().num_threads;
  if (configured > 0) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  int num_threads() {
    std::lock_guard<std::mutex> lock(mu_);
    return num_threads_;
  }

  void SetThreads(int n) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    StopWorkers();
    std::lock_guard<std::mutex> lock(mu_);
    num_threads_ = n > 0 ? n : DefaultNumThreads();
  }

  // Runs fn(c) for every chunk c in [0, num_chunks); the calling thread
  // participates. Top-level regions from different threads are serialised
  // on run_mu_.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    EnsureWorkers();
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->num_chunks = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_job_ = job;
      ++job_seq_;
      work_cv_.notify_all();
    }
    tls_in_parallel_region = true;
    ExecuteChunks(*job);
    tls_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done_chunks.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
    current_job_.reset();
  }

 private:
  ThreadPool() { num_threads_ = DefaultNumThreads(); }

  ~ThreadPool() { StopWorkers(); }

  void EnsureWorkers() {
    std::lock_guard<std::mutex> lock(mu_);
    int wanted = num_threads_ - 1;
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      work_cv_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }

  void WorkerMain() {
    uint64_t seen_seq = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return shutdown_ || job_seq_ != seen_seq; });
        if (shutdown_) return;
        seen_seq = job_seq_;
        job = current_job_;
      }
      if (!job) continue;
      tls_in_parallel_region = true;
      ExecuteChunks(*job);
      tls_in_parallel_region = false;
    }
  }

  // Claims chunks until exhausted; the thread finishing the last chunk
  // wakes the dispatching thread.
  void ExecuteChunks(Job& job) {
    for (;;) {
      int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) break;
      (*job.fn)(c);
      int64_t done =
          job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == job.num_chunks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  // serialises top-level Run() calls
  std::mutex mu_;      // guards all fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int num_threads_ = 1;
  bool shutdown_ = false;
  uint64_t job_seq_ = 0;
  std::shared_ptr<Job> current_job_;
};

// Registry counters for dispatched parallel work (regions that actually hit
// the pool; inline/nested fast paths are not counted — they are the cases
// the runtime avoided dispatching).
void NoteParallelRegion(int64_t num_chunks) {
  static Counter* regions = Metrics().GetCounter("logcl.parallel.regions");
  static Counter* chunks = Metrics().GetCounter("logcl.parallel.chunks");
  regions->Increment();
  chunks->Add(static_cast<uint64_t>(num_chunks));
}

}  // namespace

int GetNumThreads() { return ThreadPool::Instance().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Instance().SetThreads(n); }

bool InParallelRegion() { return tls_in_parallel_region; }

namespace internal_parallel {

void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  if (num_chunks == 1 || tls_in_parallel_region || GetNumThreads() == 1) {
    for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  NoteParallelRegion(num_chunks);
  ThreadPool::Instance().Run(num_chunks, chunk_fn);
}

}  // namespace internal_parallel

namespace internal_parallel {

void ParallelForErased(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (tls_in_parallel_region) {
    fn(begin, end);
    return;
  }
  grain = std::max<int64_t>(1, grain);
  int64_t range = end - begin;
  int64_t max_parts = (range + grain - 1) / grain;
  int64_t parts = std::min<int64_t>(GetNumThreads(), max_parts);
  if (parts <= 1) {
    fn(begin, end);
    return;
  }
  // Static split: parts near-equal contiguous sub-ranges. The bounds array
  // lives on the stack for realistic pool sizes — ParallelFor is called per
  // op on the training hot path, and a heap allocation here would defeat
  // the buffer pool's allocation elision one layer down.
  constexpr int64_t kStackParts = 64;
  int64_t stack_bounds[kStackParts + 1];
  std::vector<int64_t> heap_bounds;
  int64_t* bounds = stack_bounds;
  if (parts > kStackParts) {
    heap_bounds.resize(static_cast<size_t>(parts) + 1);
    bounds = heap_bounds.data();
  }
  int64_t base = range / parts;
  int64_t remainder = range % parts;
  bounds[0] = begin;
  for (int64_t p = 0; p < parts; ++p) {
    bounds[p + 1] = bounds[p] + base + (p < remainder ? 1 : 0);
  }
  RunChunks(parts, [&](int64_t p) { fn(bounds[p], bounds[p + 1]); });
}

}  // namespace internal_parallel

}  // namespace logcl
