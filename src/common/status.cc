#include "common/status.h"

namespace logcl {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace logcl
