// Status / Result types for recoverable errors (file I/O, parsing, config).
//
// Mirrors the absl::Status / rocksdb::Status idiom: functions that can fail
// for reasons outside the programmer's control return Status (or
// Result<T>), never throw.

#ifndef LOGCL_COMMON_STATUS_H_
#define LOGCL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace logcl {

/// Error categories; keep coarse, the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
};

/// Value-semantic error carrier.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IO_ERROR: cannot open foo.tsv".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status keeps call sites readable.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LOGCL_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LOGCL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    LOGCL_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    LOGCL_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace logcl

/// Early-return helper: propagates a non-OK Status from the current function.
#define LOGCL_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::logcl::Status logcl_status_ = (expr);      \
    if (!logcl_status_.ok()) return logcl_status_; \
  } while (false)

#endif  // LOGCL_COMMON_STATUS_H_
