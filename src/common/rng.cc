#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace logcl {

Rng::Rng(uint64_t seed) : state_(seed) {}

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  LOGCL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Split() { return Rng(Next() ^ 0xA3C59AC2F1E5B7D3ULL); }

}  // namespace logcl
