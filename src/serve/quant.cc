#include "serve/quant.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/runtime_config.h"
#include "tensor/simd.h"

namespace logcl {

ScorePrecision ScorePrecisionFromEnv() {
  const std::string& s = RuntimeConfig::Get().quant;
  if (s == "bf16") return ScorePrecision::kBf16;
  if (s == "int8") return ScorePrecision::kInt8;
  return ScorePrecision::kFp32;
}

const char* PrecisionName(ScorePrecision p) {
  switch (p) {
    case ScorePrecision::kBf16:
      return "bf16";
    case ScorePrecision::kInt8:
      return "int8";
    default:
      return "fp32";
  }
}

uint16_t Bf16FromFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate but force a mantissa bit so it stays NaN.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even on the truncated 16 bits.
  uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

float Bf16ToFloat(uint16_t v) {
  uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

Bf16Matrix QuantizeBf16(const float* m, int64_t rows, int64_t cols) {
  Bf16Matrix out;
  out.rows = rows;
  out.cols = cols;
  out.data.resize(static_cast<size_t>(rows * cols));
  for (int64_t i = 0; i < rows * cols; ++i) {
    out.data[static_cast<size_t>(i)] = Bf16FromFloat(m[i]);
  }
  return out;
}

float QuantizeRowInt8(const float* row, int64_t n, int8_t* out) {
  float maxabs = 0.0f;
  for (int64_t j = 0; j < n; ++j) {
    float a = std::fabs(row[j]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) {
    for (int64_t j = 0; j < n; ++j) out[j] = 0;
    return 0.0f;
  }
  float scale = maxabs / 127.0f;
  float inv = 127.0f / maxabs;
  for (int64_t j = 0; j < n; ++j) {
    float q = std::nearbyint(row[j] * inv);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    out[j] = static_cast<int8_t>(q);
  }
  return scale;
}

Int8Matrix QuantizeInt8PerRow(const float* m, int64_t rows, int64_t cols) {
  Int8Matrix out;
  out.rows = rows;
  out.cols = cols;
  out.data.resize(static_cast<size_t>(rows * cols));
  out.scales.resize(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    out.scales[static_cast<size_t>(i)] = QuantizeRowInt8(
        m + i * cols, cols, out.data.data() + i * cols);
  }
  return out;
}

QuantizedCandidates BuildQuantizedCandidates(const Tensor& entities,
                                             ScorePrecision precision) {
  QuantizedCandidates out;
  out.precision = precision;
  if (precision == ScorePrecision::kFp32) return out;
  LOGCL_CHECK(entities.defined());
  LOGCL_CHECK_EQ(entities.shape().rank(), 2);
  int64_t rows = entities.shape().rows();
  int64_t cols = entities.shape().cols();
  const float* data = entities.data().data();
  if (precision == ScorePrecision::kBf16) {
    out.bf16 = QuantizeBf16(data, rows, cols);
  } else {
    out.int8 = QuantizeInt8PerRow(data, rows, cols);
  }
  return out;
}

void ScoreQuantizedRow(const QuantizedCandidates& candidates,
                       const float* decoded, int64_t dim, float* out) {
  LOGCL_CHECK(!candidates.empty());
  LOGCL_CHECK_EQ(dim, candidates.cols());
  if (candidates.precision == ScorePrecision::kBf16) {
    const Bf16Matrix& m = candidates.bf16;
    simd::ScoreRowsBf16(m.data.data(), decoded, m.rows, dim, out);
    return;
  }
  const Int8Matrix& m = candidates.int8;
  // One symmetric quantisation of the query row per call; 256 covers every
  // configured embedding_dim, and larger dims spill to the heap.
  constexpr int64_t kStackDim = 256;
  int8_t stack_q[kStackDim];
  std::vector<int8_t> heap_q;
  int8_t* q = stack_q;
  if (dim > kStackDim) {
    heap_q.resize(static_cast<size_t>(dim));
    q = heap_q.data();
  }
  float qscale = QuantizeRowInt8(decoded, dim, q);
  simd::ScoreRowsI8(m.data.data(), m.scales.data(), q, qscale, m.rows, dim,
                    out);
}

}  // namespace logcl
