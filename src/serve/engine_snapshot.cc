#include "serve/engine_snapshot.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "common/parallel.h"

namespace logcl {

namespace {

// Non-owning alias for graphs whose lifetime is managed elsewhere (the
// model's dataset caches).
std::shared_ptr<const SnapshotGraph> Unowned(const SnapshotGraph* graph) {
  return std::shared_ptr<const SnapshotGraph>(graph,
                                              [](const SnapshotGraph*) {});
}

}  // namespace

std::shared_ptr<const EngineSnapshot> EngineSnapshot::Build(
    const LogClModel* model, int64_t time, ScorePrecision precision) {
  LOGCL_CHECK(model != nullptr);
  LOGCL_CHECK_GE(time, 0);
  LOGCL_CHECK(model->eval_mode() || model->config().noise_stddev <= 0.0f)
      << "serving snapshots require deterministic eval inputs; call "
         "SetEvalMode(true) first";
  const TkgDataset& dataset = model->dataset();
  auto snapshot = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snapshot->model_ = model;
  snapshot->time_ = time;
  snapshot->history_ = std::make_shared<const HistoryIndex>(
      dataset, /*max_time_exclusive=*/time);

  int64_t history_length = model->config().local.history_length;
  int64_t start = std::max<int64_t>(0, time - history_length);
  std::vector<const SnapshotGraph*> graphs;
  std::vector<int64_t> times;
  for (int64_t s = start; s < time; ++s) {
    const SnapshotGraph& graph = dataset.SnapshotGraphAt(s);
    snapshot->window_.emplace_back(s, Unowned(&graph));
    graphs.push_back(&graph);
    times.push_back(s);
  }
  snapshot->evolution_ = model->PrecomputeEvolution(graphs, times, time);
  // Quantize the frozen candidate matrix. Only the local evolution yields a
  // query-independent candidate set; global-only models score against a
  // per-batch encode, so they fall back to fp32.
  if (precision != ScorePrecision::kFp32 && model->config().use_local) {
    snapshot->quant_ =
        BuildQuantizedCandidates(snapshot->evolution_.local.entities,
                                 precision);
  }
  return snapshot;
}

Tensor EngineSnapshot::ScoreBatch(
    const std::vector<ServeQuery>& queries) const {
  LOGCL_CHECK(!queries.empty());
  std::vector<Quadruple> quads;
  quads.reserve(queries.size());
  for (const ServeQuery& q : queries) {
    quads.push_back(Quadruple{q.subject, q.relation, /*object=*/0, time_});
  }
  return model_->ScoreWithEvolution(quads, evolution_, *history_);
}

std::vector<std::vector<float>> EngineSnapshot::ScoreBatchQuantized(
    const std::vector<ServeQuery>& queries) const {
  LOGCL_CHECK(!queries.empty());
  LOGCL_CHECK(precision() != ScorePrecision::kFp32)
      << "ScoreBatchQuantized requires a quantized snapshot (precision() != "
         "kFp32); use ScoreBatch";
  std::vector<Quadruple> quads;
  quads.reserve(queries.size());
  for (const ServeQuery& q : queries) {
    quads.push_back(Quadruple{q.subject, q.relation, /*object=*/0, time_});
  }
  Tensor decoded = model_->DecodeWithEvolution(quads, evolution_, *history_);
  const int64_t batch = decoded.shape().rows();
  const int64_t dim = decoded.shape().cols();
  const int64_t num_entities = quant_.rows();
  const float* dd = decoded.data().data();
  std::vector<std::vector<float>> scores(static_cast<size_t>(batch));
  // Rows are independent; each worker writes its own preallocated slots.
  // Grain keeps small batches serial (the per-row work is num_entities
  // short dot products — far below a shard's worth at serving scale).
  int64_t grain = std::max<int64_t>(
      1, (int64_t{1} << 15) / std::max<int64_t>(1, num_entities * dim));
  ParallelFor(0, batch, grain, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      auto& row = scores[static_cast<size_t>(b)];
      row.resize(static_cast<size_t>(num_entities));
      ScoreQuantizedRow(quant_, dd + b * dim, dim, row.data());
    }
  });
  return scores;
}

std::shared_ptr<const EngineSnapshot> EngineSnapshot::Advance(
    std::vector<Quadruple> new_facts) const {
  const TkgDataset& dataset = model_->dataset();
  for (const Quadruple& q : new_facts) {
    LOGCL_CHECK_EQ(q.time, time_) << "Advance expects the completed horizon "
                                     "snapshot (facts at time() exactly)";
    LOGCL_CHECK_GE(q.subject, 0);
    LOGCL_CHECK_LT(q.subject, dataset.num_entities());
    LOGCL_CHECK_GE(q.object, 0);
    LOGCL_CHECK_LT(q.object, dataset.num_entities());
    LOGCL_CHECK_GE(q.relation, 0);
    LOGCL_CHECK_LT(q.relation, dataset.num_base_relations());
  }
  // Canonical (time, s, r, o) dataset order, so the extended index and the
  // horizon graph are bit-for-bit what a from-scratch dataset build yields.
  std::sort(new_facts.begin(), new_facts.end(),
            [](const Quadruple& a, const Quadruple& b) {
              return std::tie(a.subject, a.relation, a.object) <
                     std::tie(b.subject, b.relation, b.object);
            });

  auto next = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  next->model_ = model_;
  next->time_ = time_ + 1;

  auto extended = std::make_shared<HistoryIndex>(*history_);
  extended->AddFacts(new_facts);
  next->history_ = std::move(extended);

  // Rotate the evolution window: drop timestamps that fall out of
  // [time_ + 1 - m, time_ + 1), append the completed horizon snapshot.
  int64_t history_length = model_->config().local.history_length;
  int64_t start = std::max<int64_t>(0, next->time_ - history_length);
  for (const auto& [s, graph] : window_) {
    if (s >= start) next->window_.emplace_back(s, graph);
  }
  next->window_.emplace_back(
      time_, std::make_shared<const SnapshotGraph>(
                 SnapshotGraph::FromFactsWithInverses(
                     new_facts, dataset.num_entities(),
                     dataset.num_base_relations())));

  std::vector<const SnapshotGraph*> graphs;
  std::vector<int64_t> times;
  graphs.reserve(next->window_.size());
  times.reserve(next->window_.size());
  for (const auto& [s, graph] : next->window_) {
    graphs.push_back(graph.get());
    times.push_back(s);
  }
  next->evolution_ = model_->PrecomputeEvolution(graphs, times, next->time_);
  // The candidate matrix changed with the window: requantize at the same
  // precision this snapshot serves.
  if (quant_.precision != ScorePrecision::kFp32) {
    next->quant_ = BuildQuantizedCandidates(next->evolution_.local.entities,
                                            quant_.precision);
  }
  return next;
}

}  // namespace logcl
