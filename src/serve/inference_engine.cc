#include "serve/inference_engine.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/runtime_config.h"
#include "common/stringpiece.h"
#include "eval/ranking.h"
#include "tensor/checkpoint.h"

namespace logcl {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

std::string EngineStats::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "requests=%llu shed=%llu batches=%llu advances=%llu "
                "mean_batch=%.2f max_batch=%llu peak_queue=%llu "
                "mean_latency_us=%.1f max_latency_us=%llu",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(advances), MeanBatchSize(),
                static_cast<unsigned long long>(max_batch),
                static_cast<unsigned long long>(peak_queue_depth),
                MeanLatencyUs(),
                static_cast<unsigned long long>(max_latency_us));
  return buffer;
}

InferenceEngine::InferenceEngine(LogClModel* model, int64_t time,
                                 EngineOptions options)
    : model_(model),
      options_(options),
      requests_counter_(Metrics().GetCounter("logcl.serve.requests")),
      shed_counter_(Metrics().GetCounter("logcl.serve.shed")),
      batches_counter_(Metrics().GetCounter("logcl.serve.batches")),
      advances_counter_(Metrics().GetCounter("logcl.serve.advances")),
      batch_size_hist_(Metrics().GetHistogram("logcl.serve.batch_size")),
      queue_wait_us_hist_(Metrics().GetHistogram("logcl.serve.queue_wait_us")),
      score_us_hist_(Metrics().GetHistogram("logcl.serve.score_us")),
      request_us_hist_(Metrics().GetHistogram("logcl.serve.request_us")),
      queue_depth_gauge_(Metrics().GetGauge("logcl.serve.queue_depth")) {
  LOGCL_CHECK(model != nullptr);
  LOGCL_CHECK_GE(options_.max_batch_size, 1);
  LOGCL_CHECK_GE(options_.batch_deadline_us, 0);
  model_->SetEvalMode(true);
  snapshot_ = EngineSnapshot::Build(model_, time, options_.precision);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  dispatcher_.join();
}

Result<std::future<InferenceEngine::EngineResponse>> InferenceEngine::Submit(
    const ServeQuery& query, int64_t k) {
  const TkgDataset& dataset = model_->dataset();
  if (query.subject < 0 || query.subject >= dataset.num_entities() ||
      query.relation < 0 ||
      query.relation >= dataset.num_relations_with_inverse()) {
    return Status::InvalidArgument(StrFormat(
        "query ids out of range: subject=%lld relation=%lld",
        static_cast<long long>(query.subject),
        static_cast<long long>(query.relation)));
  }
  Request request;
  request.query = query;
  request.k = k;
  request.enqueued = std::chrono::steady_clock::now();
  std::future<EngineResponse> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("Submit after engine shutdown");
    }
    if (options_.max_queue_depth > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
      ++stats_.shed;
      shed_counter_->Increment();
      return Status::Unavailable("queue full: admission control shed");
    }
    queue_.push_back(std::move(request));
    stats_.peak_queue_depth =
        std::max<uint64_t>(stats_.peak_queue_depth, queue_.size());
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    queue_cv_.notify_all();
  }
  return future;
}

std::vector<float> InferenceEngine::Score(const ServeQuery& query) {
  Result<std::vector<float>> result = TryScore(query);
  LOGCL_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<std::pair<int64_t, float>> InferenceEngine::TopK(
    const ServeQuery& query, int64_t k) {
  Result<std::vector<std::pair<int64_t, float>>> result = TryTopK(query, k);
  LOGCL_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<std::vector<float>> InferenceEngine::TryScore(
    const ServeQuery& query) {
  Result<std::future<EngineResponse>> submitted = Submit(query, /*k=*/0);
  if (!submitted.ok()) return submitted.status();
  EngineResponse response = submitted.value().get();
  if (!response.status.ok()) return response.status;
  return std::move(response.row);
}

Result<std::vector<std::pair<int64_t, float>>> InferenceEngine::TryTopK(
    const ServeQuery& query, int64_t k) {
  LOGCL_CHECK_GE(k, 1);
  Result<std::future<EngineResponse>> submitted = Submit(query, k);
  if (!submitted.ok()) return submitted.status();
  EngineResponse response = submitted.value().get();
  if (!response.status.ok()) return response.status;
  return std::move(response.topk);
}

void InferenceEngine::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  queue_cv_.notify_all();  // kick the dispatcher out of its coalescing wait
  idle_cv_.wait(lock, [&] { return !in_flight_; });
}

void InferenceEngine::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  queue_cv_.notify_all();
}

void InferenceEngine::Advance(std::vector<Quadruple> new_facts) {
  // Serialise builders so every Advance extends the latest published
  // snapshot; readers are never blocked by the (expensive) build.
  std::lock_guard<std::mutex> advance_lock(advance_mu_);
  std::shared_ptr<const EngineSnapshot> current = snapshot();
  std::shared_ptr<const EngineSnapshot> next =
      current->Advance(std::move(new_facts));
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = std::move(next);  // in-flight batches hold the old shared_ptr
  ++stats_.advances;
  advances_counter_->Increment();
}

std::shared_ptr<const EngineSnapshot> InferenceEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

EngineStats InferenceEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InferenceEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_ && queue_.empty()) return;  // drained
    if (paused_ && !stopping_) continue;
    if (queue_.empty()) continue;
    // Deadline-bounded coalescing: hold the batch open for stragglers until
    // the oldest request ages out or the batch fills. Shutdown and Pause
    // flush immediately.
    size_t target = static_cast<size_t>(options_.max_batch_size);
    auto deadline = queue_.front().enqueued +
                    std::chrono::microseconds(options_.batch_deadline_us);
    while (!stopping_ && !paused_ && queue_.size() < target &&
           std::chrono::steady_clock::now() < deadline) {
      queue_cv_.wait_until(lock, deadline, [&] {
        return stopping_ || paused_ || queue_.size() >= target;
      });
    }
    if (paused_ && !stopping_) continue;  // leave requests queued
    // Age out requests past the admission deadline: their seats go to
    // fresher requests and they answer kUnavailable without being scored.
    std::vector<Request> shed;
    if (options_.admission_deadline_us > 0) {
      auto now = std::chrono::steady_clock::now();
      auto max_age = std::chrono::microseconds(options_.admission_deadline_us);
      while (!queue_.empty() && now - queue_.front().enqueued > max_age) {
        shed.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.shed += shed.size();
    }
    std::vector<Request> batch;
    size_t take = std::min(queue_.size(), target);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    std::shared_ptr<const EngineSnapshot> snapshot = snapshot_;
    in_flight_ = !batch.empty();
    lock.unlock();
    if (!shed.empty()) {
      shed_counter_->Add(shed.size());
      for (Request& r : shed) {
        EngineResponse response;
        response.status =
            Status::Unavailable("request aged past admission deadline");
        r.promise.set_value(std::move(response));
      }
    }
    if (!batch.empty()) ProcessBatch(std::move(batch), snapshot);
    lock.lock();
    if (in_flight_) {
      in_flight_ = false;
      idle_cv_.notify_all();
    }
  }
}

void InferenceEngine::ProcessBatch(
    std::vector<Request> batch,
    const std::shared_ptr<const EngineSnapshot>& snapshot) {
  std::vector<ServeQuery> queries;
  queries.reserve(batch.size());
  for (const Request& r : batch) {
    // Time spent coalescing before scoring starts.
    queue_wait_us_hist_->Record(ElapsedUs(r.enqueued));
    queries.push_back(r.query);
  }
  batch_size_hist_->Record(batch.size());
  const bool quantized = snapshot->precision() != ScorePrecision::kFp32;
  uint64_t score_start = MonotonicNowNs();
  Tensor scores;
  std::vector<std::vector<float>> qscores;
  if (quantized) {
    qscores = snapshot->ScoreBatchQuantized(queries);
  } else {
    scores = snapshot->ScoreBatch(queries);
  }
  score_us_hist_->Record((MonotonicNowNs() - score_start) / 1000);
  int64_t num_entities = quantized
                             ? static_cast<int64_t>(qscores.front().size())
                             : scores.shape().cols();
  const float* data = quantized ? nullptr : scores.data().data();

  std::vector<EngineResponse> results(batch.size());
  uint64_t batch_latency_total = 0;
  uint64_t batch_latency_max = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const float* row = quantized
                           ? qscores[i].data()
                           : data + static_cast<int64_t>(i) * num_entities;
    if (batch[i].k > 0) {
      results[i].topk = TopKSoftmax(row, num_entities, batch[i].k);
    } else if (quantized) {
      results[i].row = std::move(qscores[i]);
    } else {
      results[i].row.assign(row, row + num_entities);
    }
    uint64_t latency = ElapsedUs(batch[i].enqueued);
    request_us_hist_->Record(latency);
    batch_latency_total += latency;
    batch_latency_max = std::max(batch_latency_max, latency);
  }
  requests_counter_->Add(batch.size());
  batches_counter_->Increment();

  // Account before fulfilling the promises so a requester that reads
  // Snapshot() right after its answer arrives always sees its own request
  // counted.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.requests += batch.size();
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    stats_.total_latency_us += batch_latency_total;
    stats_.max_latency_us = std::max(stats_.max_latency_us, batch_latency_max);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
}

Status LoadModelCheckpoint(Module* model, const std::string& path) {
  LOGCL_CHECK(model != nullptr);
  std::vector<Tensor> parameters = model->Parameters();
  if (RuntimeConfig::Get().mmap_checkpoint) {
    Result<checkpoint::MmapCheckpoint> view = checkpoint::Open(path);
    // v1 checkpoints cannot be mapped; fall through to the streamed reader
    // so old files stay loadable with the knob on.
    if (view.ok()) return view.value().Materialize(&parameters);
    if (view.status().code() != StatusCode::kInvalidArgument) {
      return view.status();
    }
  }
  return checkpoint::Load(path, &parameters);
}

Status SaveModelCheckpoint(const Module& model, const std::string& path) {
  return checkpoint::Save(model.Parameters(), path);
}

}  // namespace logcl
