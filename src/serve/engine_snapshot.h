// EngineSnapshot: an immutable, shareable freeze of a trained LogCL model at
// one serving horizon.
//
// LogCL's forward pass splits naturally into a query-independent half (the
// local evolution of Eq.2-8 over the m snapshots preceding t, plus the
// per-snapshot attention inputs of Eq.9-11) and a query-conditioned half
// (entity-aware attention, global subgraph encode, ConvTransE decode).
// ScoreQueries recomputes both halves per call; a snapshot runs the first
// half exactly once at build time and freezes it, so answering (s, r, ?, t)
// costs only the second half. Answers are bitwise identical to
// LogClModel::ScoreQueries on the same weights and batch.
//
// Snapshots are immutable after construction and safe to share across
// threads; Advance() is the copy-on-write step that folds a newly completed
// snapshot of facts into a successor (extended history index, rotated
// evolution window, horizon + 1) while readers keep using this one.

#ifndef LOGCL_SERVE_ENGINE_SNAPSHOT_H_
#define LOGCL_SERVE_ENGINE_SNAPSHOT_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/logcl_model.h"
#include "graph/snapshot_graph.h"
#include "serve/quant.h"
#include "tkg/history_index.h"
#include "tkg/quadruple.h"

namespace logcl {

/// One serving request: predict the object of (subject, relation, ?) at the
/// snapshot's horizon time.
struct ServeQuery {
  int64_t subject = 0;
  int64_t relation = 0;
};

class EngineSnapshot {
 public:
  /// Freezes `model` at horizon `time`: runs the local evolution over the
  /// dataset snapshots in [time - m, time) once and indexes all dataset
  /// facts strictly before `time` (a serving process never observes the
  /// horizon, unlike the offline protocol's all-splits index — queries at
  /// `time` answer identically either way). The model must outlive the
  /// snapshot, be in eval mode when configured with noise injection, and
  /// not train while snapshots built from it are serving. Single-threaded:
  /// call before concurrent serving starts (it may lazily build dataset
  /// structure caches).
  ///
  /// `precision` selects the reduced-precision scoring bundle quantized at
  /// freeze time (default from LOGCL_QUANT). Non-fp32 precisions require a
  /// query-independent candidate matrix — the local evolution's entity
  /// embeddings — so global-only configurations silently fall back to fp32
  /// (precision() reports the effective value).
  static std::shared_ptr<const EngineSnapshot> Build(
      const LogClModel* model, int64_t time,
      ScorePrecision precision = ScorePrecisionFromEnv());

  /// Scores each query against every entity at the snapshot horizon;
  /// returns logits [B, E], bitwise identical to model->ScoreQueries on the
  /// same batch. Const and safe from concurrent threads. Note the global
  /// encoder message-passes over the batch *union* subgraph (see
  /// core/global_encoder.h), so scores — like ScoreQueries' — depend on the
  /// batch composition.
  Tensor ScoreBatch(const std::vector<ServeQuery>& queries) const;

  /// Reduced-precision scoring: decodes the batch in fp32 (bitwise the
  /// decode stage of ScoreBatch), then dot-products each decoded row
  /// against the quantized candidate bundle (serve/quant.h). Row i holds
  /// query i's approximate logits over all entities. Requires
  /// precision() != kFp32. Const and safe from concurrent threads.
  std::vector<std::vector<float>> ScoreBatchQuantized(
      const std::vector<ServeQuery>& queries) const;

  /// Effective scoring precision (kFp32 when quantization was not
  /// requested or not applicable to this model configuration).
  ScorePrecision precision() const { return quant_.precision; }
  const QuantizedCandidates& quantized_candidates() const { return quant_; }

  /// Copy-on-write successor: `new_facts` (all at this snapshot's horizon)
  /// complete the horizon snapshot, so the result serves horizon time()+1
  /// with an extended history index and the evolution window advanced one
  /// step. Facts are canonicalised to the dataset's (s, r, o) sort order,
  /// making the successor bitwise equivalent to a snapshot built from a
  /// model whose dataset contains the new facts. This snapshot is untouched;
  /// in-flight readers finish on it.
  std::shared_ptr<const EngineSnapshot> Advance(
      std::vector<Quadruple> new_facts) const;

  int64_t time() const { return time_; }
  const LogClModel& model() const { return *model_; }
  const HistoryIndex& history() const { return *history_; }

  /// The trailing evolution window feeding the next Advance: (timestamp,
  /// snapshot graph) pairs, ascending, all strictly before time(). The
  /// streaming session fine-tunes over exactly this window so training and
  /// serving condition on the same local context.
  const std::vector<std::pair<int64_t, std::shared_ptr<const SnapshotGraph>>>&
  window() const {
    return window_;
  }

 private:
  EngineSnapshot() = default;

  const LogClModel* model_ = nullptr;
  int64_t time_ = 0;
  // Extended copy-on-write across Advance steps; shared_ptr so successors
  // could alias in the no-new-facts case without lifetime puzzles.
  std::shared_ptr<const HistoryIndex> history_;
  LogClModel::EvolutionState evolution_;
  // Trailing window of (timestamp, snapshot graph) feeding the next
  // Advance's evolution. Graphs owned by the model's dataset are held
  // non-owning (the dataset outlives the model outlives the snapshot);
  // graphs created by Advance are owned here.
  std::vector<std::pair<int64_t, std::shared_ptr<const SnapshotGraph>>>
      window_;
  // Reduced-precision candidate bundle, rebuilt by every Advance (the
  // candidate matrix changes with the evolution window). precision kFp32
  // when serving full precision.
  QuantizedCandidates quant_;
};

}  // namespace logcl

#endif  // LOGCL_SERVE_ENGINE_SNAPSHOT_H_
