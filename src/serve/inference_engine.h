// InferenceEngine: a thread-safe serving front-end over EngineSnapshot.
//
// Concurrently submitted queries are coalesced by a micro-batcher: a
// dedicated dispatcher thread collects pending requests until either
// `max_batch_size` are waiting or the oldest request has waited
// `batch_deadline_us`, then scores the whole batch as ONE decoder pass on
// the shared compute thread pool (one query-subgraph encode and one
// ConvTransE decode amortised over the batch). Submitters block on a
// per-request future.
//
// Top-k requests never materialise the full softmax (eval/ranking.h
// TopKSoftmax); full-row requests copy the logits row out of the batch.
//
// Advance(new_facts) builds the successor snapshot copy-on-write and
// publishes it with an atomic shared_ptr swap: batches already scoring keep
// the snapshot they started with, later batches see the new horizon.
//
// Admission control (streaming tier): `max_queue_depth` bounds the pending
// queue — a full queue rejects the submission with a typed kUnavailable
// status instead of queueing — and `admission_deadline_us` sheds queued
// requests that aged past their deadline before scoring started (their
// response carries kUnavailable). Sheds surface as the `logcl.serve.shed`
// counter and EngineStats::shed. Submit's rejection taxonomy: kUnavailable
// = shed (retryable backpressure), kFailedPrecondition = engine shutting
// down, kInvalidArgument = ids out of range (caller bug, not load).
// Observability: per-engine counters are available via Snapshot(); the same
// activity feeds the process-wide metrics registry as `logcl.serve.*`
// counters, latency/batch-size histograms and a queue-depth gauge
// (common/observability.h, DESIGN.md §12).

#ifndef LOGCL_SERVE_INFERENCE_ENGINE_H_
#define LOGCL_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/observability.h"
#include "common/status.h"
#include "nn/module.h"
#include "serve/engine_snapshot.h"

namespace logcl {

struct EngineOptions {
  /// Flush a batch as soon as this many requests are pending.
  int64_t max_batch_size = 32;
  /// How long the batcher holds an incomplete batch open for stragglers,
  /// measured from the oldest pending request's submission. 0 disables
  /// coalescing (every request is its own batch).
  int64_t batch_deadline_us = 200;
  /// Scoring precision for the engine's snapshots (defaults from
  /// LOGCL_QUANT; see serve/quant.h). Non-fp32 decodes in fp32, then scores
  /// against the candidate matrix quantized at snapshot build time. Falls
  /// back to fp32 when the model has no query-independent candidates
  /// (global-only configurations).
  ScorePrecision precision = ScorePrecisionFromEnv();
  /// Admission control: most requests allowed to wait in the queue; a full
  /// queue rejects new submissions with kUnavailable. 0 = unbounded (the
  /// pre-streaming behaviour).
  int64_t max_queue_depth = 0;
  /// Deadline-based shedding: a queued request older than this when its
  /// batch forms is answered kUnavailable instead of scored (its seat goes
  /// to a fresher request). 0 = never shed on age.
  int64_t admission_deadline_us = 0;
};

/// Snapshot of the engine's counters (monotonic since construction).
struct EngineStats {
  uint64_t requests = 0;        // queries submitted
  uint64_t batches = 0;         // decoder passes executed
  uint64_t advances = 0;        // snapshot swaps
  uint64_t max_batch = 0;       // largest coalesced batch
  uint64_t peak_queue_depth = 0;  // most requests pending at once
  uint64_t total_latency_us = 0;  // submit -> answer, summed
  uint64_t max_latency_us = 0;
  uint64_t shed = 0;              // rejected by admission control

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  double MeanLatencyUs() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_latency_us) /
                               static_cast<double>(requests);
  }

  /// One-line rendering for logs/benchmarks.
  std::string ToString() const;
};

class InferenceEngine {
 public:
  /// Builds the initial snapshot of `model` at horizon `time` and starts the
  /// dispatcher. Forces eval mode on the model so serving is deterministic.
  /// The model must outlive the engine and must not train while serving.
  InferenceEngine(LogClModel* model, int64_t time, EngineOptions options = {});

  /// Drains pending requests, then joins the dispatcher.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// One answered request: `row` filled for full-row submissions (k == 0),
  /// `topk` for top-k ones. `status` is kUnavailable when the request was
  /// shed by the admission deadline after it had been queued.
  struct EngineResponse {
    Status status = Status::Ok();
    std::vector<float> row;                       // k == 0
    std::vector<std::pair<int64_t, float>> topk;  // k > 0
  };

  /// Typed submission: validates and enqueues the query, returning the
  /// future that will carry its answer. Rejections are immediate and typed:
  /// kInvalidArgument (ids out of range), kFailedPrecondition (engine
  /// shutting down), kUnavailable (queue at max_queue_depth — shed). A
  /// deadline shed after queueing arrives through the future's
  /// EngineResponse::status instead.
  Result<std::future<EngineResponse>> Submit(const ServeQuery& query,
                                             int64_t k);

  /// Blocking: the full logits row over all entities for one query,
  /// answered by whichever snapshot is current when its batch executes.
  /// Crashes on rejection (use TryScore where shedding is configured).
  std::vector<float> Score(const ServeQuery& query);

  /// Blocking: top-k (entity, probability) without a full softmax.
  /// Crashes on rejection (use TryTopK where shedding is configured).
  std::vector<std::pair<int64_t, float>> TopK(const ServeQuery& query,
                                              int64_t k);

  /// Typed blocking variants: a shed (at submit or at batch formation)
  /// surfaces as kUnavailable instead of crashing.
  Result<std::vector<float>> TryScore(const ServeQuery& query);
  Result<std::vector<std::pair<int64_t, float>>> TryTopK(
      const ServeQuery& query, int64_t k);

  /// Quiesces scoring: blocks until the in-flight batch (if any) finishes,
  /// then holds the dispatcher idle — queued requests wait, submissions
  /// still enqueue (and still shed on depth). The streaming session pauses
  /// the engine while fine-tuning mutates the weights its snapshots read;
  /// Resume() restarts dispatch.
  void Pause();
  void Resume();

  /// Folds the completed horizon snapshot into a successor (copy-on-write;
  /// see EngineSnapshot::Advance) and atomically publishes it. Safe to call
  /// concurrently with Submit; concurrent Advance calls serialise, each
  /// building on the previously published snapshot.
  void Advance(std::vector<Quadruple> new_facts);

  /// The currently published snapshot / its horizon.
  std::shared_ptr<const EngineSnapshot> snapshot() const;
  int64_t time() const { return snapshot()->time(); }

  /// Point-in-time view of this engine's counters (the registry Snapshot()
  /// convention; the same activity surfaces process-wide as `logcl.serve.*`
  /// counters/histograms in MetricsRegistry::Snapshot(), see DESIGN.md §12).
  EngineStats Snapshot() const;

 private:
  struct Request {
    ServeQuery query;
    int64_t k = 0;  // 0 = full row
    std::chrono::steady_clock::time_point enqueued;
    std::promise<EngineResponse> promise;
  };

  void DispatcherLoop();
  void ProcessBatch(std::vector<Request> batch,
                    const std::shared_ptr<const EngineSnapshot>& snapshot);

  LogClModel* model_;
  EngineOptions options_;

  mutable std::mutex mu_;  // guards queue_, snapshot_, stats_, stopping_,
                           // paused_, in_flight_
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;  // signals in_flight_ -> false
  std::deque<Request> queue_;
  std::shared_ptr<const EngineSnapshot> snapshot_;
  EngineStats stats_;
  bool stopping_ = false;
  bool paused_ = false;
  bool in_flight_ = false;  // a batch is scoring outside the lock

  std::mutex advance_mu_;  // serialises copy-on-write snapshot builds
  std::thread dispatcher_;

  // Registry handles (shared across engine instances; interned once).
  Counter* requests_counter_;
  Counter* shed_counter_;
  Counter* batches_counter_;
  Counter* advances_counter_;
  Histogram* batch_size_hist_;
  Histogram* queue_wait_us_hist_;
  Histogram* score_us_hist_;
  Histogram* request_us_hist_;
  Gauge* queue_depth_gauge_;
};

/// Restores a model's parameters from a tensor/checkpoint.h checkpoint
/// (shapes must match the model's configuration) — the serving deploy path:
/// construct the model from config, load the trained weights, wrap in an
/// InferenceEngine. With LOGCL_MMAP_CKPT=1 v2 checkpoints are read through
/// an mmap view (bitwise-identical result); v1 files fall back to the
/// streamed reader.
Status LoadModelCheckpoint(Module* model, const std::string& path);

/// Writes a model's parameters to a tensor/checkpoint.h checkpoint (format
/// v2) — the counterpart of LoadModelCheckpoint, used after (possibly
/// distributed) training to hand weights to a serving deploy. Round-trips
/// bitwise: Save then Load restores identical parameter bytes.
Status SaveModelCheckpoint(const Module& model, const std::string& path);

}  // namespace logcl

#endif  // LOGCL_SERVE_INFERENCE_ENGINE_H_
