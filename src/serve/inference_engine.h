// InferenceEngine: a thread-safe serving front-end over EngineSnapshot.
//
// Concurrently submitted queries are coalesced by a micro-batcher: a
// dedicated dispatcher thread collects pending requests until either
// `max_batch_size` are waiting or the oldest request has waited
// `batch_deadline_us`, then scores the whole batch as ONE decoder pass on
// the shared compute thread pool (one query-subgraph encode and one
// ConvTransE decode amortised over the batch). Submitters block on a
// per-request future.
//
// Top-k requests never materialise the full softmax (eval/ranking.h
// TopKSoftmax); full-row requests copy the logits row out of the batch.
//
// Advance(new_facts) builds the successor snapshot copy-on-write and
// publishes it with an atomic shared_ptr swap: batches already scoring keep
// the snapshot they started with, later batches see the new horizon.
// Observability: per-engine counters are available via Snapshot(); the same
// activity feeds the process-wide metrics registry as `logcl.serve.*`
// counters, latency/batch-size histograms and a queue-depth gauge
// (common/observability.h, DESIGN.md §12).

#ifndef LOGCL_SERVE_INFERENCE_ENGINE_H_
#define LOGCL_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/observability.h"
#include "common/status.h"
#include "nn/module.h"
#include "serve/engine_snapshot.h"

namespace logcl {

struct EngineOptions {
  /// Flush a batch as soon as this many requests are pending.
  int64_t max_batch_size = 32;
  /// How long the batcher holds an incomplete batch open for stragglers,
  /// measured from the oldest pending request's submission. 0 disables
  /// coalescing (every request is its own batch).
  int64_t batch_deadline_us = 200;
  /// Scoring precision for the engine's snapshots (defaults from
  /// LOGCL_QUANT; see serve/quant.h). Non-fp32 decodes in fp32, then scores
  /// against the candidate matrix quantized at snapshot build time. Falls
  /// back to fp32 when the model has no query-independent candidates
  /// (global-only configurations).
  ScorePrecision precision = ScorePrecisionFromEnv();
};

/// Snapshot of the engine's counters (monotonic since construction).
struct EngineStats {
  uint64_t requests = 0;        // queries submitted
  uint64_t batches = 0;         // decoder passes executed
  uint64_t advances = 0;        // snapshot swaps
  uint64_t max_batch = 0;       // largest coalesced batch
  uint64_t peak_queue_depth = 0;  // most requests pending at once
  uint64_t total_latency_us = 0;  // submit -> answer, summed
  uint64_t max_latency_us = 0;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  double MeanLatencyUs() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_latency_us) /
                               static_cast<double>(requests);
  }

  /// One-line rendering for logs/benchmarks.
  std::string ToString() const;
};

class InferenceEngine {
 public:
  /// Builds the initial snapshot of `model` at horizon `time` and starts the
  /// dispatcher. Forces eval mode on the model so serving is deterministic.
  /// The model must outlive the engine and must not train while serving.
  InferenceEngine(LogClModel* model, int64_t time, EngineOptions options = {});

  /// Drains pending requests, then joins the dispatcher.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Blocking: the full logits row over all entities for one query,
  /// answered by whichever snapshot is current when its batch executes.
  std::vector<float> Score(const ServeQuery& query);

  /// Blocking: top-k (entity, probability) without a full softmax.
  std::vector<std::pair<int64_t, float>> TopK(const ServeQuery& query,
                                              int64_t k);

  /// Folds the completed horizon snapshot into a successor (copy-on-write;
  /// see EngineSnapshot::Advance) and atomically publishes it. Safe to call
  /// concurrently with Submit; concurrent Advance calls serialise, each
  /// building on the previously published snapshot.
  void Advance(std::vector<Quadruple> new_facts);

  /// The currently published snapshot / its horizon.
  std::shared_ptr<const EngineSnapshot> snapshot() const;
  int64_t time() const { return snapshot()->time(); }

  /// Point-in-time view of this engine's counters (the registry Snapshot()
  /// convention; the same activity surfaces process-wide as `logcl.serve.*`
  /// counters/histograms in MetricsRegistry::Snapshot(), see DESIGN.md §12).
  EngineStats Snapshot() const;

 private:
  struct RequestResult {
    std::vector<float> row;                       // k == 0
    std::vector<std::pair<int64_t, float>> topk;  // k > 0
  };
  struct Request {
    ServeQuery query;
    int64_t k = 0;  // 0 = full row
    std::chrono::steady_clock::time_point enqueued;
    std::promise<RequestResult> promise;
  };

  std::future<RequestResult> Submit(const ServeQuery& query, int64_t k);
  void DispatcherLoop();
  void ProcessBatch(std::vector<Request> batch,
                    const std::shared_ptr<const EngineSnapshot>& snapshot);

  LogClModel* model_;
  EngineOptions options_;

  mutable std::mutex mu_;  // guards queue_, snapshot_, stats_, stopping_
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  std::shared_ptr<const EngineSnapshot> snapshot_;
  EngineStats stats_;
  bool stopping_ = false;

  std::mutex advance_mu_;  // serialises copy-on-write snapshot builds
  std::thread dispatcher_;

  // Registry handles (shared across engine instances; interned once).
  Counter* requests_counter_;
  Counter* batches_counter_;
  Counter* advances_counter_;
  Histogram* batch_size_hist_;
  Histogram* queue_wait_us_hist_;
  Histogram* score_us_hist_;
  Histogram* request_us_hist_;
  Gauge* queue_depth_gauge_;
};

/// Restores a model's parameters from a tensor/serialization.h checkpoint
/// (shapes must match the model's configuration) — the serving deploy path:
/// construct the model from config, load the trained weights, wrap in an
/// InferenceEngine.
Status LoadModelCheckpoint(Module* model, const std::string& path);

/// Writes a model's parameters to a tensor/serialization.h checkpoint —
/// the counterpart of LoadModelCheckpoint, used after (possibly
/// distributed) training to hand weights to a serving deploy. Round-trips
/// bitwise: Save then Load restores identical parameter bytes.
Status SaveModelCheckpoint(const Module& model, const std::string& path);

}  // namespace logcl

#endif  // LOGCL_SERVE_INFERENCE_ENGINE_H_
