// Reduced-precision candidate scoring for frozen EngineSnapshots.
//
// The serving hot path is B decoded queries [B, d] dotted against the frozen
// candidate entity matrix [E, d] — E dominates, and ranking (not logits) is
// what the caller consumes. The candidate matrix is query-independent once a
// snapshot is built, so it is quantized exactly once per Build()/Advance():
//
//  - bf16: round-to-nearest-even truncation of each fp32 value to its high
//    16 bits (8-bit exponent intact, 7 mantissa bits). Scoring dequantises
//    on the fly into fp32 dot products.
//  - int8: symmetric per-row quantisation, scale_i = maxabs(row_i) / 127.
//    Scoring quantises the decoded query row once per request (its own
//    symmetric scale), runs exact int32 dot products (simd::DotI8), and
//    rescales: logit ~= q_scale * row_scale * dot.
//
// Neither path is bitwise-gated against fp32; the contract is statistical —
// Spearman rank correlation >= 0.99 per score row and |delta MRR| <= 0.005
// on the synthetic eval set (quant_test.cc enforces both). LOGCL_QUANT
// selects the default precision (fp32 | bf16 | int8); snapshots silently
// fall back to fp32 when the model's candidate matrix is query-conditioned
// (global-only configurations) and there is nothing to freeze.

#ifndef LOGCL_SERVE_QUANT_H_
#define LOGCL_SERVE_QUANT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace logcl {

/// Candidate-scoring precision for a frozen snapshot.
enum class ScorePrecision { kFp32, kBf16, kInt8 };

/// Default precision from LOGCL_QUANT (fp32 | bf16 | int8; unset => fp32).
ScorePrecision ScorePrecisionFromEnv();

const char* PrecisionName(ScorePrecision p);

/// fp32 -> bf16 with round-to-nearest-even (the truncation-with-rounding
/// scheme hardware bf16 units use); NaN payloads are preserved enough to
/// stay NaN.
uint16_t Bf16FromFloat(float v);
/// bf16 -> fp32 (exact: zero-extend the mantissa).
float Bf16ToFloat(uint16_t v);

/// Row-major bf16 matrix.
struct Bf16Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<uint16_t> data;
  bool empty() const { return data.empty(); }
};

/// Row-major int8 matrix with symmetric per-row scales:
/// value[i][j] ~= data[i][j] * scales[i].
struct Int8Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> data;
  std::vector<float> scales;
  bool empty() const { return data.empty(); }
};

Bf16Matrix QuantizeBf16(const float* m, int64_t rows, int64_t cols);
Int8Matrix QuantizeInt8PerRow(const float* m, int64_t rows, int64_t cols);

/// Symmetric int8 quantisation of one fp32 row (the decoded query);
/// returns the scale (0 for an all-zero row, with all codes 0).
float QuantizeRowInt8(const float* row, int64_t n, int8_t* out);

/// The frozen candidate entity matrix in one reduced precision, built at
/// snapshot Build()/Advance() time. kFp32 precision means "not quantized".
struct QuantizedCandidates {
  ScorePrecision precision = ScorePrecision::kFp32;
  Bf16Matrix bf16;    // filled when precision == kBf16
  Int8Matrix int8;    // filled when precision == kInt8
  int64_t rows() const {
    return precision == ScorePrecision::kBf16 ? bf16.rows : int8.rows;
  }
  int64_t cols() const {
    return precision == ScorePrecision::kBf16 ? bf16.cols : int8.cols;
  }
  bool empty() const {
    return precision == ScorePrecision::kFp32 ||
           (bf16.empty() && int8.empty());
  }
};

/// Quantises `entities` [E, d] to `precision`. kFp32 returns an empty
/// bundle.
QuantizedCandidates BuildQuantizedCandidates(const Tensor& entities,
                                             ScorePrecision precision);

/// Approximate logits of one decoded query row [dim] against every
/// candidate: out[e] ~= dot(decoded, entities[e]). `dim` must equal the
/// bundle's cols and `out` must hold rows() floats. Serial per row — batch
/// callers shard rows across threads.
void ScoreQuantizedRow(const QuantizedCandidates& candidates,
                       const float* decoded, int64_t dim, float* out);

}  // namespace logcl

#endif  // LOGCL_SERVE_QUANT_H_
