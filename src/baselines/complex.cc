#include "baselines/complex.h"

#include "common/logging.h"

namespace logcl {

ComplEx::ComplEx(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed) {
  LOGCL_CHECK_EQ(dim % 2, 0) << "ComplEx needs an even embedding size";
}

Tensor ComplEx::ComplexScores(const Tensor& subjects,
                              const Tensor& relations) const {
  int64_t half = dim_ / 2;
  Tensor s_re = ops::SliceCols(subjects, 0, half);
  Tensor s_im = ops::SliceCols(subjects, half, half);
  Tensor r_re = ops::SliceCols(relations, 0, half);
  Tensor r_im = ops::SliceCols(relations, half, half);
  Tensor e_re = ops::SliceCols(entity_embeddings_, 0, half);
  Tensor e_im = ops::SliceCols(entity_embeddings_, half, half);
  // Re(<s, r, conj(o)>) = (s_re r_re - s_im r_im) . o_re
  //                     + (s_re r_im + s_im r_re) . o_im
  Tensor q_re = ops::Sub(ops::Mul(s_re, r_re), ops::Mul(s_im, r_im));
  Tensor q_im = ops::Add(ops::Mul(s_re, r_im), ops::Mul(s_im, r_re));
  return ops::Add(ops::MatMul(q_re, ops::Transpose(e_re)),
                  ops::MatMul(q_im, ops::Transpose(e_im)));
}

Tensor ComplEx::ScoreBatch(const std::vector<Quadruple>& queries,
                           bool training) {
  (void)training;
  return ComplexScores(SubjectEmbeddings(queries),
                       RelationEmbeddings(queries));
}

}  // namespace logcl
