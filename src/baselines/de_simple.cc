#include "baselines/de_simple.h"

#include <algorithm>

#include "common/logging.h"

namespace logcl {

DeSimplE::DeSimplE(const TkgDataset* dataset, int64_t dim,
                   float temporal_fraction, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed) {
  LOGCL_CHECK_GT(temporal_fraction, 0.0f);
  LOGCL_CHECK_LT(temporal_fraction, 1.0f);
  temporal_dim_ = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<float>(dim) * temporal_fraction));
  Shape shape{dataset->num_entities(), temporal_dim_};
  amplitude_ = AddParameter(Tensor::XavierUniform(shape, &rng_));
  frequency_ = AddParameter(Tensor::XavierUniform(shape, &rng_));
  phase_ = AddParameter(Tensor::XavierUniform(shape, &rng_));
}

Tensor DeSimplE::EntitiesAt(int64_t t) const {
  Tensor static_part =
      ops::SliceCols(entity_embeddings_, 0, dim_ - temporal_dim_);
  // a * sin(w t + b); sin(x) = cos(x - pi/2).
  Tensor angle = ops::AddScalar(
      ops::Add(ops::Scale(frequency_, static_cast<float>(t)), phase_),
      -1.5707963f);
  Tensor temporal = ops::Mul(amplitude_, ops::Cos(angle));
  return ops::ConcatCols({static_part, temporal});
}

Tensor DeSimplE::ScoreBatch(const std::vector<Quadruple>& queries,
                            bool training) {
  (void)training;
  LOGCL_CHECK(!queries.empty());
  int64_t t = std::clamp<int64_t>(queries.front().time, 0,
                                  dataset().num_timestamps() - 1);
  Tensor entities_t = EntitiesAt(t);
  std::vector<int64_t> subjects;
  subjects.reserve(queries.size());
  for (const Quadruple& q : queries) subjects.push_back(q.subject);
  Tensor query = ops::Mul(ops::IndexSelectRows(entities_t, subjects),
                          RelationEmbeddings(queries));
  return ops::MatMul(query, ops::Transpose(entities_t));
}

}  // namespace logcl
