#include "baselines/conve.h"

#include "common/logging.h"

namespace logcl {

ConvE::ConvE(const TkgDataset* dataset, int64_t dim, int64_t num_kernels,
             int64_t reshape_h, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed),
      num_kernels_(num_kernels),
      reshape_h_(reshape_h),
      reshape_w_(dim / reshape_h),
      fc_(num_kernels * 2 * reshape_h * (dim / reshape_h), dim, &rng_) {
  LOGCL_CHECK_EQ(dim % reshape_h, 0) << "dim must factor into the image";
  kernels_ =
      AddParameter(Tensor::XavierUniform(Shape{num_kernels, 9}, &rng_));
  kernel_bias_ = AddParameter(
      Tensor::Zeros(Shape{num_kernels}, /*requires_grad=*/true));
  AddChild(&fc_);
}

Tensor ConvE::ScoreBatch(const std::vector<Quadruple>& queries,
                         bool training) {
  // Stack subject over relation: a 1-channel (2h x w) image per query.
  Tensor image = ops::ConcatCols(
      {SubjectEmbeddings(queries), RelationEmbeddings(queries)});
  Tensor features =
      ops::Relu(ops::Conv2d(image, /*channels=*/1, /*height=*/2 * reshape_h_,
                            /*width=*/reshape_w_, kernels_, 3, 3, /*pad=*/1,
                            kernel_bias_));
  features = ops::Dropout(features, dropout_, training, &rng_);
  Tensor decoded = ops::Relu(fc_.Forward(features));
  return ops::MatMul(decoded, ops::Transpose(entity_embeddings_));
}

}  // namespace logcl
