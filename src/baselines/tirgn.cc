#include "baselines/tirgn.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

namespace {
LocalEncoderOptions TirgnEncoder(int64_t history_length) {
  LocalEncoderOptions options;
  options.history_length = history_length;
  options.num_layers = 2;
  options.use_time_encoding = true;  // the "time-guided" part
  return options;
}
ConvTransEOptions TirgnDecoder() {
  ConvTransEOptions options;
  options.num_kernels = 16;
  return options;
}
}  // namespace

Tensor HistoryVocabularyMask(const HistoryIndex& history,
                             const std::vector<Quadruple>& queries,
                             int64_t num_entities) {
  int64_t batch = static_cast<int64_t>(queries.size());
  std::vector<float> mask(static_cast<size_t>(batch * num_entities), -1e9f);
  for (int64_t i = 0; i < batch; ++i) {
    const Quadruple& q = queries[static_cast<size_t>(i)];
    for (int64_t object :
         history.ObjectsBefore(q.subject, q.relation, q.time)) {
      mask[static_cast<size_t>(i * num_entities + object)] = 0.0f;
    }
  }
  return Tensor::FromVector(Shape{batch, num_entities}, std::move(mask));
}

TiRgn::TiRgn(const TkgDataset* dataset, int64_t dim, int64_t history_length,
             float history_weight, uint64_t seed)
    : RecurrentModel(dataset, dim, TirgnEncoder(history_length),
                     TirgnDecoder(), seed),
      history_(*dataset),
      history_weight_(history_weight) {
  LOGCL_CHECK_GE(history_weight, 0.0f);
  LOGCL_CHECK_LE(history_weight, 1.0f);
}

Tensor TiRgn::ScoreBatch(const std::vector<Quadruple>& queries,
                         bool training) {
  Tensor local = EvolveAndScore(queries, 0, training);
  Tensor mask =
      HistoryVocabularyMask(history_, queries, dataset().num_entities());
  Tensor masked = ops::Softmax(ops::Add(local, mask));
  Tensor raw = ops::Softmax(local);
  Tensor mixture = ops::Add(ops::Scale(masked, history_weight_),
                            ops::Scale(raw, 1.0f - history_weight_));
  // log p: CE(softmax(log p)) == NLL(p) and ranking is order-preserving.
  return ops::Log(mixture);
}

}  // namespace logcl
