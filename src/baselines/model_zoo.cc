#include "baselines/model_zoo.h"

#include "baselines/cen.h"
#include "baselines/cenet.h"
#include "baselines/complex.h"
#include "baselines/conve.h"
#include "baselines/convtranse_model.h"
#include "baselines/cygnet.h"
#include "baselines/de_simple.h"
#include "baselines/distmult.h"
#include "baselines/regcn.h"
#include "baselines/rotate.h"
#include "baselines/ta_distmult.h"
#include "baselines/tirgn.h"
#include "baselines/tntcomplex.h"
#include "baselines/ttranse.h"
#include "common/logging.h"
#include "core/logcl_model.h"

namespace logcl {

std::vector<ZooEntry> ModelZooEntries() {
  return {
      {"DistMult", ModelFamily::kStatic},
      {"ComplEx", ModelFamily::kStatic},
      {"ConvE", ModelFamily::kStatic},
      {"Conv-TransE", ModelFamily::kStatic},
      {"RotatE", ModelFamily::kStatic},
      {"TTransE", ModelFamily::kInterpolation},
      {"TA-DistMult", ModelFamily::kInterpolation},
      {"DE-SimplE", ModelFamily::kInterpolation},
      {"TNTComplEx", ModelFamily::kInterpolation},
      {"CyGNet", ModelFamily::kExtrapolation},
      {"RE-GCN", ModelFamily::kExtrapolation},
      {"CEN", ModelFamily::kExtrapolation},
      {"TiRGN", ModelFamily::kExtrapolation},
      {"CENET", ModelFamily::kExtrapolation},
      {"LogCL", ModelFamily::kExtrapolation},
  };
}

std::unique_ptr<TkgModel> MakeZooModel(const std::string& name,
                                       const TkgDataset* dataset,
                                       const ZooOptions& options) {
  int64_t d = options.embedding_dim;
  int64_t m = options.history_length;
  uint64_t seed = options.seed;
  if (name == "DistMult") {
    return std::make_unique<DistMult>(dataset, d, seed);
  }
  if (name == "ComplEx") {
    return std::make_unique<ComplEx>(dataset, d, seed);
  }
  if (name == "ConvE") {
    return std::make_unique<ConvE>(dataset, d, /*num_kernels=*/8,
                                   /*reshape_h=*/4, seed);
  }
  if (name == "Conv-TransE") {
    return std::make_unique<ConvTransEModel>(dataset, d, seed);
  }
  if (name == "RotatE") {
    return std::make_unique<RotatE>(dataset, d, seed);
  }
  if (name == "TTransE") {
    return std::make_unique<TTransE>(dataset, d, seed);
  }
  if (name == "TA-DistMult") {
    return std::make_unique<TaDistMult>(dataset, d, seed);
  }
  if (name == "DE-SimplE") {
    return std::make_unique<DeSimplE>(dataset, d, /*temporal_fraction=*/0.5f,
                                      seed);
  }
  if (name == "TNTComplEx") {
    return std::make_unique<TntComplEx>(dataset, d, seed);
  }
  if (name == "CyGNet") {
    return std::make_unique<CyGNet>(dataset, d, seed);
  }
  if (name == "RE-GCN") {
    return std::make_unique<ReGcn>(dataset, d, m, seed);
  }
  if (name == "CEN") {
    return std::make_unique<Cen>(
        dataset, d, std::vector<int64_t>{m / 2 + 1, m, m + 2}, seed);
  }
  if (name == "TiRGN") {
    return std::make_unique<TiRgn>(dataset, d, m, /*history_weight=*/0.3f,
                                   seed);
  }
  if (name == "CENET") {
    return std::make_unique<Cenet>(dataset, d, /*contrast_tau=*/0.1f, seed);
  }
  if (name == "LogCL") {
    LogClConfig config;
    config.embedding_dim = d;
    config.local.history_length = m;
    // At miniature scale a leaner decoder converges faster (the paper's 50
    // kernels suit d=200).
    config.decoder.num_kernels = 16;
    config.seed = seed;
    return std::make_unique<LogClModel>(dataset, config);
  }
  LOGCL_CHECK(false) << "unknown zoo model: " << name;
  return nullptr;
}

int64_t DefaultEpochsFor(const std::string& name) {
  // Static / interpolation models are cheap per epoch; give them more.
  // LogCL's two-phase propagation halves its per-step batch, so it needs a
  // few more epochs than the other extrapolation models to converge.
  if (name == "LogCL") return 12;
  for (const ZooEntry& entry : ModelZooEntries()) {
    if (entry.name == name) {
      return entry.family == ModelFamily::kExtrapolation ? 6 : 12;
    }
  }
  LOGCL_CHECK(false) << "unknown zoo model: " << name;
  return 0;
}

}  // namespace logcl
