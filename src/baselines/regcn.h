// RE-GCN (Li et al., 2021): evolutional representation learning — per-
// snapshot R-GCN aggregation + GRU evolution of entities, time-gated
// relation evolution, ConvTransE decoding. Exactly the recurrent core
// (without LogCL's time encoding, entity-aware attention, global branch and
// contrast). The original's optional static-graph constraint does not apply
// to the synthetic datasets (no static side information) and is omitted.

#ifndef LOGCL_BASELINES_REGCN_H_
#define LOGCL_BASELINES_REGCN_H_

#include "baselines/recurrent_base.h"

namespace logcl {

class ReGcn : public RecurrentModel {
 public:
  ReGcn(const TkgDataset* dataset, int64_t dim, int64_t history_length,
        uint64_t seed = 21);

  std::string name() const override { return "RE-GCN"; }
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_REGCN_H_
