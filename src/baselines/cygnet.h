// CyGNet (Zhu et al., 2021): sequential copy-generation networks. Two
// scoring modes share the query representation [h_s * r]:
//   - copy mode: scores restricted (masked) to the historical vocabulary of
//     (s, r) — "facts repeat";
//   - generation mode: scores over all entities.
// Final probability: p = alpha * softmax(copy) + (1 - alpha) * softmax(gen),
// with a learnable mixing weight.

#ifndef LOGCL_BASELINES_CYGNET_H_
#define LOGCL_BASELINES_CYGNET_H_

#include "baselines/baseline_model.h"
#include "nn/linear.h"
#include "tkg/history_index.h"

namespace logcl {

class CyGNet : public EmbeddingModel {
 public:
  CyGNet(const TkgDataset* dataset, int64_t dim, uint64_t seed = 24);

  std::string name() const override { return "CyGNet"; }

 protected:
  /// Returns log-probabilities of the copy-generation mixture.
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  HistoryIndex history_;
  Linear copy_head_;       // query -> d
  Linear generate_head_;   // query -> d
  Tensor mixing_logit_;    // alpha = sigmoid(mixing_logit_)
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_CYGNET_H_
