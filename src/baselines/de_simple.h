// DE-SimplE (Goel et al., 2020): diachronic entity embeddings. A fraction
// of each entity's features are time-dependent,
//   h_e(t)[i] = a_e[i] * sin(w_e[i] * t + b_e[i])   (temporal features)
//   h_e(t)[i] = h_e[i]                              (static features),
// scored bilinearly (the DistMult symmetrisation of SimplE, which is exact
// under our inverse-relation augmentation).

#ifndef LOGCL_BASELINES_DE_SIMPLE_H_
#define LOGCL_BASELINES_DE_SIMPLE_H_

#include "baselines/baseline_model.h"

namespace logcl {

class DeSimplE : public EmbeddingModel {
 public:
  /// `temporal_fraction` of the embedding is diachronic (paper default 0.5).
  DeSimplE(const TkgDataset* dataset, int64_t dim,
           float temporal_fraction = 0.5f, uint64_t seed = 18);

  std::string name() const override { return "DE-SimplE"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  /// Diachronic entity matrix at time t for ALL entities [E, d].
  Tensor EntitiesAt(int64_t t) const;

  int64_t temporal_dim_;
  Tensor amplitude_;  // [E, temporal_dim]
  Tensor frequency_;  // [E, temporal_dim]
  Tensor phase_;      // [E, temporal_dim]
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_DE_SIMPLE_H_
