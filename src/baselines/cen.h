// CEN (Li et al., 2022): complex evolutional pattern learning via a
// length-diversified ensemble — the same evolutional encoder is unrolled
// with several history lengths and the per-length scores are averaged, so
// short- and long-range evolutional patterns both contribute. (The original
// additionally trains the lengths curriculum-style online; our online mode
// covers that via TrainOnTimestamp.)

#ifndef LOGCL_BASELINES_CEN_H_
#define LOGCL_BASELINES_CEN_H_

#include "baselines/recurrent_base.h"

namespace logcl {

class Cen : public RecurrentModel {
 public:
  /// `history_lengths` is the ensemble, e.g. {2, 4, 6}.
  Cen(const TkgDataset* dataset, int64_t dim,
      std::vector<int64_t> history_lengths, uint64_t seed = 22);

  std::string name() const override { return "CEN"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  std::vector<int64_t> history_lengths_;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_CEN_H_
