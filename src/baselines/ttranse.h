// TTransE (Leblay & Chekol, 2018): translation with a time embedding,
//   score(s, r, o, t) = -|| h_s + r + tau_t - h_o ||^2.
// Interpolation baseline: the time table only covers seen timestamps;
// queries at unseen (future) timestamps clamp to the last seen embedding,
// which is exactly why interpolation models extrapolate poorly (Table III).

#ifndef LOGCL_BASELINES_TTRANSE_H_
#define LOGCL_BASELINES_TTRANSE_H_

#include "baselines/baseline_model.h"

namespace logcl {

class TTransE : public EmbeddingModel {
 public:
  TTransE(const TkgDataset* dataset, int64_t dim, uint64_t seed = 16);

  std::string name() const override { return "TTransE"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  Tensor time_embeddings_;  // [T, d]
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_TTRANSE_H_
