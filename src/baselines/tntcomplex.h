// TNTComplEx (Lacroix et al., 2020): 4th-order tensor factorisation with a
// temporal and a non-temporal relation component,
//   score(s, r, o, t) = Re(<h_s, r_t * tau_t + r_nt, conj(h_o)>)
// (complex elementwise products; tau_t is a complex time embedding).

#ifndef LOGCL_BASELINES_TNTCOMPLEX_H_
#define LOGCL_BASELINES_TNTCOMPLEX_H_

#include "baselines/complex.h"

namespace logcl {

class TntComplEx : public ComplEx {
 public:
  TntComplEx(const TkgDataset* dataset, int64_t dim, uint64_t seed = 19);

  std::string name() const override { return "TNTComplEx"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  Tensor temporal_relations_;  // [2R, d] (the r_t table)
  Tensor time_embeddings_;     // [T, d]
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_TNTCOMPLEX_H_
