// Shared plumbing for the recurrent-evolution extrapolation baselines
// (RE-GCN, CEN, TiRGN): base embeddings + LocalEncoder (no entity-aware
// attention, no time encoding unless enabled) + ConvTransE decoding, trained
// per-timestamp with cross-entropy over original + inverse queries.

#ifndef LOGCL_BASELINES_RECURRENT_BASE_H_
#define LOGCL_BASELINES_RECURRENT_BASE_H_

#include <vector>

#include "common/rng.h"
#include "core/local_encoder.h"
#include "core/tkg_model.h"
#include "nn/convtranse.h"

namespace logcl {

class RecurrentModel : public TkgModel {
 public:
  std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) override;

  EpochStats TrainEpoch(AdamOptimizer* optimizer) override;

  double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) override;

 protected:
  RecurrentModel(const TkgDataset* dataset, int64_t dim,
                 LocalEncoderOptions local_options,
                 ConvTransEOptions decoder_options, uint64_t seed);

  /// Logits [B, E] for same-timestamp queries; default = evolve + decode.
  virtual Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                            bool training);

  /// Evolves history up to the batch time (optionally with an explicit
  /// length) and decodes scores against the evolved entity matrix.
  Tensor EvolveAndScore(const std::vector<Quadruple>& queries,
                        int64_t history_length_override, bool training);

  int64_t dim_;
  Rng rng_;
  Tensor base_entities_;
  Tensor base_relations_;
  LocalEncoder local_encoder_;
  ConvTransE decoder_;
  float grad_clip_norm_ = 1.0f;

 private:
  /// One optimizer step on timestamp `t` with component losses, grad norm
  /// and timings (steps = 1 even when the timestamp is empty).
  EpochStats TrainStep(int64_t t, AdamOptimizer* optimizer);
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_RECURRENT_BASE_H_
