// TA-DistMult (Garcia-Duran et al., 2018): time-aware relation
// representations combined with DistMult scoring. The original encodes the
// relation plus time-token sequence with an LSTM; this implementation uses
// the equivalent additive composition r_t = r + tau_t (a learned time
// embedding per timestamp), which captures the same "relation meaning
// drifts with time" mechanism at this scale.

#ifndef LOGCL_BASELINES_TA_DISTMULT_H_
#define LOGCL_BASELINES_TA_DISTMULT_H_

#include "baselines/baseline_model.h"

namespace logcl {

class TaDistMult : public EmbeddingModel {
 public:
  TaDistMult(const TkgDataset* dataset, int64_t dim, uint64_t seed = 17);

  std::string name() const override { return "TA-DistMult"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  Tensor time_embeddings_;  // [T, d]
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_TA_DISTMULT_H_
