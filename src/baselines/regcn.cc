#include "baselines/regcn.h"

namespace logcl {

namespace {
LocalEncoderOptions ReGcnEncoder(int64_t history_length) {
  LocalEncoderOptions options;
  options.history_length = history_length;
  options.num_layers = 2;
  options.use_time_encoding = false;  // RE-GCN has no Eq.2-3 time features
  return options;
}
ConvTransEOptions ReGcnDecoder() {
  ConvTransEOptions options;
  options.num_kernels = 16;
  return options;
}
}  // namespace

ReGcn::ReGcn(const TkgDataset* dataset, int64_t dim, int64_t history_length,
             uint64_t seed)
    : RecurrentModel(dataset, dim, ReGcnEncoder(history_length),
                     ReGcnDecoder(), seed) {}

}  // namespace logcl
