// Shared infrastructure for the re-implemented baselines of Table III.
//
// EmbeddingModel covers every baseline that scores a batch of queries from
// embedding tables (static, interpolation, and the simpler extrapolation
// models): it owns the entity/relation embeddings, the per-timestamp
// cross-entropy training loop (with inverse queries, like the shared
// evaluation protocol) and gradient clipping; subclasses implement
// ScoreBatch.
//
// Each baseline reproduces the *mechanism* its paper contributes (see the
// per-class comments); engineering details that do not affect the Table III
// comparison (e.g. negative sampling schedules) are unified to softmax
// cross-entropy over all entities, as is standard in the RE-GCN code line.

#ifndef LOGCL_BASELINES_BASELINE_MODEL_H_
#define LOGCL_BASELINES_BASELINE_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/tkg_model.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace logcl {

class EmbeddingModel : public TkgModel {
 public:
  EmbeddingModel(const TkgDataset* dataset, int64_t dim, uint64_t seed);

  std::vector<std::vector<float>> ScoreQueries(
      const std::vector<Quadruple>& queries) override;

  EpochStats TrainEpoch(AdamOptimizer* optimizer) override;

  double TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) override;

 protected:
  /// Logits [B, E] for a batch of same-timestamp queries.
  virtual Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                            bool training) = 0;

  /// Optional extra loss term (e.g. CENET's contrastive term). Default none.
  virtual Tensor AuxiliaryLoss(const std::vector<Quadruple>& queries) {
    (void)queries;
    return Tensor();
  }

  /// Gathers subject embeddings [B, d].
  Tensor SubjectEmbeddings(const std::vector<Quadruple>& queries) const;
  /// Gathers relation embeddings [B, d].
  Tensor RelationEmbeddings(const std::vector<Quadruple>& queries) const;
  /// Ground-truth object ids.
  static std::vector<int64_t> Targets(const std::vector<Quadruple>& queries);

  int64_t dim_;
  Rng rng_;
  Tensor entity_embeddings_;    // [E, d]
  Tensor relation_embeddings_;  // [2R, d]
  float grad_clip_norm_ = 1.0f;

 private:
  /// One optimizer step on timestamp `t` with component losses, grad norm
  /// and timings (steps = 1 even when the timestamp is empty, matching the
  /// historical epoch-mean denominator).
  EpochStats TrainStep(int64_t t, AdamOptimizer* optimizer);
};

/// Ranking-equivalent negative squared L2 distance from each decoded query
/// row to every candidate row: 2 q H^T - ||H||^2 (the per-query ||q||^2 term
/// is a per-row constant, invisible to both softmax CE and ranking).
Tensor NegativeSquaredDistanceScores(const Tensor& queries,
                                     const Tensor& candidates);

}  // namespace logcl

#endif  // LOGCL_BASELINES_BASELINE_MODEL_H_
