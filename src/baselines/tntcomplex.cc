#include "baselines/tntcomplex.h"

#include <algorithm>

namespace logcl {

TntComplEx::TntComplEx(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : ComplEx(dataset, dim, seed) {
  temporal_relations_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), dim}, &rng_));
  time_embeddings_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_timestamps(), dim}, &rng_));
}

Tensor TntComplEx::ScoreBatch(const std::vector<Quadruple>& queries,
                              bool training) {
  (void)training;
  std::vector<int64_t> relations;
  std::vector<int64_t> times;
  relations.reserve(queries.size());
  times.reserve(queries.size());
  int64_t max_time = dataset().num_timestamps() - 1;
  for (const Quadruple& q : queries) {
    relations.push_back(q.relation);
    times.push_back(std::clamp<int64_t>(q.time, 0, max_time));
  }
  Tensor r_t = ops::IndexSelectRows(temporal_relations_, relations);
  Tensor tau = ops::IndexSelectRows(time_embeddings_, times);
  // Complex elementwise product r_t * tau.
  int64_t half = dim_ / 2;
  Tensor rt_re = ops::SliceCols(r_t, 0, half);
  Tensor rt_im = ops::SliceCols(r_t, half, half);
  Tensor tau_re = ops::SliceCols(tau, 0, half);
  Tensor tau_im = ops::SliceCols(tau, half, half);
  Tensor prod_re = ops::Sub(ops::Mul(rt_re, tau_re), ops::Mul(rt_im, tau_im));
  Tensor prod_im = ops::Add(ops::Mul(rt_re, tau_im), ops::Mul(rt_im, tau_re));
  Tensor effective_relation = ops::Add(ops::ConcatCols({prod_re, prod_im}),
                                       RelationEmbeddings(queries));
  return ComplexScores(SubjectEmbeddings(queries), effective_relation);
}

}  // namespace logcl
