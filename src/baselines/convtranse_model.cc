#include "baselines/convtranse_model.h"

namespace logcl {

namespace {
ConvTransEOptions SmallDecoder() {
  ConvTransEOptions options;
  options.num_kernels = 16;
  return options;
}
}  // namespace

ConvTransEModel::ConvTransEModel(const TkgDataset* dataset, int64_t dim,
                                 uint64_t seed)
    : EmbeddingModel(dataset, dim, seed),
      decoder_(dim, SmallDecoder(), &rng_) {
  AddChild(&decoder_);
}

Tensor ConvTransEModel::ScoreBatch(const std::vector<Quadruple>& queries,
                                   bool training) {
  return decoder_.Score(SubjectEmbeddings(queries),
                        RelationEmbeddings(queries), entity_embeddings_,
                        training, &rng_);
}

}  // namespace logcl
