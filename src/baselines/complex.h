// ComplEx (Trouillon et al., 2016): complex-valued bilinear scoring
//   score(s, r, o) = Re(<h_s, r, conj(h_o)>).
// Embeddings of size `dim` hold the real half in the first dim/2 columns
// and the imaginary half in the rest.

#ifndef LOGCL_BASELINES_COMPLEX_H_
#define LOGCL_BASELINES_COMPLEX_H_

#include "baselines/baseline_model.h"

namespace logcl {

class ComplEx : public EmbeddingModel {
 public:
  /// `dim` must be even.
  ComplEx(const TkgDataset* dataset, int64_t dim, uint64_t seed = 12);

  std::string name() const override { return "ComplEx"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

  /// Shared with TNTComplEx: ComplEx scoring of query-side (subject,
  /// relation) pairs against all entities.
  Tensor ComplexScores(const Tensor& subjects, const Tensor& relations) const;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_COMPLEX_H_
