#include "baselines/cen.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

namespace {
LocalEncoderOptions CenEncoder(int64_t max_length) {
  LocalEncoderOptions options;
  options.history_length = max_length;
  options.num_layers = 2;
  options.use_time_encoding = false;
  return options;
}
ConvTransEOptions CenDecoder() {
  ConvTransEOptions options;
  options.num_kernels = 16;
  return options;
}
int64_t MaxOf(const std::vector<int64_t>& lengths) {
  LOGCL_CHECK(!lengths.empty());
  int64_t max_length = lengths.front();
  for (int64_t l : lengths) max_length = std::max(max_length, l);
  return max_length;
}
}  // namespace

Cen::Cen(const TkgDataset* dataset, int64_t dim,
         std::vector<int64_t> history_lengths, uint64_t seed)
    : RecurrentModel(dataset, dim, CenEncoder(MaxOf(history_lengths)),
                     CenDecoder(), seed),
      history_lengths_(std::move(history_lengths)) {}

Tensor Cen::ScoreBatch(const std::vector<Quadruple>& queries, bool training) {
  Tensor total;
  for (int64_t length : history_lengths_) {
    Tensor scores = EvolveAndScore(queries, length, training);
    total = total.defined() ? ops::Add(total, scores) : scores;
  }
  return ops::Scale(total, 1.0f / static_cast<float>(history_lengths_.size()));
}

}  // namespace logcl
