// ConvE (Dettmers et al., 2018): 2-D CNN over the stacked reshaped subject
// and relation embeddings, FC projection, dot-product candidate scoring.

#ifndef LOGCL_BASELINES_CONVE_H_
#define LOGCL_BASELINES_CONVE_H_

#include "baselines/baseline_model.h"
#include "nn/linear.h"

namespace logcl {

class ConvE : public EmbeddingModel {
 public:
  /// Embeddings are reshaped to `reshape_h` x (dim / reshape_h) images; the
  /// subject and relation images are stacked vertically (2*reshape_h rows).
  /// `dim` must be divisible by `reshape_h`.
  ConvE(const TkgDataset* dataset, int64_t dim, int64_t num_kernels = 8,
        int64_t reshape_h = 4, uint64_t seed = 14);

  std::string name() const override { return "ConvE"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  int64_t num_kernels_;
  int64_t reshape_h_;
  int64_t reshape_w_;
  Tensor kernels_;  // [K, 3*3] single input channel
  Tensor kernel_bias_;
  Linear fc_;
  float dropout_ = 0.2f;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_CONVE_H_
