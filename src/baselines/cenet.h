// CENET (Xu et al., 2023): temporal reasoning with historical contrastive
// learning. Scores combine an embedding similarity term with a learned
// weighting of each candidate's historical frequency for the query's
// (s, r); a contrastive objective separates the representations of queries
// whose answers are historical from those whose answers are new (the
// "historical vs non-historical dependency" of the paper).

#ifndef LOGCL_BASELINES_CENET_H_
#define LOGCL_BASELINES_CENET_H_

#include "baselines/baseline_model.h"
#include "nn/mlp.h"
#include "tkg/history_index.h"

namespace logcl {

class Cenet : public EmbeddingModel {
 public:
  Cenet(const TkgDataset* dataset, int64_t dim, float contrast_tau = 0.1f,
        uint64_t seed = 25);

  std::string name() const override { return "CENET"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

  /// Historical contrastive term over the batch's query representations.
  Tensor AuxiliaryLoss(const std::vector<Quadruple>& queries) override;

 private:
  /// log(1 + count) frequency features [B, E] (constant w.r.t. parameters).
  Tensor FrequencyFeatures(const std::vector<Quadruple>& queries) const;

  HistoryIndex history_;
  Mlp projection_;         // contrastive head
  Tensor frequency_gain_;  // scalar weight on the frequency features
  float contrast_tau_;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_CENET_H_
