#include "baselines/recurrent_base.h"

#include "common/logging.h"
#include "common/observability.h"
#include "tensor/ops.h"

namespace logcl {

RecurrentModel::RecurrentModel(const TkgDataset* dataset, int64_t dim,
                               LocalEncoderOptions local_options,
                               ConvTransEOptions decoder_options,
                               uint64_t seed)
    : TkgModel(dataset),
      dim_(dim),
      rng_(seed),
      local_encoder_(dim, dataset->num_relations_with_inverse(), local_options,
                     &rng_),
      decoder_(dim, decoder_options, &rng_) {
  base_entities_ = AddParameter(
      Tensor::XavierUniform(Shape{dataset->num_entities(), dim}, &rng_));
  base_relations_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), dim}, &rng_));
  AddChild(&local_encoder_);
  AddChild(&decoder_);
}

Tensor RecurrentModel::EvolveAndScore(const std::vector<Quadruple>& queries,
                                      int64_t history_length_override,
                                      bool training) {
  LOGCL_CHECK(!queries.empty());
  int64_t t = queries.front().time;
  LocalEncoderOutput evolved =
      local_encoder_.Encode(dataset(), t, base_entities_, base_relations_,
                            training, &rng_, history_length_override);
  Tensor query = local_encoder_.QueryRepresentations(evolved, queries,
                                                     /*use_attention=*/false);
  std::vector<int64_t> relation_ids;
  relation_ids.reserve(queries.size());
  for (const Quadruple& q : queries) relation_ids.push_back(q.relation);
  Tensor relations = ops::IndexSelectRows(evolved.relations, relation_ids);
  return decoder_.Score(query, relations, evolved.entities, training, &rng_);
}

Tensor RecurrentModel::ScoreBatch(const std::vector<Quadruple>& queries,
                                  bool training) {
  return EvolveAndScore(queries, /*history_length_override=*/0, training);
}

std::vector<std::vector<float>> RecurrentModel::ScoreQueries(
    const std::vector<Quadruple>& queries) {
  NoGradGuard no_grad;
  Tensor scores = ScoreBatch(queries, /*training=*/false);
  int64_t num_entities = dataset().num_entities();
  std::vector<std::vector<float>> out;
  out.reserve(queries.size());
  const std::vector<float>& data = scores.data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto begin = data.begin() + static_cast<int64_t>(i) * num_entities;
    out.emplace_back(begin, begin + num_entities);
  }
  return out;
}

double RecurrentModel::TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
  return TrainStep(t, optimizer).loss;
}

EpochStats RecurrentModel::TrainStep(int64_t t, AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_step");
  EpochStats step;
  step.steps = 1;
  std::vector<Quadruple> facts = dataset().FactsAt(t);
  if (facts.empty()) return step;
  uint64_t step_start = MonotonicNowNs();
  std::vector<Quadruple> batch = dataset().WithInverses(facts);
  std::vector<int64_t> targets;
  targets.reserve(batch.size());
  for (const Quadruple& q : batch) targets.push_back(q.object);
  optimizer->ZeroGrad();
  uint64_t forward_start = MonotonicNowNs();
  Tensor loss =
      ops::CrossEntropyWithLogits(ScoreBatch(batch, /*training=*/true),
                                  targets);
  step.loss = step.loss_task = loss.at(0);
  step.seconds_forward =
      static_cast<double>(MonotonicNowNs() - forward_start) * 1e-9;
  uint64_t backward_start = MonotonicNowNs();
  Backward(loss);
  step.seconds_backward =
      static_cast<double>(MonotonicNowNs() - backward_start) * 1e-9;
  uint64_t optimizer_start = MonotonicNowNs();
  step.grad_norm = optimizer->ClipGradNorm(grad_clip_norm_);
  optimizer->Step();
  step.seconds_optimizer =
      static_cast<double>(MonotonicNowNs() - optimizer_start) * 1e-9;
  step.seconds_total =
      static_cast<double>(MonotonicNowNs() - step_start) * 1e-9;
  return step;
}

EpochStats RecurrentModel::TrainEpoch(AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_epoch");
  uint64_t epoch_start = MonotonicNowNs();
  EpochStats epoch;
  for (int64_t t : dataset().SplitTimestamps(Split::kTrain)) {
    if (t == 0) continue;  // no history yet
    epoch.AccumulateStep(TrainStep(t, optimizer));
  }
  epoch.FinalizeMeans();
  epoch.seconds_total =
      static_cast<double>(MonotonicNowNs() - epoch_start) * 1e-9;
  return epoch;
}

}  // namespace logcl
