// Conv-TransE (Shang et al., 2019) as a standalone static baseline: the
// nn/ConvTransE decoder applied directly to static embeddings.

#ifndef LOGCL_BASELINES_CONVTRANSE_MODEL_H_
#define LOGCL_BASELINES_CONVTRANSE_MODEL_H_

#include "baselines/baseline_model.h"
#include "nn/convtranse.h"

namespace logcl {

class ConvTransEModel : public EmbeddingModel {
 public:
  ConvTransEModel(const TkgDataset* dataset, int64_t dim, uint64_t seed = 15);

  std::string name() const override { return "Conv-TransE"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  ConvTransE decoder_;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_CONVTRANSE_MODEL_H_
