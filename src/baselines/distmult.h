// DistMult (Yang et al., 2015): bilinear diagonal scoring
//   score(s, r, o) = <h_s, r, h_o>.
// Static baseline: timestamps are ignored, as in the paper's Table III
// protocol ("for SKG reasoning methods, the time dimension is removed").

#ifndef LOGCL_BASELINES_DISTMULT_H_
#define LOGCL_BASELINES_DISTMULT_H_

#include "baselines/baseline_model.h"

namespace logcl {

class DistMult : public EmbeddingModel {
 public:
  DistMult(const TkgDataset* dataset, int64_t dim, uint64_t seed = 11);

  std::string name() const override { return "DistMult"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_DISTMULT_H_
