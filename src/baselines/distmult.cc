#include "baselines/distmult.h"

namespace logcl {

DistMult::DistMult(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed) {}

Tensor DistMult::ScoreBatch(const std::vector<Quadruple>& queries,
                            bool training) {
  (void)training;
  Tensor query = ops::Mul(SubjectEmbeddings(queries),
                          RelationEmbeddings(queries));
  return ops::MatMul(query, ops::Transpose(entity_embeddings_));
}

}  // namespace logcl
