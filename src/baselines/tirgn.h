// TiRGN (Li et al., 2022): time-guided recurrent graph network with
// local-global historical patterns. The local branch is the RE-GCN-style
// recurrent encoder with the periodic time encoding enabled; the global
// branch constrains predictions to the repetitive historical vocabulary of
// each (s, r) pair. Final probabilities mix the raw local distribution and
// the history-masked distribution:
//   p = alpha * softmax(local + mask) + (1 - alpha) * softmax(local).

#ifndef LOGCL_BASELINES_TIRGN_H_
#define LOGCL_BASELINES_TIRGN_H_

#include "baselines/recurrent_base.h"
#include "tkg/history_index.h"

namespace logcl {

class TiRgn : public RecurrentModel {
 public:
  TiRgn(const TkgDataset* dataset, int64_t dim, int64_t history_length,
        float history_weight = 0.3f, uint64_t seed = 23);

  std::string name() const override { return "TiRGN"; }

 protected:
  /// Returns log-probabilities (softmax-invariant, so the shared CE loss and
  /// ranking treat them exactly like logits).
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;

 private:
  HistoryIndex history_;
  float history_weight_;  // alpha
};

/// Builds the [B, E] additive mask whose entries are 0 for objects in the
/// historical vocabulary of each query's (s, r) and -1e9 otherwise. Shared
/// with CyGNet.
Tensor HistoryVocabularyMask(const HistoryIndex& history,
                             const std::vector<Quadruple>& queries,
                             int64_t num_entities);

}  // namespace logcl

#endif  // LOGCL_BASELINES_TIRGN_H_
