#include "baselines/cenet.h"

#include <cmath>

#include "core/contrast.h"
#include "tensor/ops.h"

namespace logcl {

Cenet::Cenet(const TkgDataset* dataset, int64_t dim, float contrast_tau,
             uint64_t seed)
    : EmbeddingModel(dataset, dim, seed),
      history_(*dataset),
      projection_(2 * dim, dim, dim, &rng_),
      contrast_tau_(contrast_tau) {
  AddChild(&projection_);
  frequency_gain_ =
      AddParameter(Tensor::Full(Shape{}, 1.0f, /*requires_grad=*/true));
}

Tensor Cenet::FrequencyFeatures(const std::vector<Quadruple>& queries) const {
  int64_t num_entities = dataset().num_entities();
  int64_t batch = static_cast<int64_t>(queries.size());
  std::vector<float> features(static_cast<size_t>(batch * num_entities),
                              0.0f);
  for (int64_t i = 0; i < batch; ++i) {
    const Quadruple& q = queries[static_cast<size_t>(i)];
    for (const auto& [object, count] :
         history_.ObjectCountsBefore(q.subject, q.relation, q.time)) {
      features[static_cast<size_t>(i * num_entities + object)] =
          std::log1p(static_cast<float>(count));
    }
  }
  return Tensor::FromVector(Shape{batch, num_entities}, std::move(features));
}

Tensor Cenet::ScoreBatch(const std::vector<Quadruple>& queries,
                         bool training) {
  (void)training;
  Tensor similarity = ops::MatMul(
      ops::Mul(SubjectEmbeddings(queries), RelationEmbeddings(queries)),
      ops::Transpose(entity_embeddings_));
  Tensor frequency = ops::Mul(FrequencyFeatures(queries), frequency_gain_);
  return ops::Add(similarity, frequency);
}

Tensor Cenet::AuxiliaryLoss(const std::vector<Quadruple>& queries) {
  // Binary labels: is the ground-truth answer historical for (s, r)?
  std::vector<int64_t> labels;
  labels.reserve(queries.size());
  for (const Quadruple& q : queries) {
    labels.push_back(
        history_.SeenBefore(q.subject, q.relation, q.object, q.time) ? 1 : 0);
  }
  Tensor z = projection_.Forward(
      ops::ConcatCols({SubjectEmbeddings(queries),
                       RelationEmbeddings(queries)}),
      /*normalize=*/true);
  return SupervisedInfoNce(z, z, labels, contrast_tau_,
                           /*exclude_self=*/true);
}

}  // namespace logcl
