// Model zoo: uniform construction of every Table III model with the default
// hyperparameters used by the experiment binaries.

#ifndef LOGCL_BASELINES_MODEL_ZOO_H_
#define LOGCL_BASELINES_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tkg_model.h"

namespace logcl {

/// The paper's three model families (Table III row groups).
enum class ModelFamily { kStatic, kInterpolation, kExtrapolation };

/// One zoo entry.
struct ZooEntry {
  std::string name;
  ModelFamily family;
};

/// All models in Table III row order (LogCL last).
std::vector<ZooEntry> ModelZooEntries();

/// Shared hyperparameters for zoo construction.
struct ZooOptions {
  int64_t embedding_dim = 32;
  int64_t history_length = 5;
  uint64_t seed = 7;
};

/// Creates a model by zoo name ("DistMult", ..., "LogCL"). CHECKs on an
/// unknown name. The dataset must outlive the model.
std::unique_ptr<TkgModel> MakeZooModel(const std::string& name,
                                       const TkgDataset* dataset,
                                       const ZooOptions& options = {});

/// Suggested training epochs per model family (static models converge in
/// more, cheaper epochs; recurrent models in fewer, costlier ones).
int64_t DefaultEpochsFor(const std::string& name);

}  // namespace logcl

#endif  // LOGCL_BASELINES_MODEL_ZOO_H_
