#include "baselines/rotate.h"

#include "common/logging.h"

namespace logcl {

RotatE::RotatE(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed) {
  LOGCL_CHECK_EQ(dim % 2, 0) << "RotatE needs an even embedding size";
}

Tensor RotatE::ScoreBatch(const std::vector<Quadruple>& queries,
                          bool training) {
  (void)training;
  int64_t half = dim_ / 2;
  Tensor subjects = SubjectEmbeddings(queries);
  Tensor s_re = ops::SliceCols(subjects, 0, half);
  Tensor s_im = ops::SliceCols(subjects, half, half);
  // Phase from the first half of the relation row.
  Tensor phase = ops::SliceCols(RelationEmbeddings(queries), 0, half);
  Tensor cos_p = ops::Cos(phase);
  // sin(x) = cos(x - pi/2).
  Tensor sin_p = ops::Cos(ops::AddScalar(phase, -1.5707963f));
  // Complex rotation: (s_re + i s_im) * (cos + i sin).
  Tensor rot_re = ops::Sub(ops::Mul(s_re, cos_p), ops::Mul(s_im, sin_p));
  Tensor rot_im = ops::Add(ops::Mul(s_re, sin_p), ops::Mul(s_im, cos_p));
  Tensor rotated = ops::ConcatCols({rot_re, rot_im});
  return NegativeSquaredDistanceScores(rotated, entity_embeddings_);
}

}  // namespace logcl
