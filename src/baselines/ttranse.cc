#include "baselines/ttranse.h"

#include <algorithm>

namespace logcl {

TTransE::TTransE(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed) {
  time_embeddings_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_timestamps(), dim}, &rng_));
}

Tensor TTransE::ScoreBatch(const std::vector<Quadruple>& queries,
                           bool training) {
  (void)training;
  std::vector<int64_t> times;
  times.reserve(queries.size());
  int64_t max_time = dataset().num_timestamps() - 1;
  for (const Quadruple& q : queries) {
    times.push_back(std::clamp<int64_t>(q.time, 0, max_time));
  }
  Tensor translated = ops::Add(
      ops::Add(SubjectEmbeddings(queries), RelationEmbeddings(queries)),
      ops::IndexSelectRows(time_embeddings_, times));
  return NegativeSquaredDistanceScores(translated, entity_embeddings_);
}

}  // namespace logcl
