#include "baselines/cygnet.h"

#include "baselines/tirgn.h"  // HistoryVocabularyMask
#include "tensor/ops.h"

namespace logcl {

CyGNet::CyGNet(const TkgDataset* dataset, int64_t dim, uint64_t seed)
    : EmbeddingModel(dataset, dim, seed),
      history_(*dataset),
      copy_head_(2 * dim, dim, &rng_),
      generate_head_(2 * dim, dim, &rng_) {
  AddChild(&copy_head_);
  AddChild(&generate_head_);
  mixing_logit_ =
      AddParameter(Tensor::Zeros(Shape{}, /*requires_grad=*/true));
}

Tensor CyGNet::ScoreBatch(const std::vector<Quadruple>& queries,
                          bool training) {
  (void)training;
  Tensor query = ops::ConcatCols(
      {SubjectEmbeddings(queries), RelationEmbeddings(queries)});
  Tensor candidates_t = ops::Transpose(entity_embeddings_);
  Tensor copy_logits =
      ops::MatMul(ops::Tanh(copy_head_.Forward(query)), candidates_t);
  Tensor generate_logits =
      ops::MatMul(ops::Tanh(generate_head_.Forward(query)), candidates_t);
  Tensor mask =
      HistoryVocabularyMask(history_, queries, dataset().num_entities());
  Tensor copy_prob = ops::Softmax(ops::Add(copy_logits, mask));
  Tensor generate_prob = ops::Softmax(generate_logits);
  Tensor alpha = ops::Sigmoid(mixing_logit_);  // scalar
  // p = alpha * copy + (1 - alpha) * gen, broadcast over the batch.
  Tensor weighted_copy = ops::Mul(copy_prob, alpha);
  Tensor weighted_generate =
      ops::Mul(generate_prob, ops::AddScalar(ops::Neg(alpha), 1.0f));
  return ops::Log(ops::Add(weighted_copy, weighted_generate));
}

}  // namespace logcl
