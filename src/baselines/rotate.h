// RotatE (Sun et al., 2019): relations as rotations in the complex plane,
//   score(s, r, o) = -|| h_s o r - h_o ||^2
// where `o` is element-wise complex rotation by the relation phase. The
// relation table stores phases (first dim/2 columns used).

#ifndef LOGCL_BASELINES_ROTATE_H_
#define LOGCL_BASELINES_ROTATE_H_

#include "baselines/baseline_model.h"

namespace logcl {

class RotatE : public EmbeddingModel {
 public:
  /// `dim` must be even (real/imaginary halves).
  RotatE(const TkgDataset* dataset, int64_t dim, uint64_t seed = 13);

  std::string name() const override { return "RotatE"; }

 protected:
  Tensor ScoreBatch(const std::vector<Quadruple>& queries,
                    bool training) override;
};

}  // namespace logcl

#endif  // LOGCL_BASELINES_ROTATE_H_
