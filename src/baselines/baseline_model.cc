#include "baselines/baseline_model.h"

#include "common/logging.h"
#include "common/observability.h"

namespace logcl {

EmbeddingModel::EmbeddingModel(const TkgDataset* dataset, int64_t dim,
                               uint64_t seed)
    : TkgModel(dataset), dim_(dim), rng_(seed) {
  entity_embeddings_ = AddParameter(
      Tensor::XavierUniform(Shape{dataset->num_entities(), dim}, &rng_));
  relation_embeddings_ = AddParameter(Tensor::XavierUniform(
      Shape{dataset->num_relations_with_inverse(), dim}, &rng_));
}

std::vector<std::vector<float>> EmbeddingModel::ScoreQueries(
    const std::vector<Quadruple>& queries) {
  NoGradGuard no_grad;
  Tensor scores = ScoreBatch(queries, /*training=*/false);
  int64_t num_entities = dataset().num_entities();
  LOGCL_CHECK_EQ(scores.shape().rows(),
                 static_cast<int64_t>(queries.size()));
  LOGCL_CHECK_EQ(scores.shape().cols(), num_entities);
  std::vector<std::vector<float>> out;
  out.reserve(queries.size());
  const std::vector<float>& data = scores.data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto begin = data.begin() + static_cast<int64_t>(i) * num_entities;
    out.emplace_back(begin, begin + num_entities);
  }
  return out;
}

double EmbeddingModel::TrainOnTimestamp(int64_t t, AdamOptimizer* optimizer) {
  return TrainStep(t, optimizer).loss;
}

EpochStats EmbeddingModel::TrainStep(int64_t t, AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_step");
  EpochStats step;
  step.steps = 1;
  std::vector<Quadruple> facts = dataset().FactsAt(t);
  if (facts.empty()) return step;
  uint64_t step_start = MonotonicNowNs();
  std::vector<Quadruple> batch = dataset().WithInverses(facts);
  optimizer->ZeroGrad();
  uint64_t forward_start = MonotonicNowNs();
  Tensor scores = ScoreBatch(batch, /*training=*/true);
  Tensor loss = ops::CrossEntropyWithLogits(scores, Targets(batch));
  step.loss_task = loss.at(0);
  Tensor aux = AuxiliaryLoss(batch);
  if (aux.defined()) {
    step.loss_aux = aux.at(0);
    loss = ops::Add(loss, aux);
  }
  step.loss = loss.at(0);
  step.seconds_forward =
      static_cast<double>(MonotonicNowNs() - forward_start) * 1e-9;
  uint64_t backward_start = MonotonicNowNs();
  Backward(loss);
  step.seconds_backward =
      static_cast<double>(MonotonicNowNs() - backward_start) * 1e-9;
  uint64_t optimizer_start = MonotonicNowNs();
  step.grad_norm = optimizer->ClipGradNorm(grad_clip_norm_);
  optimizer->Step();
  step.seconds_optimizer =
      static_cast<double>(MonotonicNowNs() - optimizer_start) * 1e-9;
  step.seconds_total =
      static_cast<double>(MonotonicNowNs() - step_start) * 1e-9;
  return step;
}

EpochStats EmbeddingModel::TrainEpoch(AdamOptimizer* optimizer) {
  LOGCL_TRACE_SCOPE("train_epoch");
  uint64_t epoch_start = MonotonicNowNs();
  EpochStats epoch;
  for (int64_t t : dataset().SplitTimestamps(Split::kTrain)) {
    epoch.AccumulateStep(TrainStep(t, optimizer));
  }
  epoch.FinalizeMeans();
  epoch.seconds_total =
      static_cast<double>(MonotonicNowNs() - epoch_start) * 1e-9;
  return epoch;
}

Tensor EmbeddingModel::SubjectEmbeddings(
    const std::vector<Quadruple>& queries) const {
  std::vector<int64_t> ids;
  ids.reserve(queries.size());
  for (const Quadruple& q : queries) ids.push_back(q.subject);
  return ops::IndexSelectRows(entity_embeddings_, ids);
}

Tensor EmbeddingModel::RelationEmbeddings(
    const std::vector<Quadruple>& queries) const {
  std::vector<int64_t> ids;
  ids.reserve(queries.size());
  for (const Quadruple& q : queries) ids.push_back(q.relation);
  return ops::IndexSelectRows(relation_embeddings_, ids);
}

std::vector<int64_t> EmbeddingModel::Targets(
    const std::vector<Quadruple>& queries) {
  std::vector<int64_t> targets;
  targets.reserve(queries.size());
  for (const Quadruple& q : queries) targets.push_back(q.object);
  return targets;
}

Tensor NegativeSquaredDistanceScores(const Tensor& queries,
                                     const Tensor& candidates) {
  // -||q - h||^2 = 2 q.h - ||h||^2 - ||q||^2; the last term is constant per
  // row and dropped (softmax CE and ranking are shift-invariant per row).
  Tensor dot = ops::Scale(ops::MatMul(queries, ops::Transpose(candidates)),
                          2.0f);
  Tensor norms = ops::RowSum(ops::Mul(candidates, candidates));  // [E, 1]
  Tensor norms_row = ops::Transpose(norms);                      // [1, E]
  return ops::Sub(dot, ops::Reshape(norms_row, Shape{norms_row.shape().cols()}));
}

}  // namespace logcl
