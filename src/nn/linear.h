// Affine layer: y = x W + b.

#ifndef LOGCL_NN_LINEAR_H_
#define LOGCL_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace logcl {

class Linear : public Module {
 public:
  /// Xavier-initialised [in_features, out_features] weight; bias optional.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  /// x is [n, in_features]; returns [n, out_features].
  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  /// Undefined when the layer was built without a bias.
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;  // undefined when bias is disabled
};

}  // namespace logcl

#endif  // LOGCL_NN_LINEAR_H_
