#include "nn/convtranse.h"

#include "common/logging.h"
#include "common/observability.h"
#include "tensor/ops.h"

namespace logcl {
namespace {

// FC epilogue over in = {x W, b}: ReLU(in0 + row-broadcast in1).
Tensor ProjectChain(const std::vector<Tensor>& in) {
  return ops::Relu(ops::Add(in[0], in[1]));
}

}  // namespace

ConvTransE::ConvTransE(int64_t dim, ConvTransEOptions options, Rng* rng)
    : options_(options), fc_(options.num_kernels * dim, dim, rng) {
  kernels_ = AddParameter(
      Tensor::XavierUniform(Shape{options_.num_kernels, 6}, rng));
  kernel_bias_ = AddParameter(
      Tensor::Zeros(Shape{options_.num_kernels}, /*requires_grad=*/true));
  AddChild(&fc_);
}

Tensor ConvTransE::Decode(const Tensor& h, const Tensor& r, bool training,
                          Rng* rng) const {
  LOGCL_CHECK(h.shape() == r.shape());
  Tensor features = ops::Relu(ops::Conv2x3(h, r, kernels_, kernel_bias_));
  features = ops::Dropout(features, options_.dropout, training, rng);
  // fc_ is built with a bias, so its forward decomposes as a matmul plus
  // the JIT-capturable bias-add + ReLU epilogue.
  Tensor pre = ops::MatMul(features, fc_.weight());
  return projection_cache_.Run({pre, fc_.bias()}, ProjectChain);
}

Tensor ConvTransE::Score(const Tensor& h, const Tensor& r,
                         const Tensor& entities, bool training,
                         Rng* rng) const {
  LOGCL_TRACE_SCOPE("decoder");
  Tensor decoded = Decode(h, r, training, rng);
  return ops::MatMul(decoded, ops::Transpose(entities));
}

}  // namespace logcl
