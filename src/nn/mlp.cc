#include "nn/mlp.h"

#include "tensor/ops.h"

namespace logcl {

Mlp::Mlp(int64_t in_features, int64_t hidden_features, int64_t out_features,
         Rng* rng)
    : first_(in_features, hidden_features, rng),
      second_(hidden_features, out_features, rng) {
  AddChild(&first_);
  AddChild(&second_);
}

Tensor Mlp::Forward(const Tensor& x, bool normalize) const {
  Tensor h = ops::Relu(first_.Forward(x));
  Tensor y = second_.Forward(h);
  return normalize ? ops::RowL2Normalize(y) : y;
}

}  // namespace logcl
