// Module: base class for neural components with parameter registration.
//
// Parameters are leaf Tensors with requires_grad=true. A module registers
// its own parameters via AddParameter and its sub-modules via AddChild;
// Parameters() walks the tree so optimizers see every trainable leaf once.

#ifndef LOGCL_NN_MODULE_H_
#define LOGCL_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace logcl {

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules own parameter state; copying would silently duplicate it.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const;

  /// Total number of scalar parameters (for model-size reporting).
  int64_t NumParameterElements() const;

 protected:
  /// Registers (and returns) a parameter tensor.
  Tensor AddParameter(Tensor parameter);

  /// Registers a sub-module. The child must outlive this module (normal for
  /// by-value members registered in the constructor).
  void AddChild(Module* child);

 private:
  std::vector<Tensor> own_parameters_;
  std::vector<Module*> children_;
};

}  // namespace logcl

#endif  // LOGCL_NN_MODULE_H_
