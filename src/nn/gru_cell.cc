#include "nn/gru_cell.h"

#include "tensor/ops.h"

namespace logcl {
namespace {

// Captureless builders for the JIT caches: the matmul results arrive as
// inputs, so each builder is a pure elementwise chain the tracer can
// compile (see tensor/jit.h).
Tensor GateChain(const std::vector<Tensor>& in) {
  return ops::Sigmoid(ops::Add(ops::Add(in[0], in[1]), in[2]));
}

Tensor CandidateChain(const std::vector<Tensor>& in) {
  return ops::Tanh(ops::Add(ops::Add(in[0], in[1]), in[2]));
}

// h' = z*h + (1-z)*n over in = {z, h, n}.
Tensor CombineChain(const std::vector<Tensor>& in) {
  Tensor one_minus_z = ops::AddScalar(ops::Neg(in[0]), 1.0f);
  return ops::Add(ops::Mul(in[0], in[1]), ops::Mul(one_minus_z, in[2]));
}

}  // namespace

GruCell::GruCell(int64_t dim, Rng* rng) {
  auto weight = [&] {
    return AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  };
  auto bias = [&] {
    return AddParameter(Tensor::Zeros(Shape{1, dim}, /*requires_grad=*/true));
  };
  wz_ = weight(); uz_ = weight(); bz_ = bias();
  wr_ = weight(); ur_ = weight(); br_ = bias();
  wn_ = weight(); un_ = weight(); bn_ = bias();
}

Tensor GruCell::Forward(const Tensor& h, const Tensor& x) const {
  using ops::MatMul;
  Tensor z =
      gate_cache_.Run({MatMul(x, wz_), MatMul(h, uz_), bz_}, GateChain);
  Tensor r =
      gate_cache_.Run({MatMul(x, wr_), MatMul(h, ur_), br_}, GateChain);
  Tensor n = candidate_cache_.Run(
      {MatMul(x, wn_), MatMul(ops::Mul(r, h), un_), bn_}, CandidateChain);
  return combine_cache_.Run({z, h, n}, CombineChain);
}

}  // namespace logcl
