#include "nn/gru_cell.h"

#include "tensor/ops.h"

namespace logcl {

GruCell::GruCell(int64_t dim, Rng* rng) {
  auto weight = [&] {
    return AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  };
  auto bias = [&] {
    return AddParameter(Tensor::Zeros(Shape{1, dim}, /*requires_grad=*/true));
  };
  wz_ = weight(); uz_ = weight(); bz_ = bias();
  wr_ = weight(); ur_ = weight(); br_ = bias();
  wn_ = weight(); un_ = weight(); bn_ = bias();
}

Tensor GruCell::Forward(const Tensor& h, const Tensor& x) const {
  using namespace ops;  // NOLINT: dense formula readability
  Tensor z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  Tensor r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  Tensor n = Tanh(Add(Add(MatMul(x, wn_), MatMul(Mul(r, h), un_)), bn_));
  // h' = z*h + (1-z)*n
  Tensor one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(z, h), Mul(one_minus_z, n));
}

}  // namespace logcl
