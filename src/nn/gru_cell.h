// Matrix-form GRU cell (Eq.5): one step over a batch of states.

#ifndef LOGCL_NN_GRU_CELL_H_
#define LOGCL_NN_GRU_CELL_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/jit.h"
#include "tensor/tensor.h"

namespace logcl {

/// Standard GRU update:
///   z = sigmoid(x Wz + h Uz + bz)
///   r = sigmoid(x Wr + h Ur + br)
///   n = tanh(x Wn + (r * h) Un + bn)
///   h' = z * h + (1 - z) * n
/// Both the input x and the state h have `dim` features.
class GruCell : public Module {
 public:
  GruCell(int64_t dim, Rng* rng);

  /// h and x are [n, dim]; returns the next state [n, dim].
  Tensor Forward(const Tensor& h, const Tensor& x) const;

 private:
  Tensor wz_, uz_, bz_;
  Tensor wr_, ur_, br_;
  Tensor wn_, un_, bn_;
  // JIT capture caches for the elementwise chains between the matmuls
  // (tensor/jit.h). z and r share one cache: identical chain, identical
  // signature. No-ops under LOGCL_JIT=0.
  mutable jit::ChainCache gate_cache_;
  mutable jit::ChainCache candidate_cache_;
  mutable jit::ChainCache combine_cache_;
};

}  // namespace logcl

#endif  // LOGCL_NN_GRU_CELL_H_
