#include "nn/module.h"

#include "common/logging.h"

namespace logcl {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all = own_parameters_;
  for (const Module* child : children_) {
    std::vector<Tensor> sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

int64_t Module::NumParameterElements() const {
  int64_t total = 0;
  for (const Tensor& p : Parameters()) total += p.num_elements();
  return total;
}

Tensor Module::AddParameter(Tensor parameter) {
  LOGCL_CHECK(parameter.defined());
  LOGCL_CHECK(parameter.requires_grad())
      << "parameters must be created with requires_grad=true";
  own_parameters_.push_back(parameter);
  return parameter;
}

void Module::AddChild(Module* child) {
  LOGCL_CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace logcl
