#include "nn/linear.h"

#include "tensor/ops.h"

namespace logcl {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias) {
  weight_ = AddParameter(
      Tensor::XavierUniform(Shape{in_features, out_features}, rng));
  if (use_bias) {
    bias_ = AddParameter(Tensor::Zeros(Shape{1, out_features},
                                       /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = ops::MatMul(x, weight_);
  if (bias_.defined()) y = ops::Add(y, bias_);
  return y;
}

}  // namespace logcl
