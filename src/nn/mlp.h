// Two-layer projection head used by the contrast module (Eq.15-16): maps a
// query representation onto the unit sphere for InfoNCE.

#ifndef LOGCL_NN_MLP_H_
#define LOGCL_NN_MLP_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace logcl {

class Mlp : public Module {
 public:
  Mlp(int64_t in_features, int64_t hidden_features, int64_t out_features,
      Rng* rng);

  /// Linear -> ReLU -> Linear; rows L2-normalised when `normalize` is true
  /// (the contrast module projects onto the unit sphere).
  Tensor Forward(const Tensor& x, bool normalize = true) const;

 private:
  Linear first_;
  Linear second_;
};

}  // namespace logcl

#endif  // LOGCL_NN_MLP_H_
