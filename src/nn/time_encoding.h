// Periodic time encoding (Eq.2-3): phi(d) = cos(d * w_t + b_t), fused into
// the entity embedding with a linear projection of the concatenation.

#ifndef LOGCL_NN_TIME_ENCODING_H_
#define LOGCL_NN_TIME_ENCODING_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace logcl {

class TimeEncoding : public Module {
 public:
  /// `dim` is the entity embedding size; `time_dim` the size of phi(d).
  TimeEncoding(int64_t dim, int64_t time_dim, Rng* rng);

  /// Applies Eq.2-3: returns W0 [H || cos(delta * w_t + b_t)] with the time
  /// feature broadcast to every row of H ([n, dim] -> [n, dim]).
  /// `delta` is the integer time interval t_q - t_i.
  Tensor Forward(const Tensor& entities, int64_t delta) const;

 private:
  Tensor w_t_;  // [1, time_dim] learnable frequency
  Tensor b_t_;  // [1, time_dim] learnable phase
  Linear projection_;
};

}  // namespace logcl

#endif  // LOGCL_NN_TIME_ENCODING_H_
