#include "nn/time_encoding.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

TimeEncoding::TimeEncoding(int64_t dim, int64_t time_dim, Rng* rng)
    : projection_(dim + time_dim, dim, rng) {
  w_t_ = AddParameter(Tensor::XavierUniform(Shape{1, time_dim}, rng));
  b_t_ = AddParameter(Tensor::Zeros(Shape{1, time_dim}, /*requires_grad=*/true));
  AddChild(&projection_);
}

Tensor TimeEncoding::Forward(const Tensor& entities, int64_t delta) const {
  LOGCL_CHECK_EQ(entities.shape().rank(), 2);
  int64_t n = entities.shape().rows();
  // phi(d) = cos(d * w_t + b_t), a [1, time_dim] row.
  Tensor phi =
      ops::Cos(ops::Add(ops::Scale(w_t_, static_cast<float>(delta)), b_t_));
  // Tile to n rows through a ones-column matmul so gradients flow to w_t/b_t.
  Tensor ones = Tensor::Full(Shape{n, 1}, 1.0f);
  Tensor tiled = ops::MatMul(ones, phi);
  return projection_.Forward(ops::ConcatCols({entities, tiled}));
}

}  // namespace logcl
