// ConvTransE decoder (Shang et al. 2019), the score function of LogCL,
// RE-GCN and TiRGN: a 1-D CNN over the stacked (entity, relation) pair
// followed by a fully-connected projection; candidate scores are dot
// products with every entity embedding.

#ifndef LOGCL_NN_CONVTRANSE_H_
#define LOGCL_NN_CONVTRANSE_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/jit.h"
#include "tensor/tensor.h"

namespace logcl {

/// Decoder hyperparameters (paper: 50 kernels of size 2x3, dropout 0.2).
struct ConvTransEOptions {
  int64_t num_kernels = 16;  // paper: 50 at d=200; leaner at this scale
  float dropout = 0.2f;
};

class ConvTransE : public Module {
 public:
  ConvTransE(int64_t dim, ConvTransEOptions options, Rng* rng);

  /// Feature extraction: queries (h, r) [B, d] -> decoded query vector
  /// [B, d] (conv -> ReLU -> dropout -> FC -> ReLU).
  Tensor Decode(const Tensor& h, const Tensor& r, bool training,
                Rng* rng) const;

  /// Full scoring: Decode then dot products against all candidate entity
  /// embeddings `entities` [E, d]; returns logits [B, E].
  Tensor Score(const Tensor& h, const Tensor& r, const Tensor& entities,
               bool training, Rng* rng) const;

 private:
  ConvTransEOptions options_;
  Tensor kernels_;  // [K, 6] 2-channel width-3 taps
  Tensor kernel_bias_;  // [K]
  Linear fc_;       // K*d -> d
  // Capture cache for the bias-add + ReLU projection tail (tensor/jit.h).
  mutable jit::ChainCache projection_cache_;
};

}  // namespace logcl

#endif  // LOGCL_NN_CONVTRANSE_H_
