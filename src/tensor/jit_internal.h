// JIT internals shared between the tracer/cache (jit.cc) and the
// compiler/executor (jit_fusion.cc). Not part of the public surface.

#ifndef LOGCL_TENSOR_JIT_INTERNAL_H_
#define LOGCL_TENSOR_JIT_INTERNAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/elementwise_kernels.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace logcl {
namespace jit {
namespace internal {

// One opcode per distinct (arithmetic, broadcast) forward/backward kernel
// pair in ops.cc. Row/scalar variants are separate codes because the eager
// path runs them through different loops (and different backward
// reductions) than the same-shape SIMD fast paths.
enum class OpCode : uint8_t {
  kAdd,       // same-shape a + b          (simd::Add)
  kSub,       // same-shape a - b          (simd::Sub)
  kMul,       // same-shape a * b          (simd::Mul)
  kRowAdd,    // a[i] + b[i % cols], b is a row input
  kRowSub,    // a[i] - b[i % cols]
  kRowMul,    // a[i] * b[i % cols]
  kScalAdd,   // a[i] + b[0], b is a scalar input
  kScalSub,   // a[i] - b[0]
  kScalMul,   // a[i] * b[0]
  kScale,     // a[i] * param              (simd::Scale)
  kAddConst,  // a[i] + param              (simd::AddScalar)
  kRelu,      // max(a[i], 0)              (simd::Relu)
  kUnary,     // ewise::UnaryForward(ukind, a[i], param)
};

// One traced op. a/b/out index the value table; b is -1 for unary codes.
struct Instr {
  OpCode op;
  ewise::UnaryKind ukind = ewise::UnaryKind::kCustom;  // kUnary only
  float param = 0.0f;  // kScale/kAddConst factor, kUnary parameter
  int32_t a = -1;
  int32_t b = -1;
  int32_t out = -1;
};

// Where a value's forward data lives during replay.
enum class Storage : uint8_t {
  kInput,    // parent tensor data (inputs[input_index])
  kOutput,   // the replay output buffer / node.data
  kSaved,    // full-size arena region (backward reads this value's data)
  kScratch,  // tile-sized per-shard slot; dead once the tile finishes
};

// One entry in the plan's value table: inputs first, then op outputs in
// trace order.
struct ValueInfo {
  bool is_input = false;
  int32_t input_index = -1;  // inputs only
  int32_t def = -1;          // instr index that defines this value
  bool requires_grad = false;
  bool live = false;  // survives dead-code elimination

  Storage storage = Storage::kScratch;
  int64_t offset = 0;        // kSaved: float offset into the saved region
  int32_t scratch_slot = 0;  // kScratch: tile-slot index

  // Backward-arena planning (rg intermediates only; others keep -1).
  int64_t grad_offset = -1;  // float offset into the grad region
  int32_t grad_zero_at = -1;  // instr index whose backward step zeroes the
                              // region before accumulating (= last consumer)
};

// Capture state for one ChainCache::Run builder invocation. The tracer
// keeps a strong Tensor ref to every traced value so node addresses stay
// unique for the lifetime of the trace (the node->value map would alias
// otherwise if an intermediate died and its address was reused).
struct TraceState {
  std::vector<Tensor> keep_alive;
  std::unordered_map<const internal_tensor::TensorNode*, int32_t> value_of;
  std::vector<Instr> instrs;
  std::vector<ValueInfo> values;
  int32_t num_inputs = 0;
  bool grad_mode = false;
  bool poisoned = false;
  // All op-output nodes created while this trace was active (traced or
  // not); compilation requires this to equal instrs.size().
  uint64_t nodes_created = 0;
  // Common shape of every traced op output (the segment's element space).
  Shape shape;
  bool shape_set = false;
};

// A compiled, replayable plan: the DCE'd instruction list plus the static
// storage assignment. Immutable after Compile; safe to replay concurrently.
struct CompiledPlan : std::enable_shared_from_this<CompiledPlan> {
  std::vector<Instr> instrs;  // live instrs, trace order
  std::vector<ValueInfo> values;
  int32_t num_inputs = 0;
  int32_t output_value = -1;
  bool grad_mode = false;
  bool has_backward = false;  // grad_mode && output requires grad

  Shape shape;
  int64_t n = 0;
  int64_t rows = 0, cols = 0;  // rank-2 plans (row-tiled executor)
  bool row_tiled = false;
  int64_t tile_elems = 0;  // scratch-slot capacity in floats

  int32_t num_scratch_slots = 0;
  int64_t saved_floats = 0;  // arena region [0, saved_floats)
  int64_t grad_floats = 0;   // arena region [saved_floats, +grad_floats)

  // Whether this plan was counted into the arena/plans_live gauges
  // (Compile sets it on success; the destructor undoes the counting).
  bool stats_noted = false;

  ~CompiledPlan();

  int64_t arena_bytes() const {
    return static_cast<int64_t>((saved_floats + grad_floats) *
                                sizeof(float));
  }

  /// Builds a plan from a finished trace, or null when the trace is not
  /// compilable (poisoned, untraced nodes, < 2 live ops, ...).
  static std::shared_ptr<const CompiledPlan> Compile(const TraceState& trace,
                                                     const Tensor& output);

  /// Executes the plan over `inputs` (which must match the captured
  /// signature) and returns the segment output tensor, with the recorded
  /// backward program attached when has_backward.
  Tensor Replay(const std::vector<Tensor>& inputs) const;
};

// Monotonic counter bumps from jit_fusion.cc (defined in jit.cc).
void BumpPlansCaptured(uint64_t fused_ops);
void BumpCaptureFailures();
void NotePlanAlive(int64_t arena_bytes);
void NotePlanDead(int64_t arena_bytes);

}  // namespace internal
}  // namespace jit
}  // namespace logcl

#endif  // LOGCL_TENSOR_JIT_INTERNAL_H_
