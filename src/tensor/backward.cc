// Reverse-mode tape replay: topological sort over the dynamic graph followed
// by backward-closure execution in reverse creation order.

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace logcl {

void Backward(const Tensor& loss) {
  LOGCL_CHECK(loss.defined());
  LOGCL_CHECK(loss.requires_grad())
      << "Backward() on a tensor that does not require grad";

  using Node = internal_tensor::TensorNode;

  // Collect the reachable graph (iterative DFS; graphs can be deep for long
  // snapshot histories, so no recursion).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<Node*> stack = {loss.node().get()};
  visited.insert(loss.node().get());
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (const auto& parent : node->parents) {
      if (parent->requires_grad && visited.insert(parent.get()).second) {
        stack.push_back(parent.get());
      }
    }
  }

  // Reverse creation order is a valid reverse-topological order for a
  // define-by-run tape: every op output is created after all of its inputs.
  std::sort(order.begin(), order.end(),
            [](const Node* a, const Node* b) { return a->sequence > b->sequence; });

  // Seed: d(loss)/d(loss) = 1 for every element.
  loss.node()->EnsureGrad();
  std::fill(loss.node()->grad.begin(), loss.node()->grad.end(), 1.0f);

  for (Node* node : order) {
    if (!node->backward_fn) continue;
    node->EnsureGrad();
    node->backward_fn(*node);
    // Lazy grad recycling: replay runs in descending sequence order, so
    // every consumer of this node's grad (an op output created later) has
    // already executed — the buffer is dead and can be pooled now instead
    // of at tape teardown. Leaves keep their grads for the optimizer
    // (PyTorch-like "non-leaf .grad is not retained" semantics).
    ReleaseBuffer(std::move(node->grad));
  }
}

}  // namespace logcl
