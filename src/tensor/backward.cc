// Reverse-mode autograd executor. Two drains of the same schedule:
//
//  - Serial replay (LOGCL_INTEROP=0, one-thread pools, nested calls, tiny
//    graphs): backward closures run in descending creation order — exactly
//    the pre-engine tape replay, bit for bit.
//  - Inter-op engine (default): a dependency-counting ready-queue executor
//    in the style of torch's autograd engine, drained by the shared thread
//    pool, so independent branches (local vs global encoder, per-snapshot
//    R-GCN stacks, per-term contrastive losses) execute backward
//    concurrently. It composes with intra-op parallelism grain-aware:
//    whenever the queue collapses to a single runnable node the pooled
//    phase hands that node back to the calling thread, where its kernels
//    regain full ParallelFor threading; while the queue is deep, nodes run
//    on pool threads with their kernels inlined (nested parallel calls run
//    inline by the PR 1 contract, and ParallelReduce's fixed chunking keeps
//    every reduction bitwise thread-count-invariant either way).
//
// Determinism. Accumulating a multi-consumer node's grad is a chain of
// in-place floating-point adds, so the result bits depend on the order the
// consumers run. Buffering per-consumer contributions and reducing them in
// fixed child order (the obvious scheme) can NOT reproduce the serial bits:
// backward kernels fuse compute and accumulate in place, so serial produces
// ((g + t_a) + t_b) while a buffered reduction produces g + ((0 + t_a) +
// t_b), and fp addition is not associative. Instead the engine schedules
// the accumulation ORDER: for every parent P its distinct consumers form a
// chain in descending creation order (= the serial execution order), and a
// node becomes ready only when it is the next pending element of every one
// of its parents' chains. Disjoint branches still overlap, but writers to
// any single grad buffer are totally ordered exactly as the serial replay
// orders them, so every add sees bit-identical operands and the engine is
// bitwise-equal to the serial path at any thread count. Every chain edge
// points from a higher sequence number to a lower one, so the dependency
// graph is acyclic and the highest-sequence pending node is always ready:
// no deadlock, guaranteed progress.
//
// Grad recycling (PR 3) moves from "replay order implies all consumers ran"
// to the dependency counts themselves: a node's readiness required every
// chain containing it to have drained, i.e. all writers into its grad are
// done, so the buffer is released right after its backward closure — the
// same release point as the serial replay.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/observability.h"
#include "common/runtime_config.h"
#include "common/parallel.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace logcl {
namespace {

using Node = internal_tensor::TensorNode;

constexpr uint32_t kNoIndex = 0xffffffffu;

// Graphs with fewer executable nodes than this run serially even with
// inter-op enabled: pool dispatch costs more than the whole replay.
constexpr size_t kMinInterOpNodes = 16;

bool DefaultInterOp() { return RuntimeConfig::Get().interop; }

std::atomic<bool>& InterOpFlag() {
  static std::atomic<bool> enabled{DefaultInterOp()};
  return enabled;
}

// Epoch source for the visited marks stamped on TensorNode: a node is part
// of the current traversal iff its visit_epoch equals the pass's epoch, so
// collection needs no per-call hash set and no clearing pass.
std::atomic<uint64_t> g_visit_epoch{0};

struct AutogradCounters {
  Counter* backwards;
  Counter* interop_backwards;
  Counter* nodes;
  Counter* inline_nodes;
  Counter* pooled_nodes;
  Counter* pooled_phases;
  Counter* serial_handoffs;
  Counter* idle_waits;
  Histogram* ready_depth;
  Histogram* concurrent;
};

AutogradCounters& Am() {
  static AutogradCounters m{
      Metrics().GetCounter("logcl.autograd.backwards"),
      Metrics().GetCounter("logcl.autograd.interop_backwards"),
      Metrics().GetCounter("logcl.autograd.nodes"),
      Metrics().GetCounter("logcl.autograd.inline_nodes"),
      Metrics().GetCounter("logcl.autograd.pooled_nodes"),
      Metrics().GetCounter("logcl.autograd.pooled_phases"),
      Metrics().GetCounter("logcl.autograd.serial_handoffs"),
      Metrics().GetCounter("logcl.autograd.idle_waits"),
      Metrics().GetHistogram("logcl.autograd.ready_depth"),
      Metrics().GetHistogram("logcl.autograd.concurrent"),
  };
  return m;
}

// Collects the reachable requires-grad graph from `root` (iterative DFS;
// long snapshot histories make graphs deep, so no recursion). Stamps
// visit_epoch and engine_index on every node; nodes[i]->engine_index == i.
void CollectGraph(Node* root, uint64_t epoch, std::vector<Node*>* nodes) {
  root->visit_epoch = epoch;
  root->engine_index = 0;
  nodes->push_back(root);
  std::vector<Node*> stack = {root};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const auto& parent : node->parents) {
      Node* p = parent.get();
      if (!p->requires_grad || p->visit_epoch == epoch) continue;
      p->visit_epoch = epoch;
      p->engine_index = static_cast<uint32_t>(nodes->size());
      nodes->push_back(p);
      stack.push_back(p);
    }
  }
}

// Executable nodes (backward_fn set) in descending creation order — the
// serial replay order. Creation indices of one tape are nearly dense, so
// dropping each node into slot (sequence - min_seq) and scanning the slots
// backwards orders them with no comparison sort. Only executable nodes are
// placed: leaf parameters were created at model-construction time and would
// stretch the slot range by the whole program history (they never execute,
// so they need no position). A comparison sort remains as fallback for
// pathological ranges (a tape interleaved with heavy non-recorded tensor
// creation).
std::vector<Node*> ExecutionOrder(const std::vector<Node*>& nodes) {
  std::vector<Node*> exec;
  exec.reserve(nodes.size());
  uint64_t min_seq = ~uint64_t{0};
  uint64_t max_seq = 0;
  for (Node* n : nodes) {
    if (!n->backward_fn) continue;
    exec.push_back(n);
    min_seq = std::min(min_seq, n->sequence);
    max_seq = std::max(max_seq, n->sequence);
  }
  if (exec.size() <= 1) return exec;
  const uint64_t range = max_seq - min_seq + 1;
  if (range <= 4 * exec.size() + 1024) {
    std::vector<Node*> slots(static_cast<size_t>(range), nullptr);
    for (Node* n : exec) slots[n->sequence - min_seq] = n;
    std::vector<Node*> order;
    order.reserve(exec.size());
    for (uint64_t i = range; i-- > 0;) {
      if (slots[i] != nullptr) order.push_back(slots[i]);
    }
    return order;
  }
  std::sort(exec.begin(), exec.end(), [](const Node* a, const Node* b) {
    return a->sequence > b->sequence;
  });
  return exec;
}

void RunSerial(const std::vector<Node*>& order) {
  for (Node* node : order) {
    node->EnsureGrad();
    node->backward_fn(*node);
    // Lazy grad recycling: descending sequence order means every consumer
    // of this node's grad already executed, so the buffer is dead and can
    // be pooled now instead of at tape teardown. Leaves keep their grads
    // for the optimizer.
    ReleaseBuffer(std::move(node->grad));
  }
}

// Per-pass dependency schedule, all side arrays indexed by engine_index.
// chain_items[chain_begin[p] .. chain_begin[p+1]) lists parent p's distinct
// consumers in descending creation order; chain_pos[p] is how far that
// chain has drained.
struct Schedule {
  std::vector<uint32_t> deps;
  std::vector<uint32_t> chain_begin;  // CSR offsets, size N+1
  std::vector<uint32_t> chain_items;
  std::vector<uint32_t> chain_pos;
};

void BuildSchedule(const std::vector<Node*>& nodes,
                   const std::vector<Node*>& order, uint64_t epoch,
                   Schedule* s) {
  const uint32_t n = static_cast<uint32_t>(nodes.size());
  s->deps.assign(n, 0);
  s->chain_pos.assign(n, 0);
  s->chain_begin.assign(n + 1, 0);
  // `last` dedupes repeated operand slots within one consumer (Add(a, a)
  // executes once, so it occupies one chain position, not two).
  std::vector<uint32_t> last(n, kNoIndex);
  auto for_each_parent = [&](Node* consumer, auto&& fn) {
    const uint32_t ci = consumer->engine_index;
    for (const auto& parent : consumer->parents) {
      Node* p = parent.get();
      if (!p->requires_grad || p->visit_epoch != epoch) continue;
      const uint32_t pi = p->engine_index;
      if (last[pi] == ci) continue;
      last[pi] = ci;
      fn(pi, ci);
    }
  };
  for (Node* c : order) {
    for_each_parent(c,
                    [&](uint32_t pi, uint32_t) { ++s->chain_begin[pi + 1]; });
  }
  for (uint32_t i = 0; i < n; ++i) s->chain_begin[i + 1] += s->chain_begin[i];
  s->chain_items.resize(s->chain_begin[n]);
  // Iterating `order` (descending sequence) makes each chain the serial
  // execution order of that parent's consumers. A consumer appended at a
  // non-head chain position must wait for its chain predecessor (one dep
  // per such parent); a node with any consumers must wait for its own chain
  // to drain (one grad-ready dep) before its backward may run.
  std::fill(last.begin(), last.end(), kNoIndex);
  std::vector<uint32_t> fill(s->chain_begin.begin(), s->chain_begin.end() - 1);
  for (Node* c : order) {
    for_each_parent(c, [&](uint32_t pi, uint32_t ci) {
      const uint32_t pos = fill[pi]++;
      s->chain_items[pos] = ci;
      if (pos != s->chain_begin[pi]) ++s->deps[ci];
    });
  }
  for (Node* x : order) {
    const uint32_t xi = x->engine_index;
    if (s->chain_begin[xi + 1] != s->chain_begin[xi]) ++s->deps[xi];
  }
}

class InterOpEngine {
 public:
  InterOpEngine(const std::vector<Node*>& nodes, uint64_t epoch, Schedule s,
                uint32_t num_exec)
      : nodes_(nodes), epoch_(epoch), s_(std::move(s)), remaining_(num_exec) {}

  void Drain(std::vector<uint32_t> ready) {
    while (true) {
      if (ready.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        LOGCL_CHECK_EQ(remaining_, 0u)
            << "autograd engine stalled with pending nodes";
        break;
      }
      if (ready.size() == 1) {
        // Inline mode: the single runnable node gets the calling thread,
        // so its kernels keep full intra-op ParallelFor threading.
        const uint32_t idx = ready.back();
        ready.pop_back();
        ExecNode(idx);
        ++stat_inline_nodes_;
        std::lock_guard<std::mutex> lock(mu_);
        --remaining_;
        CompleteLocked(idx, &ready);
        continue;
      }
      // Pooled phase: every pool thread drains the shared ready stack.
      ++stat_pooled_phases_;
      const uint32_t handoff = DrainPooled(&ready);
      if (handoff == kNoIndex) break;
      ++stat_serial_handoffs_;
      ready.push_back(handoff);  // loop re-enters inline mode
    }
    FlushStats();
  }

 private:
  // Runs one pooled phase. Returns the handoff node when the phase
  // collapsed back to a single runnable node, kNoIndex when all nodes
  // finished.
  uint32_t DrainPooled(std::vector<uint32_t>* ready) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_.swap(*ready);
      stop_ = false;
      handoff_ = kNoIndex;
    }
    internal_parallel::RunChunks(GetNumThreads(),
                                 [this](int64_t) { DrainLoop(); });
    LOGCL_CHECK(ready_.empty());
    LOGCL_CHECK_EQ(running_, 0);
    return handoff_;
  }

  void DrainLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (stop_) return;
      if (ready_.empty()) {
        if (running_ == 0) {
          // Progress invariant: with nothing running, a pending node would
          // imply a ready node (the highest-sequence pending node has no
          // unfinished prerequisites), so the phase is complete.
          LOGCL_CHECK_EQ(remaining_, 0u)
              << "autograd engine stalled with pending nodes";
          stop_ = true;
          cv_.notify_all();
          return;
        }
        ++stat_idle_waits_;
        cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
        continue;
      }
      if (ready_.size() == 1 && running_ == 0) {
        // Serial handoff: one runnable node and nothing in flight. Inside
        // this pooled region its kernels would run single-threaded (nested
        // parallel calls inline), so give it back to the calling thread
        // where intra-op parallelism is available again.
        handoff_ = ready_.back();
        ready_.pop_back();
        stop_ = true;
        cv_.notify_all();
        return;
      }
      const uint32_t idx = ready_.back();
      ready_.pop_back();
      ++running_;
      Am().concurrent->Record(static_cast<uint64_t>(running_));
      lock.unlock();
      ExecNode(idx);
      lock.lock();
      --running_;
      --remaining_;
      ++stat_pooled_nodes_;
      CompleteLocked(idx, &ready_);
      if (remaining_ == 0) {
        stop_ = true;
        cv_.notify_all();
        return;
      }
      // A completion that made no node ready while nothing else runs would
      // be a lost-wakeup stall; the progress invariant says it cannot
      // happen — fail loudly rather than hang if it ever does.
      LOGCL_CHECK(running_ > 0 || !ready_.empty())
          << "autograd engine stalled with pending nodes";
    }
  }

  void ExecNode(uint32_t idx) {
    Node* node = nodes_[idx];
    node->EnsureGrad();
    node->backward_fn(*node);
    // Refcounted grad recycling: this node's readiness required every chain
    // containing it to have drained, so all writers into (and the one
    // reader of) this grad are done — same release point as RunSerial.
    ReleaseBuffer(std::move(node->grad));
  }

  // Chain bookkeeping after node `ci` finished; mu_ must be held. For each
  // distinct parent, ci sits at the front of the pending chain (that is
  // what made it runnable); advancing releases either the next consumer in
  // the chain or, once the chain drains, the parent's own grad-ready dep.
  void CompleteLocked(uint32_t ci, std::vector<uint32_t>* ready) {
    Node* node = nodes_[ci];
    bool pushed = false;
    for (const auto& parent : node->parents) {
      Node* p = parent.get();
      if (!p->requires_grad || p->visit_epoch != epoch_) continue;
      const uint32_t pi = p->engine_index;
      uint32_t pos = s_.chain_begin[pi] + s_.chain_pos[pi];
      if (pos >= s_.chain_begin[pi + 1] || s_.chain_items[pos] != ci) {
        continue;  // repeated operand slot (Add(a, a)): already advanced
      }
      ++s_.chain_pos[pi];
      ++pos;
      uint32_t succ;
      if (pos < s_.chain_begin[pi + 1]) {
        succ = s_.chain_items[pos];
      } else if (p->backward_fn) {
        succ = pi;  // chain drained: the parent's grad is fully accumulated
      } else {
        continue;  // leaf: its grad stays live for the optimizer
      }
      if (--s_.deps[succ] == 0) {
        ready->push_back(succ);
        pushed = true;
      }
    }
    if (pushed) {
      Am().ready_depth->Record(ready->size());
      cv_.notify_all();
    }
  }

  void FlushStats() {
    AutogradCounters& m = Am();
    m.interop_backwards->Increment();
    m.inline_nodes->Add(stat_inline_nodes_);
    m.pooled_nodes->Add(stat_pooled_nodes_);
    m.pooled_phases->Add(stat_pooled_phases_);
    m.serial_handoffs->Add(stat_serial_handoffs_);
    m.idle_waits->Add(stat_idle_waits_);
  }

  const std::vector<Node*>& nodes_;
  const uint64_t epoch_;
  Schedule s_;

  std::mutex mu_;  // guards ready_/running_/remaining_/stop_/handoff_/s_
  std::condition_variable cv_;
  std::vector<uint32_t> ready_;
  uint32_t remaining_;
  int running_ = 0;
  bool stop_ = false;
  uint32_t handoff_ = kNoIndex;

  uint64_t stat_inline_nodes_ = 0;
  uint64_t stat_pooled_nodes_ = 0;
  uint64_t stat_pooled_phases_ = 0;
  uint64_t stat_serial_handoffs_ = 0;
  uint64_t stat_idle_waits_ = 0;
};

void BackwardImpl(const Tensor& loss, const float* seed, size_t seed_size) {
  LOGCL_TRACE_SCOPE("autograd");
  Node* root = loss.node().get();
  // Seed d(objective)/d(loss). The write fully overwrites, so the buffer
  // skips its zero-fill; plain stores match the previous std::fill exactly.
  bool fresh = false;
  float* g = root->GradForFullWrite(&fresh);
  (void)fresh;
  for (size_t i = 0; i < seed_size; ++i) g[i] = seed[i];

  const uint64_t epoch =
      g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<Node*> nodes;
  std::vector<Node*> order;
  {
    LOGCL_TRACE_SCOPE("autograd_schedule");
    CollectGraph(root, epoch, &nodes);
    order = ExecutionOrder(nodes);
  }
  Am().backwards->Increment();
  Am().nodes->Add(order.size());
  if (order.empty()) return;

  const bool interop = InterOpEnabled() && GetNumThreads() > 1 &&
                       !InParallelRegion() && order.size() >= kMinInterOpNodes;
  if (!interop) {
    RunSerial(order);
    return;
  }
  Schedule s;
  BuildSchedule(nodes, order, epoch, &s);
  std::vector<uint32_t> ready;
  for (Node* n : order) {
    if (s.deps[n->engine_index] == 0) ready.push_back(n->engine_index);
  }
  InterOpEngine engine(nodes, epoch, std::move(s),
                       static_cast<uint32_t>(order.size()));
  engine.Drain(std::move(ready));
}

}  // namespace

bool InterOpEnabled() {
  return InterOpFlag().load(std::memory_order_relaxed);
}

void SetInterOpEnabled(bool enabled) {
  InterOpFlag().store(enabled, std::memory_order_relaxed);
}

void Backward(const Tensor& loss) {
  LOGCL_CHECK(loss.defined());
  LOGCL_CHECK(loss.requires_grad())
      << "Backward() on a tensor that does not require grad";
  LOGCL_CHECK_EQ(loss.num_elements(), 1)
      << "Backward() requires a scalar loss (got shape "
      << loss.shape().ToString()
      << "); reduce first (ops::SumAll / ops::MeanAll) or pass an explicit "
         "seed gradient via Backward(loss, seed_grad)";
  const float one = 1.0f;
  BackwardImpl(loss, &one, 1);
}

void Backward(const Tensor& loss, const Tensor& seed_grad) {
  LOGCL_CHECK(loss.defined());
  LOGCL_CHECK(loss.requires_grad())
      << "Backward() on a tensor that does not require grad";
  LOGCL_CHECK(seed_grad.defined()) << "Backward() with an undefined seed";
  LOGCL_CHECK_EQ(seed_grad.num_elements(), loss.num_elements())
      << "seed gradient shape " << seed_grad.shape().ToString()
      << " does not match loss shape " << loss.shape().ToString();
  BackwardImpl(loss, seed_grad.data().data(), seed_grad.data().size());
}

}  // namespace logcl
