#include "tensor/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace logcl {

AdamOptimizer::AdamOptimizer(std::vector<Tensor> parameters, AdamOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  moment1_.reserve(parameters_.size());
  moment2_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    LOGCL_CHECK(p.defined());
    LOGCL_CHECK(p.requires_grad()) << "optimizer parameter without grad";
    size_t n = p.data().size();
    moment1_.emplace_back(n, BufferFill::kZero);
    moment2_.emplace_back(n, BufferFill::kZero);
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

float AdamOptimizer::ClipGradNorm(float max_norm) {
  LOGCL_CHECK_GT(max_norm, 0.0f);
  // Per-parameter chunk-ordered reductions summed in parameter order, so
  // the norm is identical at any thread count.
  double total_sq = 0.0;
  for (Tensor& p : parameters_) {
    const float* g = p.grad().data();
    int64_t n = static_cast<int64_t>(p.grad().size());
    total_sq += ParallelReduce<double>(
        0, n, /*grain=*/8192, 0.0,
        [g](int64_t i0, int64_t i1) {
          double sq = 0.0;
          for (int64_t i = i0; i < i1; ++i) {
            sq += static_cast<double>(g[i]) * g[i];
          }
          return sq;
        },
        [](double acc, double partial) { return acc + partial; });
  }
  float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-6f);
    for (Tensor& p : parameters_) {
      float* g = p.mutable_grad().data();
      int64_t n = static_cast<int64_t>(p.mutable_grad().size());
      ParallelFor(0, n, 8192, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) g[i] *= scale;
      });
    }
  }
  return norm;
}

void AdamOptimizer::Step() {
  ++step_;
  float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<float>& data = p.mutable_data();
    const std::vector<float>& grad = p.grad();
    PooledBuffer& m = moment1_[i];
    PooledBuffer& v = moment2_[i];
    // Every element updates independently, so the split is free to vary
    // with the thread count without changing the result.
    ParallelFor(
        0, static_cast<int64_t>(data.size()), 8192,
        [&](int64_t j0, int64_t j1) {
          for (int64_t j = j0; j < j1; ++j) {
            float g = grad[static_cast<size_t>(j)];
            float& d = data[static_cast<size_t>(j)];
            float& mj = m[static_cast<size_t>(j)];
            float& vj = v[static_cast<size_t>(j)];
            if (options_.weight_decay > 0.0f) {
              d -= options_.learning_rate * options_.weight_decay * d;
            }
            mj = options_.beta1 * mj + (1.0f - options_.beta1) * g;
            vj = options_.beta2 * vj + (1.0f - options_.beta2) * g * g;
            float m_hat = mj / bias1;
            float v_hat = vj / bias2;
            d -= options_.learning_rate * m_hat /
                 (std::sqrt(v_hat) + options_.epsilon);
          }
        });
  }
}

}  // namespace logcl
