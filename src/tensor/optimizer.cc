#include "tensor/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace logcl {

AdamOptimizer::AdamOptimizer(std::vector<Tensor> parameters, AdamOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  moment1_.reserve(parameters_.size());
  moment2_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    LOGCL_CHECK(p.defined());
    LOGCL_CHECK(p.requires_grad()) << "optimizer parameter without grad";
    size_t n = p.data().size();
    moment1_.emplace_back(n, 0.0f);
    moment2_.emplace_back(n, 0.0f);
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

float AdamOptimizer::ClipGradNorm(float max_norm) {
  LOGCL_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (Tensor& p : parameters_) {
    for (float g : p.grad()) total_sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-6f);
    for (Tensor& p : parameters_) {
      for (float& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

void AdamOptimizer::Step() {
  ++step_;
  float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<float>& data = p.mutable_data();
    const std::vector<float>& grad = p.grad();
    std::vector<float>& m = moment1_[i];
    std::vector<float>& v = moment2_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j];
      if (options_.weight_decay > 0.0f) {
        data[j] -= options_.learning_rate * options_.weight_decay * data[j];
      }
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      data[j] -= options_.learning_rate * m_hat /
                 (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace logcl
