#include "tensor/jit.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/observability.h"
#include "common/runtime_config.h"
#include "tensor/jit_internal.h"

namespace logcl {
namespace jit {
namespace {

using internal::CompiledPlan;
using internal::TraceState;

// A ChainCache keeps at most this many signature entries (compiled or
// known-uncompilable). A call site cycling through more shapes than this is
// not replay-friendly; overflow calls stay eager instead of thrashing.
constexpr size_t kMaxPlans = 16;

std::atomic<bool>& JitFlag() {
  static std::atomic<bool>* flag =
      new std::atomic<bool>(RuntimeConfig::Get().jit);
  return *flag;
}

// Global monotonic counters + gauges; relaxed like the pool's (exactness is
// only expected with quiescent writers).
struct StatBlock {
  std::atomic<uint64_t> plans_captured{0};
  std::atomic<uint64_t> replays{0};
  std::atomic<uint64_t> fusions_applied{0};
  std::atomic<uint64_t> eager_fallbacks{0};
  std::atomic<uint64_t> capture_failures{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<int64_t> arena_bytes{0};
  std::atomic<int64_t> plans_live{0};
};

StatBlock& Stats() {
  // Leaky singleton: CompiledPlan destructors may run at process teardown.
  static StatBlock* stats = new StatBlock;
  return *stats;
}

// First JIT touch process-wide: publish the counters into metric snapshots
// under the logcl.jit.* schema (DESIGN.md §12/§14), like logcl.pool.*.
void EnsureMetricsRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    Metrics().RegisterSource([](std::vector<MetricValue>* out) {
      JitStats s = JitSnapshot();
      auto counter = [out](const char* name, uint64_t value) {
        MetricValue m;
        m.name = name;
        m.kind = MetricKind::kCounter;
        m.value = value;
        out->push_back(std::move(m));
      };
      auto gauge = [out](const char* name, int64_t value) {
        MetricValue m;
        m.name = name;
        m.kind = MetricKind::kGauge;
        m.gauge = value;
        out->push_back(std::move(m));
      };
      counter("logcl.jit.plans_captured", s.plans_captured);
      counter("logcl.jit.replays", s.replays);
      counter("logcl.jit.fusions_applied", s.fusions_applied);
      counter("logcl.jit.eager_fallbacks", s.eager_fallbacks);
      counter("logcl.jit.capture_failures", s.capture_failures);
      counter("logcl.jit.invalidations", s.invalidations);
      gauge("logcl.jit.arena_bytes", s.arena_bytes);
      gauge("logcl.jit.plans_live", s.plans_live);
    });
  });
}

template <typename T>
inline void Bump(std::atomic<T>& counter, T delta = 1) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

// The replay/capture signature: grad mode, input count, then per input its
// aliasing (index of the first input sharing the node), requires_grad flag,
// and shape. Aliasing is part of the key because the tracer collapses
// repeated nodes to one value id — a plan captured with inputs {x, x} reads
// input 0 twice and must not serve a later {x, y} call.
void BuildKey(const std::vector<Tensor>& inputs, bool grad_mode,
              std::vector<int64_t>* key) {
  key->clear();
  key->push_back(grad_mode ? 1 : 0);
  key->push_back(static_cast<int64_t>(inputs.size()));
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Tensor& t = inputs[i];
    LOGCL_CHECK(t.defined()) << "ChainCache input " << i << " is undefined";
    int64_t alias = static_cast<int64_t>(i);
    for (size_t j = 0; j < i; ++j) {
      if (inputs[j].IsSameObject(t)) {
        alias = static_cast<int64_t>(j);
        break;
      }
    }
    key->push_back(alias);
    key->push_back(t.requires_grad() ? 1 : 0);
    const Shape& shape = t.shape();
    key->push_back(shape.rank());
    for (int64_t d = 0; d < shape.rank(); ++d) key->push_back(shape.dim(d));
  }
}

// Looks up a tensor in the trace's value table; -1 when it was neither
// passed as an input nor produced by a traced op.
int32_t LookupValue(TraceState* trace, const Tensor& t) {
  auto it = trace->value_of.find(t.node().get());
  return it == trace->value_of.end() ? -1 : it->second;
}

// Registers an op output as a new value; -1 (and poison) when its shape
// diverges from the segment's element space.
int32_t RegisterOutput(TraceState* trace, const Tensor& out, int32_t def) {
  if (!trace->shape_set) {
    trace->shape = out.shape();
    trace->shape_set = true;
  } else if (!(trace->shape == out.shape())) {
    trace->poisoned = true;
    return -1;
  }
  int32_t id = static_cast<int32_t>(trace->values.size());
  internal::ValueInfo value;
  value.def = def;
  value.requires_grad = out.requires_grad();
  trace->values.push_back(value);
  trace->keep_alive.push_back(out);
  trace->value_of[out.node().get()] = id;
  return id;
}

// Resets g_trace even if the builder throws.
class TraceScopeGuard {
 public:
  explicit TraceScopeGuard(TraceState* trace) { internal::g_trace = trace; }
  ~TraceScopeGuard() { internal::g_trace = nullptr; }
  TraceScopeGuard(const TraceScopeGuard&) = delete;
  TraceScopeGuard& operator=(const TraceScopeGuard&) = delete;
};

}  // namespace

bool JitEnabled() { return JitFlag().load(std::memory_order_relaxed); }

void SetJitEnabled(bool enabled) {
  JitFlag().store(enabled, std::memory_order_relaxed);
}

JitStats JitSnapshot() {
  StatBlock& s = Stats();
  JitStats out;
  out.plans_captured = s.plans_captured.load(std::memory_order_relaxed);
  out.replays = s.replays.load(std::memory_order_relaxed);
  out.fusions_applied = s.fusions_applied.load(std::memory_order_relaxed);
  out.eager_fallbacks = s.eager_fallbacks.load(std::memory_order_relaxed);
  out.capture_failures = s.capture_failures.load(std::memory_order_relaxed);
  out.invalidations = s.invalidations.load(std::memory_order_relaxed);
  out.arena_bytes = s.arena_bytes.load(std::memory_order_relaxed);
  out.plans_live = s.plans_live.load(std::memory_order_relaxed);
  return out;
}

void ResetJitStats() {
  StatBlock& s = Stats();
  s.plans_captured.store(0, std::memory_order_relaxed);
  s.replays.store(0, std::memory_order_relaxed);
  s.fusions_applied.store(0, std::memory_order_relaxed);
  s.eager_fallbacks.store(0, std::memory_order_relaxed);
  s.capture_failures.store(0, std::memory_order_relaxed);
  s.invalidations.store(0, std::memory_order_relaxed);
  // arena_bytes / plans_live track live plans; a reset must not skew them.
}

namespace internal {

thread_local TraceState* g_trace = nullptr;

void NoteNodeCreatedSlow() { ++g_trace->nodes_created; }

void BumpPlansCaptured(uint64_t fused_ops) {
  Bump(Stats().plans_captured);
  Bump(Stats().fusions_applied, fused_ops);
}

void BumpCaptureFailures() { Bump(Stats().capture_failures); }

void NotePlanAlive(int64_t arena_bytes) {
  Bump(Stats().arena_bytes, arena_bytes);
  Bump(Stats().plans_live, int64_t{1});
}

void NotePlanDead(int64_t arena_bytes) {
  Bump(Stats().arena_bytes, -arena_bytes);
  Bump(Stats().plans_live, int64_t{-1});
}

void TraceBinary(ewise::BinaryKind kind, TraceBroadcast broadcast,
                 const Tensor& a, const Tensor& b, const Tensor& out) {
  TraceState* trace = g_trace;
  if (trace == nullptr || trace->poisoned) return;
  if (kind == ewise::BinaryKind::kGeneric) {
    trace->poisoned = true;
    return;
  }
  int32_t ia = LookupValue(trace, a);
  int32_t ib = LookupValue(trace, b);
  if (ia < 0 || ib < 0) {
    // An operand from outside the segment (not an input, not a traced op
    // output) — the plan could not re-materialise it at replay time.
    trace->poisoned = true;
    return;
  }
  if (broadcast != TraceBroadcast::kSame && !trace->values[ib].is_input) {
    // A broadcast operand is smaller than the segment's element space, so
    // it can only come straight from an input.
    trace->poisoned = true;
    return;
  }
  OpCode op;
  switch (broadcast) {
    case TraceBroadcast::kSame:
      op = kind == ewise::BinaryKind::kAdd   ? OpCode::kAdd
           : kind == ewise::BinaryKind::kSub ? OpCode::kSub
                                             : OpCode::kMul;
      break;
    case TraceBroadcast::kRowB:
      op = kind == ewise::BinaryKind::kAdd   ? OpCode::kRowAdd
           : kind == ewise::BinaryKind::kSub ? OpCode::kRowSub
                                             : OpCode::kRowMul;
      break;
    case TraceBroadcast::kScalarB:
      op = kind == ewise::BinaryKind::kAdd   ? OpCode::kScalAdd
           : kind == ewise::BinaryKind::kSub ? OpCode::kScalSub
                                             : OpCode::kScalMul;
      break;
  }
  int32_t def = static_cast<int32_t>(trace->instrs.size());
  int32_t io = RegisterOutput(trace, out, def);
  if (io < 0) return;
  Instr instr;
  instr.op = op;
  instr.a = ia;
  instr.b = ib;
  instr.out = io;
  trace->instrs.push_back(instr);
}

void TraceUnary(ewise::UnaryKind kind, float param, const Tensor& x,
                const Tensor& out) {
  TraceState* trace = g_trace;
  if (trace == nullptr || trace->poisoned) return;
  if (kind == ewise::UnaryKind::kCustom) {
    trace->poisoned = true;
    return;
  }
  int32_t ix = LookupValue(trace, x);
  if (ix < 0) {
    trace->poisoned = true;
    return;
  }
  int32_t def = static_cast<int32_t>(trace->instrs.size());
  int32_t io = RegisterOutput(trace, out, def);
  if (io < 0) return;
  Instr instr;
  instr.op = OpCode::kUnary;
  instr.ukind = kind;
  instr.param = param;
  instr.a = ix;
  instr.out = io;
  trace->instrs.push_back(instr);
}

namespace {

void TraceSingleOperand(OpCode op, float param, const Tensor& x,
                        const Tensor& out) {
  TraceState* trace = g_trace;
  if (trace == nullptr || trace->poisoned) return;
  int32_t ix = LookupValue(trace, x);
  if (ix < 0) {
    trace->poisoned = true;
    return;
  }
  int32_t def = static_cast<int32_t>(trace->instrs.size());
  int32_t io = RegisterOutput(trace, out, def);
  if (io < 0) return;
  Instr instr;
  instr.op = op;
  instr.param = param;
  instr.a = ix;
  instr.out = io;
  trace->instrs.push_back(instr);
}

}  // namespace

void TraceRelu(const Tensor& x, const Tensor& out) {
  TraceSingleOperand(OpCode::kRelu, 0.0f, x, out);
}

void TraceScale(const Tensor& a, float s, const Tensor& out) {
  TraceSingleOperand(OpCode::kScale, s, a, out);
}

void TraceAddScalar(const Tensor& a, float s, const Tensor& out) {
  TraceSingleOperand(OpCode::kAddConst, s, a, out);
}

}  // namespace internal

struct ChainCache::Impl {
  struct Entry {
    std::vector<int64_t> key;
    // Null plan = this signature is known-uncompilable; stay eager.
    std::shared_ptr<const CompiledPlan> plan;
  };
  std::mutex mu;
  std::vector<Entry> entries;
};

ChainCache::ChainCache() : impl_(new Impl) {}
ChainCache::~ChainCache() = default;

int ChainCache::num_plans() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  int count = 0;
  for (const Impl::Entry& e : impl_->entries) {
    if (e.plan != nullptr) ++count;
  }
  return count;
}

Tensor ChainCache::Run(const std::vector<Tensor>& inputs,
                       const Builder& build) {
  // Bypass: JIT off, or this thread is already capturing (a nested Run
  // inside another builder must let the outer trace see the inner ops).
  if (!JitEnabled() || internal::g_trace != nullptr) return build(inputs);
  EnsureMetricsRegistered();

  bool grad_mode = GradModeEnabled();
  // Reused per thread: key building is on every replay's path and must not
  // allocate (capture copies it into the entry below).
  thread_local std::vector<int64_t> key;
  BuildKey(inputs, grad_mode, &key);

  std::shared_ptr<const CompiledPlan> plan;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const Impl::Entry* hit = nullptr;
    for (const Impl::Entry& e : impl_->entries) {
      if (e.key == key) {
        hit = &e;
        break;
      }
    }
    if (hit != nullptr) {
      if (hit->plan == nullptr) {
        // Known-uncompilable signature (counted below, outside the lock).
        plan = nullptr;
      } else {
        plan = hit->plan;
      }
    } else {
      // Signature miss. A warm cache missing means shapes or flags changed
      // under this call site — the established invalidation signal.
      if (!impl_->entries.empty()) Bump(Stats().invalidations);
      if (impl_->entries.size() >= kMaxPlans) {
        Bump(Stats().eager_fallbacks);
        return build(inputs);
      }
      // Capture: run the builder eagerly under trace. The lock stays held
      // so one thread captures per signature; concurrent replays of other
      // signatures only contend for the lookup above.
      TraceState trace;
      trace.grad_mode = grad_mode;
      trace.num_inputs = static_cast<int32_t>(inputs.size());
      for (size_t i = 0; i < inputs.size(); ++i) {
        internal::ValueInfo value;
        value.is_input = true;
        value.input_index = static_cast<int32_t>(i);
        value.requires_grad = grad_mode && inputs[i].requires_grad();
        trace.values.push_back(value);
        trace.keep_alive.push_back(inputs[i]);
        // Aliased inputs collapse to the first occurrence's value id (the
        // aliasing pattern is part of the signature key).
        trace.value_of.emplace(inputs[i].node().get(),
                               static_cast<int32_t>(i));
      }
      Tensor out;
      {
        TraceScopeGuard scope(&trace);
        out = build(inputs);
      }
      std::shared_ptr<const CompiledPlan> compiled =
          CompiledPlan::Compile(trace, out);
      if (compiled != nullptr) {
        // Compile already counted the plan into the live-plan gauges.
        internal::BumpPlansCaptured(
            static_cast<uint64_t>(compiled->instrs.size()) - 1);
      } else {
        internal::BumpCaptureFailures();
      }
      Impl::Entry entry;
      entry.key = std::move(key);
      entry.plan = std::move(compiled);
      impl_->entries.push_back(std::move(entry));
      return out;  // first call returns the eager-built result
    }
  }
  if (plan != nullptr) {
    Bump(Stats().replays);
    return plan->Replay(inputs);
  }
  Bump(Stats().eager_fallbacks);
  return build(inputs);
}

}  // namespace jit
}  // namespace logcl
