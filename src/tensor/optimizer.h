// Adam optimizer and gradient-norm clipping over a set of leaf parameters.

#ifndef LOGCL_TENSOR_OPTIMIZER_H_
#define LOGCL_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace logcl {

/// Hyperparameters for Adam (paper: lr=0.001, defaults otherwise).
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style) when > 0
};

/// Adam over a fixed parameter list. Parameters must be leaf tensors with
/// requires_grad set; their grads are produced by Backward().
class AdamOptimizer {
 public:
  AdamOptimizer(std::vector<Tensor> parameters, AdamOptions options = {});

  /// Zeroes all parameter gradients (call before each forward/backward).
  void ZeroGrad();

  /// Applies one Adam update using accumulated gradients.
  void Step();

  /// Rescales all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  int64_t num_steps() const { return step_; }
  const std::vector<Tensor>& parameters() const { return parameters_; }

 private:
  std::vector<Tensor> parameters_;
  AdamOptions options_;
  int64_t step_ = 0;
  // First/second moment estimates, one pooled buffer per parameter —
  // recycled when the optimizer is destroyed (models are re-fit in tests
  // and benchmarks, so moment storage repeats sizes like everything else).
  std::vector<PooledBuffer> moment1_;
  std::vector<PooledBuffer> moment2_;
};

}  // namespace logcl

#endif  // LOGCL_TENSOR_OPTIMIZER_H_
