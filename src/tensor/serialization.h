// Parameter checkpointing: saves/loads a model's parameter list to a simple
// versioned binary format, so trained models survive process restarts (used
// by the CLI tool and the online-deployment story).
//
// Format (little-endian):
//   magic  "LGCLCKPT"        8 bytes
//   version                  u32 (currently 1)
//   tensor count             u64
//   per tensor: rank u32, dims u64[rank], float32 data[prod(dims)]
//
// Loading is strict: the checkpoint must contain exactly the same number of
// tensors with exactly the same shapes as the destination parameters
// (checkpoints are tied to a model configuration, as in other frameworks).

#ifndef LOGCL_TENSOR_SERIALIZATION_H_
#define LOGCL_TENSOR_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace logcl {

/// Writes `parameters` to `path` (overwrites).
Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path);

/// Loads a checkpoint into `parameters` (in place; shapes must match).
Status LoadParameters(const std::string& path,
                      std::vector<Tensor>* parameters);

}  // namespace logcl

#endif  // LOGCL_TENSOR_SERIALIZATION_H_
