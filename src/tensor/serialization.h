// DEPRECATED: thin shims over the unified checkpoint API in
// tensor/checkpoint.h. SaveParameters forwards to checkpoint::Save (which
// writes format v2) and LoadParameters to checkpoint::Load (which reads v1
// and v2). New code should include tensor/checkpoint.h directly; these
// wrappers exist only so pre-redesign call sites keep compiling.

#ifndef LOGCL_TENSOR_SERIALIZATION_H_
#define LOGCL_TENSOR_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace logcl {

/// Writes `parameters` to `path` (overwrites).
Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path);

/// Loads a checkpoint into `parameters` (in place; shapes must match).
Status LoadParameters(const std::string& path,
                      std::vector<Tensor>* parameters);

}  // namespace logcl

#endif  // LOGCL_TENSOR_SERIALIZATION_H_
