// Shared scalar elementwise-op definitions: the single source of truth for
// the forward formula and local derivative of every fusable unary op, plus
// the same-shape binary backward epilogue shared by the eager path
// (tensor/ops.cc) and the JIT's fused replay kernels (tensor/jit_fusion.cc).
//
// Keeping one copy is what makes the JIT's bitwise-parity contract
// checkable: a captured plan replays literally the same per-element
// arithmetic (and the same ParallelFor grains) as eager mode, so
// LOGCL_JIT=0 and =1 produce bit-identical tensors. Adding an op here (and
// to the OpCode table in tensor/jit_internal.h) makes it fusable; an op
// whose formula lives only in ops.cc is eager-only.

#ifndef LOGCL_TENSOR_ELEMENTWISE_KERNELS_H_
#define LOGCL_TENSOR_ELEMENTWISE_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>

#include "common/parallel.h"

namespace logcl {
namespace ewise {

/// Arithmetic kind of an ElementwiseBinary call when the SIMD layer has a
/// dedicated kernel pair for it (tensor/simd.h). kGeneric keeps the lambda
/// loops and is never captured by the JIT tracer.
enum class BinaryKind : uint8_t { kGeneric, kAdd, kSub, kMul };

/// Unary ops with a closed-form (x, y, param) -> dy/dx in the table below.
/// Relu is not listed: it has dedicated SIMD kernels and its own OpCode.
/// kCustom marks ElementwiseUnary calls whose lambdas are not in this table;
/// the JIT tracer treats those as untraceable.
enum class UnaryKind : uint8_t {
  kCustom,
  kNeg,
  kSigmoid,
  kTanh,
  kLeakyRelu,  // param = negative slope
  kExp,
  kLog,        // param = clamp epsilon
  kCos,
};

/// Forward formula y = f(x). `param` is used only by the kinds annotated
/// above.
inline float UnaryForward(UnaryKind kind, float x, float param) {
  switch (kind) {
    case UnaryKind::kNeg:
      return -x;
    case UnaryKind::kSigmoid: {
      // Stable logistic.
      if (x >= 0.0f) {
        float e = std::exp(-x);
        return 1.0f / (1.0f + e);
      }
      float e = std::exp(x);
      return e / (1.0f + e);
    }
    case UnaryKind::kTanh:
      return std::tanh(x);
    case UnaryKind::kLeakyRelu:
      return x > 0.0f ? x : param * x;
    case UnaryKind::kExp:
      return std::exp(x);
    case UnaryKind::kLog:
      return std::log(std::max(x, param));
    case UnaryKind::kCos:
      return std::cos(x);
    case UnaryKind::kCustom:
      break;
  }
  return x;
}

/// Local derivative dy/dx at (x, y = UnaryForward(x)). Reads only the
/// operands UnaryNeedsX / UnaryNeedsY declare, so callers may pass 0 for
/// the other one (the JIT saves only the declared operands in its arena).
inline float UnaryDeriv(UnaryKind kind, float x, float y, float param) {
  switch (kind) {
    case UnaryKind::kNeg:
      return -1.0f;
    case UnaryKind::kSigmoid:
      return y * (1.0f - y);
    case UnaryKind::kTanh:
      return 1.0f - y * y;
    case UnaryKind::kLeakyRelu:
      return x > 0.0f ? 1.0f : param;
    case UnaryKind::kExp:
      return y;
    case UnaryKind::kLog:
      return 1.0f / std::max(x, param);
    case UnaryKind::kCos:
      return -std::sin(x);
    case UnaryKind::kCustom:
      break;
  }
  return 0.0f;
}

/// Whether UnaryDeriv reads the input x / the output y for `kind`.
inline bool UnaryNeedsX(UnaryKind kind) {
  return kind == UnaryKind::kLeakyRelu || kind == UnaryKind::kLog ||
         kind == UnaryKind::kCos;
}
inline bool UnaryNeedsY(UnaryKind kind) {
  return kind == UnaryKind::kSigmoid || kind == UnaryKind::kTanh ||
         kind == UnaryKind::kExp;
}

namespace internal {

// Kind-specialised loop bodies so the per-element switch in UnaryForward /
// UnaryDeriv constant-folds away; the formulas stay single-sourced above.
template <UnaryKind K>
inline void UnaryForwardLoopT(const float* x, float* y, int64_t n,
                              float param) {
  for (int64_t i = 0; i < n; ++i) y[i] = UnaryForward(K, x[i], param);
}

// Fresh = the destination is an unwritten kUninit grad buffer
// (TensorNode::GradForFullWrite): every element is written as
// `0.0f + contribution`, bitwise-equal to zero-fill + accumulate.
template <UnaryKind K, bool Fresh>
inline void UnaryBackwardLoopT(const float* g, const float* x, const float* y,
                               float* gx, int64_t n, float param) {
  for (int64_t i = 0; i < n; ++i) {
    float d = g[i] * UnaryDeriv(K, UnaryNeedsX(K) ? x[i] : 0.0f,
                                UnaryNeedsY(K) ? y[i] : 0.0f, param);
    if constexpr (Fresh) {
      gx[i] = 0.0f + d;
    } else {
      gx[i] += d;
    }
  }
}

template <bool Fresh>
inline void UnaryBackwardKernelT(UnaryKind kind, const float* g,
                                 const float* x, const float* y, float* gx,
                                 int64_t n, float param) {
  switch (kind) {
    case UnaryKind::kNeg:
      return UnaryBackwardLoopT<UnaryKind::kNeg, Fresh>(g, x, y, gx, n, param);
    case UnaryKind::kSigmoid:
      return UnaryBackwardLoopT<UnaryKind::kSigmoid, Fresh>(g, x, y, gx, n,
                                                            param);
    case UnaryKind::kTanh:
      return UnaryBackwardLoopT<UnaryKind::kTanh, Fresh>(g, x, y, gx, n,
                                                         param);
    case UnaryKind::kLeakyRelu:
      return UnaryBackwardLoopT<UnaryKind::kLeakyRelu, Fresh>(g, x, y, gx, n,
                                                              param);
    case UnaryKind::kExp:
      return UnaryBackwardLoopT<UnaryKind::kExp, Fresh>(g, x, y, gx, n, param);
    case UnaryKind::kLog:
      return UnaryBackwardLoopT<UnaryKind::kLog, Fresh>(g, x, y, gx, n, param);
    case UnaryKind::kCos:
      return UnaryBackwardLoopT<UnaryKind::kCos, Fresh>(g, x, y, gx, n, param);
    case UnaryKind::kCustom:
      break;
  }
}

}  // namespace internal

/// y[i] = f(x[i]) over [0, n); the serial kernel both the eager unary loop
/// and the JIT's fused tiles invoke per shard.
inline void UnaryForwardKernel(UnaryKind kind, const float* x, float* y,
                               int64_t n, float param) {
  using internal::UnaryForwardLoopT;
  switch (kind) {
    case UnaryKind::kNeg:
      return UnaryForwardLoopT<UnaryKind::kNeg>(x, y, n, param);
    case UnaryKind::kSigmoid:
      return UnaryForwardLoopT<UnaryKind::kSigmoid>(x, y, n, param);
    case UnaryKind::kTanh:
      return UnaryForwardLoopT<UnaryKind::kTanh>(x, y, n, param);
    case UnaryKind::kLeakyRelu:
      return UnaryForwardLoopT<UnaryKind::kLeakyRelu>(x, y, n, param);
    case UnaryKind::kExp:
      return UnaryForwardLoopT<UnaryKind::kExp>(x, y, n, param);
    case UnaryKind::kLog:
      return UnaryForwardLoopT<UnaryKind::kLog>(x, y, n, param);
    case UnaryKind::kCos:
      return UnaryForwardLoopT<UnaryKind::kCos>(x, y, n, param);
    case UnaryKind::kCustom:
      break;
  }
}

/// gx[i] += g[i] * f'(x[i]) over [0, n); x / y may be null when
/// UnaryNeedsX / UnaryNeedsY is false for `kind`. With fresh=true the
/// destination is an unwritten kUninit buffer and each element is written
/// as 0.0f + contribution instead (bitwise-equal to zero-fill + the
/// accumulate form; see TensorNode::GradForFullWrite).
inline void UnaryBackwardKernel(UnaryKind kind, const float* g, const float* x,
                                const float* y, float* gx, int64_t n,
                                float param, bool fresh = false) {
  if (fresh) {
    internal::UnaryBackwardKernelT<true>(kind, g, x, y, gx, n, param);
  } else {
    internal::UnaryBackwardKernelT<false>(kind, g, x, y, gx, n, param);
  }
}

/// Same-shape binary backward epilogue: one pass computes both local grads
/// and accumulates whichever sides are live (null pointer = side without
/// requires_grad). Replaces the three near-identical hand-unrolled loops the
/// eager path used to carry; the null checks are still hoisted out of the
/// element loop, so each live combination stays branch-free per element.
/// `bwd` is the (g, a, b, *da, *db) local-gradient functor of the op.
/// fresh_a / fresh_b mark a destination that is an unwritten kUninit grad
/// buffer: that side is written as 0.0f + contribution instead of
/// accumulated (bitwise-equal to zero-fill + accumulate).
template <typename BackwardFn>
void SameShapeBinaryBackward(const float* g, const float* ad, const float* bd,
                             float* ga, float* gb, int64_t n, int64_t grain,
                             const BackwardFn& bwd, bool fresh_a = false,
                             bool fresh_b = false) {
  auto run = [&](auto write_a, auto write_b, auto fa, auto fb) {
    ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        float da = 0.0f, db = 0.0f;
        bwd(g[i], ad[i], bd[i], &da, &db);
        if constexpr (decltype(write_a)::value) {
          if constexpr (decltype(fa)::value) {
            ga[i] = 0.0f + da;
          } else {
            ga[i] += da;
          }
        }
        if constexpr (decltype(write_b)::value) {
          if constexpr (decltype(fb)::value) {
            gb[i] = 0.0f + db;
          } else {
            gb[i] += db;
          }
        }
      }
    });
  };
  auto run_b = [&](auto write_a, auto fa) {
    if (gb != nullptr) {
      if (fresh_b) {
        run(write_a, std::true_type{}, fa, std::true_type{});
      } else {
        run(write_a, std::true_type{}, fa, std::false_type{});
      }
    } else {
      run(write_a, std::false_type{}, fa, std::false_type{});
    }
  };
  if (ga != nullptr) {
    if (fresh_a) {
      run_b(std::true_type{}, std::true_type{});
    } else {
      run_b(std::true_type{}, std::false_type{});
    }
  } else if (gb != nullptr) {
    run_b(std::false_type{}, std::false_type{});
  }
}

}  // namespace ewise
}  // namespace logcl

#endif  // LOGCL_TENSOR_ELEMENTWISE_KERNELS_H_
