// Unified checkpoint API: one versioned container for model parameters with
// three entry points — checkpoint::Save (write), checkpoint::Load (streamed
// read into existing tensors), checkpoint::Open (zero-copy mmap view with
// incremental dirty-row writeback for streaming continual learning).
//
// Format v2 (little-endian), designed so the data region can be mapped and
// scored from directly:
//   magic        "LGCLCKPT"   8 bytes
//   version      u32 (= 2)
//   header_bytes u32          size of everything before the data region
//   count        u64          number of tensors
//   per tensor:
//     rank        u32
//     reserved    u32 (= 0)
//     dims        u64[rank]
//     data_offset u64         absolute file offset, 64-byte aligned
//   data region: float32 payloads at their offsets (zero padding between)
//
// Format v1 (magic, version u32=1, count u64, then per tensor rank/dims/data
// with no offset table) is still readable via checkpoint::Load for
// checkpoints written before the redesign; Save always emits v2.
//
// Loading is strict: the checkpoint must contain exactly the same number of
// tensors with exactly the same shapes as the destination parameters
// (checkpoints are tied to a model configuration, as in other frameworks).

#ifndef LOGCL_TENSOR_CHECKPOINT_H_
#define LOGCL_TENSOR_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace logcl {
namespace checkpoint {

/// Writes `parameters` to `path` (overwrites). Always emits format v2.
Status Save(const std::vector<Tensor>& parameters, const std::string& path);

/// Loads a checkpoint (v1 or v2) into `parameters` in place; tensor count
/// and shapes must match exactly. Bitwise-identical result for either
/// on-disk version of the same parameters.
Status Load(const std::string& path, std::vector<Tensor>* parameters);

/// A v2 checkpoint mapped read-write into the address space. `data(i)`
/// points straight into the file mapping; WritebackRows copies only the
/// dirty rows of a tensor back into the mapping, so a streaming session
/// persists incremental fine-tune deltas without rewriting the file.
class MmapCheckpoint {
 public:
  MmapCheckpoint() = default;
  ~MmapCheckpoint();

  MmapCheckpoint(MmapCheckpoint&& other) noexcept;
  MmapCheckpoint& operator=(MmapCheckpoint&& other) noexcept;
  MmapCheckpoint(const MmapCheckpoint&) = delete;
  MmapCheckpoint& operator=(const MmapCheckpoint&) = delete;

  size_t tensor_count() const { return tensors_.size(); }
  const Shape& shape(size_t i) const { return tensors_[i].shape; }

  /// Read view into the mapping; valid until the object is destroyed.
  const float* data(size_t i) const;

  /// Copies the mapped payloads into `parameters` (strict shape check).
  /// Bitwise-identical to checkpoint::Load on the same file.
  Status Materialize(std::vector<Tensor>* parameters) const;

  /// Copies rows `rows` of `src` (which must match tensor `i`'s shape) into
  /// the mapping. Rows must be in range; duplicates are harmless. For rank-1
  /// tensors a "row" is a single element.
  Status WritebackRows(size_t i, const Tensor& src,
                       const std::vector<int64_t>& rows);

  /// Copies the full payload of tensor `i` from `src` into the mapping.
  Status WritebackAll(size_t i, const Tensor& src);

  /// msync()s the mapping so writebacks reach the file durably.
  Status Flush();

 private:
  friend Result<MmapCheckpoint> Open(const std::string& path);

  struct Entry {
    Shape shape;
    uint64_t offset = 0;  // absolute file offset of the float32 payload
  };

  void Reset();

  void* base_ = nullptr;
  size_t length_ = 0;
  std::string path_;
  std::vector<Entry> tensors_;
};

/// Maps `path` (must be format v2) read-write and returns a view over it.
Result<MmapCheckpoint> Open(const std::string& path);

}  // namespace checkpoint
}  // namespace logcl

#endif  // LOGCL_TENSOR_CHECKPOINT_H_
