#include "tensor/gradcheck.h"

#include <cmath>

#include "common/logging.h"
#include "common/stringpiece.h"

namespace logcl {

GradCheckReport CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, const GradCheckOptions& options) {
  GradCheckReport report;
  for (Tensor& input : inputs) {
    LOGCL_CHECK(input.defined());
    LOGCL_CHECK(input.requires_grad());
    input.ZeroGrad();
  }

  // Analytic gradients.
  Tensor loss = fn(inputs);
  LOGCL_CHECK_EQ(loss.num_elements(), 1) << "gradcheck needs a scalar loss";
  Backward(loss);
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& input : inputs) analytic.push_back(input.grad());

  // Numeric gradients by central differences (loss recomputed per element).
  report.passed = true;
  for (size_t p = 0; p < inputs.size(); ++p) {
    std::vector<float>& data = inputs[p].mutable_data();
    for (size_t i = 0; i < data.size(); ++i) {
      float saved = data[i];
      data[i] = saved + options.epsilon;
      float up = fn(inputs).at(0);
      data[i] = saved - options.epsilon;
      float down = fn(inputs).at(0);
      data[i] = saved;
      float numeric = (up - down) / (2.0f * options.epsilon);
      float expected = analytic[p][i];
      float abs_err = std::fabs(numeric - expected);
      float denom = std::max({std::fabs(numeric), std::fabs(expected), 1.0f});
      float rel_err = abs_err / denom;
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
      report.max_rel_error = std::max(report.max_rel_error, rel_err);
      if (abs_err > options.abs_tolerance && rel_err > options.rel_tolerance) {
        if (report.passed) {
          report.detail = StrFormat(
              "input %zu element %zu: analytic=%.6f numeric=%.6f", p, i,
              expected, numeric);
        }
        report.passed = false;
      }
    }
  }
  return report;
}

}  // namespace logcl
