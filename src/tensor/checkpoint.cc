#include "tensor/checkpoint.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <utility>

#include "common/stringpiece.h"

namespace logcl {
namespace checkpoint {

namespace {

constexpr char kMagic[8] = {'L', 'G', 'C', 'L', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint64_t kDataAlign = 64;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

Status CheckShapes(const std::vector<Shape>& file_shapes,
                   const std::vector<Tensor>& parameters,
                   const std::string& path) {
  if (file_shapes.size() != parameters.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint %s has %zu tensors, model has %zu", path.c_str(),
        file_shapes.size(), parameters.size()));
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (file_shapes[i] != parameters[i].shape()) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu shape mismatch: checkpoint %s vs model %s", i,
          file_shapes[i].ToString().c_str(),
          parameters[i].shape().ToString().c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace

Status Save(const std::vector<Tensor>& parameters, const std::string& path) {
  for (const Tensor& p : parameters) {
    if (!p.defined()) {
      return Status::InvalidArgument("undefined tensor in parameter list");
    }
  }
  // Header size: magic + version + header_bytes + count, then one entry of
  // rank/reserved/dims/data_offset per tensor.
  uint64_t header_bytes = sizeof(kMagic) + 2 * sizeof(uint32_t) +
                          sizeof(uint64_t);
  for (const Tensor& p : parameters) {
    header_bytes += 2 * sizeof(uint32_t);
    header_bytes += p.shape().rank() * sizeof(uint64_t);
    header_bytes += sizeof(uint64_t);
  }
  std::vector<uint64_t> offsets(parameters.size());
  uint64_t cursor = AlignUp(header_bytes, kDataAlign);
  for (size_t i = 0; i < parameters.size(); ++i) {
    offsets[i] = cursor;
    cursor = AlignUp(
        cursor + parameters[i].data().size() * sizeof(float), kDataAlign);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersionV2);
  WritePod(out, static_cast<uint32_t>(header_bytes));
  WritePod(out, static_cast<uint64_t>(parameters.size()));
  for (size_t i = 0; i < parameters.size(); ++i) {
    const Tensor& p = parameters[i];
    WritePod(out, static_cast<uint32_t>(p.shape().rank()));
    WritePod(out, static_cast<uint32_t>(0));
    for (int64_t dim : p.shape().dims()) {
      WritePod(out, static_cast<uint64_t>(dim));
    }
    WritePod(out, offsets[i]);
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    // Zero-pad up to the aligned payload offset.
    uint64_t pos = static_cast<uint64_t>(out.tellp());
    for (; pos < offsets[i]; ++pos) out.put('\0');
    const std::vector<float>& data = parameters[i].data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {

Status LoadV1Body(std::ifstream& in, std::vector<Tensor>* parameters) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count != parameters->size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %llu tensors, model has %zu",
        static_cast<unsigned long long>(count), parameters->size()));
  }
  for (size_t i = 0; i < parameters->size(); ++i) {
    Tensor& p = (*parameters)[i];
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated tensor header");
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) return Status::IoError("truncated dims");
      dims[d] = static_cast<int64_t>(dim);
    }
    if (Shape(dims) != p.shape()) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu shape mismatch: checkpoint %s vs model %s", i,
          Shape(dims).ToString().c_str(), p.shape().ToString().c_str()));
    }
    std::vector<float>& data = p.mutable_data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data");
  }
  return Status::Ok();
}

Status ReadV2Header(std::ifstream& in, std::vector<Shape>* shapes,
                    std::vector<uint64_t>* offsets) {
  uint32_t header_bytes = 0;
  if (!ReadPod(in, &header_bytes)) return Status::IoError("truncated header");
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  shapes->reserve(count);
  offsets->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    uint32_t reserved = 0;
    if (!ReadPod(in, &rank) || !ReadPod(in, &reserved)) {
      return Status::IoError("truncated tensor header");
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) return Status::IoError("truncated dims");
      dims[d] = static_cast<int64_t>(dim);
    }
    uint64_t offset = 0;
    if (!ReadPod(in, &offset)) return Status::IoError("truncated offsets");
    if (offset % kDataAlign != 0 || offset < header_bytes) {
      return Status::InvalidArgument(
          StrFormat("bad data offset %llu for tensor %llu",
                    static_cast<unsigned long long>(offset),
                    static_cast<unsigned long long>(i)));
    }
    shapes->emplace_back(dims);
    offsets->push_back(offset);
  }
  return Status::Ok();
}

Status LoadV2Body(std::ifstream& in, const std::string& path,
                  std::vector<Tensor>* parameters) {
  std::vector<Shape> shapes;
  std::vector<uint64_t> offsets;
  LOGCL_RETURN_IF_ERROR(ReadV2Header(in, &shapes, &offsets));
  LOGCL_RETURN_IF_ERROR(CheckShapes(shapes, *parameters, path));
  for (size_t i = 0; i < parameters->size(); ++i) {
    std::vector<float>& data = (*parameters)[i].mutable_data();
    in.seekg(static_cast<std::streamoff>(offsets[i]));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data");
  }
  return Status::Ok();
}

}  // namespace

Status Load(const std::string& path, std::vector<Tensor>* parameters) {
  if (parameters == nullptr) {
    return Status::InvalidArgument("null parameter list");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a LogCL checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return Status::IoError("truncated header");
  if (version == kVersionV1) return LoadV1Body(in, parameters);
  if (version == kVersionV2) return LoadV2Body(in, path, parameters);
  return Status::InvalidArgument(
      StrFormat("unsupported checkpoint version %u", version));
}

// --- MmapCheckpoint --------------------------------------------------------

MmapCheckpoint::~MmapCheckpoint() { Reset(); }

MmapCheckpoint::MmapCheckpoint(MmapCheckpoint&& other) noexcept
    : base_(other.base_),
      length_(other.length_),
      path_(std::move(other.path_)),
      tensors_(std::move(other.tensors_)) {
  other.base_ = nullptr;
  other.length_ = 0;
}

MmapCheckpoint& MmapCheckpoint::operator=(MmapCheckpoint&& other) noexcept {
  if (this != &other) {
    Reset();
    base_ = other.base_;
    length_ = other.length_;
    path_ = std::move(other.path_);
    tensors_ = std::move(other.tensors_);
    other.base_ = nullptr;
    other.length_ = 0;
  }
  return *this;
}

void MmapCheckpoint::Reset() {
  if (base_ != nullptr) {
    ::munmap(base_, length_);
    base_ = nullptr;
    length_ = 0;
  }
  tensors_.clear();
}

const float* MmapCheckpoint::data(size_t i) const {
  LOGCL_CHECK(base_ != nullptr);
  LOGCL_CHECK(i < tensors_.size());
  return reinterpret_cast<const float*>(static_cast<const char*>(base_) +
                                        tensors_[i].offset);
}

Status MmapCheckpoint::Materialize(std::vector<Tensor>* parameters) const {
  if (parameters == nullptr) {
    return Status::InvalidArgument("null parameter list");
  }
  std::vector<Shape> shapes;
  shapes.reserve(tensors_.size());
  for (const Entry& e : tensors_) shapes.push_back(e.shape);
  LOGCL_RETURN_IF_ERROR(CheckShapes(shapes, *parameters, path_));
  for (size_t i = 0; i < parameters->size(); ++i) {
    std::vector<float>& dst = (*parameters)[i].mutable_data();
    std::memcpy(dst.data(), data(i), dst.size() * sizeof(float));
  }
  return Status::Ok();
}

Status MmapCheckpoint::WritebackRows(size_t i, const Tensor& src,
                                     const std::vector<int64_t>& rows) {
  if (i >= tensors_.size()) {
    return Status::InvalidArgument(StrFormat("tensor index %zu out of range", i));
  }
  if (src.shape() != tensors_[i].shape) {
    return Status::FailedPrecondition(StrFormat(
        "writeback shape mismatch: source %s vs checkpoint %s",
        src.shape().ToString().c_str(),
        tensors_[i].shape.ToString().c_str()));
  }
  const Shape& shape = tensors_[i].shape;
  int64_t num_rows = shape.rank() >= 1 ? shape.dims()[0] : 1;
  int64_t row_len = num_rows > 0
                        ? static_cast<int64_t>(src.data().size()) / num_rows
                        : 0;
  float* dst = const_cast<float*>(data(i));
  for (int64_t row : rows) {
    if (row < 0 || row >= num_rows) {
      return Status::InvalidArgument(
          StrFormat("writeback row %lld out of range [0, %lld)",
                    static_cast<long long>(row),
                    static_cast<long long>(num_rows)));
    }
    std::memcpy(dst + row * row_len, src.data().data() + row * row_len,
                static_cast<size_t>(row_len) * sizeof(float));
  }
  return Status::Ok();
}

Status MmapCheckpoint::WritebackAll(size_t i, const Tensor& src) {
  if (i >= tensors_.size()) {
    return Status::InvalidArgument(StrFormat("tensor index %zu out of range", i));
  }
  if (src.shape() != tensors_[i].shape) {
    return Status::FailedPrecondition(StrFormat(
        "writeback shape mismatch: source %s vs checkpoint %s",
        src.shape().ToString().c_str(),
        tensors_[i].shape.ToString().c_str()));
  }
  std::memcpy(const_cast<float*>(data(i)), src.data().data(),
              src.data().size() * sizeof(float));
  return Status::Ok();
}

Status MmapCheckpoint::Flush() {
  if (base_ == nullptr) return Status::Ok();
  if (::msync(base_, length_, MS_SYNC) != 0) {
    return Status::IoError("msync failed: " + path_);
  }
  return Status::Ok();
}

Result<MmapCheckpoint> Open(const std::string& path) {
  // Parse the header with the streamed reader first (simpler error paths),
  // then map the whole file read-write and hold only offsets + shapes.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a LogCL checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return Status::IoError("truncated header");
  if (version != kVersionV2) {
    return Status::InvalidArgument(StrFormat(
        "mmap requires a v2 checkpoint, got version %u (re-save with "
        "checkpoint::Save)",
        version));
  }
  std::vector<Shape> shapes;
  std::vector<uint64_t> offsets;
  LOGCL_RETURN_IF_ERROR(ReadV2Header(in, &shapes, &offsets));
  in.close();

  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IoError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat failed: " + path);
  }
  size_t length = static_cast<size_t>(st.st_size);
  for (size_t i = 0; i < shapes.size(); ++i) {
    uint64_t elems = 1;
    for (int64_t d : shapes[i].dims()) elems *= static_cast<uint64_t>(d);
    if (offsets[i] + elems * sizeof(float) > length) {
      ::close(fd);
      return Status::IoError("truncated tensor data: " + path);
    }
  }
  void* base =
      ::mmap(nullptr, length, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  MmapCheckpoint view;
  view.base_ = base;
  view.length_ = length;
  view.path_ = path;
  view.tensors_.reserve(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    view.tensors_.push_back(MmapCheckpoint::Entry{shapes[i], offsets[i]});
  }
  return view;
}

}  // namespace checkpoint
}  // namespace logcl
